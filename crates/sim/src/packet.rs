//! Packets and the transport-layer header fields NUMFabric and the baseline
//! protocols carry.
//!
//! Following the paper (§5), NUMFabric adds five fields to packet headers:
//! `virtualPacketLen` and `interPacketTime` for Swift, and `pathPrice`,
//! `pathLen`, `normalizedResidual` for xWI. The baseline protocols need a
//! subset of the same machinery (an aggregated price/feedback field and its
//! reflection in ACKs), and pFabric needs a priority field. Like an ns-3
//! header, [`PacketHeader`] is the union of all of these; each protocol only
//! reads and writes the fields it defines.

use crate::routes::{RouteId, RouteTable};
use crate::time::{SimDuration, SimTime};

/// Identifier of a flow within a [`crate::network::Network`].
pub type FlowId = usize;

/// Per-packet sequence number (byte offset of the first payload byte).
pub type SeqNo = u64;

/// Wire size of the transport/IP/Ethernet headers we model, in bytes.
pub const HEADER_BYTES: u32 = 40;
/// Default MTU-sized payload in bytes.
pub const DEFAULT_PAYLOAD_BYTES: u32 = 1460;
/// Wire size of a full MTU packet.
pub const MTU_BYTES: u32 = HEADER_BYTES + DEFAULT_PAYLOAD_BYTES;

/// What kind of packet this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// Connection setup (treated as a control packet by WFQ).
    Syn,
    /// A data segment.
    Data,
    /// A (pure) acknowledgment, carrying reflected feedback fields.
    Ack,
}

/// The union of the transport header fields used by NUMFabric, DGD, RCP*,
/// DCTCP and pFabric.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketHeader {
    // ---- Swift (NUMFabric §4.1 / §5) ----
    /// `virtualPacketLen`: packet length divided by the flow's weight; used by
    /// the STFQ scheduler to advance per-flow virtual finish times. Zero for
    /// control packets (SYN / pure ACK), which WFQ treats as highest priority.
    pub virtual_packet_len: f64,
    /// `interPacketTime`: receiver-measured spacing between consecutive data
    /// packets of this flow, reflected to the sender in ACKs.
    pub inter_packet_time: Option<SimDuration>,

    // ---- xWI (NUMFabric §4.2 / §5) ----
    /// `pathPrice`: running sum of link prices along the path (stamped by
    /// switches on dequeue); reflected to the sender in ACKs.
    pub path_price: f64,
    /// `pathLen`: number of links that stamped this packet.
    pub path_len: u32,
    /// `normalizedResidual`: the flow's KKT residual divided by its path
    /// length, set by the sender and read by every switch on the path.
    pub normalized_residual: f64,

    // ---- Receiver → sender reflection (carried in ACKs) ----
    /// The `pathPrice` accumulated by the acknowledged data packet, reflected
    /// back to the sender. Kept separate from `path_price` because the ACK
    /// itself is stamped by the switches on the *reverse* path, and that
    /// value must not overwrite the forward-path feedback.
    pub reflected_path_price: f64,
    /// The `pathLen` of the acknowledged data packet.
    pub reflected_path_len: u32,
    /// The RCP* feedback (`Σ R_l^{-α}`) of the acknowledged data packet.
    pub reflected_rcp_feedback: f64,

    // ---- Baselines ----
    /// Generic aggregated feedback used by RCP* (`Σ R_l^{-α}`); kept separate
    /// from `path_price` so a misconfigured experiment cannot mix them up.
    pub rcp_feedback: f64,
    /// pFabric priority (remaining flow size in bytes); smaller = higher
    /// priority.
    pub pfabric_priority: f64,
    /// ECN: whether the packet is ECN-capable (DCTCP).
    pub ecn_capable: bool,
    /// ECN: congestion-experienced mark set by a queue.
    pub ecn_marked: bool,
    /// ECN echo in ACKs (DCTCP receiver feedback).
    pub ecn_echo: bool,

    // ---- Common bookkeeping ----
    /// When the packet (or the data packet an ACK acknowledges) was sent.
    pub sent_time: SimTime,
    /// For ACKs: the number of payload bytes being acknowledged cumulatively.
    pub ack_bytes: u64,
    /// For ACKs: sequence number being acknowledged (cumulative).
    pub ack_seq: SeqNo,
}

impl Default for PacketHeader {
    fn default() -> Self {
        Self {
            virtual_packet_len: 0.0,
            inter_packet_time: None,
            path_price: 0.0,
            path_len: 0,
            normalized_residual: 0.0,
            reflected_path_price: 0.0,
            reflected_path_len: 0,
            reflected_rcp_feedback: 0.0,
            rcp_feedback: 0.0,
            pfabric_priority: f64::MAX,
            ecn_capable: false,
            ecn_marked: false,
            ecn_echo: false,
            sent_time: SimTime::ZERO,
            ack_bytes: 0,
            ack_seq: 0,
        }
    }
}

/// A simulated packet.
#[derive(Debug, Clone)]
pub struct Packet {
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Byte offset of the first payload byte (data packets) or 0 (control).
    pub seq: SeqNo,
    /// Payload bytes carried (0 for SYN/ACK).
    pub payload_bytes: u32,
    /// Total wire size in bytes (payload + headers).
    pub wire_bytes: u32,
    /// Packet kind.
    pub kind: PacketKind,
    /// Transport header fields.
    pub header: PacketHeader,
    /// The route this packet follows, interned in the network's
    /// [`RouteTable`] at flow setup (copyable — forwarding never clones).
    pub route: RouteId,
    /// Index of the next link on `route` the packet has yet to traverse.
    pub hop: usize,
}

impl Packet {
    /// Create a data packet.
    pub fn data(flow: FlowId, seq: SeqNo, payload_bytes: u32, route: RouteId) -> Self {
        Self {
            flow,
            seq,
            payload_bytes,
            wire_bytes: payload_bytes + HEADER_BYTES,
            kind: PacketKind::Data,
            header: PacketHeader::default(),
            route,
            hop: 0,
        }
    }

    /// Create a pure ACK packet.
    pub fn ack(flow: FlowId, route: RouteId) -> Self {
        Self {
            flow,
            seq: 0,
            payload_bytes: 0,
            wire_bytes: HEADER_BYTES,
            kind: PacketKind::Ack,
            header: PacketHeader::default(),
            route,
            hop: 0,
        }
    }

    /// Create a SYN packet.
    pub fn syn(flow: FlowId, route: RouteId) -> Self {
        Self {
            flow,
            seq: 0,
            payload_bytes: 0,
            wire_bytes: HEADER_BYTES,
            kind: PacketKind::Syn,
            header: PacketHeader::default(),
            route,
            hop: 0,
        }
    }

    /// Whether this is a data packet (control packets have
    /// `virtualPacketLen = 0` and are ignored by the xWI residual tracking).
    pub fn is_data(&self) -> bool {
        self.kind == PacketKind::Data
    }

    /// The next link this packet must traverse, if it has not reached its
    /// destination yet.
    #[inline]
    pub fn next_link(&self, routes: &RouteTable) -> Option<crate::topology::LinkId> {
        routes.links(self.route).get(self.hop).copied()
    }

    /// Whether the packet has traversed its entire route.
    #[inline]
    pub fn at_destination(&self, routes: &RouteTable) -> bool {
        self.hop >= routes.links(self.route).len()
    }

    /// Advance to the next hop (called by the network when the packet finishes
    /// traversing a link).
    pub fn advance_hop(&mut self) {
        self.hop += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Route;

    fn route(links: Vec<usize>) -> (RouteTable, RouteId) {
        let mut table = RouteTable::new();
        let id = table.intern(Route::from_links(links));
        (table, id)
    }

    #[test]
    fn data_packet_sizes_include_header() {
        let (_table, rid) = route(vec![0, 1]);
        let p = Packet::data(3, 1460, DEFAULT_PAYLOAD_BYTES, rid);
        assert_eq!(p.wire_bytes, MTU_BYTES);
        assert_eq!(p.payload_bytes, 1460);
        assert!(p.is_data());
        assert_eq!(p.flow, 3);
    }

    #[test]
    fn control_packets_are_header_only() {
        let (_table, rid) = route(vec![0]);
        let a = Packet::ack(1, rid);
        let s = Packet::syn(1, rid);
        assert_eq!(a.wire_bytes, HEADER_BYTES);
        assert_eq!(s.wire_bytes, HEADER_BYTES);
        assert!(!a.is_data());
        assert!(!s.is_data());
        assert_eq!(a.header.virtual_packet_len, 0.0);
    }

    #[test]
    fn hop_advancement_walks_the_route() {
        let (table, rid) = route(vec![5, 7, 9]);
        let mut p = Packet::data(0, 0, 1000, rid);
        assert_eq!(p.next_link(&table), Some(5));
        assert!(!p.at_destination(&table));
        p.advance_hop();
        assert_eq!(p.next_link(&table), Some(7));
        p.advance_hop();
        assert_eq!(p.next_link(&table), Some(9));
        p.advance_hop();
        assert_eq!(p.next_link(&table), None);
        assert!(p.at_destination(&table));
    }

    #[test]
    fn header_defaults_are_neutral() {
        let h = PacketHeader::default();
        assert_eq!(h.path_price, 0.0);
        assert_eq!(h.path_len, 0);
        assert!(h.inter_packet_time.is_none());
        assert!(!h.ecn_marked);
        assert_eq!(h.pfabric_priority, f64::MAX);
    }
}

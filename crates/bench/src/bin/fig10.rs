//! Regenerate **Figure 10** — thin wrapper over
//! [`numfabric_bench::figures::fig10`] (also available as
//! `numfabric-run fig10`).

use numfabric_workloads::registry::ScenarioOptions;

fn main() {
    numfabric_bench::figures::fig10(&ScenarioOptions::from_env());
}

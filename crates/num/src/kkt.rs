//! KKT residuals for the NUM problem (Eq. 5–6 of the paper).
//!
//! A rate vector `x` and a price vector `p` solve the NUM problem
//! `max Σ U_i(x_i) s.t. Rx ≤ c` iff they are feasible (`Rx ≤ c`, `p ≥ 0`)
//! and the Karush-Kuhn-Tucker conditions hold:
//!
//! * **Stationarity** (Eq. 5): `U_i'(x_i) = Σ_{l ∈ path(i)} p_l` for every flow.
//! * **Complementary slackness** (Eq. 6): `p_l (Σ_{i ∋ l} x_i − c_l) = 0`
//!   for every link.
//!
//! This module computes normalized residuals of these conditions. It is the
//! ground truth used to validate the oracle solver, the fluid xWI fixed
//! point, and (statistically) the packet-level equilibrium allocations.

use crate::topology::FluidNetwork;

/// Normalized KKT residuals of a (rates, prices) pair for a NUM instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KktResiduals {
    /// Maximum relative stationarity violation over flows:
    /// `|U'_i(x_i) − pathPrice_i| / max(U'_i(x_i), pathPrice_i)`.
    pub stationarity: f64,
    /// Maximum relative capacity violation over links:
    /// `max(0, load_l − c_l) / c_l`.
    pub primal_feasibility: f64,
    /// Maximum normalized complementary-slackness violation over links:
    /// `p_l · (c_l − load_l) / (c_l · max_price)` (0 when all prices are 0).
    pub complementary_slackness: f64,
    /// Most negative price (0 if all prices are non-negative).
    pub dual_feasibility: f64,
}

impl KktResiduals {
    /// The largest of the four residuals.
    pub fn max(&self) -> f64 {
        self.stationarity
            .max(self.primal_feasibility)
            .max(self.complementary_slackness)
            .max(self.dual_feasibility)
    }

    /// Whether every residual is at most `tol`.
    pub fn within(&self, tol: f64) -> bool {
        self.max() <= tol
    }
}

/// Compute the KKT residuals of `(rates, prices)` for the NUM problem on `net`.
///
/// # Panics
/// Panics if the vector lengths do not match the network.
pub fn kkt_residuals(net: &FluidNetwork, rates: &[f64], prices: &[f64]) -> KktResiduals {
    assert_eq!(rates.len(), net.num_flows(), "one rate per flow");
    assert_eq!(prices.len(), net.num_links(), "one price per link");

    // Stationarity. The NUM problem has an implicit `x ≥ 0` constraint, so the
    // condition is `U'_i(x_i) = pathPrice_i` for flows with positive rate and
    // `U'_i(x_i) ≤ pathPrice_i` for flows pinned at (numerically) zero rate.
    let mut stationarity = 0.0_f64;
    for (i, flow) in net.flows().iter().enumerate() {
        let marginal = flow.utility.marginal(rates[i]);
        let path_price = net.path_price(prices, i);
        let scale = marginal.abs().max(path_price.abs()).max(1e-12);
        let violation = if rates[i] <= 10.0 * crate::MIN_RATE {
            (marginal - path_price).max(0.0) / scale
        } else {
            (marginal - path_price).abs() / scale
        };
        stationarity = stationarity.max(violation);
    }

    // Feasibility and complementary slackness.
    let loads = net.link_loads(rates);
    let caps = net.capacities();
    let max_price = prices.iter().cloned().fold(0.0_f64, f64::max).max(1e-12);
    let mut primal = 0.0_f64;
    let mut comp_slack = 0.0_f64;
    let mut dual = 0.0_f64;
    for l in 0..net.num_links() {
        primal = primal.max((loads[l] - caps[l]).max(0.0) / caps[l]);
        let slack = (caps[l] - loads[l]).max(0.0);
        comp_slack = comp_slack.max(prices[l].max(0.0) * slack / (caps[l] * max_price));
        dual = dual.max((-prices[l]).max(0.0));
    }

    KktResiduals {
        stationarity,
        primal_feasibility: primal,
        complementary_slackness: comp_slack,
        dual_feasibility: dual,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::FluidNetwork;
    use crate::utility::LogUtility;

    /// Two proportional-fair flows on one 10-capacity link: optimum is (5, 5)
    /// with price 1/5 = 0.2.
    fn simple_instance() -> FluidNetwork {
        let mut net = FluidNetwork::new();
        let l = net.add_link(10.0);
        net.add_simple_flow(vec![l], LogUtility::new());
        net.add_simple_flow(vec![l], LogUtility::new());
        net
    }

    #[test]
    fn optimal_point_has_tiny_residuals() {
        let net = simple_instance();
        let res = kkt_residuals(&net, &[5.0, 5.0], &[0.2]);
        assert!(res.within(1e-12), "{res:?}");
    }

    #[test]
    fn wrong_rates_show_stationarity_violation() {
        let net = simple_instance();
        let res = kkt_residuals(&net, &[8.0, 2.0], &[0.2]);
        assert!(res.stationarity > 0.1, "{res:?}");
    }

    #[test]
    fn oversubscription_shows_primal_violation() {
        let net = simple_instance();
        let res = kkt_residuals(&net, &[8.0, 8.0], &[1.0 / 16.0]);
        assert!(res.primal_feasibility > 0.5, "{res:?}");
    }

    #[test]
    fn positive_price_on_slack_link_shows_comp_slack_violation() {
        let net = simple_instance();
        // Rates only fill half the link but the price is positive.
        let res = kkt_residuals(&net, &[2.5, 2.5], &[0.4]);
        assert!(res.complementary_slackness > 0.1, "{res:?}");
    }

    #[test]
    fn negative_price_shows_dual_violation() {
        let net = simple_instance();
        let res = kkt_residuals(&net, &[5.0, 5.0], &[-0.2]);
        assert!(res.dual_feasibility > 0.1, "{res:?}");
    }

    #[test]
    fn parking_lot_proportional_fair_optimum() {
        // Two links of capacity 1; flow 0 uses both, flows 1 and 2 use one each.
        // Proportional fairness optimum: x0 = 1/3, x1 = x2 = 2/3, p_l = 1.5 each
        // (marginal of flow0 = 1/x0 = 3 = p1 + p2; flows 1,2: 1/x = 1.5 = p).
        let mut net = FluidNetwork::new();
        let l0 = net.add_link(1.0);
        let l1 = net.add_link(1.0);
        net.add_simple_flow(vec![l0, l1], LogUtility::new());
        net.add_simple_flow(vec![l0], LogUtility::new());
        net.add_simple_flow(vec![l1], LogUtility::new());
        let res = kkt_residuals(&net, &[1.0 / 3.0, 2.0 / 3.0, 2.0 / 3.0], &[1.5, 1.5]);
        assert!(res.within(1e-9), "{res:?}");
    }

    #[test]
    fn max_combines_all_components() {
        let r = KktResiduals {
            stationarity: 0.1,
            primal_feasibility: 0.3,
            complementary_slackness: 0.2,
            dual_feasibility: 0.05,
        };
        assert_eq!(r.max(), 0.3);
        assert!(!r.within(0.25));
        assert!(r.within(0.3));
    }
}

//! Network topology: nodes, links and routes.
//!
//! The paper's evaluation uses leaf-spine fabrics: 128 servers, 8 leaf
//! switches and 4 spine switches with 10 Gbps host links and 40 Gbps fabric
//! links (full bisection bandwidth) for most experiments, and a 16-spine /
//! 10 Gbps-everywhere variant for the resource-pooling experiment (§6.3).
//! [`Topology::leaf_spine`] builds both. Beyond the paper's fabrics, the
//! module provides [`Topology::fat_tree`] (k-ary fat-trees with edge /
//! aggregation / core tiers) and [`LeafSpineConfig::oversubscribed`]
//! (leaf-spine with a configurable host:fabric bandwidth ratio), so
//! workloads can be evaluated on heterogeneous bottleneck structures.
//!
//! Links are unidirectional; the builders create both directions of every
//! physical cable. Routes are precomputed per flow (the simulator does not
//! model hop-by-hop forwarding-table lookups), which matches how the paper
//! pins each flow or subflow to a path chosen by ECMP hashing. ECMP itself
//! is modeled by [`Topology::equal_cost_node_paths`]: every shortest path
//! between two hosts, enumerated in a deterministic order, with
//! [`Topology::host_route`] pinning a flow to one of them by choice index.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Identifier of a node (host or switch).
pub type NodeId = usize;
/// Identifier of a unidirectional link.
pub type LinkId = usize;

/// What role a node plays in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A server / end-host.
    Host,
    /// A top-of-rack (edge / leaf) switch.
    Leaf,
    /// A pod-level aggregation switch (fat-tree middle tier).
    Aggregation,
    /// A spine switch (leaf-spine top tier).
    Spine,
    /// A core switch (fat-tree top tier).
    Core,
}

impl NodeKind {
    /// The node's height in the fabric hierarchy: hosts are tier 0, each
    /// switch layer above adds one. Leaf-spine tops out at tier 2 (spines),
    /// fat-trees at tier 3 (cores). Valley-free (up-then-down) routing is
    /// defined in terms of this tier.
    pub fn tier(self) -> u8 {
        match self {
            NodeKind::Host => 0,
            NodeKind::Leaf => 1,
            NodeKind::Aggregation | NodeKind::Spine => 2,
            NodeKind::Core => 3,
        }
    }

    /// Whether the node is a switch (any non-host kind).
    pub fn is_switch(self) -> bool {
        self != NodeKind::Host
    }
}

/// Static description of a node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// The node's role.
    pub kind: NodeKind,
    /// Human-readable name (e.g. `host-17`, `leaf-2`, `spine-0`).
    pub name: String,
}

/// Static description of a unidirectional link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Capacity in bits per second.
    pub capacity_bps: f64,
    /// Propagation delay.
    pub delay: SimDuration,
}

/// Hops stored inline in a [`Route`] before it spills to the heap. Every
/// supported fabric (leaf-spine, oversubscribed leaf-spine, k-ary fat-tree)
/// produces host routes of at most `2·tiers + 1 ≤ 7` hops, so eight inline
/// slots cover them all with headroom; exotic topologies with longer paths
/// still work via the spill variant.
pub const ROUTE_INLINE_HOPS: usize = 8;

/// Internal hop storage of a [`Route`]: a fixed inline array for the
/// overwhelmingly common short path, a heap vector only when a path exceeds
/// [`ROUTE_INLINE_HOPS`]. The representation is canonical — `len <=
/// ROUTE_INLINE_HOPS` is always `Inline` — but equality and hashing go
/// through [`Route::links`] regardless, so only the hop sequence matters.
#[derive(Debug, Clone)]
enum Hops {
    Inline {
        len: u8,
        hops: [LinkId; ROUTE_INLINE_HOPS],
    },
    Spilled(Vec<LinkId>),
}

/// A precomputed route: the sequence of links a packet traverses.
///
/// Hops are stored inline (no heap allocation) for paths of up to
/// [`ROUTE_INLINE_HOPS`] links — every route on the supported fabrics — so
/// building, cloning and interning candidate routes during ECMP enumeration
/// and failure re-selection never allocates; longer paths transparently
/// spill to a heap vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Route {
    hops: Hops,
}

impl Route {
    /// The empty route (same-host communication).
    pub fn new() -> Self {
        Route {
            hops: Hops::Inline {
                len: 0,
                hops: [0; ROUTE_INLINE_HOPS],
            },
        }
    }

    /// A route over `links` in traversal order. Reuses the given vector as
    /// spill storage when the path is longer than [`ROUTE_INLINE_HOPS`].
    pub fn from_links(links: Vec<LinkId>) -> Self {
        if links.len() <= ROUTE_INLINE_HOPS {
            links.iter().copied().collect()
        } else {
            Route {
                hops: Hops::Spilled(links),
            }
        }
    }

    /// The links of the route, in traversal order.
    #[inline]
    pub fn links(&self) -> &[LinkId] {
        match &self.hops {
            Hops::Inline { len, hops } => &hops[..*len as usize],
            Hops::Spilled(v) => v,
        }
    }

    /// Append one link to the route, spilling to the heap if the inline
    /// capacity is exceeded.
    pub fn push(&mut self, link: LinkId) {
        match &mut self.hops {
            Hops::Inline { len, hops } => {
                if (*len as usize) < ROUTE_INLINE_HOPS {
                    hops[*len as usize] = link;
                    *len += 1;
                } else {
                    let mut v = hops.to_vec();
                    v.push(link);
                    self.hops = Hops::Spilled(v);
                }
            }
            Hops::Spilled(v) => v.push(link),
        }
    }

    /// Number of links on the route.
    pub fn len(&self) -> usize {
        match &self.hops {
            Hops::Inline { len, .. } => *len as usize,
            Hops::Spilled(v) => v.len(),
        }
    }

    /// Whether the route is empty (same-host communication).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for Route {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<LinkId> for Route {
    fn from_iter<I: IntoIterator<Item = LinkId>>(iter: I) -> Self {
        let mut route = Route::new();
        for link in iter {
            route.push(link);
        }
        route
    }
}

impl PartialEq for Route {
    fn eq(&self, other: &Self) -> bool {
        self.links() == other.links()
    }
}
impl Eq for Route {}

impl std::hash::Hash for Route {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.links().hash(state);
    }
}

/// A static network topology.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<LinkSpec>,
    /// Host nodes in creation order (convenience index).
    hosts: Vec<NodeId>,
    leaves: Vec<NodeId>,
    aggregations: Vec<NodeId>,
    spines: Vec<NodeId>,
    cores: Vec<NodeId>,
}

/// Parameters for [`Topology::leaf_spine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeafSpineConfig {
    /// Total number of servers (must be divisible by `leaves`).
    pub hosts: usize,
    /// Number of leaf (top-of-rack) switches.
    pub leaves: usize,
    /// Number of spine switches.
    pub spines: usize,
    /// Host ↔ leaf link speed in bits per second.
    pub host_link_bps: f64,
    /// Leaf ↔ spine link speed in bits per second.
    pub fabric_link_bps: f64,
    /// Per-link propagation delay.
    pub link_delay: SimDuration,
}

impl LeafSpineConfig {
    /// The paper's main topology: 128 servers, 8 leaves, 4 spines, 10 Gbps
    /// host links, 40 Gbps fabric links, ~16 µs base RTT.
    pub fn paper_default() -> Self {
        Self {
            hosts: 128,
            leaves: 8,
            spines: 4,
            host_link_bps: 10e9,
            fabric_link_bps: 40e9,
            link_delay: SimDuration::from_micros(2),
        }
    }

    /// The resource-pooling topology of §6.3: 128 servers, 8 leaves,
    /// 16 spines, all links 10 Gbps.
    pub fn resource_pooling() -> Self {
        Self {
            hosts: 128,
            leaves: 8,
            spines: 16,
            host_link_bps: 10e9,
            fabric_link_bps: 10e9,
            link_delay: SimDuration::from_micros(2),
        }
    }

    /// A scaled-down topology with the same shape, for fast tests and the
    /// default (non `--full`) benchmark runs.
    pub fn small(hosts: usize, leaves: usize, spines: usize) -> Self {
        Self {
            hosts,
            leaves,
            spines,
            host_link_bps: 10e9,
            fabric_link_bps: 40e9,
            link_delay: SimDuration::from_micros(2),
        }
    }

    /// An oversubscribed leaf-spine fabric: the aggregate uplink bandwidth of
    /// each leaf is `1/ratio` of its aggregate downlink (host-facing)
    /// bandwidth. `ratio = 1.0` reproduces full bisection; `ratio = 4.0` is
    /// the classic 4:1 oversubscription where 8 hosts × 10 Gbps behind a leaf
    /// share 20 Gbps of fabric capacity.
    ///
    /// # Panics
    /// Panics if `ratio < 1.0` or any count is zero / does not divide evenly.
    pub fn oversubscribed(hosts: usize, leaves: usize, spines: usize, ratio: f64) -> Self {
        assert!(
            ratio >= 1.0 && ratio.is_finite(),
            "oversubscription ratio must be >= 1"
        );
        assert!(hosts > 0 && leaves > 0 && spines > 0, "empty fabric");
        assert_eq!(hosts % leaves, 0, "hosts must divide evenly across leaves");
        let host_link_bps = 10e9;
        let per_leaf = (hosts / leaves) as f64;
        let fabric_link_bps = per_leaf * host_link_bps / (ratio * spines as f64);
        Self {
            hosts,
            leaves,
            spines,
            host_link_bps,
            fabric_link_bps,
            link_delay: SimDuration::from_micros(2),
        }
    }

    /// The leaf downlink : uplink bandwidth ratio this configuration yields
    /// (1.0 = full bisection, larger = oversubscribed).
    pub fn oversubscription_ratio(&self) -> f64 {
        let per_leaf = (self.hosts / self.leaves) as f64;
        per_leaf * self.host_link_bps / (self.spines as f64 * self.fabric_link_bps)
    }
}

/// Parameters for [`Topology::fat_tree`]: a canonical k-ary fat-tree
/// (Al-Fares et al.). `k` pods each hold `k/2` edge and `k/2` aggregation
/// switches; `(k/2)²` core switches connect the pods; every edge switch
/// serves `k/2` hosts, for `k³/4` hosts total (k=4 → 16 hosts, k=8 → 128).
/// All links share one speed, so the fabric has full bisection bandwidth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FatTreeConfig {
    /// The arity `k` (must be even and ≥ 2).
    pub k: usize,
    /// Speed of every link in bits per second.
    pub link_bps: f64,
    /// Per-link propagation delay.
    pub link_delay: SimDuration,
}

impl FatTreeConfig {
    /// A k-ary fat-tree with 10 Gbps links and 2 µs per-link delay (the
    /// paper's link parameters on the fat-tree shape).
    pub fn new(k: usize) -> Self {
        Self {
            k,
            link_bps: 10e9,
            link_delay: SimDuration::from_micros(2),
        }
    }

    /// Number of hosts this configuration yields (`k³/4`).
    pub fn num_hosts(&self) -> usize {
        self.k * self.k * self.k / 4
    }
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node of the given kind; returns its id.
    pub fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            kind,
            name: name.into(),
        });
        match kind {
            NodeKind::Host => self.hosts.push(id),
            NodeKind::Leaf => self.leaves.push(id),
            NodeKind::Aggregation => self.aggregations.push(id),
            NodeKind::Spine => self.spines.push(id),
            NodeKind::Core => self.cores.push(id),
        }
        id
    }

    /// Add a unidirectional link; returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist, the endpoints are equal, or
    /// the capacity is not strictly positive.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        capacity_bps: f64,
        delay: SimDuration,
    ) -> LinkId {
        assert!(from < self.nodes.len(), "unknown node {from}");
        assert!(to < self.nodes.len(), "unknown node {to}");
        assert_ne!(from, to, "self-links are not allowed");
        assert!(
            capacity_bps.is_finite() && capacity_bps > 0.0,
            "capacity must be positive"
        );
        self.links.push(LinkSpec {
            from,
            to,
            capacity_bps,
            delay,
        });
        self.links.len() - 1
    }

    /// Add both directions of a physical cable; returns `(forward, reverse)`.
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity_bps: f64,
        delay: SimDuration,
    ) -> (LinkId, LinkId) {
        (
            self.add_link(a, b, capacity_bps, delay),
            self.add_link(b, a, capacity_bps, delay),
        )
    }

    /// The nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Host node ids in creation order.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Leaf switch node ids.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Aggregation switch node ids (fat-tree topologies).
    pub fn aggregations(&self) -> &[NodeId] {
        &self.aggregations
    }

    /// Spine switch node ids.
    pub fn spines(&self) -> &[NodeId] {
        &self.spines
    }

    /// Core switch node ids (fat-tree topologies).
    pub fn cores(&self) -> &[NodeId] {
        &self.cores
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Find the link from `from` to `to`, if one exists.
    pub fn link_between(&self, from: NodeId, to: NodeId) -> Option<LinkId> {
        self.links.iter().position(|l| l.from == from && l.to == to)
    }

    /// Build a route as the concatenation of links along the node sequence
    /// `path` (panics if some consecutive pair has no link).
    pub fn route_via(&self, path: &[NodeId]) -> Route {
        path.windows(2)
            .map(|w| {
                self.link_between(w[0], w[1])
                    .unwrap_or_else(|| panic!("no link between {} and {}", w[0], w[1]))
            })
            .collect()
    }

    /// Build a leaf-spine fabric.
    ///
    /// # Panics
    /// Panics if `hosts` is not divisible by `leaves` or any count is zero.
    pub fn leaf_spine(cfg: &LeafSpineConfig) -> Self {
        assert!(
            cfg.hosts > 0 && cfg.leaves > 0 && cfg.spines > 0,
            "empty fabric"
        );
        assert_eq!(
            cfg.hosts % cfg.leaves,
            0,
            "hosts must divide evenly across leaves"
        );
        let mut topo = Topology::new();
        let hosts: Vec<NodeId> = (0..cfg.hosts)
            .map(|i| topo.add_node(NodeKind::Host, format!("host-{i}")))
            .collect();
        let leaves: Vec<NodeId> = (0..cfg.leaves)
            .map(|i| topo.add_node(NodeKind::Leaf, format!("leaf-{i}")))
            .collect();
        let spines: Vec<NodeId> = (0..cfg.spines)
            .map(|i| topo.add_node(NodeKind::Spine, format!("spine-{i}")))
            .collect();
        let per_leaf = cfg.hosts / cfg.leaves;
        for (i, &h) in hosts.iter().enumerate() {
            let leaf = leaves[i / per_leaf];
            topo.add_duplex_link(h, leaf, cfg.host_link_bps, cfg.link_delay);
        }
        for &leaf in &leaves {
            for &spine in &spines {
                topo.add_duplex_link(leaf, spine, cfg.fabric_link_bps, cfg.link_delay);
            }
        }
        topo
    }

    /// Build a canonical k-ary fat-tree (see [`FatTreeConfig`]).
    ///
    /// Hosts are created first (so `hosts()[i]` is host `i` globally), then
    /// the edge switches of every pod (as [`NodeKind::Leaf`]), the
    /// aggregation switches, and finally the cores. Host `h` lives in pod
    /// `h / (k²/4)` under edge switch `(h % (k²/4)) / (k/2)`; aggregation
    /// switch `a` of each pod uplinks to cores `a·k/2 .. (a+1)·k/2`.
    ///
    /// # Panics
    /// Panics if `k` is odd or smaller than 2.
    pub fn fat_tree(cfg: &FatTreeConfig) -> Self {
        let k = cfg.k;
        assert!(
            k >= 2 && k.is_multiple_of(2),
            "fat-tree arity must be even and >= 2"
        );
        let half = k / 2;
        let mut topo = Topology::new();
        let hosts: Vec<NodeId> = (0..cfg.num_hosts())
            .map(|i| topo.add_node(NodeKind::Host, format!("host-{i}")))
            .collect();
        let edges: Vec<Vec<NodeId>> = (0..k)
            .map(|p| {
                (0..half)
                    .map(|e| topo.add_node(NodeKind::Leaf, format!("edge-{p}-{e}")))
                    .collect()
            })
            .collect();
        let aggs: Vec<Vec<NodeId>> = (0..k)
            .map(|p| {
                (0..half)
                    .map(|a| topo.add_node(NodeKind::Aggregation, format!("agg-{p}-{a}")))
                    .collect()
            })
            .collect();
        let cores: Vec<NodeId> = (0..half * half)
            .map(|c| topo.add_node(NodeKind::Core, format!("core-{c}")))
            .collect();

        let hosts_per_pod = half * half;
        for (h, &host) in hosts.iter().enumerate() {
            let pod = h / hosts_per_pod;
            let edge = (h % hosts_per_pod) / half;
            topo.add_duplex_link(host, edges[pod][edge], cfg.link_bps, cfg.link_delay);
        }
        for p in 0..k {
            for &edge in &edges[p] {
                for &agg in &aggs[p] {
                    topo.add_duplex_link(edge, agg, cfg.link_bps, cfg.link_delay);
                }
            }
            for (a, &agg) in aggs[p].iter().enumerate() {
                for &core in &cores[a * half..(a + 1) * half] {
                    topo.add_duplex_link(agg, core, cfg.link_bps, cfg.link_delay);
                }
            }
        }
        topo
    }

    /// The leaf switch a host is attached to (leaf-spine topologies only).
    pub fn leaf_of(&self, host: NodeId) -> Option<NodeId> {
        assert_eq!(
            self.nodes[host].kind,
            NodeKind::Host,
            "{host} is not a host"
        );
        self.links
            .iter()
            .find(|l| l.from == host)
            .map(|l| l.to)
            .filter(|&n| self.nodes[n].kind == NodeKind::Leaf)
    }

    /// All equal-cost (shortest) paths from `src` to `dst`, as node
    /// sequences, in a deterministic order: paths are enumerated
    /// depth-first with next hops visited in ascending node-id order, so the
    /// result is lexicographically sorted. On a leaf-spine fabric this yields
    /// one path per spine (in spine order) for inter-rack pairs; on a
    /// fat-tree, `(k/2)²` paths for inter-pod pairs and `k/2` for
    /// intra-pod/inter-edge pairs. In the hierarchical fabrics built by
    /// [`Topology::leaf_spine`] and [`Topology::fat_tree`] every shortest
    /// path is automatically valley-free (tiers rise monotonically to a
    /// single peak, then fall).
    ///
    /// # Panics
    /// Panics if `src == dst` or no path exists.
    pub fn equal_cost_node_paths(&self, src: NodeId, dst: NodeId) -> Vec<Vec<NodeId>> {
        assert_ne!(src, dst, "a path needs distinct endpoints");
        let n = self.nodes.len();
        let mut out_adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut in_adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for l in &self.links {
            out_adj[l.from].push(l.to);
            in_adj[l.to].push(l.from);
        }
        for a in &mut out_adj {
            a.sort_unstable();
            a.dedup();
        }

        let bfs = |start: NodeId, adj: &[Vec<NodeId>]| -> Vec<u32> {
            let mut dist = vec![u32::MAX; n];
            dist[start] = 0;
            let mut frontier = std::collections::VecDeque::from([start]);
            while let Some(u) = frontier.pop_front() {
                for &v in &adj[u] {
                    if dist[v] == u32::MAX {
                        dist[v] = dist[u] + 1;
                        frontier.push_back(v);
                    }
                }
            }
            dist
        };
        let dist_from_src = bfs(src, &out_adj);
        let dist_to_dst = bfs(dst, &in_adj);
        let total = dist_from_src[dst];
        assert_ne!(total, u32::MAX, "no path from {src} to {dst}");

        // Depth-first enumeration over the shortest-path DAG: from `u`, a hop
        // to `v` stays on some shortest path iff it advances the distance
        // from the source and the remaining distance to the destination
        // matches exactly. Iterative DFS with per-level neighbor cursors;
        // neighbors are visited in ascending node-id order, so the paths come
        // out lexicographically sorted.
        let on_dag = |u: NodeId, v: NodeId| {
            dist_from_src[v] == dist_from_src[u] + 1
                && dist_to_dst[v] != u32::MAX
                && dist_from_src[v] + dist_to_dst[v] == total
        };
        let mut paths = Vec::new();
        let mut path = vec![src];
        let mut cursors = vec![0usize];
        while let Some(&u) = path.last() {
            if u == dst {
                paths.push(path.clone());
                path.pop();
                cursors.pop();
                continue;
            }
            let cursor = cursors.last_mut().expect("one cursor per path node");
            match out_adj[u][*cursor..].iter().position(|&v| on_dag(u, v)) {
                Some(offset) => {
                    let v = out_adj[u][*cursor + offset];
                    *cursor += offset + 1;
                    path.push(v);
                    cursors.push(0);
                }
                None => {
                    path.pop();
                    cursors.pop();
                }
            }
        }
        paths
    }

    /// The route from `src` host to `dst` host pinned to equal-cost path
    /// number `choice % num_paths` (ECMP hash stand-in). On a leaf-spine
    /// fabric this is exactly the legacy behavior: inter-rack flows pick
    /// spine `choice % spines`, intra-rack flows route through the shared
    /// leaf regardless of `choice`.
    ///
    /// # Panics
    /// Panics if `src` or `dst` is not a host, or `src == dst`.
    pub fn host_route(&self, src: NodeId, dst: NodeId, choice: usize) -> Route {
        let paths = self.host_node_paths(src, dst);
        self.route_via(&paths[choice % paths.len()])
    }

    /// All distinct equal-cost routes from `src` to `dst` (one per spine for
    /// inter-rack leaf-spine pairs, `(k/2)²` for inter-pod fat-tree pairs, a
    /// single route for same-switch pairs). Subflows of a multipath flow are
    /// spread across these.
    pub fn host_routes(&self, src: NodeId, dst: NodeId) -> Vec<Route> {
        self.host_node_paths(src, dst)
            .iter()
            .map(|p| self.route_via(p))
            .collect()
    }

    /// Equal-cost node paths between two *hosts* (panics on non-host
    /// endpoints, preserving the original `host_route` contract).
    fn host_node_paths(&self, src: NodeId, dst: NodeId) -> Vec<Vec<NodeId>> {
        assert_eq!(self.nodes[src].kind, NodeKind::Host, "{src} is not a host");
        assert_eq!(self.nodes[dst].kind, NodeKind::Host, "{dst} is not a host");
        self.equal_cost_node_paths(src, dst)
    }

    /// All shortest **valley-free** paths from `src` to `dst` over the links
    /// that survive `down`, as node sequences in the same deterministic
    /// (lexicographic) order as [`Topology::equal_cost_node_paths`].
    ///
    /// This is the route re-selection primitive of the impairment layer: a
    /// directed link is unusable if it is in `down` *or its reverse twin is*
    /// (a flow cannot use a path its ACKs cannot retrace), and paths must
    /// ascend the tier hierarchy monotonically to a single peak and then
    /// descend (up/down routing — no valleys, no flat hops). On a healthy
    /// hierarchical fabric every shortest path is valley-free, so an empty
    /// `down` set reproduces `equal_cost_node_paths` exactly.
    ///
    /// Returns an empty list when the failure set disconnects the pair (in
    /// the valley-free sense).
    ///
    /// # Panics
    /// Panics if `src == dst`.
    pub fn surviving_node_paths(
        &self,
        src: NodeId,
        dst: NodeId,
        down: &std::collections::HashSet<LinkId>,
    ) -> Vec<Vec<NodeId>> {
        self.surviving_node_paths_directed(src, dst, &self.twin_expanded(down))
    }

    /// Expand `down` with each member's reverse twin — the conservative ban
    /// set for symmetric failures. Asymmetric ([`crate::impairment::
    /// LinkChange::DownFwd`]) failures skip this expansion and ban only the
    /// dead direction.
    fn twin_expanded(
        &self,
        down: &std::collections::HashSet<LinkId>,
    ) -> std::collections::HashSet<LinkId> {
        let mut banned = down.clone();
        for &id in down {
            let spec = &self.links[id];
            if let Some(twin) = self.link_between(spec.to, spec.from) {
                banned.insert(twin);
            }
        }
        banned
    }

    /// [`Topology::surviving_node_paths`] with the ban set taken **literally**:
    /// a directed link is unusable exactly when it is in `banned`, with no
    /// reverse-twin expansion. This is the asymmetric-failure primitive —
    /// the caller decides per failed link whether its twin is banned too.
    pub fn surviving_node_paths_directed(
        &self,
        src: NodeId,
        dst: NodeId,
        banned: &std::collections::HashSet<LinkId>,
    ) -> Vec<Vec<NodeId>> {
        assert_ne!(src, dst, "a path needs distinct endpoints");
        let n = self.nodes.len();
        let usable = |id: LinkId| !banned.contains(&id);
        // Valley-free search state: (node, phase) with phase 0 = still
        // ascending tiers, phase 1 = descending. A hop either rises (staying
        // in phase 0), or falls (entering / staying in phase 1); flat hops
        // are not valley-free and the hierarchical builders create none.
        let state = |node: NodeId, phase: usize| node * 2 + phase;
        let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); 2 * n];
        for (id, l) in self.links.iter().enumerate() {
            if !usable(id) {
                continue;
            }
            let (tf, tt) = (self.nodes[l.from].kind.tier(), self.nodes[l.to].kind.tier());
            if tt > tf {
                fwd[state(l.from, 0)].push(state(l.to, 0));
            } else if tt < tf {
                fwd[state(l.from, 0)].push(state(l.to, 1));
                fwd[state(l.from, 1)].push(state(l.to, 1));
            }
        }
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); 2 * n];
        for (s, outs) in fwd.iter().enumerate() {
            for &t in outs {
                rev[t].push(s);
            }
        }
        for adj in fwd.iter_mut().chain(rev.iter_mut()) {
            adj.sort_unstable();
            adj.dedup();
        }

        let bfs = |start: usize, adj: &[Vec<usize>]| -> Vec<u32> {
            let mut dist = vec![u32::MAX; 2 * n];
            dist[start] = 0;
            let mut frontier = std::collections::VecDeque::from([start]);
            while let Some(u) = frontier.pop_front() {
                for &v in &adj[u] {
                    if dist[v] == u32::MAX {
                        dist[v] = dist[u] + 1;
                        frontier.push_back(v);
                    }
                }
            }
            dist
        };
        // `dst` is only reachable in the descending phase (its final hop
        // falls onto it; hosts have the lowest tier).
        let (start, goal) = (state(src, 0), state(dst, 1));
        let dist_from_src = bfs(start, &fwd);
        let dist_to_dst = bfs(goal, &rev);
        let total = dist_from_src[goal];
        if total == u32::MAX {
            return Vec::new();
        }

        // Same iterative DFS as `equal_cost_node_paths`, over the state
        // graph; the phase is a function of the node/tier sequence, so
        // distinct state paths are distinct node paths.
        let on_dag = |u: usize, v: usize| {
            dist_from_src[v] == dist_from_src[u] + 1
                && dist_to_dst[v] != u32::MAX
                && dist_from_src[v] + dist_to_dst[v] == total
        };
        let mut paths = Vec::new();
        let mut path = vec![start];
        let mut cursors = vec![0usize];
        while let Some(&u) = path.last() {
            if u == goal {
                paths.push(path.iter().map(|&s| s / 2).collect());
                path.pop();
                cursors.pop();
                continue;
            }
            let cursor = cursors.last_mut().expect("one cursor per path node");
            match fwd[u][*cursor..].iter().position(|&v| on_dag(u, v)) {
                Some(offset) => {
                    let v = fwd[u][*cursor + offset];
                    *cursor += offset + 1;
                    path.push(v);
                    cursors.push(0);
                }
                None => {
                    path.pop();
                    cursors.pop();
                }
            }
        }
        paths
    }

    /// All surviving equal-cost routes between two hosts after the links in
    /// `down` failed (see [`Topology::surviving_node_paths`]); empty when
    /// the pair is disconnected.
    ///
    /// # Panics
    /// Panics if `src` or `dst` is not a host, or `src == dst`.
    pub fn host_routes_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        down: &std::collections::HashSet<LinkId>,
    ) -> Vec<Route> {
        self.host_routes_avoiding_directed(src, dst, &self.twin_expanded(down))
    }

    /// [`Topology::host_routes_avoiding`] with the ban set taken literally
    /// (no reverse-twin expansion) — see
    /// [`Topology::surviving_node_paths_directed`].
    pub fn host_routes_avoiding_directed(
        &self,
        src: NodeId,
        dst: NodeId,
        banned: &std::collections::HashSet<LinkId>,
    ) -> Vec<Route> {
        assert_eq!(self.nodes[src].kind, NodeKind::Host, "{src} is not a host");
        assert_eq!(self.nodes[dst].kind, NodeKind::Host, "{dst} is not a host");
        self.surviving_node_paths_directed(src, dst, banned)
            .iter()
            .map(|p| self.route_via(p))
            .collect()
    }

    /// The surviving route pinned to ECMP choice `choice % num_surviving`,
    /// or `None` when the failures disconnect the pair. With an empty `down`
    /// set this is exactly [`Topology::host_route`].
    pub fn host_route_avoiding(
        &self,
        src: NodeId,
        dst: NodeId,
        choice: usize,
        down: &std::collections::HashSet<LinkId>,
    ) -> Option<Route> {
        self.host_route_avoiding_directed(src, dst, choice, &self.twin_expanded(down))
    }

    /// [`Topology::host_route_avoiding`] with the ban set taken literally
    /// (no reverse-twin expansion) — the asymmetric-failure route
    /// re-selection used for [`crate::impairment::LinkChange::DownFwd`].
    pub fn host_route_avoiding_directed(
        &self,
        src: NodeId,
        dst: NodeId,
        choice: usize,
        banned: &std::collections::HashSet<LinkId>,
    ) -> Option<Route> {
        let routes = self.host_routes_avoiding_directed(src, dst, banned);
        if routes.is_empty() {
            return None;
        }
        let pick = choice % routes.len();
        Some(routes.into_iter().nth(pick).expect("index is in range"))
    }

    /// The reverse of `route` (the path ACKs take), assuming every link has a
    /// reverse twin.
    pub fn reverse_route(&self, route: &Route) -> Route {
        route
            .links()
            .iter()
            .rev()
            .map(|&l| {
                let spec = &self.links[l];
                self.link_between(spec.to, spec.from)
                    .expect("every link must have a reverse twin for ACK routing")
            })
            .collect()
    }

    /// Base (zero-queue) round-trip time along `route` and back for a packet
    /// of `data_bytes` and an ACK of `ack_bytes`: propagation both ways plus
    /// serialization at every hop.
    pub fn base_rtt(&self, route: &Route, data_bytes: u64, ack_bytes: u64) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for &l in route.links() {
            let spec = &self.links[l];
            total += spec.delay + SimDuration::transmission(data_bytes, spec.capacity_bps);
        }
        let reverse = self.reverse_route(route);
        for &l in reverse.links() {
            let spec = &self.links[l];
            total += spec.delay + SimDuration::transmission(ack_bytes, spec.capacity_bps);
        }
        total
    }

    /// Deterministically assign every node to one of `partitions` spatial
    /// domains — the graph partitioner behind the partitioned `Network`.
    ///
    /// The assignment is a pure function of the topology and the partition
    /// count (no randomness, no iteration-order dependence):
    ///
    /// 1. Hosts are chunked contiguously by host index — host `h` of `H`
    ///    goes to partition `h·n / H` — so a rack's hosts stay together.
    /// 2. Switches are processed in ascending tier order and join the
    ///    partition of their lowest-id neighbor in a strictly lower tier
    ///    (a leaf follows its hosts, an aggregation its first leaf, a
    ///    core its first aggregation).
    /// 3. A switch with no lower-tier neighbor (degenerate topologies)
    ///    falls back to `node_id % n`.
    ///
    /// Every node is covered exactly once; partitions may be empty when
    /// `partitions` exceeds the host count.
    ///
    /// # Panics
    /// Panics if `partitions` is zero.
    pub fn partition(&self, partitions: usize) -> Partitioning {
        assert!(partitions >= 1, "partition count must be at least 1");
        let mut assignment = vec![usize::MAX; self.nodes.len()];
        let num_hosts = self.hosts.len().max(1);
        for (i, &h) in self.hosts.iter().enumerate() {
            assignment[h] = i * partitions / num_hosts;
        }
        let mut switches: Vec<NodeId> = (0..self.nodes.len())
            .filter(|&n| self.nodes[n].kind.is_switch())
            .collect();
        switches.sort_by_key(|&n| (self.nodes[n].kind.tier(), n));
        for node in switches {
            let tier = self.nodes[node].kind.tier();
            let anchor = self
                .links
                .iter()
                .filter(|spec| spec.from == node && self.nodes[spec.to].kind.tier() < tier)
                .map(|spec| spec.to)
                .min();
            assignment[node] = match anchor {
                // Lower tiers are assigned before higher ones, so the
                // anchor's slot is always filled by now.
                Some(n) => assignment[n],
                None => node % partitions,
            };
        }
        debug_assert!(assignment.iter().all(|&p| p < partitions));
        Partitioning {
            assignment,
            partitions,
        }
    }
}

/// A deterministic assignment of every topology node to one of a fixed
/// number of spatial partitions, produced by [`Topology::partition`]. The
/// partitioned `Network` derives everything else from it: link ownership
/// (a link belongs to its tail node's partition), the boundary-link set
/// (links whose endpoints differ), and the conservative lookahead window
/// (the minimum propagation delay over boundary links).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    assignment: Vec<usize>,
    partitions: usize,
}

impl Partitioning {
    /// Number of partitions (some may own no nodes).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// The partition that owns `node`.
    pub fn of(&self, node: NodeId) -> usize {
        self.assignment[node]
    }

    /// The full node → partition assignment, indexed by node id.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_leaf_spine_dimensions() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::paper_default());
        assert_eq!(topo.hosts().len(), 128);
        assert_eq!(topo.leaves().len(), 8);
        assert_eq!(topo.spines().len(), 4);
        // 128 duplex host links + 8*4 duplex fabric links = 2*(128+32) links.
        assert_eq!(topo.num_links(), 2 * (128 + 32));
        // Full bisection: each leaf has 16 * 10G down and 4 * 40G up.
        let leaf0 = topo.leaves()[0];
        let uplinks: f64 = topo
            .links()
            .iter()
            .filter(|l| l.from == leaf0 && topo.nodes()[l.to].kind == NodeKind::Spine)
            .map(|l| l.capacity_bps)
            .sum();
        assert_eq!(uplinks, 160e9);
    }

    #[test]
    fn intra_rack_route_has_two_hops() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let hosts = topo.hosts();
        // hosts 0..3 share leaf 0.
        let r = topo.host_route(hosts[0], hosts[1], 0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn inter_rack_route_has_four_hops_and_uses_chosen_spine() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let hosts = topo.hosts();
        let r0 = topo.host_route(hosts[0], hosts[7], 0);
        let r1 = topo.host_route(hosts[0], hosts[7], 1);
        assert_eq!(r0.len(), 4);
        assert_eq!(r1.len(), 4);
        assert_ne!(r0, r1, "different spine choices must give different routes");
        assert_eq!(topo.host_routes(hosts[0], hosts[7]).len(), 2);
        assert_eq!(topo.host_routes(hosts[0], hosts[1]).len(), 1);
    }

    #[test]
    fn reverse_route_retraces_the_path() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let hosts = topo.hosts();
        let fwd = topo.host_route(hosts[0], hosts[7], 1);
        let rev = topo.reverse_route(&fwd);
        assert_eq!(rev.len(), fwd.len());
        // The reverse of the reverse is the original.
        assert_eq!(topo.reverse_route(&rev), fwd);
        // First reverse link starts where the forward route ended.
        let last_fwd = &topo.links()[*fwd.links().last().unwrap()];
        let first_rev = &topo.links()[rev.links()[0]];
        assert_eq!(first_rev.from, last_fwd.to);
    }

    #[test]
    fn base_rtt_matches_paper_scale() {
        // Paper: "The network RTT is 16 µs." With 2 µs/link propagation and 8
        // link traversals per round trip, propagation alone is 16 µs; header
        // serialization adds a little.
        let topo = Topology::leaf_spine(&LeafSpineConfig::paper_default());
        let hosts = topo.hosts();
        let route = topo.host_route(hosts[0], hosts[127], 0);
        let rtt = topo.base_rtt(&route, 40, 40);
        assert!(rtt >= SimDuration::from_micros(16), "rtt = {rtt}");
        assert!(rtt < SimDuration::from_micros(18), "rtt = {rtt}");
    }

    #[test]
    fn route_via_and_link_between_agree() {
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Host, "a");
        let s = topo.add_node(NodeKind::Leaf, "s");
        let b = topo.add_node(NodeKind::Host, "b");
        topo.add_duplex_link(a, s, 10e9, SimDuration::from_micros(1));
        topo.add_duplex_link(s, b, 10e9, SimDuration::from_micros(1));
        let r = topo.route_via(&[a, s, b]);
        assert_eq!(r.len(), 2);
        assert_eq!(topo.links()[r.links()[0]].from, a);
        assert_eq!(topo.links()[r.links()[1]].to, b);
        assert_eq!(topo.leaf_of(a), Some(s));
    }

    #[test]
    #[should_panic]
    fn self_link_rejected() {
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Host, "a");
        topo.add_link(a, a, 1e9, SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn uneven_hosts_per_leaf_rejected() {
        Topology::leaf_spine(&LeafSpineConfig::small(7, 2, 2));
    }

    #[test]
    fn fat_tree_k4_has_canonical_shape() {
        let topo = Topology::fat_tree(&FatTreeConfig::new(4));
        assert_eq!(topo.hosts().len(), 16);
        assert_eq!(topo.leaves().len(), 8); // edge switches
        assert_eq!(topo.aggregations().len(), 8);
        assert_eq!(topo.cores().len(), 4);
        // Cables: 16 host-edge + 4 pods * 4 edge-agg + 4 pods * 4 agg-core.
        assert_eq!(topo.num_links(), 2 * (16 + 16 + 16));
        // Every node's kind maps to the expected tier.
        assert_eq!(NodeKind::Host.tier(), 0);
        assert_eq!(NodeKind::Leaf.tier(), 1);
        assert_eq!(NodeKind::Aggregation.tier(), 2);
        assert_eq!(NodeKind::Core.tier(), 3);
        assert!(NodeKind::Core.is_switch() && !NodeKind::Host.is_switch());
    }

    #[test]
    fn fat_tree_k8_has_128_hosts() {
        let cfg = FatTreeConfig::new(8);
        assert_eq!(cfg.num_hosts(), 128);
        let topo = Topology::fat_tree(&cfg);
        assert_eq!(topo.hosts().len(), 128);
        assert_eq!(topo.leaves().len(), 32);
        assert_eq!(topo.aggregations().len(), 32);
        assert_eq!(topo.cores().len(), 16);
    }

    #[test]
    #[should_panic]
    fn fat_tree_rejects_odd_arity() {
        Topology::fat_tree(&FatTreeConfig::new(3));
    }

    #[test]
    fn fat_tree_ecmp_path_counts() {
        let topo = Topology::fat_tree(&FatTreeConfig::new(4));
        let hosts = topo.hosts();
        // Hosts 0 and 1 share an edge switch: one 2-hop path.
        assert_eq!(topo.host_routes(hosts[0], hosts[1]).len(), 1);
        assert_eq!(topo.host_route(hosts[0], hosts[1], 5).len(), 2);
        // Hosts 0 and 2 share a pod but not an edge: k/2 = 2 four-hop paths.
        let intra_pod = topo.host_routes(hosts[0], hosts[2]);
        assert_eq!(intra_pod.len(), 2);
        assert!(intra_pod.iter().all(|r| r.len() == 4));
        // Hosts 0 and 15 are in different pods: (k/2)² = 4 six-hop paths.
        let inter_pod = topo.host_routes(hosts[0], hosts[15]);
        assert_eq!(inter_pod.len(), 4);
        assert!(inter_pod.iter().all(|r| r.len() == 6));
        // All inter-pod paths are distinct and choice wraps modulo.
        for i in 0..inter_pod.len() {
            for j in i + 1..inter_pod.len() {
                assert_ne!(inter_pod[i], inter_pod[j]);
            }
            assert_eq!(topo.host_route(hosts[0], hosts[15], i), inter_pod[i]);
            assert_eq!(topo.host_route(hosts[0], hosts[15], i + 4), inter_pod[i]);
        }
    }

    #[test]
    fn leaf_spine_routes_match_legacy_construction() {
        // The generalized ECMP enumerator must reproduce the original
        // leaf-spine routes exactly (same links, same spine order), because
        // seeded scenarios pin flows by `spine_choice`.
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(16, 4, 3));
        let hosts = topo.hosts().to_vec();
        for &src in &hosts {
            for &dst in &hosts {
                if src == dst {
                    continue;
                }
                let src_leaf = topo.leaf_of(src).unwrap();
                let dst_leaf = topo.leaf_of(dst).unwrap();
                for choice in 0..6 {
                    let got = topo.host_route(src, dst, choice);
                    let want = if src_leaf == dst_leaf {
                        topo.route_via(&[src, src_leaf, dst])
                    } else {
                        let spine = topo.spines()[choice % topo.spines().len()];
                        topo.route_via(&[src, src_leaf, spine, dst_leaf, dst])
                    };
                    assert_eq!(got, want, "src={src} dst={dst} choice={choice}");
                }
            }
        }
    }

    #[test]
    fn oversubscribed_leaf_spine_scales_fabric_links_down() {
        let cfg = LeafSpineConfig::oversubscribed(32, 4, 2, 4.0);
        // 8 hosts/leaf * 10G down, 20G up => 10G per spine link.
        assert_eq!(cfg.fabric_link_bps, 10e9);
        assert!((cfg.oversubscription_ratio() - 4.0).abs() < 1e-9);
        let full = LeafSpineConfig::oversubscribed(32, 4, 2, 1.0);
        assert_eq!(full.fabric_link_bps, 40e9);
        assert!((LeafSpineConfig::paper_default().oversubscription_ratio() - 1.0).abs() < 1e-9);
        let topo = Topology::leaf_spine(&cfg);
        let leaf0 = topo.leaves()[0];
        let up: f64 = topo
            .links()
            .iter()
            .filter(|l| l.from == leaf0 && topo.nodes()[l.to].kind == NodeKind::Spine)
            .map(|l| l.capacity_bps)
            .sum();
        assert_eq!(up, 20e9);
    }

    #[test]
    #[should_panic]
    fn oversubscription_below_one_rejected() {
        LeafSpineConfig::oversubscribed(32, 4, 2, 0.5);
    }

    #[test]
    fn resource_pooling_topology_shape() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::resource_pooling());
        assert_eq!(topo.spines().len(), 16);
        let leaf0 = topo.leaves()[0];
        let up: Vec<_> = topo
            .links()
            .iter()
            .filter(|l| l.from == leaf0 && topo.nodes()[l.to].kind == NodeKind::Spine)
            .collect();
        assert_eq!(up.len(), 16);
        assert!(up.iter().all(|l| l.capacity_bps == 10e9));
    }

    #[test]
    fn partitioner_covers_every_node_exactly_once() {
        for topo in [
            Topology::leaf_spine(&LeafSpineConfig::small(32, 4, 2)),
            Topology::fat_tree(&FatTreeConfig::new(4)),
        ] {
            for n in [1, 2, 3, 4, 7] {
                let parts = topo.partition(n);
                assert_eq!(parts.partitions(), n);
                assert_eq!(parts.assignment().len(), topo.nodes().len());
                assert!(parts.assignment().iter().all(|&p| p < n));
                // Deterministic: same topology, same count, same assignment.
                assert_eq!(parts, topo.partition(n));
            }
        }
    }

    #[test]
    fn single_partition_owns_everything_and_hosts_chunk_contiguously() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(32, 4, 2));
        let one = topo.partition(1);
        assert!(one.assignment().iter().all(|&p| p == 0));
        let two = topo.partition(2);
        // Host chunks are contiguous and both halves are used.
        let host_parts: Vec<usize> = topo.hosts().iter().map(|&h| two.of(h)).collect();
        assert!(host_parts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(host_parts.first(), Some(&0));
        assert_eq!(host_parts.last(), Some(&1));
        // A leaf sits with its own hosts' partition.
        for &leaf in topo.leaves() {
            let first_host = topo
                .hosts()
                .iter()
                .copied()
                .find(|&h| topo.leaf_of(h) == Some(leaf))
                .unwrap();
            assert_eq!(two.of(leaf), two.of(first_host));
        }
    }
}

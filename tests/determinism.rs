//! The determinism contract of `numfabric-sim`, exercised end-to-end:
//! given the same seeds, a full NUMFabric scenario — seeded workload
//! generation, packet-level simulation, EWMA rate measurement — must
//! reproduce **bit-identical** results run-to-run (see the crate docs of
//! `numfabric::sim`). Every scaling PR is measured against this baseline:
//! parallelism or batching changes must preserve it or explicitly revise it.

use numfabric::baselines::{pfabric_network, PfabricAgent, PfabricConfig};
use numfabric::core::{numfabric_network, NumFabricAgent, NumFabricConfig};
use numfabric::num::utility::LogUtility;
use numfabric::sim::topology::{FatTreeConfig, LeafSpineConfig, Topology};
use numfabric::sim::{FlowId, FlowPhase, Network, SimDuration, SimTime};
use numfabric::workloads::scenarios::{
    incast_pairs, shuffle_pairs, EventKind, PathSpec, SemiDynamicConfig, SemiDynamicScenario,
};
use numfabric::workloads::{poisson_arrivals, random_pairs, FixedSize, PoissonWorkloadConfig};
use std::collections::HashMap;

/// One sampled point of a flow-rate trace. `f64` compared bit-for-bit via
/// `to_bits`, so even sub-ULP divergence fails the test.
#[derive(Debug, PartialEq, Eq)]
struct TracePoint {
    at_nanos: u128,
    flow: usize,
    rate_bits: u64,
}

/// Run the seeded leaf-spine NUMFabric scenario and sample every flow's
/// rate estimate on a fixed grid, returning the full trace.
fn run_scenario(seed: u64) -> (Vec<TracePoint>, Vec<(u64, u64)>) {
    let topo = Topology::leaf_spine(&LeafSpineConfig::small(16, 2, 2));
    let config = NumFabricConfig::paper_default();
    let mut net = numfabric_network(topo.clone(), &config);

    // 8 long-running flows plus a seeded Poisson burst of finite flows.
    let mut ids: Vec<FlowId> = Vec::new();
    for p in &random_pairs(topo.hosts(), 8, seed) {
        ids.push(net.add_flow(
            p.src,
            p.dst,
            None,
            SimTime::ZERO,
            p.spine_choice,
            None,
            Box::new(NumFabricAgent::new(config.clone(), LogUtility::new())),
        ));
    }
    for a in poisson_arrivals(
        topo.hosts(),
        &FixedSize(80_000),
        &PoissonWorkloadConfig::new(0.2, SimDuration::from_millis(2), seed ^ 0xa5a5),
    ) {
        ids.push(net.add_flow(
            a.src,
            a.dst,
            Some(a.size_bytes),
            a.start,
            a.spine_choice,
            None,
            Box::new(NumFabricAgent::new(config.clone(), LogUtility::new())),
        ));
    }

    let mut trace = Vec::new();
    sample_rates(&mut net, &ids, &mut trace);
    let bytes: Vec<(u64, u64)> = ids
        .iter()
        .map(|&f| {
            let st = net.flow_stats(f);
            (st.bytes_sent, st.bytes_acked)
        })
        .collect();
    (trace, bytes)
}

fn sample_rates(net: &mut Network, ids: &[FlowId], trace: &mut Vec<TracePoint>) {
    let step = SimDuration::from_micros(100);
    for _ in 0..40 {
        net.run_for(step);
        for (i, &f) in ids.iter().enumerate() {
            trace.push(TracePoint {
                at_nanos: net.now().as_nanos() as u128,
                flow: i,
                rate_bits: net.flow_rate_estimate(f).to_bits(),
            });
        }
    }
}

#[test]
fn replaying_a_seeded_scenario_is_bit_identical() {
    let (trace_a, bytes_a) = run_scenario(2024);
    let (trace_b, bytes_b) = run_scenario(2024);
    assert_eq!(trace_a.len(), trace_b.len());
    for (a, b) in trace_a.iter().zip(trace_b.iter()) {
        assert_eq!(a, b, "rate traces diverged");
    }
    assert_eq!(bytes_a, bytes_b, "per-flow byte counters diverged");
}

#[test]
fn different_seeds_produce_different_traces() {
    // Guards against the samplers silently ignoring the seed (which would
    // make the replay test vacuous).
    let (trace_a, _) = run_scenario(1);
    let (trace_b, _) = run_scenario(2);
    assert_ne!(trace_a, trace_b, "seed does not influence the scenario");
}

/// A dynamic flow-churn scenario exercising the interned-route hot path
/// (flows started, stopped and completed — every stop/completion walks its
/// interned route to release per-flow queue state) under NUMFabric, sampled
/// on a fixed grid.
fn run_churn_scenario(seed: u64) -> Vec<TracePoint> {
    let topo = Topology::leaf_spine(&LeafSpineConfig::small(16, 2, 2));
    let config = NumFabricConfig::paper_default();
    let mut net = numfabric_network(topo.clone(), &config);
    let scenario = SemiDynamicScenario::generate(&topo, &SemiDynamicConfig::scaled(40, 5, 6, seed));

    let mut active: HashMap<usize, FlowId> = HashMap::new();
    let mut ids: Vec<FlowId> = Vec::new();
    for &p in &scenario.initial_active {
        let spec = scenario.paths[p];
        let id = net.add_flow(
            spec.src,
            spec.dst,
            None,
            SimTime::ZERO,
            spec.spine_choice,
            None,
            Box::new(NumFabricAgent::new(config.clone(), LogUtility::new())),
        );
        active.insert(p, id);
        ids.push(id);
    }

    let mut trace = Vec::new();
    for event in &scenario.events {
        match event.kind {
            EventKind::Start => {
                for &p in &event.paths {
                    let spec = scenario.paths[p];
                    let id = net.add_flow(
                        spec.src,
                        spec.dst,
                        None,
                        net.now(),
                        spec.spine_choice,
                        None,
                        Box::new(NumFabricAgent::new(config.clone(), LogUtility::new())),
                    );
                    active.insert(p, id);
                    ids.push(id);
                }
            }
            EventKind::Stop => {
                for &p in &event.paths {
                    if let Some(id) = active.remove(&p) {
                        net.stop_flow(id);
                    }
                }
            }
        }
        sample_rates(&mut net, &ids, &mut trace);
    }
    trace
}

#[test]
fn replaying_a_dynamic_churn_scenario_is_bit_identical() {
    let a = run_churn_scenario(77);
    let b = run_churn_scenario(77);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x, y, "churn traces diverged");
    }
}

/// Inject one finite NUMFabric transfer of `size_bytes` per pair at `t = 0`,
/// sample every flow's rate on the fixed grid, and collect the per-flow byte
/// counters — the shared skeleton of the generalized-fabric replay pins.
fn run_pairs_scenario(
    topo: Topology,
    pairs: &[PathSpec],
    size_bytes: u64,
) -> (Vec<TracePoint>, Vec<(u64, u64)>) {
    let config = NumFabricConfig::paper_default();
    let mut net = numfabric_network(topo, &config);
    let ids: Vec<FlowId> = pairs
        .iter()
        .map(|p| {
            net.add_flow(
                p.src,
                p.dst,
                Some(size_bytes),
                SimTime::ZERO,
                p.spine_choice,
                None,
                Box::new(NumFabricAgent::new(config.clone(), LogUtility::new())),
            )
        })
        .collect();
    let mut trace = Vec::new();
    sample_rates(&mut net, &ids, &mut trace);
    let bytes = ids
        .iter()
        .map(|&f| {
            let st = net.flow_stats(f);
            (st.bytes_sent, st.bytes_acked)
        })
        .collect();
    (trace, bytes)
}

/// Seeded incast on an oversubscribed leaf-spine: finite transfers from 8
/// senders converge on one receiver NIC — the same bit-identical-replay
/// contract as the churn scenario, now exercising the generalized-fabric
/// workload family.
fn run_incast_scenario(seed: u64) -> (Vec<TracePoint>, Vec<(u64, u64)>) {
    let topo = Topology::leaf_spine(&LeafSpineConfig::oversubscribed(16, 2, 2, 4.0));
    let pairs = incast_pairs(&topo, 8, seed);
    run_pairs_scenario(topo, &pairs, 150_000)
}

#[test]
fn replaying_an_incast_scenario_is_bit_identical() {
    let (trace_a, bytes_a) = run_incast_scenario(31);
    let (trace_b, bytes_b) = run_incast_scenario(31);
    assert_eq!(trace_a, trace_b, "incast rate traces diverged");
    assert_eq!(bytes_a, bytes_b, "incast byte counters diverged");
    // The workload must actually have run (every sender moved bytes).
    assert!(bytes_a.iter().all(|&(sent, _)| sent > 0));
}

/// Seeded all-to-all shuffle on a fat-tree: every ordered host pair among 6
/// participants transfers across multi-tier ECMP paths.
fn run_fat_tree_shuffle_scenario(seed: u64) -> (Vec<TracePoint>, Vec<(u64, u64)>) {
    let topo = Topology::fat_tree(&FatTreeConfig::new(4));
    let pairs = shuffle_pairs(&topo, Some(6), seed);
    run_pairs_scenario(topo, &pairs, 60_000)
}

#[test]
fn replaying_a_fat_tree_shuffle_scenario_is_bit_identical() {
    let (trace_a, bytes_a) = run_fat_tree_shuffle_scenario(17);
    let (trace_b, bytes_b) = run_fat_tree_shuffle_scenario(17);
    assert_eq!(trace_a, trace_b, "fat-tree shuffle rate traces diverged");
    assert_eq!(bytes_a, bytes_b, "fat-tree shuffle byte counters diverged");
    assert_eq!(bytes_a.len(), 30, "6-host shuffle is 30 ordered pairs");
}

/// An impairment-heavy scenario: long-lived stride flows on a fat-tree with
/// a cable flap (down + restore), 2% wire loss and 5 µs delay jitter all
/// active in one run. Flaps drain queues and reroute ECMP flows, loss and
/// jitter consume the network's seeded impairment RNG — every piece of the
/// failure layer that could plausibly break the replay contract.
fn run_impaired_scenario(seed: u64, impair_seed: u64) -> (Vec<TracePoint>, Vec<(u64, u64)>) {
    run_impaired_partitioned(seed, impair_seed, 1, 1)
}

/// [`run_impaired_scenario`] with the network decomposed into `partitions`
/// event cores advancing on `partition_threads` epoch workers. Loss and
/// jitter draw from per-link impairment streams, so even the randomized
/// pieces of the failure layer must reproduce the single-core run
/// bit-for-bit at any decomposition.
fn run_impaired_partitioned(
    seed: u64,
    impair_seed: u64,
    partitions: usize,
    partition_threads: usize,
) -> (Vec<TracePoint>, Vec<(u64, u64)>) {
    use numfabric::sim::{LinkChange, SimDuration as Dur};
    use numfabric::workloads::impairments::fabric_cables;
    use numfabric::workloads::stride_pairs;

    let topo = Topology::fat_tree(&FatTreeConfig::new(4));
    let pairs = stride_pairs(&topo, 8, seed);
    let cables = fabric_cables(&topo);
    let (flap_fwd, flap_rev) = cables[0];
    let (loss_fwd, loss_rev) = cables[cables.len() / 2];
    let (jit_fwd, jit_rev) = cables[cables.len() - 1];

    let config = NumFabricConfig::paper_default();
    let mut net = numfabric_network(topo, &config);
    net.set_partitions(partitions);
    net.set_partition_threads(partition_threads);
    net.set_impairment_seed(impair_seed);
    for link in [flap_fwd, flap_rev] {
        net.schedule_link_change(SimTime::from_micros(500), link, LinkChange::Down);
        net.schedule_link_change(SimTime::from_micros(1_500), link, LinkChange::Up);
    }
    for link in [loss_fwd, loss_rev] {
        net.schedule_link_change(SimTime::ZERO, link, LinkChange::Loss(0.02));
    }
    for link in [jit_fwd, jit_rev] {
        net.schedule_link_change(SimTime::ZERO, link, LinkChange::Jitter(Dur::from_micros(5)));
    }

    let ids: Vec<FlowId> = pairs
        .iter()
        .map(|p| {
            net.add_flow(
                p.src,
                p.dst,
                None,
                SimTime::ZERO,
                p.spine_choice,
                None,
                Box::new(NumFabricAgent::new(config.clone(), LogUtility::new())),
            )
        })
        .collect();
    let mut trace = Vec::new();
    sample_rates(&mut net, &ids, &mut trace);
    let bytes = ids
        .iter()
        .map(|&f| {
            let st = net.flow_stats(f);
            (st.bytes_sent, st.bytes_acked)
        })
        .collect();
    (trace, bytes)
}

#[test]
fn replaying_an_impairment_heavy_scenario_is_bit_identical() {
    let (trace_a, bytes_a) = run_impaired_scenario(9, 1234);
    let (trace_b, bytes_b) = run_impaired_scenario(9, 1234);
    assert_eq!(trace_a, trace_b, "impaired rate traces diverged");
    assert_eq!(bytes_a, bytes_b, "impaired byte counters diverged");
    // Every flow kept moving bytes through flap + loss + jitter.
    assert!(bytes_a.iter().all(|&(sent, _)| sent > 0));
}

#[test]
fn impairment_seed_actually_drives_the_loss_and_jitter_draws() {
    // Guards against the loss/jitter path silently ignoring the seeded RNG,
    // which would make the replay pin above vacuous.
    let (trace_a, _) = run_impaired_scenario(9, 1);
    let (trace_b, _) = run_impaired_scenario(9, 2);
    assert_ne!(trace_a, trace_b, "impairment seed has no effect");
}

/// The `--partitions × --partition-threads` grid every partitioned replay
/// pin sweeps: each combo must reproduce the `(1, 1)` run bit-for-bit.
const PARTITION_MATRIX: [(usize, usize); 8] = [
    (1, 2),
    (1, 4),
    (2, 1),
    (2, 2),
    (2, 4),
    (4, 1),
    (4, 2),
    (4, 4),
];

/// [`run_pairs_scenario`] with the network domain-decomposed into
/// `partitions` per-partition event cores advancing on `partition_threads`
/// epoch workers. The partition-conformance contract: the trace and the
/// byte counters are a pure function of the seed, so *any* partition and
/// thread count must reproduce the single-queue run bit-for-bit.
fn run_pairs_partitioned(
    topo: Topology,
    pairs: &[PathSpec],
    size_bytes: u64,
    partitions: usize,
    partition_threads: usize,
) -> (Vec<TracePoint>, Vec<(u64, u64)>) {
    let config = NumFabricConfig::paper_default();
    let mut net = numfabric_network(topo, &config);
    net.set_partitions(partitions);
    net.set_partition_threads(partition_threads);
    let ids: Vec<FlowId> = pairs
        .iter()
        .map(|p| {
            net.add_flow(
                p.src,
                p.dst,
                Some(size_bytes),
                SimTime::ZERO,
                p.spine_choice,
                None,
                Box::new(NumFabricAgent::new(config.clone(), LogUtility::new())),
            )
        })
        .collect();
    let mut trace = Vec::new();
    sample_rates(&mut net, &ids, &mut trace);
    let bytes = ids
        .iter()
        .map(|&f| {
            let st = net.flow_stats(f);
            (st.bytes_sent, st.bytes_acked)
        })
        .collect();
    (trace, bytes)
}

#[test]
fn partition_matrix_never_changes_a_leaf_spine_report() {
    let run = |partitions, threads| {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(16, 2, 2));
        let pairs = incast_pairs(&topo, 8, 5);
        run_pairs_partitioned(topo, &pairs, 120_000, partitions, threads)
    };
    let (trace_1, bytes_1) = run(1, 1);
    assert!(bytes_1.iter().all(|&(sent, _)| sent > 0));
    for (partitions, threads) in PARTITION_MATRIX {
        let (trace_n, bytes_n) = run(partitions, threads);
        assert_eq!(
            trace_1, trace_n,
            "leaf-spine trace diverged at {partitions} partitions x {threads} threads"
        );
        assert_eq!(
            bytes_1, bytes_n,
            "leaf-spine byte counters diverged at {partitions} partitions x {threads} threads"
        );
    }
}

#[test]
fn partition_matrix_never_changes_a_fat_tree_report() {
    let run = |partitions, threads| {
        let topo = Topology::fat_tree(&FatTreeConfig::new(4));
        let pairs = shuffle_pairs(&topo, Some(6), 11);
        run_pairs_partitioned(topo, &pairs, 60_000, partitions, threads)
    };
    let (trace_1, bytes_1) = run(1, 1);
    assert!(bytes_1.iter().all(|&(sent, _)| sent > 0));
    for (partitions, threads) in PARTITION_MATRIX {
        let (trace_n, bytes_n) = run(partitions, threads);
        assert_eq!(
            trace_1, trace_n,
            "fat-tree trace diverged at {partitions} partitions x {threads} threads"
        );
        assert_eq!(
            bytes_1, bytes_n,
            "fat-tree byte counters diverged at {partitions} partitions x {threads} threads"
        );
    }
}

#[test]
fn partition_matrix_never_changes_a_seeded_loss_jitter_run() {
    // The headline fix of the per-link impairment streams: randomized
    // loss/jitter draws used to vary with the partition split; now the
    // whole impaired report is pinned across the matrix too.
    let (trace_1, bytes_1) = run_impaired_partitioned(9, 1234, 1, 1);
    assert!(bytes_1.iter().all(|&(sent, _)| sent > 0));
    for (partitions, threads) in PARTITION_MATRIX {
        let (trace_n, bytes_n) = run_impaired_partitioned(9, 1234, partitions, threads);
        assert_eq!(
            trace_1, trace_n,
            "impaired trace diverged at {partitions} partitions x {threads} threads"
        );
        assert_eq!(
            bytes_1, bytes_n,
            "impaired byte counters diverged at {partitions} partitions x {threads} threads"
        );
    }
}

/// A cable-cut run on a fat-tree, decomposed into `partitions` cores on
/// `partition_threads` epoch workers: the busiest-cable flap (down +
/// restore, both directions) drains queues, reroutes ECMP flows and
/// crosses partition boundaries — and must stay bit-identical for every
/// partition and thread count.
fn run_cable_cut_partitioned(
    partitions: usize,
    partition_threads: usize,
) -> (Vec<TracePoint>, Vec<(u64, u64)>) {
    use numfabric::sim::LinkChange;
    use numfabric::workloads::impairments::fabric_cables;
    use numfabric::workloads::stride_pairs;

    let topo = Topology::fat_tree(&FatTreeConfig::new(4));
    let pairs = stride_pairs(&topo, 8, 3);
    let (cut_fwd, cut_rev) = fabric_cables(&topo)[0];

    let config = NumFabricConfig::paper_default();
    let mut net = numfabric_network(topo, &config);
    net.set_partitions(partitions);
    net.set_partition_threads(partition_threads);
    for link in [cut_fwd, cut_rev] {
        net.schedule_link_change(SimTime::from_micros(500), link, LinkChange::Down);
        net.schedule_link_change(SimTime::from_micros(1_500), link, LinkChange::Up);
    }
    let ids: Vec<FlowId> = pairs
        .iter()
        .map(|p| {
            net.add_flow(
                p.src,
                p.dst,
                None,
                SimTime::ZERO,
                p.spine_choice,
                None,
                Box::new(NumFabricAgent::new(config.clone(), LogUtility::new())),
            )
        })
        .collect();
    let mut trace = Vec::new();
    sample_rates(&mut net, &ids, &mut trace);
    let bytes = ids
        .iter()
        .map(|&f| {
            let st = net.flow_stats(f);
            (st.bytes_sent, st.bytes_acked)
        })
        .collect();
    (trace, bytes)
}

#[test]
fn partition_count_never_changes_a_cable_cut_run() {
    let (trace_1, bytes_1) = run_cable_cut_partitioned(1, 1);
    assert!(bytes_1.iter().all(|&(sent, _)| sent > 0));
    for (partitions, threads) in [(2, 1), (2, 2), (4, 4)] {
        let (trace_n, bytes_n) = run_cable_cut_partitioned(partitions, threads);
        assert_eq!(
            trace_1, trace_n,
            "cable-cut trace diverged at {partitions} partitions x {threads} threads"
        );
        assert_eq!(
            bytes_1, bytes_n,
            "cable-cut byte counters diverged at {partitions} partitions x {threads} threads"
        );
    }
}

/// Replay a seeded workload through pFabric's tombstone priority queue with
/// buffers shallow enough that the worst-drop (evict) path fires constantly;
/// drop decisions feed back into retransmission timing, so any
/// nondeterminism in the victim choice would diverge the byte counters.
fn run_pfabric_scenario(seed: u64) -> Vec<(u64, u64, u64, bool)> {
    let topo = Topology::leaf_spine(&LeafSpineConfig::small(16, 2, 2));
    let config = PfabricConfig::default();
    let mut net = pfabric_network(topo.clone(), &config);
    let mut ids: Vec<FlowId> = Vec::new();
    for a in poisson_arrivals(
        topo.hosts(),
        &FixedSize(60_000),
        &PoissonWorkloadConfig::new(0.5, SimDuration::from_millis(1), seed),
    ) {
        ids.push(net.add_flow(
            a.src,
            a.dst,
            Some(a.size_bytes),
            a.start,
            a.spine_choice,
            None,
            Box::new(PfabricAgent::new(config.clone())),
        ));
    }
    net.run_until(SimTime::from_millis(6));
    ids.iter()
        .map(|&f| {
            let st = net.flow_stats(f);
            (
                st.bytes_delivered,
                st.packets_dropped,
                st.packets_sent,
                net.flow_phase(f) == FlowPhase::Completed,
            )
        })
        .collect()
}

#[test]
fn pfabric_worst_drop_replay_is_bit_identical() {
    let a = run_pfabric_scenario(404);
    let b = run_pfabric_scenario(404);
    assert_eq!(a, b, "pFabric drop decisions diverged between replays");
    // The scenario must actually exercise the eviction path.
    let drops: u64 = a.iter().map(|&(_, d, _, _)| d).sum();
    assert!(
        drops > 0,
        "scenario produced no drops; tombstone path untested"
    );
}

/// Render the churn engine's full `--json` report for one execution-knob
/// combination. Everything observable — per-class sketches, slab
/// high-water, goodput — is folded into the rendered bytes.
fn churn_engine_report(seed: u64, partitions: usize, partition_threads: usize) -> String {
    use numfabric_bench::{churn_report_json, run_churn, ChurnRun, Protocol};
    let protocol = Protocol::NumFabric(NumFabricConfig::default());
    let run = ChurnRun {
        arrival_window: SimDuration::from_millis(6),
        drain: SimDuration::from_millis(40),
        ..ChurnRun::reduced(0.6, seed)
    };
    let summary = run_churn(&protocol, &run, partitions, partition_threads);
    assert!(summary.completed > 0, "churn run completed no flows");
    churn_report_json(
        &run.topology.to_string(),
        protocol.name(),
        run.load,
        6,
        seed,
        &summary,
    )
    .render()
}

#[test]
fn partition_matrix_never_changes_a_churn_report() {
    let baseline = churn_engine_report(21, 1, 1);
    for partitions in [1usize, 2, 4] {
        for threads in [1usize, 2] {
            if (partitions, threads) == (1, 1) {
                continue;
            }
            let got = churn_engine_report(21, partitions, threads);
            assert_eq!(
                baseline, got,
                "churn report bytes changed at partitions={partitions} threads={threads}"
            );
        }
    }
}

#[test]
fn churn_report_is_seed_sensitive() {
    // The matrix invariance above must not be vacuous: a different seed
    // has to produce a genuinely different trace.
    assert_ne!(
        churn_engine_report(21, 2, 2),
        churn_engine_report(22, 2, 2),
        "different seeds produced identical churn reports"
    );
}

//! # numfabric-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! NUMFabric paper's evaluation (§6). The library half contains the shared
//! drivers; one binary per figure lives in `src/bin/` (run them with
//! `cargo run --release -p numfabric-bench --bin figNN`), and Criterion
//! micro-benchmarks live in `benches/`.
//!
//! * [`protocols`] — build any of the compared schemes (NUMFabric, DGD,
//!   RCP*, DCTCP, pFabric) on a given topology.
//! * [`semi_dynamic`] — the §6.1 controlled convergence experiment
//!   (Figures 4a, 4b/c and 6).
//! * [`dynamic`] — Poisson-arrival workloads with Oracle and empty-network
//!   references (Figures 5 and 7).
//! * [`report`] — percentiles, CDFs, Fig. 5 bins and table printing.
//!
//! Every binary accepts `--full` to run at the paper's scale (128 hosts,
//! 1000 paths, 100 events, …); the default is a reduced-scale run with the
//! same structure that finishes in minutes on a laptop.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dynamic;
pub mod protocols;
pub mod report;
pub mod semi_dynamic;

pub use dynamic::{generate_arrivals, run_dynamic, DynamicFlowResult, DynamicRun, Objective};
pub use protocols::Protocol;
pub use semi_dynamic::{rate_timeseries, run_semi_dynamic, SemiDynamicResult, SemiDynamicRun};

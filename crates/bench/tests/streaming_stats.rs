//! Property tests pinning [`QuantileSketch`] against the exact
//! [`report::percentile`] it replaces in the streaming churn path.
//!
//! The sketch documents a relative value error of
//! `QuantileSketch::RELATIVE_ERROR` (α = 1 %): for any quantile `q` of any
//! nonnegative sample, the estimate `e` and the exact nearest-rank answer
//! `x` satisfy `|e − x| ≤ α·x` (plus a hair of floating-point slack).
//! These properties drive that bound across the distributions the churn
//! engine actually produces — uniform, bimodal fg/bg mixes, Pareto-like
//! heavy tails — and the adversarial already-sorted / reverse-sorted
//! orderings, then pin the merge law: folding per-partition sketches
//! together must answer exactly like one sketch that saw every sample.

use numfabric_bench::report::{self, QuantileSketch};
use proptest::prelude::*;

/// Slack on top of the documented bound for float accumulation.
const EPS: f64 = 1e-9;

/// Quantiles every property checks, covering extremes and the ranks the
/// churn report actually emits (p50, p99, p99.9).
const PROBES: [f64; 7] = [0.0, 0.01, 0.25, 0.5, 0.99, 0.999, 1.0];

/// Assert the sketch answer for every probe quantile is within the
/// documented relative error of the exact nearest-rank percentile.
fn assert_within_bound(values: &[f64], sketch: &QuantileSketch) {
    assert_eq!(sketch.count(), values.len() as u64);
    for q in PROBES {
        let exact = report::percentile(values, q).expect("non-empty sample");
        let got = sketch.quantile(q).expect("non-empty sketch");
        let tolerance = QuantileSketch::RELATIVE_ERROR * exact.abs() + EPS;
        assert!(
            (got - exact).abs() <= tolerance,
            "q={q}: sketch {got} vs exact {exact} (n={}, tolerance {tolerance})",
            values.len()
        );
    }
}

/// Build a sketch over `values` and check it against the exact answers.
fn check(values: &[f64]) {
    let mut sketch = QuantileSketch::new();
    for &v in values {
        sketch.record(v);
    }
    assert_within_bound(values, &sketch);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Uniform samples over a span whose width and offset vary per case.
    #[test]
    fn uniform_samples_stay_within_the_documented_bound(
        n in 1usize..4000,
        lo in 1e-6f64..1.0,
        span in 1e-6f64..1e4,
    ) {
        let mut rng = TestRng::for_case("uniform_values", n as u32);
        let values: Vec<f64> = (0..n).map(|_| lo + span * rng.unit_f64()).collect();
        check(&values);
    }

    /// Bimodal mixture: a tight cluster of small values (foreground-like
    /// FCTs) plus a far-away cluster (background-like), like the churn
    /// fg/bg class mix. Quantiles near the mode boundary are the stress
    /// case for bucketed sketches.
    #[test]
    fn bimodal_mixtures_stay_within_the_documented_bound(
        n in 2usize..3000,
        split in 0.05f64..0.95,
        gap in 10.0f64..1e6,
    ) {
        let mut rng = TestRng::for_case("bimodal_values", n as u32);
        let values: Vec<f64> = (0..n)
            .map(|_| {
                let base = 1e-4 * (1.0 + rng.unit_f64());
                if rng.unit_f64() < split { base } else { base * gap }
            })
            .collect();
        check(&values);
    }

    /// Pareto-like heavy tail `scale / u^(1/α)` — the web-search /
    /// data-mining flow-size shape. Tail quantiles span many orders of
    /// magnitude, exercising the geometric bucket ladder end to end.
    #[test]
    fn heavy_tail_samples_stay_within_the_documented_bound(
        n in 1usize..3000,
        alpha in 1.05f64..2.5,
        scale in 1e-5f64..10.0,
    ) {
        let mut rng = TestRng::for_case("heavy_tail_values", n as u32);
        let values: Vec<f64> = (0..n)
            .map(|_| {
                let u = (1.0 - rng.unit_f64()).max(1e-12);
                // Cap inside the sketch's tracked range — the documented
                // bound only covers [1e-9, 1e12].
                (scale / u.powf(1.0 / alpha)).min(1e11)
            })
            .collect();
        check(&values);
    }

    /// Adversarial orderings: the sketch must be order-insensitive, so
    /// feeding an already-sorted or reverse-sorted stream answers exactly
    /// like the shuffled original.
    #[test]
    fn sorted_and_reversed_inputs_answer_like_the_original_order(
        n in 1usize..2000,
        spread in 1.0f64..1e5,
    ) {
        let mut rng = TestRng::for_case("ordering_values", n as u32);
        let values: Vec<f64> = (0..n).map(|_| 1e-3 + spread * rng.unit_f64()).collect();

        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let mut reversed = sorted.clone();
        reversed.reverse();

        check(&sorted);
        check(&reversed);

        let feed = |vs: &[f64]| {
            let mut s = QuantileSketch::new();
            for &v in vs {
                s.record(v);
            }
            s
        };
        let original = feed(&values);
        let asc = feed(&sorted);
        let desc = feed(&reversed);
        for q in PROBES {
            prop_assert_eq!(original.quantile(q), asc.quantile(q), "q={}", q);
            prop_assert_eq!(original.quantile(q), desc.quantile(q), "q={}", q);
        }
    }

    /// Merge law: splitting a stream across any number of per-partition
    /// sketches and folding them back must be indistinguishable from one
    /// sketch that recorded everything — for every probe quantile AND the
    /// exact aggregates (count/sum/min/max).
    #[test]
    fn merged_sketches_answer_exactly_like_a_single_sketch(
        n in 1usize..3000,
        parts in 1usize..8,
        spread in 1e-3f64..1e6,
    ) {
        let mut rng = TestRng::for_case("merge_values", n as u32);
        let values: Vec<f64> = (0..n).map(|_| 1e-6 + spread * rng.unit_f64()).collect();

        let mut single = QuantileSketch::new();
        for &v in &values {
            single.record(v);
        }

        let mut shards: Vec<QuantileSketch> =
            (0..parts).map(|_| QuantileSketch::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            shards[i % parts].record(v);
        }
        let mut merged = QuantileSketch::new();
        for shard in &shards {
            merged.merge(shard);
        }

        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.min(), single.min());
        prop_assert_eq!(merged.max(), single.max());
        prop_assert!((merged.sum() - single.sum()).abs() <= 1e-6 * single.sum().abs() + EPS);
        for q in PROBES {
            prop_assert_eq!(merged.quantile(q), single.quantile(q), "q={}", q);
        }
        assert_within_bound(&values, &merged);
    }
}

//! Link impairments: the event-level vocabulary for failing, flapping,
//! slowing, corrupting and jittering links mid-simulation.
//!
//! Production fabrics are not the healthy graphs the paper evaluates on —
//! links flap, optics degrade asymmetrically, and lossy cables silently cap
//! throughput. This module defines [`LinkChange`], the set of state changes
//! a link can undergo, applied by
//! [`crate::network::Network::schedule_link_change`] as **ordinary scheduled
//! events**: an impairment is just an [`crate::event::Event`] in the timing
//! wheel, dispatched in `(time, seq)` order like any packet arrival, so
//! replays of an impaired scenario stay bit-identical under the determinism
//! contract.
//!
//! Randomized impairments (per-packet loss, delay jitter) draw from a
//! self-contained SplitMix64 stream owned by the `Network` and seeded
//! explicitly via [`crate::network::Network::set_impairment_seed`]. The
//! stream advances only when an impaired link actually transmits, and event
//! dispatch order is deterministic, so the draw sequence — and with it every
//! loss decision and jitter offset — is a pure function of the seed and the
//! scenario. The engine keeps its no-ambient-randomness property: an
//! unimpaired simulation never touches the stream.
//!
//! Schedule construction (which link, when, how long) lives one layer up in
//! `numfabric-workloads`, next to the other seeded scenario builders; this
//! module is only the mechanism.

use crate::time::SimDuration;

/// One state change applied to a link at a scheduled instant.
///
/// Each variant is the *target state*, not a delta, so schedules replay
/// identically regardless of what state the link was in (a `Down` on an
/// already-down link is a no-op, a `Loss` overwrites the previous rate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkChange {
    /// Fail the link: its queue is drained and every queued packet dropped,
    /// packets still propagating toward the far end are lost on arrival, and
    /// enqueues while down are dropped. Flows pinned by ECMP choice are
    /// re-routed over the surviving paths (see
    /// [`crate::topology::Topology::host_route_avoiding`]).
    Down,
    /// Restore a failed link. Flows return to the route their ECMP choice
    /// selects on the restored graph.
    Up,
    /// Change the link's capacity to `bits_per_second` (asymmetric speed
    /// changes: the reverse twin keeps its own capacity). The packet
    /// currently serializing keeps its old transmission time.
    Speed(f64),
    /// Drop each packet leaving this link with the given probability
    /// (`0.0..=1.0`), drawn from the network's seeded impairment stream.
    /// The packet still occupies the wire for its serialization time — the
    /// model is corruption on the cable, not at the queue.
    Loss(f64),
    /// Add a uniformly distributed extra propagation delay in
    /// `[0, max_extra]` to each packet leaving this link, drawn from the
    /// seeded impairment stream. Jitter can reorder packets of one flow.
    Jitter(SimDuration),
}

/// The per-link impairment state a [`crate::network::Network`] tracks at
/// runtime. Fresh links are up, lossless and jitter-free.
#[derive(Debug, Clone, Copy)]
pub struct LinkHealth {
    /// Whether the link is currently up.
    pub up: bool,
    /// Per-packet loss probability on the wire.
    pub loss: f64,
    /// Maximum extra propagation delay added per packet.
    pub jitter: SimDuration,
}

impl Default for LinkHealth {
    fn default() -> Self {
        Self {
            up: true,
            loss: 0.0,
            jitter: SimDuration::ZERO,
        }
    }
}

impl LinkHealth {
    /// Whether this link needs a random draw per transmitted packet.
    pub fn is_randomized(&self) -> bool {
        self.loss > 0.0 || !self.jitter.is_zero()
    }
}

/// Advance a SplitMix64 state and return the next `u64`.
///
/// Spelled out here (rather than borrowed from the offline `rand` shim's
/// internal helper) for the same reason as the sweep's
/// `derive_cell_seed`: the shims must stay swappable for the real crates.io
/// crates by a manifest-only change, and `numfabric-sim` deliberately has no
/// `rand` dependency at all.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The next draw from `state` as a float in `[0, 1)`.
pub(crate) fn splitmix64_unit(state: &mut u64) -> f64 {
    // 53 mantissa bits, the standard u64 -> unit-interval construction.
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_health_is_pristine() {
        let h = LinkHealth::default();
        assert!(h.up && h.loss == 0.0 && h.jitter.is_zero());
        assert!(!h.is_randomized());
        assert!(LinkHealth {
            loss: 0.01,
            ..Default::default()
        }
        .is_randomized());
        assert!(LinkHealth {
            jitter: SimDuration::from_micros(1),
            ..Default::default()
        }
        .is_randomized());
    }

    #[test]
    fn splitmix_stream_is_deterministic_and_seed_sensitive() {
        let mut a = 42u64;
        let mut b = 42u64;
        let mut c = 43u64;
        let draws_a: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        let draws_c: Vec<u64> = (0..8).map(|_| splitmix64(&mut c)).collect();
        assert_eq!(draws_a, draws_b);
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn unit_draws_stay_in_the_half_open_interval() {
        let mut s = 7u64;
        for _ in 0..1000 {
            let u = splitmix64_unit(&mut s);
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }
}

//! Offline API-compatible shim for the `proptest` property-testing crate.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro with `arg in strategy` bindings, range strategies on
//! integer and float types, `prop_assert!`, and
//! `ProptestConfig::with_cases`. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name), so failures reproduce
//! exactly; there is no shrinking. See `crates/compat/README.md`.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestRng};
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the heavier solver
        // properties fast while still exploring the space.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator handed to strategies (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case number `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64) << 32) ^ 0x5DEE_CE66_D1CE_4E5B,
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A way of generating values for a `proptest!` argument.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + (hi - lo) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_strategy!(f32, f64);

/// Property assertion: like `assert!`, with the failing case's inputs
/// already embedded in the panic location by the enclosing `proptest!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Property-assertion of equality.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` body runs
/// for `cases` generated inputs (see [`ProptestConfig`]).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic_per_case() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn generated_values_in_range(x in 1.5f64..9.5, n in 3usize..17, m in 0u64..=4) {
            prop_assert!((1.5..9.5).contains(&x));
            prop_assert!((3..17).contains(&n));
            prop_assert!(m <= 4, "m={m}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_cases_accepted(v in 0i32..100) {
            prop_assert!((0..100).contains(&v));
        }
    }
}

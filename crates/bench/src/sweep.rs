//! The deterministic parallel sweep engine: execute a [`SweepSpec`] grid on
//! a work-stealing thread pool and aggregate the per-cell results into one
//! structured report.
//!
//! The determinism contract extends the simulator's: every [`SweepCell`] is
//! a self-contained, fully-seeded simulation owned by exactly one worker
//! thread (`Network` is `Send`, pinned at compile time in `numfabric-sim`),
//! cells share no state, and the aggregate is assembled in cell-index order
//! — so the aggregated output is **bit-identical regardless of
//! `--threads`**. Thread count and wall-clock never appear in the JSON
//! report; they are printed separately in the human-readable mode.
//!
//! The pool is a classic work-stealing arrangement built on `std::thread` +
//! channels: cells are dealt round-robin onto one deque per worker, each
//! worker pops its own deque from the front and steals from the *back* of a
//! victim's deque when its own runs dry, and finished cells flow back over
//! an `mpsc` channel. Stealing keeps the pool busy when cell costs are
//! skewed (a 240-flow shuffle next to an 8-flow incast), which is the
//! common shape of these grids.

use crate::churn::{run_churn_impaired, ChurnRun};
use crate::fabric::{
    run_steady_state_impaired, run_transfers_impaired, transfer_deadline, worst_oversubscription,
    SteadyStateSummary, TransferSummary,
};
use crate::protocols::Protocol;
use crate::report::{mean, percentile, ChurnSummary, Json};
use numfabric_sim::SimDuration;
use numfabric_workloads::registry::ScenarioOptions;
use numfabric_workloads::scenarios::{incast_pairs, shuffle_pairs, stride_pairs};
use numfabric_workloads::sweep::{SweepCell, SweepScenario, SweepSpec};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// How long each steady-state (stride) cell runs. Long enough for every
/// protocol to settle, short enough that a grid of them stays interactive.
const STEADY_STATE_RUN: SimDuration = SimDuration::from_millis(4);

/// The arrival window of a churn cell, and the drain that follows it.
/// Short enough to keep a grid of churn cells interactive; a full-scale
/// churn run goes through `numfabric-run churn --millis ...` instead.
const CHURN_WINDOW: SimDuration = SimDuration::from_millis(8);
const CHURN_DRAIN: SimDuration = SimDuration::from_millis(40);

/// The measured outcome of one sweep cell: the cell identity plus the
/// metrics of its scenario family (FCT statistics for finite transfers,
/// oracle-relative rate error for steady state).
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that was run.
    pub cell: SweepCell,
    /// Flows injected.
    pub flows: usize,
    /// Flows completed before the deadline (`None` for steady-state cells,
    /// whose flows are long-lived by construction).
    pub completed: Option<usize>,
    /// Median flow completion time in seconds (finite transfers).
    pub median_fct_seconds: Option<f64>,
    /// 99th-percentile flow completion time in seconds (finite transfers).
    pub p99_fct_seconds: Option<f64>,
    /// Aggregate goodput in bits per second (finite transfers).
    pub goodput_bps: Option<f64>,
    /// Mean relative rate error vs the fluid oracle (steady state).
    pub steady_state_error: Option<f64>,
    /// Fraction of flows within 10% of the oracle rate (steady state).
    pub fraction_within_10pct: Option<f64>,
}

impl CellResult {
    fn from_transfers(cell: SweepCell, summary: &TransferSummary) -> Self {
        Self {
            flows: summary.flows,
            completed: Some(summary.completed),
            median_fct_seconds: percentile(&summary.fcts, 0.5),
            p99_fct_seconds: percentile(&summary.fcts, 0.99),
            goodput_bps: Some(summary.aggregate_goodput_bps()),
            steady_state_error: None,
            fraction_within_10pct: None,
            cell,
        }
    }

    fn from_churn(cell: SweepCell, summary: &ChurnSummary) -> Self {
        let (fct, _) = summary.overall();
        Self {
            flows: summary.offered as usize,
            completed: Some(summary.completed as usize),
            median_fct_seconds: fct.quantile(0.5),
            p99_fct_seconds: fct.quantile(0.99),
            goodput_bps: Some(summary.completed_bytes() as f64 * 8.0 / CHURN_WINDOW.as_secs_f64()),
            steady_state_error: None,
            fraction_within_10pct: None,
            cell,
        }
    }

    fn from_steady_state(cell: SweepCell, summary: &SteadyStateSummary) -> Self {
        let rel_errors: Vec<f64> = summary
            .rates_bps
            .iter()
            .zip(&summary.oracle_bps)
            .map(|(&r, &o)| (r - o).abs() / o.max(1.0))
            .collect();
        Self {
            flows: summary.rates_bps.len(),
            completed: None,
            median_fct_seconds: None,
            p99_fct_seconds: None,
            goodput_bps: None,
            steady_state_error: mean(&rel_errors),
            fraction_within_10pct: Some(summary.fraction_within(0.10)),
            cell,
        }
    }
}

/// Run one sweep cell to completion: build the fabric, derive the workload
/// from the cell's axes and seed, simulate, and summarize.
///
/// The load axis scales the participating host fraction: an incast cell
/// fans in `load · (hosts − 1)` senders, a shuffle cell spans `load ·
/// hosts` participants. Stride cells run the full `hosts/2` permutation as
/// long-lived flows for a fixed window and ignore the load and size axes
/// (documented on [`SweepScenario`]). Churn cells run the open-loop Poisson
/// mix at the load axis over a fixed arrival window and ignore the size
/// axis — sizes come from the mix's heavy-tail distributions. The
/// impairment axis expands its named profile into a schedule on the cell's
/// own fabric, seeded and windowed by the cell, before the simulation
/// starts.
///
/// Errors only on an unknown protocol name — everything else about a cell
/// is valid by construction of [`SweepSpec::expand`].
pub fn run_cell(cell: &SweepCell) -> Result<CellResult, String> {
    run_cell_partitioned(cell, 1, 1)
}

/// [`run_cell`] with the cell's network decomposed into `partitions` event
/// cores running on `partition_threads` worker threads. Like `--threads`,
/// both are pure execution knobs: the cell result is bit-identical for
/// every value — including under randomized loss/jitter profiles, whose
/// draws come from per-*link* streams.
pub fn run_cell_partitioned(
    cell: &SweepCell,
    partitions: usize,
    partition_threads: usize,
) -> Result<CellResult, String> {
    let protocol = Protocol::from_name(&cell.protocol).ok_or_else(|| {
        format!(
            "unknown protocol `{}` in sweep cell {}",
            cell.protocol, cell.index
        )
    })?;
    let topo = cell.topology.build(false);
    let hosts = topo.hosts().len();
    let host_bps = topo.links()[0].capacity_bps;
    Ok(match cell.scenario {
        SweepScenario::Incast => {
            let fan_in = ((cell.load * (hosts - 1) as f64).round() as usize).clamp(1, hosts - 1);
            let pairs = incast_pairs(&topo, fan_in, cell.seed);
            let deadline = transfer_deadline(fan_in as u64 * cell.size_bytes, host_bps);
            let impairments = cell.impairment.schedule(&topo, cell.seed, deadline);
            let summary = run_transfers_impaired(
                &protocol,
                topo,
                &pairs,
                cell.size_bytes,
                deadline,
                &impairments,
                cell.seed,
                partitions,
                partition_threads,
            );
            CellResult::from_transfers(cell.clone(), &summary)
        }
        SweepScenario::Shuffle => {
            let participants = ((cell.load * hosts as f64).round() as usize).clamp(2, hosts);
            let pairs = shuffle_pairs(&topo, Some(participants), cell.seed);
            let slowdown = worst_oversubscription(&topo);
            let deadline = transfer_deadline(
                (participants as u64 - 1) * cell.size_bytes,
                host_bps / slowdown,
            );
            let impairments = cell.impairment.schedule(&topo, cell.seed, deadline);
            let summary = run_transfers_impaired(
                &protocol,
                topo,
                &pairs,
                cell.size_bytes,
                deadline,
                &impairments,
                cell.seed,
                partitions,
                partition_threads,
            );
            CellResult::from_transfers(cell.clone(), &summary)
        }
        SweepScenario::Stride => {
            let pairs = stride_pairs(&topo, hosts / 2, cell.seed);
            let impairments = cell.impairment.schedule(&topo, cell.seed, STEADY_STATE_RUN);
            let summary = run_steady_state_impaired(
                &protocol,
                topo,
                &pairs,
                STEADY_STATE_RUN,
                &impairments,
                cell.seed,
                partitions,
                partition_threads,
            );
            CellResult::from_steady_state(cell.clone(), &summary)
        }
        SweepScenario::Churn => {
            let run = ChurnRun {
                topology: cell.topology,
                load: cell.load,
                fg_share: 0.25,
                arrival_window: CHURN_WINDOW,
                drain: CHURN_DRAIN,
                seed: cell.seed,
            };
            let impairments = cell.impairment.schedule(&topo, cell.seed, CHURN_WINDOW);
            let summary =
                run_churn_impaired(&protocol, &run, &impairments, partitions, partition_threads);
            CellResult::from_churn(cell.clone(), &summary)
        }
    })
}

/// Execute every cell on a work-stealing pool of `threads` workers and
/// return the results **in cell-index order** — the order, and therefore
/// the aggregate built from it, is independent of the thread count and of
/// which worker ran which cell.
///
/// `threads` is clamped to `1..=cells.len()`; with one thread the cells run
/// inline on the caller's thread through the identical per-cell path.
pub fn execute_cells(cells: Vec<SweepCell>, threads: usize) -> Result<Vec<CellResult>, String> {
    execute_cells_partitioned(cells, threads, 1, 1)
}

/// Extract a human-readable message from a caught panic payload (the two
/// shapes `panic!` produces in practice: `&str` and `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&'static str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// Run one cell with panics converted into structured errors that name the
/// cell and its scenario. Without this, a panicking cell unwinds its worker
/// mid-`lock()` and poisons the shared work deques — every *other* worker
/// then dies with an opaque "queue poisoned" panic and the identity of the
/// cell that actually failed is lost.
fn run_cell_caught(
    cell: &SweepCell,
    partitions: usize,
    partition_threads: usize,
) -> Result<CellResult, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_cell_partitioned(cell, partitions, partition_threads)
    }))
    .unwrap_or_else(|payload| {
        Err(format!(
            "sweep cell {} ({}) panicked: {}",
            cell.index,
            cell.scenario,
            panic_message(payload.as_ref())
        ))
    })
}

/// [`execute_cells`] with every cell's network decomposed into `partitions`
/// event cores on `partition_threads` worker threads — the parallelism
/// knobs compose: `--threads` spreads whole cells across workers,
/// `--partitions`/`--partition-threads` decompose each cell's fabric, and
/// none of them changes a byte of the aggregate.
pub fn execute_cells_partitioned(
    cells: Vec<SweepCell>,
    threads: usize,
    partitions: usize,
    partition_threads: usize,
) -> Result<Vec<CellResult>, String> {
    if cells.is_empty() {
        return Ok(Vec::new());
    }
    let threads = threads.clamp(1, cells.len());
    if threads == 1 {
        // Same contract as the pool: run every cell, report the
        // lowest-index error.
        let mut results = Vec::with_capacity(cells.len());
        let mut first_error = None;
        for cell in &cells {
            match run_cell_caught(cell, partitions, partition_threads) {
                Ok(r) => results.push(r),
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        return match first_error {
            Some(e) => Err(e),
            None => Ok(results),
        };
    }

    // One deque per worker, cells dealt round-robin. Workers pop their own
    // deque from the front and steal from the back of the others, so an
    // expensive cell at one worker's front doesn't strand the cells queued
    // behind it. Cell panics are caught in `run_cell_caught`, so a deque
    // mutex can only be poisoned by a panic in this pool code itself;
    // recovering the guard keeps the other workers draining rather than
    // cascading an unrelated failure.
    fn unpoisoned(q: &Mutex<VecDeque<usize>>) -> std::sync::MutexGuard<'_, VecDeque<usize>> {
        q.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
    let queues: Vec<Arc<Mutex<VecDeque<usize>>>> = (0..threads)
        .map(|w| {
            Arc::new(Mutex::new(
                (w..cells.len()).step_by(threads).collect::<VecDeque<_>>(),
            ))
        })
        .collect();
    let cells = Arc::new(cells);
    let (tx, rx) = mpsc::channel::<(usize, Result<CellResult, String>)>();

    let workers: Vec<_> = (0..threads)
        .map(|me| {
            let queues = queues.clone();
            let cells = Arc::clone(&cells);
            let tx = tx.clone();
            std::thread::spawn(move || {
                loop {
                    // Own work first (front), then steal (back).
                    let job = unpoisoned(&queues[me]).pop_front();
                    let job = job.or_else(|| {
                        (1..queues.len())
                            .find_map(|d| unpoisoned(&queues[(me + d) % queues.len()]).pop_back())
                    });
                    let Some(index) = job else { return };
                    let result = run_cell_caught(&cells[index], partitions, partition_threads);
                    if tx.send((index, result)).is_err() {
                        return;
                    }
                }
            })
        })
        .collect();
    drop(tx);

    // Every cell runs even when some fail, and the reported error is the
    // lowest-index one — so the error path, like the success path, does not
    // depend on scheduling or thread count.
    let mut slots: Vec<Option<CellResult>> = vec![None; cells.len()];
    let mut first_error: Option<(usize, String)> = None;
    for (index, result) in rx {
        match result {
            Ok(r) => slots[index] = Some(r),
            Err(e) => {
                if first_error.as_ref().is_none_or(|(i, _)| index < *i) {
                    first_error = Some((index, e));
                }
            }
        }
    }
    for worker in workers {
        if let Err(payload) = worker.join() {
            return Err(format!(
                "sweep pool worker panicked: {}",
                panic_message(payload.as_ref())
            ));
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.ok_or(format!("sweep cell {i} produced no result")))
        .collect()
}

/// The aggregated report of a sweep: the spec's axes and every per-cell
/// result, in cell-index order. Deliberately contains **no thread count and
/// no timing** — the report is a pure function of the spec, which is what
/// makes `--threads`-independence testable bit-for-bit.
pub fn sweep_report_json(spec: &SweepSpec, results: &[CellResult]) -> Json {
    let axis_strs = |it: Vec<String>| Json::Arr(it.into_iter().map(Json::Str).collect());
    Json::Obj(vec![
        (
            "sweep",
            Json::Obj(vec![
                ("base_seed", Json::Int(spec.base_seed)),
                ("cells", Json::Int(results.len() as u64)),
                (
                    "scenarios",
                    axis_strs(spec.scenarios.iter().map(|s| s.to_string()).collect()),
                ),
                (
                    "topologies",
                    axis_strs(spec.topologies.iter().map(|t| t.to_string()).collect()),
                ),
                ("protocols", axis_strs(spec.protocols.clone())),
                ("loads", Json::nums(spec.loads.iter().copied())),
                (
                    "sizes",
                    Json::Arr(spec.sizes.iter().map(|&s| Json::Int(s)).collect()),
                ),
                (
                    "impairments",
                    axis_strs(spec.impairments.iter().map(|i| i.to_string()).collect()),
                ),
                ("replicates", Json::Int(spec.replicates as u64)),
            ]),
        ),
        (
            "results",
            Json::Arr(results.iter().map(cell_report_json).collect()),
        ),
    ])
}

fn cell_report_json(result: &CellResult) -> Json {
    let cell = &result.cell;
    let opt_num = |v: Option<f64>| v.map_or(Json::Null, Json::Num);
    Json::Obj(vec![
        ("cell", Json::Int(cell.index as u64)),
        ("scenario", Json::str(cell.scenario.name())),
        ("topology", Json::str(cell.topology.to_string())),
        ("protocol", Json::str(cell.protocol.clone())),
        ("load", Json::Num(cell.load)),
        ("size_bytes", Json::Int(cell.size_bytes)),
        ("impairment", Json::str(cell.impairment.name())),
        ("replicate", Json::Int(cell.replicate as u64)),
        ("seed", Json::Int(cell.seed)),
        ("flows", Json::Int(result.flows as u64)),
        (
            "completed",
            result.completed.map_or(Json::Null, |c| Json::Int(c as u64)),
        ),
        ("median_fct_seconds", opt_num(result.median_fct_seconds)),
        ("p99_fct_seconds", opt_num(result.p99_fct_seconds)),
        ("goodput_bps", opt_num(result.goodput_bps)),
        ("steady_state_error", opt_num(result.steady_state_error)),
        (
            "fraction_within_10pct",
            opt_num(result.fraction_within_10pct),
        ),
    ])
}

/// Render the per-cell comparison as a GitHub-flavored markdown table:
/// one row per cell with FCT percentiles, completion and steady-state
/// error columns (`-` where a column does not apply to the scenario —
/// stride cells dash both load and size, which their simulation ignores,
/// so nobody attributes seed-driven variance between them to either axis).
pub fn markdown_table(results: &[CellResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| cell | scenario | topology | protocol | load | size | impair | seed | flows | completed | p50 FCT | p99 FCT | goodput | ss error |"
    );
    let _ = writeln!(
        out,
        "|-----:|----------|----------|----------|-----:|-----:|--------|-----:|------:|----------:|--------:|--------:|--------:|---------:|"
    );
    let dash = || "-".to_string();
    let ms = |v: Option<f64>| v.map_or_else(dash, |s| format!("{:.2} ms", s * 1e3));
    for r in results {
        let c = &r.cell;
        let is_stride = c.scenario == SweepScenario::Stride;
        // Churn ignores the size axis too: its sizes come from the mix's
        // heavy-tail distributions, not the grid.
        let sizeless = is_stride || c.scenario == SweepScenario::Churn;
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            c.index,
            c.scenario,
            c.topology,
            c.protocol,
            if is_stride {
                dash()
            } else {
                format!("{:.2}", c.load)
            },
            if sizeless {
                dash()
            } else if c.size_bytes.is_multiple_of(1000) {
                format!("{} kB", c.size_bytes / 1000)
            } else {
                format!("{} B", c.size_bytes)
            },
            c.impairment.name(),
            c.seed,
            r.flows,
            r.completed.map_or_else(dash, |n| n.to_string()),
            ms(r.median_fct_seconds),
            ms(r.p99_fct_seconds),
            r.goodput_bps
                .map_or_else(dash, |g| format!("{:.2} Gbps", g / 1e9)),
            r.steady_state_error
                .map_or_else(dash, |e| format!("{:.1}%", e * 100.0)),
        );
    }
    out
}

/// The `numfabric-run sweep` entry point: expand the grid from the options,
/// execute it on the pool, and print the aggregate (markdown table by
/// default, the structured JSON document with `--json`).
pub fn sweep(opts: &ScenarioOptions) {
    let spec = SweepSpec::try_from_options(opts).unwrap_or_else(|e| crate::fabric::cli_error(e));
    for name in &spec.protocols {
        if Protocol::from_name(name).is_none() {
            crate::fabric::cli_error(format!(
                "invalid value `{name}` for option `--protocols`: expected {}",
                Protocol::NAMES
            ));
        }
    }
    let cells = spec
        .expand()
        .unwrap_or_else(|e| crate::fabric::cli_error(e));
    let default_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads: usize = opts.parsed_or("--threads", default_threads);
    let partitions = crate::fabric::partitions_from_options(opts);
    let partition_threads = crate::fabric::partition_threads_from_options(opts);
    let json = opts.flag("--json");
    if !json {
        println!(
            "Sweep: {} cells ({} scenarios x {} topologies x {} protocols x {} loads x {} sizes x {} impairments x {} replicates) on {} threads\n",
            cells.len(),
            spec.scenarios.len(),
            spec.topologies.len(),
            spec.protocols.len(),
            spec.loads.len(),
            spec.sizes.len(),
            spec.impairments.len(),
            spec.replicates,
            threads.clamp(1, cells.len()),
        );
    }
    let start = Instant::now();
    let results = execute_cells_partitioned(cells, threads, partitions, partition_threads)
        .unwrap_or_else(|e| crate::fabric::cli_error(e));
    let wall = start.elapsed();
    if json {
        println!("{}", sweep_report_json(&spec, &results).render());
    } else {
        print!("{}", markdown_table(&results));
        println!(
            "\n{} cells in {:.2} s wall-clock. The table and the --json report are\n\
             bit-identical for any --threads, --partitions and --partition-threads\n\
             value — including under randomized loss/jitter profiles; only this\n\
             timing line and the thread count in the header vary.",
            results.len(),
            wall.as_secs_f64(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_workloads::fabric::TopologySpec;
    use numfabric_workloads::impairments::ImpairmentProfile;
    use numfabric_workloads::sweep::derive_cell_seed;

    fn mini_cell(scenario: SweepScenario, index: usize) -> SweepCell {
        SweepCell {
            index,
            scenario,
            topology: TopologySpec::FatTree { k: 4 },
            protocol: "numfabric".to_string(),
            load: 0.25,
            size_bytes: 50_000,
            impairment: ImpairmentProfile::None,
            replicate: 0,
            seed: derive_cell_seed(1, index as u64),
        }
    }

    #[test]
    fn incast_cell_runs_and_reports_fcts() {
        let result = run_cell(&mini_cell(SweepScenario::Incast, 0)).unwrap();
        // load 0.25 of 15 eligible senders on the 16-host fat-tree: 4 senders.
        assert_eq!(result.flows, 4);
        assert_eq!(result.completed, Some(4));
        assert!(result.median_fct_seconds.unwrap() > 0.0);
        assert!(result.p99_fct_seconds.unwrap() >= result.median_fct_seconds.unwrap());
        assert!(result.steady_state_error.is_none());
    }

    #[test]
    fn stride_cell_reports_oracle_error_not_fcts() {
        let result = run_cell(&mini_cell(SweepScenario::Stride, 1)).unwrap();
        assert_eq!(result.flows, 16);
        assert_eq!(result.completed, None);
        assert!(result.median_fct_seconds.is_none());
        let err = result.steady_state_error.unwrap();
        assert!((0.0..1.0).contains(&err), "mean relative error {err}");
        assert!(result.fraction_within_10pct.unwrap() > 0.0);
    }

    #[test]
    fn impaired_cells_run_and_are_replay_identical() {
        for profile in [
            ImpairmentProfile::Flap,
            ImpairmentProfile::Loss,
            ImpairmentProfile::Jitter,
        ] {
            let mut cell = mini_cell(SweepScenario::Incast, 2);
            cell.impairment = profile;
            let a = run_cell(&cell).unwrap();
            let b = run_cell(&cell).unwrap();
            assert_eq!(a.flows, b.flows, "{profile:?}");
            assert_eq!(a.completed, b.completed, "{profile:?}");
            assert_eq!(
                a.median_fct_seconds.map(f64::to_bits),
                b.median_fct_seconds.map(f64::to_bits),
                "{profile:?} replay diverged"
            );
            assert_eq!(
                a.goodput_bps.map(f64::to_bits),
                b.goodput_bps.map(f64::to_bits),
                "{profile:?} replay diverged"
            );
        }
    }

    #[test]
    fn unknown_protocol_is_an_error_not_a_panic() {
        let mut cell = mini_cell(SweepScenario::Incast, 0);
        cell.protocol = "tcp-reno".to_string();
        let err = run_cell(&cell).unwrap_err();
        assert!(err.contains("tcp-reno"));
        // And the pool surfaces it instead of hanging.
        let err = execute_cells(vec![cell], 4).unwrap_err();
        assert!(err.contains("tcp-reno"));
    }

    #[test]
    fn a_panicking_cell_reports_its_own_identity_not_a_poisoned_queue() {
        // FatTree{k:3} passes cell construction but panics inside the
        // topology builder ("fat-tree arity must be even"), exercising the
        // real unwind path through a running cell. The failure must name
        // the guilty cell and scenario — and the innocent cells around it
        // must still run to completion on every thread count.
        let mut cells: Vec<SweepCell> = (0..4)
            .map(|i| mini_cell(SweepScenario::Incast, i))
            .collect();
        cells[2].topology = TopologySpec::FatTree { k: 3 };
        for threads in [1, 2, 4] {
            let err = execute_cells(cells.clone(), threads).unwrap_err();
            assert!(
                err.contains("sweep cell 2") && err.contains("incast") && err.contains("panicked"),
                "threads={threads}: {err}"
            );
            assert!(
                !err.contains("queue poisoned"),
                "threads={threads}: a bystander worker reported the failure: {err}"
            );
        }
    }

    #[test]
    fn error_reporting_is_scheduling_independent() {
        // Two failing cells: whatever the thread count, every cell still
        // runs and the *lowest-index* failure is the one reported.
        let mut cells: Vec<SweepCell> = (0..4)
            .map(|i| mini_cell(SweepScenario::Incast, i))
            .collect();
        cells[1].protocol = "bad-one".to_string();
        cells[3].protocol = "bad-three".to_string();
        for threads in [1, 2, 4] {
            let err = execute_cells(cells.clone(), threads).unwrap_err();
            assert!(
                err.contains("bad-one") && err.contains("cell 1"),
                "threads={threads}: {err}"
            );
        }
    }

    #[test]
    fn executor_returns_results_in_cell_index_order() {
        let cells: Vec<SweepCell> = (0..4)
            .map(|i| mini_cell(SweepScenario::Incast, i))
            .collect();
        let results = execute_cells(cells, 3).unwrap();
        let indices: Vec<usize> = results.iter().map(|r| r.cell.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3]);
    }

    #[test]
    fn empty_grid_is_an_empty_report() {
        assert!(execute_cells(Vec::new(), 8).unwrap().is_empty());
    }

    #[test]
    fn markdown_table_has_one_row_per_cell_and_dashes_where_not_applicable() {
        let transfer = run_cell(&mini_cell(SweepScenario::Incast, 0)).unwrap();
        let steady = run_cell(&mini_cell(SweepScenario::Stride, 1)).unwrap();
        let table = markdown_table(&[transfer, steady]);
        let rows: Vec<&str> = table.lines().collect();
        assert_eq!(rows.len(), 2 + 2, "header + separator + 2 cells");
        assert!(rows[2].contains("incast") && rows[2].contains("Gbps"));
        assert!(rows[3].contains("stride") && rows[3].contains('%'));
        // Stride has no FCT columns; incast has no steady-state error.
        assert!(rows[3].contains(" - "));
        assert!(rows[2].trim_end().ends_with("- |"));
    }
}

//! Bandwidth functions (Google BwE-style policies, §2 and Fig. 2 of the
//! paper): an operator expresses "flow 1 has strict priority for its first
//! 10 Gbps, then flow 2 catches up at twice the slope" as two bandwidth
//! functions; NUMFabric realizes the induced allocation at every link speed
//! with no other changes.
//!
//! ```text
//! cargo run --release --example bandwidth_functions
//! ```

use numfabric::core::{install_numfabric, NumFabricAgent, NumFabricConfig};
use numfabric::num::bandwidth_function::{single_link_allocation, BandwidthFunction};
use numfabric::num::utility::BandwidthFunctionUtility;
use numfabric::sim::queue::StfqQueue;
use numfabric::sim::topology::{NodeKind, Topology};
use numfabric::sim::{Network, SimDuration, SimTime};

fn main() {
    let bwf1 = BandwidthFunction::paper_flow1();
    let bwf2 = BandwidthFunction::paper_flow2();

    println!("link_Gbps  flow1_expected  flow1_measured  flow2_expected  flow2_measured");
    for capacity_gbps in [10.0_f64, 25.0] {
        // Two senders, one switch, one receiver; the switch→receiver link is
        // the bottleneck of interest.
        let mut topo = Topology::new();
        let src1 = topo.add_node(NodeKind::Host, "src1");
        let src2 = topo.add_node(NodeKind::Host, "src2");
        let sw = topo.add_node(NodeKind::Leaf, "sw");
        let dst = topo.add_node(NodeKind::Host, "dst");
        let delay = SimDuration::from_micros(2);
        topo.add_duplex_link(src1, sw, 50e9, delay);
        topo.add_duplex_link(src2, sw, 50e9, delay);
        topo.add_duplex_link(sw, dst, capacity_gbps * 1e9, delay);

        let config = NumFabricConfig::paper_default();
        let mut net = Network::new(topo.clone(), |_| Box::new(StfqQueue::with_default_buffer()));
        install_numfabric(&mut net, &config);

        let f1 = net.add_flow_on_route(
            src1,
            dst,
            topo.route_via(&[src1, sw, dst]),
            None,
            SimTime::ZERO,
            None,
            Box::new(NumFabricAgent::new(
                config.clone(),
                BandwidthFunctionUtility::new(bwf1.clone()),
            )),
        );
        let f2 = net.add_flow_on_route(
            src2,
            dst,
            topo.route_via(&[src2, sw, dst]),
            None,
            SimTime::ZERO,
            None,
            Box::new(NumFabricAgent::new(
                config.clone(),
                BandwidthFunctionUtility::new(bwf2.clone()),
            )),
        );
        net.run_until(SimTime::from_millis(8));

        let (expected, _) = single_link_allocation(&[bwf1.clone(), bwf2.clone()], capacity_gbps);
        println!(
            "{:9.0}  {:14.2}  {:14.2}  {:14.2}  {:14.2}",
            capacity_gbps,
            expected[0],
            net.flow_rate_estimate(f1) / 1e9,
            expected[1],
            net.flow_rate_estimate(f2) / 1e9,
        );
    }
    println!(
        "\nAt 10 Gbps flow 1 takes the whole link (its strict-priority band); at 25 Gbps the\n\
         allocation is 15 / 10 Gbps — exactly the water-filling allocation of Figure 2."
    );
}

//! Link impairments: the event-level vocabulary for failing, flapping,
//! slowing, corrupting and jittering links mid-simulation.
//!
//! Production fabrics are not the healthy graphs the paper evaluates on —
//! links flap, optics degrade asymmetrically, and lossy cables silently cap
//! throughput. This module defines [`LinkChange`], the set of state changes
//! a link can undergo, applied by
//! [`crate::network::Network::schedule_link_change`] as **ordinary scheduled
//! events**: an impairment is just an [`crate::event::Event`] in the timing
//! wheel, dispatched in `(time, seq)` order like any packet arrival, so
//! replays of an impaired scenario stay bit-identical under the determinism
//! contract.
//!
//! Randomized impairments (per-packet loss, delay jitter) draw from
//! self-contained SplitMix64 streams owned by the `Network` — one stream
//! **per link**, derived from the seed passed to
//! [`crate::network::Network::set_impairment_seed`] via [`derive_link_seed`].
//! A link's stream advances only when that link transmits while impaired,
//! and a link's transmissions are serialized by its own queue regardless of
//! how the fabric is partitioned, so the draw sequence — and with it every
//! loss decision and jitter offset — is a pure function of the seed and the
//! scenario for **any** partition count and any worker-thread count. The
//! engine keeps its no-ambient-randomness property: an unimpaired
//! simulation never touches any stream.
//!
//! (Earlier revisions keyed the streams per *partition*, which made
//! randomized draws legitimately vary with `--partitions`. Per-link streams
//! removed that caveat: impaired reports are now bit-identical across
//! partition counts, and the determinism suite pins it.)
//!
//! Schedule construction (which link, when, how long) lives one layer up in
//! `numfabric-workloads`, next to the other seeded scenario builders; this
//! module is only the mechanism.

use crate::time::SimDuration;

/// One state change applied to a link at a scheduled instant.
///
/// Each variant is the *target state*, not a delta, so schedules replay
/// identically regardless of what state the link was in (a `Down` on an
/// already-down link is a no-op, a `Loss` overwrites the previous rate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkChange {
    /// Fail the link: its queue is drained and every queued packet dropped,
    /// packets still propagating toward the far end are lost on arrival, and
    /// enqueues while down are dropped. Flows pinned by ECMP choice are
    /// re-routed over the surviving paths (see
    /// [`crate::topology::Topology::host_route_avoiding`]).
    Down,
    /// Fail the link **asymmetrically**: the directed link dies exactly like
    /// [`LinkChange::Down`] (backlog dropped, in-flight packets lost on
    /// arrival, enqueues dropped), but ECMP reroute avoids *only this
    /// direction* — the reverse twin keeps carrying traffic, and a flow
    /// whose ACK path crosses the dead direction simply loses those ACKs.
    /// This models one-directional optic degradation, where the routing
    /// plane only learns about the direction that stopped carrying light.
    DownFwd,
    /// Restore a failed link. Flows return to the route their ECMP choice
    /// selects on the restored graph.
    Up,
    /// Change the link's capacity to `bits_per_second` (asymmetric speed
    /// changes: the reverse twin keeps its own capacity). The packet
    /// currently serializing keeps its old transmission time.
    Speed(f64),
    /// Drop each packet leaving this link with the given probability
    /// (`0.0..=1.0`), drawn from the network's seeded impairment stream.
    /// The packet still occupies the wire for its serialization time — the
    /// model is corruption on the cable, not at the queue.
    Loss(f64),
    /// Add a uniformly distributed extra propagation delay in
    /// `[0, max_extra]` to each packet leaving this link, drawn from the
    /// seeded impairment stream. Jitter can reorder packets of one flow.
    Jitter(SimDuration),
}

/// The per-link impairment state a [`crate::network::Network`] tracks at
/// runtime. Fresh links are up, lossless and jitter-free.
#[derive(Debug, Clone, Copy)]
pub struct LinkHealth {
    /// Whether the link is currently up.
    pub up: bool,
    /// Whether a down link failed asymmetrically ([`LinkChange::DownFwd`]):
    /// reroute then avoids only this direction, not the whole cable.
    /// Meaningless while `up` is true.
    pub asymmetric_down: bool,
    /// Per-packet loss probability on the wire.
    pub loss: f64,
    /// Maximum extra propagation delay added per packet.
    pub jitter: SimDuration,
}

impl Default for LinkHealth {
    fn default() -> Self {
        Self {
            up: true,
            asymmetric_down: false,
            loss: 0.0,
            jitter: SimDuration::ZERO,
        }
    }
}

impl LinkHealth {
    /// Whether this link needs a random draw per transmitted packet.
    pub fn is_randomized(&self) -> bool {
        self.loss > 0.0 || !self.jitter.is_zero()
    }
}

/// Advance a SplitMix64 state and return the next `u64`.
///
/// Spelled out here (rather than borrowed from the offline `rand` shim's
/// internal helper) for the same reason as the sweep's
/// `derive_cell_seed`: the shims must stay swappable for the real crates.io
/// crates by a manifest-only change, and `numfabric-sim` deliberately has no
/// `rand` dependency at all.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The next draw from `state` as a float in `[0, 1)`.
pub(crate) fn splitmix64_unit(state: &mut u64) -> f64 {
    // 53 mantissa bits, the standard u64 -> unit-interval construction.
    (splitmix64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Derive link `link`'s impairment-stream seed from the network's base
/// seed. Every link gets an independent SplitMix64-mixed stream (including
/// link 0 — mixing unconditionally keeps the base seed itself out of any
/// stream, so no two links can collide with each other or with the raw
/// seed). Because the stream is keyed by the link — not by whichever
/// partition happens to own it — the draw sequence is invariant under
/// domain decomposition: `--partitions N` and `--partition-threads T` never
/// change a loss decision or a jitter offset.
pub fn derive_link_seed(seed: u64, link: usize) -> u64 {
    // Mix the link index through one SplitMix64 step of a state offset by
    // golden-ratio multiples — the same construction the sweep engine uses
    // for per-cell seeds.
    let mut state = seed.wrapping_add(
        (link as u64)
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    splitmix64(&mut state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_health_is_pristine() {
        let h = LinkHealth::default();
        assert!(h.up && h.loss == 0.0 && h.jitter.is_zero());
        assert!(!h.is_randomized());
        assert!(LinkHealth {
            loss: 0.01,
            ..Default::default()
        }
        .is_randomized());
        assert!(LinkHealth {
            jitter: SimDuration::from_micros(1),
            ..Default::default()
        }
        .is_randomized());
    }

    #[test]
    fn splitmix_stream_is_deterministic_and_seed_sensitive() {
        let mut a = 42u64;
        let mut b = 42u64;
        let mut c = 43u64;
        let draws_a: Vec<u64> = (0..8).map(|_| splitmix64(&mut a)).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| splitmix64(&mut b)).collect();
        let draws_c: Vec<u64> = (0..8).map(|_| splitmix64(&mut c)).collect();
        assert_eq!(draws_a, draws_b);
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn link_seeds_are_distinct_deterministic_and_seed_sensitive() {
        let derived: Vec<u64> = (0..64).map(|l| derive_link_seed(42, l)).collect();
        for (i, &a) in derived.iter().enumerate() {
            for &b in &derived[i + 1..] {
                assert_ne!(a, b, "link streams must be distinct");
            }
        }
        // No link stream may equal the raw base seed either.
        assert!(derived.iter().all(|&s| s != 42));
        assert_eq!(derive_link_seed(42, 3), derive_link_seed(42, 3));
        assert_ne!(derive_link_seed(42, 3), derive_link_seed(43, 3));
    }

    #[test]
    fn unit_draws_stay_in_the_half_open_interval() {
        let mut s = 7u64;
        for _ in 0..1000 {
            let u = splitmix64_unit(&mut s);
            assert!((0.0..1.0).contains(&u), "{u}");
        }
    }
}

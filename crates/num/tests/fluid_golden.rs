//! Bit-identity regression tests for the fluid solvers.
//!
//! The scratch-buffer refactor (double-buffered prices, reusable max-min
//! workspace, in-place rate vectors) must not change a single bit of any
//! solver's output. The golden values below were captured from the
//! pre-refactor implementation (per-iteration `Vec` clones) after 50
//! iterations on the parking-lot network; the refactored solvers must still
//! reproduce them exactly, via both the snapshotting `step()` and the
//! allocation-free `step_in_place()` paths.

use numfabric_num::fluid::{DgdFluid, FluidAlgorithm, RcpStarFluid, XwiFluid};
use numfabric_num::utility::LogUtility;
use numfabric_num::FluidNetwork;

fn parking_lot(cap: f64) -> FluidNetwork {
    let mut net = FluidNetwork::new();
    let l0 = net.add_link(cap);
    let l1 = net.add_link(cap);
    net.add_simple_flow(vec![l0, l1], LogUtility::new());
    net.add_simple_flow(vec![l0], LogUtility::new());
    net.add_simple_flow(vec![l1], LogUtility::new());
    net
}

const XWI_RATES: [u64; 3] = [
    4599676419421066581,
    4604180019048437077,
    4604180019048437077,
];
const XWI_PRICES: [u64; 2] = [4609434218613702650, 4609434218613702650];
const DGD_RATES: [u64; 3] = [
    4603419386487290217,
    4607922986114660713,
    4607922986114660713,
];
const DGD_PRICES: [u64; 2] = [4605977699081395754, 4605977699081395754];
const RCP_RATES: [u64; 3] = [
    4599676419421066577,
    4604180019048437073,
    4604180019048437073,
];
const RCP_PRICES: [u64; 2] = [4604180019048437076, 4604180019048437076];

fn assert_bits(name: &str, got: &[f64], want: &[u64]) {
    let bits: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
    assert_eq!(
        bits, want,
        "{name} diverged from the pre-refactor golden run"
    );
}

#[test]
fn solvers_match_pre_refactor_golden_bits_via_step() {
    let net = parking_lot(1.0);
    let mut xwi = XwiFluid::with_defaults(net.clone());
    let mut dgd = DgdFluid::with_defaults(net.clone());
    let mut rcp = RcpStarFluid::with_defaults(net);
    for _ in 0..50 {
        xwi.step();
        dgd.step();
        rcp.step();
    }
    assert_bits("xWI rates", FluidAlgorithm::rates(&xwi), &XWI_RATES);
    assert_bits("xWI prices", FluidAlgorithm::prices(&xwi), &XWI_PRICES);
    assert_bits("DGD rates", dgd.rates(), &DGD_RATES);
    assert_bits("DGD prices", FluidAlgorithm::prices(&dgd), &DGD_PRICES);
    assert_bits("RCP* rates", rcp.rates(), &RCP_RATES);
    assert_bits("RCP* shares", FluidAlgorithm::prices(&rcp), &RCP_PRICES);
}

#[test]
fn step_and_step_in_place_are_bit_identical() {
    let net = parking_lot(1.0);
    let mut snap = XwiFluid::with_defaults(net.clone());
    let mut inplace = XwiFluid::with_defaults(net);
    for _ in 0..50 {
        let state = snap.step();
        inplace.step_in_place();
        assert_eq!(state.iteration, inplace.iteration());
        let a: Vec<u64> = state.rates.iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = inplace.rates().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }
}

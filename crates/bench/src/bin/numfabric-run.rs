//! `numfabric-run` — the unified scenario runner.
//!
//! Lists and dispatches every registered scenario (the paper's figures and
//! tables plus the generic semi-dynamic / dynamic drivers) by name:
//!
//! ```text
//! cargo run --release -p numfabric-bench --bin numfabric-run -- --list
//! cargo run --release -p numfabric-bench --bin numfabric-run -- fig4a --events 4
//! cargo run --release -p numfabric-bench --bin numfabric-run -- dynamic --protocol pfabric --load 0.4
//! ```
//!
//! Adding a workload is one entry in `numfabric_bench::figures::registry`,
//! not a new binary.

use numfabric_bench::registry;
use numfabric_workloads::registry::ScenarioOptions;
use std::process::ExitCode;

fn print_list() {
    let registry = registry();
    println!("Available scenarios (run with `numfabric-run <name> [options]`):\n");
    let width = registry
        .entries()
        .iter()
        .map(|s| s.name.len())
        .max()
        .unwrap_or(0);
    for spec in registry.entries() {
        println!("  {:width$}  {}", spec.name, spec.summary);
        if !spec.usage.is_empty() {
            println!("  {:width$}  options: {}", "", spec.usage);
        }
    }
    println!(
        "\nScenarios listing --full in their options run at the paper's scale with it;\n\
         the rest (fixed custom topologies / parameter tables) have a single scale."
    );
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--list" || args[0] == "list" {
        print_list();
        return ExitCode::SUCCESS;
    }
    if args[0] == "--help" || args[0] == "-h" || args[0] == "help" {
        println!("usage: numfabric-run --list | <scenario> [options]");
        print_list();
        return ExitCode::SUCCESS;
    }
    let name = args.remove(0);
    match registry().run(&name, &ScenarioOptions::new(args)) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("hint: `numfabric-run --list` shows every scenario");
            ExitCode::FAILURE
        }
    }
}

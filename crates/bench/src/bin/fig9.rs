//! Regenerate **Figure 9** — thin wrapper over
//! [`numfabric_bench::figures::fig9`] (also available as
//! `numfabric-run fig9`).

use numfabric_workloads::registry::ScenarioOptions;

fn main() {
    numfabric_bench::figures::fig9(&ScenarioOptions::from_env());
}

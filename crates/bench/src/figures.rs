//! Every figure of the paper's evaluation as a registry-dispatchable
//! function, plus generic `semi-dynamic` and `dynamic` drivers.
//!
//! The `figNN` binaries in `src/bin/` are thin wrappers over these
//! functions; the `numfabric-run` binary lists and dispatches all of them by
//! name through [`registry`]. Adding a workload means writing one function
//! here and one [`ScenarioSpec`] entry in [`registry`] — not a new binary.

use crate::dynamic::bdp_bytes;
use crate::report::{
    mean, percentile, print_cdf, print_table, quartiles, times_ms, FIG5_BIN_LABELS,
};
use crate::{
    generate_arrivals, rate_timeseries, run_dynamic, run_semi_dynamic, DynamicRun, Objective,
    Protocol, SemiDynamicRun,
};
use numfabric_baselines::{DctcpConfig, DgdConfig, PfabricConfig, RcpStarConfig};
use numfabric_core::protocol::{install_numfabric, numfabric_network};
use numfabric_core::{AggregateState, NumFabricAgent, NumFabricConfig};
use numfabric_num::bandwidth_function::{single_link_allocation, BandwidthFunction};
use numfabric_num::fluid::{iterations_to_oracle, DgdFluid, RcpStarFluid, XwiFluid};
use numfabric_num::utility::{AlphaFair, BandwidthFunctionUtility, LogUtility};
use numfabric_num::{FluidFlow, FluidNetwork, Oracle};
use numfabric_sim::queue::StfqQueue;
use numfabric_sim::topology::{LeafSpineConfig, NodeKind, Topology};
use numfabric_sim::{Network, SimDuration, SimTime};
use numfabric_workloads::distributions::{EmpiricalCdf, FlowSizeDistribution};
use numfabric_workloads::registry::{ScenarioOptions, ScenarioRegistry, ScenarioSpec};
use numfabric_workloads::scenarios::permutation_pairs;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// The registry of every runnable scenario: the paper's figures and tables
/// plus the generic semi-dynamic / dynamic drivers.
pub fn registry() -> ScenarioRegistry {
    let mut registry = ScenarioRegistry::new();
    registry.register(ScenarioSpec {
        name: "fig4a",
        summary: "CDF of convergence times: NUMFabric vs DGD vs RCP* (semi-dynamic)",
        usage: "[--events N] [--full] [--fluid]",
        run: fig4a,
    });
    registry.register(ScenarioSpec {
        name: "fig4bc",
        summary: "Rate time-series of one tracked flow: DCTCP noise vs NUMFabric",
        usage: "",
        run: fig4bc,
    });
    registry.register(ScenarioSpec {
        name: "fig5",
        summary: "Normalized rate deviation from Oracle per flow-size bin (dynamic)",
        usage: "[--workload websearch|enterprise] [--load F] [--full]",
        run: fig5,
    });
    registry.register(ScenarioSpec {
        name: "fig6",
        summary: "NUMFabric parameter sensitivity sweeps (dt / interval / alpha)",
        usage: "[--sweep dt|interval|alpha] [--events N]",
        run: fig6,
    });
    registry.register(ScenarioSpec {
        name: "fig7",
        summary: "Mean normalized FCT vs load: NUMFabric vs pFabric (web search)",
        usage: "[--full]",
        run: fig7,
    });
    registry.register(ScenarioSpec {
        name: "fig8",
        summary: "Resource pooling: multipath throughput vs number of subflows",
        usage: "[--full]",
        run: fig8,
    });
    registry.register(ScenarioSpec {
        name: "fig9",
        summary: "Bandwidth-function allocation on one bottleneck vs capacity sweep",
        usage: "",
        run: fig9,
    });
    registry.register(ScenarioSpec {
        name: "fig10",
        summary: "Bandwidth functions + resource pooling under a capacity change",
        usage: "",
        run: fig10,
    });
    registry.register(ScenarioSpec {
        name: "table2",
        summary: "Default parameter settings of every scheme",
        usage: "",
        run: table2,
    });
    registry.register(ScenarioSpec {
        name: "incast",
        summary: "N-to-1 incast transfers on any fabric (receiver NIC bottleneck)",
        usage: "[--topology fat-tree:k=4|leaf-spine|oversub:4:1] [--protocol ...] [--fanin N] [--size BYTES] [--impair SPEC] [--seed S] [--partitions N: per-partition event cores] [--partition-threads T: worker threads per epoch; both bit-identical for any value] [--json] [--full]",
        run: crate::fabric::incast,
    });
    registry.register(ScenarioSpec {
        name: "shuffle",
        summary: "All-to-all shuffle transfers among N hosts on any fabric",
        usage: "[--topology fat-tree:k=4|leaf-spine|oversub:4:1] [--protocol ...] [--hosts N] [--size BYTES] [--impair SPEC] [--seed S] [--partitions N: per-partition event cores] [--partition-threads T: worker threads per epoch; both bit-identical for any value] [--json] [--full]",
        run: crate::fabric::shuffle,
    });
    registry.register(ScenarioSpec {
        name: "stride",
        summary: "Stride permutation: steady-state rates vs the fluid oracle on any fabric",
        usage: "[--topology fat-tree:k=4|leaf-spine|oversub:4:1] [--protocol ...] [--stride N] [--millis MS] [--impair SPEC] [--seed S] [--partitions N: per-partition event cores] [--partition-threads T: worker threads per epoch; both bit-identical for any value] [--json] [--full]",
        run: crate::fabric::stride,
    });
    registry.register(ScenarioSpec {
        name: "recovery",
        summary: "Failure recovery: cut the busiest cable, measure time-to-reconverge vs the fluid oracle",
        usage: "[--topology fat-tree:k=4|leaf-spine|oversub:4:1] [--protocol ...|--compare numfabric,dctcp,...] [--stride N] [--millis MS] [--fail-us US] [--restore-us US] [--seed S] [--partitions N: per-partition event cores] [--partition-threads T: worker threads per epoch; both bit-identical for any value] [--json] [--full]",
        run: crate::recovery::recovery,
    });
    registry.register(ScenarioSpec {
        name: "churn",
        summary: "Open-loop Poisson churn with a fg/bg heavy-tail mix, streaming bounded stats on any fabric",
        usage: "[--topology fat-tree:k=8|leaf-spine|oversub:4:1] [--protocol ...] [--load F] [--fg-share F] [--millis MS] [--drain-millis MS] [--impair SPEC] [--seed S] [--partitions N: per-partition event cores] [--partition-threads T: worker threads per epoch; both bit-identical for any value] [--json]",
        run: crate::churn::churn,
    });
    registry.register(ScenarioSpec {
        name: "sweep",
        summary: "Parameter-sweep grid (scenarios x topologies x protocols x loads x sizes x impairments) on a thread pool",
        usage: "[--scenarios incast,shuffle,stride] [--topologies leaf-spine,fat-tree:k=4,oversub:4:1] [--protocols numfabric,dctcp,...] [--loads 0.5,...] [--sizes BYTES,...] [--impairments none,flap,loss,jitter] [--replicates N] [--seed S] [--threads N: worker threads, bit-identical report for any value] [--partitions N: per-partition event cores] [--partition-threads T: worker threads per epoch; both bit-identical for any value] [--json]",
        run: crate::sweep::sweep,
    });
    registry.register(ScenarioSpec {
        name: "bench",
        summary: "Perf measurement: event-core throughput and end-to-end scenario wall-clock, written to BENCH_<rev>.json",
        usage: "[--events N] [--rev REV] [--compare OLD.json: print per-metric deltas, exit 1 on >15% gated events/sec regression] [--json]",
        run: crate::perf::bench,
    });
    registry.register(ScenarioSpec {
        name: "semi-dynamic",
        summary: "Generic semi-dynamic convergence run for one protocol",
        usage: "[--protocol numfabric|dgd|rcp|dctcp|pfabric] [--events N] [--seed S] [--full]",
        run: semi_dynamic,
    });
    registry.register(ScenarioSpec {
        name: "dynamic",
        summary: "Generic Poisson-arrival dynamic workload for one protocol",
        usage: "[--protocol ...] [--workload websearch|enterprise] [--load F] [--seed S] [--full]",
        run: dynamic,
    });
    registry
}

/// Map a `--protocol` option value to a scheme with default parameters.
fn protocol_from_options(opts: &ScenarioOptions) -> Protocol {
    Protocol::from_options(opts)
}

// ---------------------------------------------------------------------------
// Figure 4a
// ---------------------------------------------------------------------------

fn fig4a_packet_level(events: usize, full: bool) {
    let run = if full {
        SemiDynamicRun::paper_scale(events, 1)
    } else {
        SemiDynamicRun::reduced(events, 1)
    };
    println!(
        "Figure 4a (packet level, {} scale): {} events, {} candidate paths\n",
        if full { "paper" } else { "reduced" },
        run.scenario.num_events,
        run.scenario.num_paths
    );

    let utility = Arc::new(LogUtility::new());
    let mut rows = Vec::new();
    let mut all: Vec<(String, Vec<f64>)> = Vec::new();
    for protocol in Protocol::convergence_contenders() {
        let result = run_semi_dynamic(&protocol, &run, utility.clone());
        let ms = times_ms(&result.times);
        rows.push(vec![
            result.protocol.clone(),
            format!("{}/{}", result.stats.converged, result.stats.total),
            result
                .stats
                .median
                .map(|d| format!("{:.0} us", d.as_micros_f64()))
                .unwrap_or_else(|| "-".into()),
            result
                .stats
                .p95
                .map(|d| format!("{:.0} us", d.as_micros_f64()))
                .unwrap_or_else(|| "-".into()),
        ]);
        all.push((result.protocol, ms));
    }
    print_table(&["scheme", "converged", "median", "p95"], &rows);
    println!();
    for (name, ms) in &all {
        print_cdf(&format!("{name} convergence time"), ms, "ms", 12);
        println!();
    }
    // Speed-up summary (the paper reports 2.3x median / 2.7x p95).
    let median_of = |name: &str| {
        all.iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, ms)| percentile(ms, 0.5))
    };
    if let (Some(nf), Some(dgd), Some(rcp)) =
        (median_of("NUMFabric"), median_of("DGD"), median_of("RCP*"))
    {
        println!(
            "median speed-up of NUMFabric: {:.1}x vs DGD, {:.1}x vs RCP*",
            dgd / nf,
            rcp / nf
        );
    }
}

fn fig4a_fluid_level(instances: usize) {
    println!("\nFluid-model comparison (iterations to reach within 5% of the oracle):");
    let mut xwi_iters = Vec::new();
    let mut dgd_iters = Vec::new();
    let mut rcp_iters = Vec::new();
    for seed in 0..instances as u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut net = FluidNetwork::new();
        for _ in 0..8 {
            net.add_link(rng.gen_range(5.0..40.0));
        }
        for _ in 0..24 {
            let a = rng.gen_range(0..8);
            let b = loop {
                let b = rng.gen_range(0..8);
                if b != a {
                    break b;
                }
            };
            net.add_flow(FluidFlow::new(vec![a, b], LogUtility::new()));
        }
        let oracle = Oracle::new().solve(&net);
        if !oracle.converged {
            continue;
        }
        let mut xwi = XwiFluid::with_defaults(net.clone());
        let mut dgd = DgdFluid::with_defaults(net.clone());
        let mut rcp = RcpStarFluid::with_defaults(net.clone());
        if let Some(i) = iterations_to_oracle(&mut xwi, &oracle, 0.05, 20_000) {
            xwi_iters.push(i as f64);
        }
        if let Some(i) = iterations_to_oracle(&mut dgd, &oracle, 0.05, 20_000) {
            dgd_iters.push(i as f64);
        }
        if let Some(i) = iterations_to_oracle(&mut rcp, &oracle, 0.05, 20_000) {
            rcp_iters.push(i as f64);
        }
    }
    print_table(
        &["scheme", "converged", "mean iters", "median iters"],
        &[
            vec![
                "xWI".into(),
                format!("{}/{}", xwi_iters.len(), instances),
                format!("{:.1}", mean(&xwi_iters).unwrap_or(f64::NAN)),
                format!("{:.1}", percentile(&xwi_iters, 0.5).unwrap_or(f64::NAN)),
            ],
            vec![
                "DGD".into(),
                format!("{}/{}", dgd_iters.len(), instances),
                format!("{:.1}", mean(&dgd_iters).unwrap_or(f64::NAN)),
                format!("{:.1}", percentile(&dgd_iters, 0.5).unwrap_or(f64::NAN)),
            ],
            vec![
                "RCP*".into(),
                format!("{}/{}", rcp_iters.len(), instances),
                format!("{:.1}", mean(&rcp_iters).unwrap_or(f64::NAN)),
                format!("{:.1}", percentile(&rcp_iters, 0.5).unwrap_or(f64::NAN)),
            ],
        ],
    );
}

/// Figure 4a: CDF of convergence times for NUMFabric, DGD and RCP* in the
/// semi-dynamic scenario (proportional fairness). `--fluid` additionally
/// reports fluid-model iteration counts on random instances.
pub fn fig4a(opts: &ScenarioOptions) {
    let full = opts.full();
    let events: usize = opts.parsed_or("--events", if full { 100 } else { 8 });
    fig4a_packet_level(events, full);
    if opts.flag("--fluid") {
        fig4a_fluid_level(20);
    }
}

// ---------------------------------------------------------------------------
// Figure 4b/4c
// ---------------------------------------------------------------------------

fn coefficient_of_variation(series: &[(f64, f64)], from_ms: f64) -> f64 {
    let vals: Vec<f64> = series
        .iter()
        .filter(|(t, _)| *t >= from_ms)
        .map(|&(_, r)| r)
        .collect();
    let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
    let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len().max(1) as f64;
    var.sqrt() / mean.max(1.0)
}

/// Figure 4b/4c: the rate of a typical DCTCP flow vs a typical NUMFabric
/// flow across several network events, measured with the 80 µs EWMA filter.
pub fn fig4bc(_opts: &ScenarioOptions) {
    let run = SemiDynamicRun::reduced(6, 7);
    let utility = Arc::new(LogUtility::new());
    let spacing = SimDuration::from_millis(4);
    let sample = SimDuration::from_micros(50);

    println!("Figure 4b/4c: rate of one tracked flow across network events\n");
    let mut summaries = Vec::new();
    for (label, protocol) in [
        ("DCTCP", Protocol::Dctcp(DctcpConfig::default())),
        ("NUMFabric", Protocol::NumFabric(NumFabricConfig::default())),
    ] {
        let series = rate_timeseries(&protocol, &run, utility.clone(), spacing, sample);
        println!("{label} rate time series (time_ms, rate_gbps):");
        let step = (series.len() / 60).max(1);
        for (i, (t, r)) in series.iter().enumerate() {
            if i % step == 0 {
                println!("  {:8.2} ms  {:6.2} Gbps", t, r / 1e9);
            }
        }
        println!();
        summaries.push(vec![
            label.to_string(),
            format!("{:.3}", coefficient_of_variation(&series, 2.0)),
        ]);
    }
    println!("Rate noisiness after warm-up (coefficient of variation of the 80us-filtered rate):");
    print_table(&["scheme", "coeff. of variation"], &summaries);
    println!(
        "\nExpected shape: DCTCP's filtered rate oscillates strongly (large CoV), so it never\n\
         stays within 10% of a target; NUMFabric's rate is comparatively steady between events."
    );
}

// ---------------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------------

/// Figure 5: normalized deviation from the Oracle's ideal rates, per
/// flow-size bin (in BDPs), for NUMFabric, DGD and RCP* under the dynamic
/// workloads.
pub fn fig5(opts: &ScenarioOptions) {
    let workload = opts.value("--workload").unwrap_or("websearch").to_string();
    let load = crate::fabric::parse_load_fraction(opts, 0.6);
    let full = opts.full();

    let dist: Box<dyn FlowSizeDistribution> = match workload.as_str() {
        "enterprise" => Box::new(EmpiricalCdf::enterprise()),
        _ => Box::new(EmpiricalCdf::web_search()),
    };

    let mut run = DynamicRun::reduced(load, 21);
    if full {
        run.topology = LeafSpineConfig::paper_default();
        run.arrival_window = SimDuration::from_millis(50);
        run.drain = SimDuration::from_millis(300);
    }
    let arrivals = generate_arrivals(&run, dist.as_ref());
    let bdp = bdp_bytes(&run.topology);
    println!(
        "Figure 5 ({} workload, load {:.0}%): {} flows, BDP = {:.0} kB\n",
        dist.name(),
        load * 100.0,
        arrivals.len(),
        bdp / 1e3
    );

    let mut rows: Vec<Vec<String>> = FIG5_BIN_LABELS
        .iter()
        .map(|l| vec![l.to_string()])
        .collect();
    let mut headers = vec!["size (BDPs)"];

    for protocol in Protocol::convergence_contenders() {
        headers.push(match protocol.name() {
            "NUMFabric" => "NUMFabric  p25/med/p75",
            "DGD" => "DGD  p25/med/p75",
            _ => "RCP*  p25/med/p75",
        });
        let results = run_dynamic(&protocol, &run, &arrivals, Objective::ProportionalFairness);
        // Bin by flow size in BDPs.
        let mut bins: Vec<Vec<f64>> = vec![Vec::new(); FIG5_BIN_LABELS.len()];
        for r in &results {
            if let (Some(dev), Some(bin)) = (
                r.rate_deviation(),
                crate::report::fig5_bin(r.size_in_bdp(bdp)),
            ) {
                bins[bin].push(dev);
            }
        }
        for (bin, devs) in bins.iter().enumerate() {
            let cell = match quartiles(devs) {
                Some((q1, q2, q3)) => format!("{q1:+.2}/{q2:+.2}/{q3:+.2} (n={})", devs.len()),
                None => "-".to_string(),
            };
            rows[bin].push(cell);
        }
        let finished = results.iter().filter(|r| r.fct.is_some()).count();
        eprintln!(
            "  [{}] {}/{} flows completed",
            protocol.name(),
            finished,
            results.len()
        );
    }

    print_table(&headers, &rows);
    println!(
        "\nExpected shape (paper): NUMFabric's median deviation is near zero for every bin above\n\
         ~5 BDP; DGD and RCP* are negatively biased (flows get less than the ideal rate), worst\n\
         for small flows that finish before those schemes converge."
    );
}

// ---------------------------------------------------------------------------
// Figure 6
// ---------------------------------------------------------------------------

fn fig6_median_convergence(
    config: NumFabricConfig,
    alpha: f64,
    seed: u64,
    events: usize,
) -> (String, String) {
    let run = SemiDynamicRun::reduced(events, seed);
    let protocol = Protocol::NumFabric(config);
    let result = run_semi_dynamic(&protocol, &run, Arc::new(AlphaFair::new(alpha)));
    let median = result
        .stats
        .median
        .map(|d| format!("{:.0} us", d.as_micros_f64()))
        .unwrap_or_else(|| "did not converge".into());
    let converged = format!("{}/{}", result.stats.converged, result.stats.total);
    (median, converged)
}

fn fig6_sweep_dt(events: usize) {
    println!("Figure 6a: sensitivity to the Swift delay slack dt (proportional fairness)\n");
    let mut rows = Vec::new();
    for dt_us in [3u64, 6, 12, 24] {
        let cfg = NumFabricConfig::default().with_dt(SimDuration::from_micros(dt_us));
        let (median, converged) = fig6_median_convergence(cfg, 1.0, 11, events);
        rows.push(vec![format!("{dt_us} us"), median, converged]);
    }
    print_table(&["dt", "median convergence", "events converged"], &rows);
    println!();
}

fn fig6_sweep_interval(events: usize) {
    println!("Figure 6b: sensitivity to the xWI price update interval\n");
    let mut rows = Vec::new();
    for us in [30u64, 60, 90, 128] {
        let cfg =
            NumFabricConfig::default().with_price_update_interval(SimDuration::from_micros(us));
        let (median, converged) = fig6_median_convergence(cfg, 1.0, 12, events);
        rows.push(vec![format!("{us} us"), median, converged]);
    }
    print_table(
        &[
            "price update interval",
            "median convergence",
            "events converged",
        ],
        &rows,
    );
    println!();
}

fn fig6_sweep_alpha(events: usize) {
    println!("Figure 6c: sensitivity to alpha (1x = default parameters, 2x = slowed down)\n");
    let mut rows = Vec::new();
    for &alpha in &[0.25, 0.5, 1.0, 2.0, 4.0] {
        let (median_1x, conv_1x) =
            fig6_median_convergence(NumFabricConfig::default(), alpha, 13, events);
        let (median_2x, conv_2x) =
            fig6_median_convergence(NumFabricConfig::slowed_down(2.0), alpha, 13, events);
        rows.push(vec![
            format!("{alpha}"),
            median_1x,
            conv_1x,
            median_2x,
            conv_2x,
        ]);
    }
    print_table(
        &[
            "alpha",
            "1x median",
            "1x converged",
            "2x median",
            "2x converged",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): extreme alpha values fail to converge reliably at 1x but\n\
         converge at 2x slow-down, at a modest cost in median convergence time."
    );
}

/// Figure 6: NUMFabric parameter sensitivity (`--sweep dt|interval|alpha`,
/// default all three).
pub fn fig6(opts: &ScenarioOptions) {
    let events: usize = opts.parsed_or("--events", 5);
    match opts.value("--sweep") {
        Some("dt") => fig6_sweep_dt(events),
        Some("interval") => fig6_sweep_interval(events),
        Some("alpha") => fig6_sweep_alpha(events),
        _ => {
            fig6_sweep_dt(events);
            fig6_sweep_interval(events);
            fig6_sweep_alpha(events);
        }
    }
}

// ---------------------------------------------------------------------------
// Figure 7
// ---------------------------------------------------------------------------

/// Figure 7: mean normalized FCT vs load for NUMFabric (FCT-minimization
/// utility, 2× slow-down, BDP initial window) against pFabric.
pub fn fig7(opts: &ScenarioOptions) {
    let loads: Vec<f64> = if opts.full() {
        vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
    } else {
        vec![0.2, 0.4, 0.6, 0.8]
    };
    let dist = EmpiricalCdf::web_search();
    println!("Figure 7: mean normalized FCT vs load (web-search workload)\n");

    // NUMFabric for FCT minimization: 2x slow-down and a BDP initial window
    // (mimicking pFabric), as described in §6.3.
    let nf_config = NumFabricConfig::slowed_down(2.0)
        .with_bdp_initial_window(10e9, SimDuration::from_micros(16));

    let mut rows = Vec::new();
    for &load in &loads {
        let run = DynamicRun::reduced(load, 31);
        let arrivals = generate_arrivals(&run, &dist);

        let mut cells = vec![
            format!("{:.0}%", load * 100.0),
            format!("{}", arrivals.len()),
        ];
        let mut means = Vec::new();
        for protocol in [
            Protocol::NumFabric(nf_config.clone()),
            Protocol::Pfabric(PfabricConfig::default()),
        ] {
            let results = run_dynamic(&protocol, &run, &arrivals, Objective::FctMinimization);
            let normalized: Vec<f64> = results.iter().filter_map(|r| r.normalized_fct()).collect();
            let unfinished = results.len() - normalized.len();
            let m = mean(&normalized).unwrap_or(f64::NAN);
            means.push(m);
            cells.push(format!("{m:.2}{}", if unfinished > 0 { "*" } else { "" }));
        }
        cells.push(format!("{:.2}", means[0] / means[1]));
        rows.push(cells);
    }
    print_table(
        &["load", "flows", "NUMFabric", "pFabric", "NUMFabric/pFabric"],
        &rows,
    );
    println!(
        "\n(* some flows had not completed when the simulation ended and are excluded)\n\
         Expected shape (paper): NUMFabric tracks pFabric within ~4-20% across loads."
    );
}

// ---------------------------------------------------------------------------
// Figure 8
// ---------------------------------------------------------------------------

/// Run the permutation workload with `subflows` subflows per pair. Returns
/// per-pair aggregate throughputs in bits per second.
fn fig8_run_permutation(
    topo_cfg: &LeafSpineConfig,
    subflows: usize,
    pooling: bool,
    seed: u64,
) -> Vec<f64> {
    let topo = Topology::leaf_spine(topo_cfg);
    let pairs = permutation_pairs(&topo, seed);
    let config = NumFabricConfig::default();
    let mut net: Network = numfabric_network(topo, &config);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xf1f0);

    let mut pair_flows: Vec<Vec<usize>> = Vec::with_capacity(pairs.len());
    for (pair_idx, pair) in pairs.iter().enumerate() {
        let handles = AggregateState::create(subflows);
        let mut ids = Vec::with_capacity(subflows);
        for handle in handles {
            let spine = rng.gen_range(0..topo_cfg.spines.max(1));
            let agent = if pooling {
                NumFabricAgent::new(config.clone(), LogUtility::new()).with_aggregate(handle)
            } else {
                NumFabricAgent::new(config.clone(), LogUtility::new())
            };
            let id = net.add_flow(
                pair.src,
                pair.dst,
                None,
                SimTime::ZERO,
                spine,
                Some(pair_idx),
                Box::new(agent),
            );
            ids.push(id);
        }
        pair_flows.push(ids);
    }
    net.run_until(SimTime::from_millis(12));
    pair_flows
        .iter()
        .map(|ids| ids.iter().map(|&id| net.flow_rate_estimate(id)).sum())
        .collect()
}

/// Figure 8: resource pooling with multipath NUMFabric on permutation
/// traffic — total and per-pair throughput vs number of subflows.
pub fn fig8(opts: &ScenarioOptions) {
    let full = opts.full();
    let topo_cfg = if full {
        LeafSpineConfig::resource_pooling()
    } else {
        // Same shape, smaller: 32 hosts, 4 leaves, 8 spines, all 10 Gbps.
        LeafSpineConfig {
            hosts: 32,
            leaves: 4,
            spines: 8,
            host_link_bps: 10e9,
            fabric_link_bps: 10e9,
            ..LeafSpineConfig::resource_pooling()
        }
    };
    let pairs = topo_cfg.hosts / 2;
    let optimal_total = pairs as f64 * topo_cfg.host_link_bps;

    println!(
        "Figure 8a: total throughput (% of optimal) vs number of subflows ({} pairs)\n",
        pairs
    );
    let subflow_counts: Vec<usize> = if full {
        (1..=8).collect()
    } else {
        vec![1, 2, 4, 8]
    };
    let mut rows = Vec::new();
    let mut pooled_8: Vec<f64> = Vec::new();
    let mut unpooled_8: Vec<f64> = Vec::new();
    for &k in &subflow_counts {
        let pooled = fig8_run_permutation(&topo_cfg, k, true, 5);
        let unpooled = fig8_run_permutation(&topo_cfg, k, false, 5);
        if k == *subflow_counts.last().unwrap() {
            pooled_8 = pooled.clone();
            unpooled_8 = unpooled.clone();
        }
        rows.push(vec![
            format!("{k}"),
            format!("{:.1}%", pooled.iter().sum::<f64>() / optimal_total * 100.0),
            format!(
                "{:.1}%",
                unpooled.iter().sum::<f64>() / optimal_total * 100.0
            ),
        ]);
    }
    print_table(
        &["subflows", "resource pooling", "no resource pooling"],
        &rows,
    );

    println!(
        "\nFigure 8b: per-pair throughput (% of optimal), ranked, with {} subflows\n",
        subflow_counts.last().unwrap()
    );
    let mut ranked_pooled: Vec<f64> = pooled_8
        .iter()
        .map(|r| r / topo_cfg.host_link_bps * 100.0)
        .collect();
    let mut ranked_unpooled: Vec<f64> = unpooled_8
        .iter()
        .map(|r| r / topo_cfg.host_link_bps * 100.0)
        .collect();
    ranked_pooled.sort_by(|a, b| b.partial_cmp(a).unwrap());
    ranked_unpooled.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let rows: Vec<Vec<String>> = ranked_pooled
        .iter()
        .zip(&ranked_unpooled)
        .enumerate()
        .map(|(rank, (p, u))| {
            vec![
                format!("{}", rank + 1),
                format!("{p:.1}%"),
                format!("{u:.1}%"),
            ]
        })
        .collect();
    print_table(&["rank", "resource pooling", "no resource pooling"], &rows);
    println!(
        "\nExpected shape (paper): with 8 subflows, resource pooling reaches close to 100% of the\n\
         optimal total throughput and the per-pair throughputs are nearly equal; without pooling\n\
         the total is lower and the spread across pairs much wider."
    );
}

// ---------------------------------------------------------------------------
// Figure 9
// ---------------------------------------------------------------------------

/// Two senders, one switch, one receiver; the switch→receiver link is the
/// bottleneck whose capacity is swept.
fn fig9_build_topology(bottleneck_gbps: f64) -> (Topology, Vec<usize>) {
    let mut topo = Topology::new();
    let src1 = topo.add_node(NodeKind::Host, "src1");
    let src2 = topo.add_node(NodeKind::Host, "src2");
    let sw = topo.add_node(NodeKind::Leaf, "sw");
    let dst = topo.add_node(NodeKind::Host, "dst");
    let delay = SimDuration::from_micros(2);
    topo.add_duplex_link(src1, sw, 50e9, delay);
    topo.add_duplex_link(src2, sw, 50e9, delay);
    topo.add_duplex_link(sw, dst, bottleneck_gbps * 1e9, delay);
    (topo, vec![src1, src2, sw, dst])
}

/// Figure 9: bandwidth-function allocation on a single bottleneck whose
/// capacity is swept from 5 to 35 Gbps, compared to BwE water-filling.
pub fn fig9(_opts: &ScenarioOptions) {
    let capacities: Vec<f64> = vec![5.0, 10.0, 15.0, 17.0, 20.0, 25.0, 30.0, 35.0];
    let config = NumFabricConfig::default();
    println!("Figure 9: two flows with the Figure-2 bandwidth functions on one bottleneck\n");

    let mut rows = Vec::new();
    for &cap in &capacities {
        let (topo, nodes) = fig9_build_topology(cap);
        let (src1, src2, sw, dst) = (nodes[0], nodes[1], nodes[2], nodes[3]);
        let mut net = Network::new(topo.clone(), |_| Box::new(StfqQueue::with_default_buffer()));
        install_numfabric(&mut net, &config);

        let bwf1 = BandwidthFunction::paper_flow1();
        let bwf2 = BandwidthFunction::paper_flow2();
        let f1 = net.add_flow_on_route(
            src1,
            dst,
            topo.route_via(&[src1, sw, dst]),
            None,
            SimTime::ZERO,
            None,
            Box::new(NumFabricAgent::new(
                config.clone(),
                BandwidthFunctionUtility::new(bwf1.clone()),
            )),
        );
        let f2 = net.add_flow_on_route(
            src2,
            dst,
            topo.route_via(&[src2, sw, dst]),
            None,
            SimTime::ZERO,
            None,
            Box::new(NumFabricAgent::new(
                config.clone(),
                BandwidthFunctionUtility::new(bwf2.clone()),
            )),
        );
        net.run_until(SimTime::from_millis(10));

        let measured1 = net.flow_rate_estimate(f1) / 1e9;
        let measured2 = net.flow_rate_estimate(f2) / 1e9;
        let (expected, _) = single_link_allocation(&[bwf1, bwf2], cap);
        rows.push(vec![
            format!("{cap:.0} Gbps"),
            format!("{:.2}", expected[0]),
            format!("{measured1:.2}"),
            format!("{:.2}", expected[1]),
            format!("{measured2:.2}"),
        ]);
    }
    print_table(
        &[
            "link capacity",
            "flow1 expected",
            "flow1 measured",
            "flow2 expected",
            "flow2 measured",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): the measured allocation tracks the bandwidth-function\n\
         water-filling allocation across all capacities (flow 1 takes everything up to 10 Gbps,\n\
         flow 2 then catches up at twice the slope until it saturates at 10 Gbps)."
    );
}

// ---------------------------------------------------------------------------
// Figure 10
// ---------------------------------------------------------------------------

/// Figure 10: bandwidth functions combined with resource pooling under a
/// mid-run capacity change on the shared middle link.
pub fn fig10(_opts: &ScenarioOptions) {
    let delay = SimDuration::from_micros(2);
    let mut topo = Topology::new();
    let src1 = topo.add_node(NodeKind::Host, "src1");
    let src2 = topo.add_node(NodeKind::Host, "src2");
    let sw1 = topo.add_node(NodeKind::Leaf, "sw1");
    let sw2 = topo.add_node(NodeKind::Leaf, "sw2");
    let sw_mid_in = topo.add_node(NodeKind::Spine, "mid-in");
    let sw_mid_out = topo.add_node(NodeKind::Spine, "mid-out");
    let dst1 = topo.add_node(NodeKind::Host, "dst1");
    let dst2 = topo.add_node(NodeKind::Host, "dst2");

    topo.add_duplex_link(src1, sw1, 100e9, delay);
    topo.add_duplex_link(src2, sw2, 100e9, delay);
    // Private paths: 5 Gbps "top" link for flow 1, 3 Gbps "bottom" for flow 2.
    topo.add_duplex_link(sw1, dst1, 5e9, delay);
    topo.add_duplex_link(sw2, dst2, 3e9, delay);
    // Shared middle link (initially 5 Gbps) reachable from both sources.
    topo.add_duplex_link(sw1, sw_mid_in, 100e9, delay);
    topo.add_duplex_link(sw2, sw_mid_in, 100e9, delay);
    let (mid_fwd, _mid_rev) = topo.add_duplex_link(sw_mid_in, sw_mid_out, 5e9, delay);
    topo.add_duplex_link(sw_mid_out, dst1, 100e9, delay);
    topo.add_duplex_link(sw_mid_out, dst2, 100e9, delay);

    let config = NumFabricConfig::default();
    let mut net = Network::new(topo.clone(), |_| Box::new(StfqQueue::with_default_buffer()));
    install_numfabric(&mut net, &config);

    // Flow 1: aggregate over {top path, middle path} with bandwidth function 1.
    let handles1 = AggregateState::create(2);
    let u1 = || BandwidthFunctionUtility::new(BandwidthFunction::paper_flow1());
    let f1a = net.add_flow_on_route(
        src1,
        dst1,
        topo.route_via(&[src1, sw1, dst1]),
        None,
        SimTime::ZERO,
        Some(1),
        Box::new(NumFabricAgent::new(config.clone(), u1()).with_aggregate(handles1[0].clone())),
    );
    let f1b = net.add_flow_on_route(
        src1,
        dst1,
        topo.route_via(&[src1, sw1, sw_mid_in, sw_mid_out, dst1]),
        None,
        SimTime::ZERO,
        Some(1),
        Box::new(NumFabricAgent::new(config.clone(), u1()).with_aggregate(handles1[1].clone())),
    );
    // Flow 2: aggregate over {bottom path, middle path} with bandwidth function 2.
    let handles2 = AggregateState::create(2);
    let u2 = || BandwidthFunctionUtility::new(BandwidthFunction::paper_flow2());
    let f2a = net.add_flow_on_route(
        src2,
        dst2,
        topo.route_via(&[src2, sw2, dst2]),
        None,
        SimTime::ZERO,
        Some(2),
        Box::new(NumFabricAgent::new(config.clone(), u2()).with_aggregate(handles2[0].clone())),
    );
    let f2b = net.add_flow_on_route(
        src2,
        dst2,
        topo.route_via(&[src2, sw2, sw_mid_in, sw_mid_out, dst2]),
        None,
        SimTime::ZERO,
        Some(2),
        Box::new(NumFabricAgent::new(config.clone(), u2()).with_aggregate(handles2[1].clone())),
    );

    println!("Figure 10: aggregate throughput of the two flows; middle link 5 Gbps -> 17 Gbps at t = 5 ms\n");
    println!("  time_ms   flow1_Gbps   flow2_Gbps");
    let switch_at = SimTime::from_millis(5);
    let end = SimTime::from_millis(10);
    let mut t = SimTime::ZERO;
    let mut switched = false;
    while t < end {
        t += SimDuration::from_micros(200);
        if !switched && t >= switch_at {
            net.set_link_capacity(mid_fwd, 17e9);
            switched = true;
            println!("  -- middle link capacity changed to 17 Gbps --");
        }
        net.run_until(t);
        let flow1 = (net.flow_rate_estimate(f1a) + net.flow_rate_estimate(f1b)) / 1e9;
        let flow2 = (net.flow_rate_estimate(f2a) + net.flow_rate_estimate(f2b)) / 1e9;
        println!(
            "  {:7.2}   {:10.2}   {:10.2}",
            t.as_secs_f64() * 1e3,
            flow1,
            flow2
        );
    }
    println!(
        "\nExpected shape (paper): ~(10, 3) Gbps while the middle link is 5 Gbps (flow 1 gets the\n\
         whole middle link), switching quickly to ~(15, 10) Gbps once it becomes 17 Gbps."
    );
}

// ---------------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------------

/// Table 2: the default parameter settings of every scheme.
pub fn table2(_opts: &ScenarioOptions) {
    println!("Table 2: default parameter settings in simulations\n");

    let nf = NumFabricConfig::paper_default();
    let dgd = DgdConfig::default();
    let rcp = RcpStarConfig::default();

    println!("NUMFabric [Table 2 of the paper]");
    print_table(
        &["parameter", "value"],
        &[
            vec!["ewmaTime".into(), format!("{}", nf.ewma_time)],
            vec!["dt".into(), format!("{}", nf.dt)],
            vec![
                "priceUpdateInterval".into(),
                format!("{}", nf.price_update_interval),
            ],
            vec!["eta (Eq. 10)".into(), format!("{}", nf.eta)],
            vec!["beta (Eq. 11)".into(), format!("{}", nf.beta)],
            vec![
                "initial burst".into(),
                format!("{} packets", nf.initial_burst_packets),
            ],
        ],
    );

    println!("\nDGD [Eq. 14] (gains adapted to Gbps/byte units; see DESIGN.md)");
    print_table(
        &["parameter", "value"],
        &[
            vec![
                "priceUpdateInterval".into(),
                format!("{}", dgd.price_update_interval),
            ],
            vec!["a".into(), format!("{:e} per Gbps", dgd.a_per_gbps)],
            vec!["b".into(), format!("{:e} per byte", dgd.b_per_byte)],
            vec!["unacked cap".into(), format!("{} BDP", dgd.unacked_cap_bdp)],
        ],
    );

    println!("\nRCP* [Eq. 15]");
    print_table(
        &["parameter", "value"],
        &[
            vec![
                "rateUpdateInterval".into(),
                format!("{}", rcp.rate_update_interval),
            ],
            vec!["a".into(), format!("{}", rcp.a)],
            vec!["b".into(), format!("{}", rcp.b)],
            vec!["alpha".into(), format!("{}", rcp.alpha)],
        ],
    );
}

// ---------------------------------------------------------------------------
// Generic drivers
// ---------------------------------------------------------------------------

/// Generic semi-dynamic convergence run for one protocol (pick with
/// `--protocol`).
pub fn semi_dynamic(opts: &ScenarioOptions) {
    let full = opts.full();
    let events: usize = opts.parsed_or("--events", if full { 100 } else { 8 });
    let seed: u64 = opts.parsed_or("--seed", 1);
    let run = if full {
        SemiDynamicRun::paper_scale(events, seed)
    } else {
        SemiDynamicRun::reduced(events, seed)
    };
    let protocol = protocol_from_options(opts);
    println!(
        "Semi-dynamic run: {} on {} events, seed {}, {} scale\n",
        protocol.name(),
        events,
        seed,
        if full { "paper" } else { "reduced" }
    );
    let result = run_semi_dynamic(&protocol, &run, Arc::new(LogUtility::new()));
    print_table(
        &["scheme", "converged", "median", "p95"],
        &[vec![
            result.protocol.clone(),
            format!("{}/{}", result.stats.converged, result.stats.total),
            result
                .stats
                .median
                .map(|d| format!("{:.0} us", d.as_micros_f64()))
                .unwrap_or_else(|| "-".into()),
            result
                .stats
                .p95
                .map(|d| format!("{:.0} us", d.as_micros_f64()))
                .unwrap_or_else(|| "-".into()),
        ]],
    );
}

/// Generic Poisson-arrival dynamic workload for one protocol (pick with
/// `--protocol`, `--workload`, `--load`).
pub fn dynamic(opts: &ScenarioOptions) {
    let load = crate::fabric::parse_load_fraction(opts, 0.6);
    let seed: u64 = opts.parsed_or("--seed", 21);
    let dist: Box<dyn FlowSizeDistribution> = match opts.value("--workload").unwrap_or("websearch")
    {
        "enterprise" => Box::new(EmpiricalCdf::enterprise()),
        _ => Box::new(EmpiricalCdf::web_search()),
    };
    let mut run = DynamicRun::reduced(load, seed);
    if opts.full() {
        run.topology = LeafSpineConfig::paper_default();
        run.arrival_window = SimDuration::from_millis(50);
        run.drain = SimDuration::from_millis(300);
    }
    let arrivals = generate_arrivals(&run, dist.as_ref());
    let protocol = protocol_from_options(opts);
    println!(
        "Dynamic run: {} on the {} workload at {:.0}% load, {} flows\n",
        protocol.name(),
        dist.name(),
        load * 100.0,
        arrivals.len()
    );
    let results = run_dynamic(&protocol, &run, &arrivals, Objective::ProportionalFairness);
    let normalized: Vec<f64> = results.iter().filter_map(|r| r.normalized_fct()).collect();
    let finished = results.iter().filter(|r| r.fct.is_some()).count();
    print_table(
        &["flows", "completed", "mean norm. FCT", "p95 norm. FCT"],
        &[vec![
            format!("{}", results.len()),
            format!("{finished}"),
            format!("{:.2}", mean(&normalized).unwrap_or(f64::NAN)),
            format!("{:.2}", percentile(&normalized, 0.95).unwrap_or(f64::NAN)),
        ]],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_every_figure_scenario() {
        let registry = registry();
        for name in [
            "fig4a",
            "fig4bc",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "table2",
            "incast",
            "shuffle",
            "stride",
            "recovery",
            "churn",
            "sweep",
            "bench",
            "semi-dynamic",
            "dynamic",
        ] {
            assert!(registry.get(name).is_some(), "missing scenario `{name}`");
        }
        assert!(registry.get("fig99").is_none());
    }

    #[test]
    fn protocol_option_maps_names() {
        let opt = |v: &str| ScenarioOptions::new(vec!["--protocol".into(), v.into()]);
        assert_eq!(protocol_from_options(&opt("dgd")).name(), "DGD");
        assert_eq!(protocol_from_options(&opt("rcp")).name(), "RCP*");
        assert_eq!(protocol_from_options(&opt("dctcp")).name(), "DCTCP");
        assert_eq!(protocol_from_options(&opt("pfabric")).name(), "pFabric");
        assert_eq!(
            protocol_from_options(&ScenarioOptions::default()).name(),
            "NUMFabric"
        );
    }

    #[test]
    fn table2_runs_without_panicking() {
        table2(&ScenarioOptions::default());
    }
}

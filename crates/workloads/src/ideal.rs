//! The ideal (Oracle) fluid simulation used as the reference for the dynamic
//! workloads (§6.1, Fig. 5).
//!
//! "We compare the average rates of the flows ... to what they would have
//! achieved with an ideal Oracle that assigns all flows their optimal NUM
//! rates instantaneously." [`IdealFluidSimulator`] is that reference: a fluid
//! event simulation in which, at every flow arrival or departure, the rates
//! of all active flows snap to the NUM optimum for the current flow
//! population; bytes then drain at those rates until the next event.

use crate::arrivals::FlowArrival;
use numfabric_num::utility::UtilityRef;
use numfabric_num::{FluidNetworkBuilder, Oracle};
use numfabric_sim::topology::{Route, Topology};
use numfabric_sim::{SimDuration, SimTime};

/// The ideal completion results of one flow.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealCompletion {
    /// Index of the flow in the arrival list.
    pub flow: usize,
    /// Ideal (oracle) flow completion time.
    pub fct: SimDuration,
    /// Ideal average rate in bits per second (size / FCT).
    pub rate_bps: f64,
}

/// Event-driven fluid simulator computing oracle FCTs for a dynamic workload.
pub struct IdealFluidSimulator<'a> {
    topo: &'a Topology,
    oracle: Oracle,
}

struct ActiveFlow {
    index: usize,
    route: Route,
    utility: UtilityRef,
    remaining_bytes: f64,
    started: SimTime,
}

impl<'a> IdealFluidSimulator<'a> {
    /// A simulator on the given topology. The oracle tolerance is relaxed to
    /// `1e-3` — amply precise for FCT references while keeping thousands of
    /// re-solves affordable.
    pub fn new(topo: &'a Topology) -> Self {
        let oracle = Oracle {
            tolerance: 1e-3,
            max_sweeps: 200,
            bisection_iters: 60,
        };
        Self { topo, oracle }
    }

    /// Run the workload: each arrival is routed with its recorded spine
    /// choice and given the utility returned by `utility_for` (which receives
    /// the arrival, e.g. to build size-dependent FCT utilities). Returns one
    /// completion record per arrival, in arrival order.
    pub fn run(
        &self,
        arrivals: &[FlowArrival],
        utility_for: impl Fn(&FlowArrival) -> UtilityRef,
    ) -> Vec<IdealCompletion> {
        let mut completions: Vec<Option<IdealCompletion>> = vec![None; arrivals.len()];
        let mut active: Vec<ActiveFlow> = Vec::new();
        let mut next_arrival = 0usize;
        let mut now = SimTime::ZERO;

        loop {
            if active.is_empty() && next_arrival >= arrivals.len() {
                break;
            }
            // Admit every arrival scheduled at the current instant.
            while next_arrival < arrivals.len() && arrivals[next_arrival].start <= now {
                let a = &arrivals[next_arrival];
                active.push(ActiveFlow {
                    index: next_arrival,
                    route: self.topo.host_route(a.src, a.dst, a.spine_choice),
                    utility: utility_for(a),
                    remaining_bytes: a.size_bytes as f64,
                    started: a.start,
                });
                next_arrival += 1;
            }
            if active.is_empty() {
                // Jump to the next arrival.
                now = arrivals[next_arrival].start;
                continue;
            }

            // Oracle rates for the current population.
            let rates_bps = self.solve_rates(&active);

            // Time until the first completion at these rates.
            let mut dt_complete = f64::INFINITY;
            for (f, &rate) in active.iter().zip(rates_bps.iter()) {
                let t = f.remaining_bytes * 8.0 / rate.max(1.0);
                dt_complete = dt_complete.min(t);
            }
            // Time until the next arrival.
            let dt_arrival = if next_arrival < arrivals.len() {
                arrivals[next_arrival]
                    .start
                    .duration_since(now)
                    .as_secs_f64()
            } else {
                f64::INFINITY
            };
            let dt = dt_complete.min(dt_arrival).max(0.0);

            // Drain bytes for dt seconds.
            for (f, &rate) in active.iter_mut().zip(rates_bps.iter()) {
                f.remaining_bytes -= rate * dt / 8.0;
            }
            now += SimDuration::from_secs_f64(dt);

            // Retire completed flows.
            let mut i = 0;
            while i < active.len() {
                if active[i].remaining_bytes <= 1e-6 {
                    let f = active.swap_remove(i);
                    let fct = now.duration_since(f.started);
                    let size = arrivals[f.index].size_bytes as f64;
                    completions[f.index] = Some(IdealCompletion {
                        flow: f.index,
                        fct,
                        rate_bps: if fct.is_zero() {
                            f64::INFINITY
                        } else {
                            size * 8.0 / fct.as_secs_f64()
                        },
                    });
                } else {
                    i += 1;
                }
            }
        }
        completions
            .into_iter()
            .map(|c| c.expect("every admitted flow completes in the fluid model"))
            .collect()
    }

    fn solve_rates(&self, active: &[ActiveFlow]) -> Vec<f64> {
        let mut builder = FluidNetworkBuilder::new();
        for f in active {
            builder.add_flow_on(
                f.route
                    .links()
                    .iter()
                    .map(|&l| (l, self.topo.links()[l].capacity_bps / 1e9)),
                f.utility.clone(),
            );
        }
        self.oracle
            .solve(&builder.finish())
            .rates
            .iter()
            .map(|r| r * 1e9)
            .collect()
    }
}

/// The lowest possible FCT for a flow of `size_bytes` on `route` in an
/// otherwise empty network: serialization at the bottleneck plus one base
/// RTT of latency. This is the normalization used for Fig. 7 ("the results
/// are normalized to the lowest possible FCT for each flow given its size").
pub fn empty_network_fct(topo: &Topology, route: &Route, size_bytes: u64) -> SimDuration {
    let bottleneck_bps = route
        .links()
        .iter()
        .map(|&l| topo.links()[l].capacity_bps)
        .fold(f64::INFINITY, f64::min);
    let packets = size_bytes.div_ceil(1460).max(1);
    let wire_bytes = size_bytes + packets * 40;
    let serialization = SimDuration::transmission(wire_bytes, bottleneck_bps);
    let rtt = topo.base_rtt(route, 1500, 40);
    serialization + rtt
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_num::utility::LogUtility;
    use numfabric_sim::topology::LeafSpineConfig;
    use std::sync::Arc;

    fn topo() -> Topology {
        Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2))
    }

    fn arrival(start_us: u64, src: usize, dst: usize, size: u64) -> FlowArrival {
        FlowArrival {
            start: SimTime::from_micros(start_us),
            src,
            dst,
            size_bytes: size,
            spine_choice: 0,
        }
    }

    #[test]
    fn single_flow_ideal_fct_is_size_over_line_rate() {
        let topo = topo();
        let hosts = topo.hosts().to_vec();
        let sim = IdealFluidSimulator::new(&topo);
        // 10 MB at 10 Gbps = 8 ms.
        let arrivals = vec![arrival(0, hosts[0], hosts[4], 10_000_000)];
        let done = sim.run(&arrivals, |_| Arc::new(LogUtility::new()) as UtilityRef);
        assert_eq!(done.len(), 1);
        let fct_ms = done[0].fct.as_secs_f64() * 1e3;
        assert!((fct_ms - 8.0).abs() < 0.05, "fct = {fct_ms} ms");
        assert!((done[0].rate_bps - 10e9).abs() / 10e9 < 0.01);
    }

    #[test]
    fn two_overlapping_flows_share_the_bottleneck_in_the_ideal_model() {
        let topo = topo();
        let hosts = topo.hosts().to_vec();
        let sim = IdealFluidSimulator::new(&topo);
        // Both 5 MB to the same destination, started together: with equal
        // sharing each takes 8 ms (5 MB at 5 Gbps).
        let arrivals = vec![
            arrival(0, hosts[0], hosts[4], 5_000_000),
            arrival(0, hosts[1], hosts[4], 5_000_000),
        ];
        let done = sim.run(&arrivals, |_| Arc::new(LogUtility::new()) as UtilityRef);
        for d in &done {
            let fct_ms = d.fct.as_secs_f64() * 1e3;
            assert!((fct_ms - 8.0).abs() < 0.1, "fct = {fct_ms} ms");
        }
    }

    #[test]
    fn staggered_flows_speed_up_after_the_first_one_leaves() {
        let topo = topo();
        let hosts = topo.hosts().to_vec();
        let sim = IdealFluidSimulator::new(&topo);
        // Flow 0: 1 MB starting at t=0. Flow 1: 2 MB starting at t=0.
        // Sharing until flow 0 finishes (at 1.6 ms), then flow 1 alone.
        let arrivals = vec![
            arrival(0, hosts[0], hosts[4], 1_000_000),
            arrival(0, hosts[1], hosts[4], 2_000_000),
        ];
        let done = sim.run(&arrivals, |_| Arc::new(LogUtility::new()) as UtilityRef);
        let fct0 = done[0].fct.as_secs_f64() * 1e3;
        let fct1 = done[1].fct.as_secs_f64() * 1e3;
        // Flow 0: 1 MB at 5 Gbps = 1.6 ms. Flow 1: 1 MB at 5 Gbps + 1 MB at
        // 10 Gbps = 1.6 + 0.8 = 2.4 ms.
        assert!((fct0 - 1.6).abs() < 0.05, "fct0 = {fct0}");
        assert!((fct1 - 2.4).abs() < 0.05, "fct1 = {fct1}");
    }

    #[test]
    fn disjoint_flows_do_not_interact() {
        let topo = topo();
        let hosts = topo.hosts().to_vec();
        let sim = IdealFluidSimulator::new(&topo);
        let arrivals = vec![
            arrival(0, hosts[0], hosts[4], 2_000_000),
            arrival(0, hosts[1], hosts[5], 2_000_000),
        ];
        let done = sim.run(&arrivals, |_| Arc::new(LogUtility::new()) as UtilityRef);
        for d in &done {
            assert!((d.rate_bps - 10e9).abs() / 10e9 < 0.01, "{d:?}");
        }
    }

    #[test]
    fn empty_network_fct_matches_hand_arithmetic() {
        let topo = topo();
        let hosts = topo.hosts().to_vec();
        let route = topo.host_route(hosts[0], hosts[7], 0);
        // 146 kB = 100 packets: 150 kB wire at 10 Gbps = 120 µs, plus ~16 µs RTT.
        let fct = empty_network_fct(&topo, &route, 146_000);
        assert!(fct >= SimDuration::from_micros(130), "fct = {fct}");
        assert!(fct <= SimDuration::from_micros(145), "fct = {fct}");
    }
}

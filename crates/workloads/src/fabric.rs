//! Fabric selection for scenario CLIs: parse a `--topology` option value
//! into a [`TopologySpec`] and build the corresponding [`Topology`].
//!
//! Accepted spellings:
//!
//! * `leaf-spine` — the paper's full-bisection leaf-spine (reduced: 32
//!   hosts / 4 leaves / 2 spines; `--full`: the 128-host paper fabric);
//! * `oversub:R:1` (or `oversub:R`) — leaf-spine with an `R:1`
//!   host:fabric bandwidth ratio on the same shapes;
//! * `fat-tree:k=K` (or `fat-tree:K`) — a k-ary fat-tree with `k³/4`
//!   hosts (k=4 → 16, k=8 → 128) and uniform 10 Gbps links.

use numfabric_sim::topology::{FatTreeConfig, LeafSpineConfig, Topology};
use std::fmt;
use std::str::FromStr;

/// A named fabric family plus its parameters, as given on the command line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologySpec {
    /// Full-bisection leaf-spine (the paper's fabric).
    LeafSpine,
    /// Leaf-spine with an `ratio:1` host:fabric bandwidth ratio.
    Oversubscribed {
        /// The oversubscription ratio (≥ 1).
        ratio: f64,
    },
    /// A k-ary fat-tree with edge/aggregation/core tiers.
    FatTree {
        /// The fat-tree arity (even, ≥ 2).
        k: usize,
    },
}

/// Error produced when a `--topology` value does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidTopology(String);

impl fmt::Display for InvalidTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid topology `{}`; expected `leaf-spine`, `oversub:<R>:1` or `fat-tree:k=<K>`",
            self.0
        )
    }
}

impl std::error::Error for InvalidTopology {}

impl FromStr for TopologySpec {
    type Err = InvalidTopology;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || InvalidTopology(s.to_string());
        if s == "leaf-spine" {
            return Ok(TopologySpec::LeafSpine);
        }
        if let Some(rest) = s.strip_prefix("oversub:") {
            let ratio_str = rest.strip_suffix(":1").unwrap_or(rest);
            let ratio: f64 = ratio_str.parse().map_err(|_| err())?;
            if !(ratio.is_finite() && ratio >= 1.0) {
                return Err(err());
            }
            return Ok(TopologySpec::Oversubscribed { ratio });
        }
        if let Some(rest) = s.strip_prefix("fat-tree:") {
            let k_str = rest.strip_prefix("k=").unwrap_or(rest);
            let k: usize = k_str.parse().map_err(|_| err())?;
            if k < 2 || !k.is_multiple_of(2) {
                return Err(err());
            }
            return Ok(TopologySpec::FatTree { k });
        }
        Err(err())
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologySpec::LeafSpine => write!(f, "leaf-spine"),
            TopologySpec::Oversubscribed { ratio } => write!(f, "oversub:{ratio}:1"),
            TopologySpec::FatTree { k } => write!(f, "fat-tree:k={k}"),
        }
    }
}

impl TopologySpec {
    /// Build the topology. For the leaf-spine families `full` selects the
    /// paper's 128-host shape instead of the reduced 32-host one; fat-trees
    /// are sized by `k` alone.
    pub fn build(&self, full: bool) -> Topology {
        match *self {
            TopologySpec::LeafSpine => Topology::leaf_spine(&if full {
                LeafSpineConfig::paper_default()
            } else {
                LeafSpineConfig::small(32, 4, 2)
            }),
            TopologySpec::Oversubscribed { ratio } => Topology::leaf_spine(&if full {
                LeafSpineConfig::oversubscribed(128, 8, 4, ratio)
            } else {
                LeafSpineConfig::oversubscribed(32, 4, 2, ratio)
            }),
            TopologySpec::FatTree { k } => Topology::fat_tree(&FatTreeConfig::new(k)),
        }
    }

    /// One-line description of the built fabric (host/switch/link counts).
    pub fn describe(&self, topo: &Topology) -> String {
        format!(
            "{} ({} hosts, {} leaves, {} aggs, {} spines, {} cores, {} links)",
            self,
            topo.hosts().len(),
            topo.leaves().len(),
            topo.aggregations().len(),
            topo.spines().len(),
            topo.cores().len(),
            topo.num_links(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_documented_spelling() {
        assert_eq!(
            "leaf-spine".parse::<TopologySpec>().unwrap(),
            TopologySpec::LeafSpine
        );
        assert_eq!(
            "oversub:4:1".parse::<TopologySpec>().unwrap(),
            TopologySpec::Oversubscribed { ratio: 4.0 }
        );
        assert_eq!(
            "oversub:2.5".parse::<TopologySpec>().unwrap(),
            TopologySpec::Oversubscribed { ratio: 2.5 }
        );
        assert_eq!(
            "fat-tree:k=4".parse::<TopologySpec>().unwrap(),
            TopologySpec::FatTree { k: 4 }
        );
        assert_eq!(
            "fat-tree:8".parse::<TopologySpec>().unwrap(),
            TopologySpec::FatTree { k: 8 }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "mesh",
            "fat-tree:k=3",
            "fat-tree:k=0",
            "fat-tree:k=banana",
            "oversub:0.5:1",
            "oversub:nan",
            "oversub:",
            "",
        ] {
            let err = bad.parse::<TopologySpec>().unwrap_err();
            assert!(err.to_string().contains("invalid topology"), "{bad}");
        }
    }

    #[test]
    fn display_round_trips_through_parse() {
        for spec in [
            TopologySpec::LeafSpine,
            TopologySpec::Oversubscribed { ratio: 4.0 },
            TopologySpec::FatTree { k: 8 },
        ] {
            assert_eq!(spec.to_string().parse::<TopologySpec>().unwrap(), spec);
        }
    }

    #[test]
    fn builds_the_advertised_shapes() {
        let ft = TopologySpec::FatTree { k: 4 }.build(false);
        assert_eq!(ft.hosts().len(), 16);
        assert_eq!(ft.cores().len(), 4);
        let ls = TopologySpec::LeafSpine.build(false);
        assert_eq!(ls.hosts().len(), 32);
        let full = TopologySpec::LeafSpine.build(true);
        assert_eq!(full.hosts().len(), 128);
        let os = TopologySpec::Oversubscribed { ratio: 4.0 }.build(false);
        // 8 hosts per leaf at 10G, 2 spines: 10G fabric links (4:1).
        assert!(os
            .links()
            .iter()
            .all(|l| (l.capacity_bps - 10e9).abs() < 1.0));
        let spec = TopologySpec::FatTree { k: 4 };
        let desc = spec.describe(&ft);
        assert!(desc.contains("fat-tree:k=4") && desc.contains("16 hosts"));
    }
}

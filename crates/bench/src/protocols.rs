//! Protocol selection for the benchmark harness: build a network and flow
//! agents for any of the schemes the paper evaluates, so every experiment
//! can be run protocol-by-protocol on an identical workload.

use numfabric_baselines::{
    dctcp_network, dgd_network, pfabric_network, rcp_star_network, DctcpAgent, DctcpConfig,
    DgdAgent, DgdConfig, PfabricAgent, PfabricConfig, RcpStarAgent, RcpStarConfig,
};
use numfabric_core::protocol::numfabric_network;
use numfabric_core::{NumFabricAgent, NumFabricConfig};
use numfabric_num::utility::UtilityRef;
use numfabric_sim::network::Network;
use numfabric_sim::topology::Topology;
use numfabric_sim::transport::FlowAgent;
use numfabric_workloads::registry::ScenarioOptions;

/// A transport scheme under test.
#[derive(Debug, Clone)]
pub enum Protocol {
    /// NUMFabric (Swift + xWI) with the given configuration.
    NumFabric(NumFabricConfig),
    /// Dual gradient descent rate control.
    Dgd(DgdConfig),
    /// RCP* (α-fair rate control protocol).
    RcpStar(RcpStarConfig),
    /// DCTCP.
    Dctcp(DctcpConfig),
    /// pFabric.
    Pfabric(PfabricConfig),
}

impl Protocol {
    /// The spellings [`Protocol::from_name`] accepts, for error messages —
    /// the single copy every "invalid protocol" report renders.
    pub const NAMES: &'static str = "numfabric|dgd|rcp|dctcp|pfabric";

    /// The scheme's display name.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::NumFabric(_) => "NUMFabric",
            Protocol::Dgd(_) => "DGD",
            Protocol::RcpStar(_) => "RCP*",
            Protocol::Dctcp(_) => "DCTCP",
            Protocol::Pfabric(_) => "pFabric",
        }
    }

    /// Build a simulator network with this scheme's queue discipline and
    /// switch-side controllers installed on every link.
    pub fn build_network(&self, topo: Topology) -> Network {
        match self {
            Protocol::NumFabric(cfg) => numfabric_network(topo, cfg),
            Protocol::Dgd(cfg) => dgd_network(topo, cfg),
            Protocol::RcpStar(cfg) => rcp_star_network(topo, cfg),
            Protocol::Dctcp(cfg) => dctcp_network(topo, cfg),
            Protocol::Pfabric(cfg) => pfabric_network(topo, cfg),
        }
    }

    /// Build one flow agent. `utility` is used by the utility-driven schemes
    /// (NUMFabric, DGD); RCP* realizes α-fairness through its own switch
    /// algorithm and DCTCP/pFabric have fixed objectives.
    pub fn make_agent(&self, utility: UtilityRef) -> Box<dyn FlowAgent> {
        match self {
            Protocol::NumFabric(cfg) => {
                Box::new(NumFabricAgent::with_utility_ref(cfg.clone(), utility))
            }
            Protocol::Dgd(cfg) => Box::new(DgdAgent::with_utility_ref(cfg.clone(), utility)),
            Protocol::RcpStar(cfg) => Box::new(RcpStarAgent::new(cfg.clone())),
            Protocol::Dctcp(cfg) => Box::new(DctcpAgent::new(cfg.clone())),
            Protocol::Pfabric(cfg) => Box::new(PfabricAgent::new(cfg.clone())),
        }
    }

    /// Resolve a scheme name (as accepted by `--protocol`) to a protocol
    /// with default parameters; `None` for unrecognized names.
    pub fn from_name(name: &str) -> Option<Protocol> {
        match name {
            "numfabric" => Some(Protocol::NumFabric(NumFabricConfig::default())),
            "dgd" => Some(Protocol::Dgd(DgdConfig::default())),
            "rcp" | "rcp*" | "rcpstar" => Some(Protocol::RcpStar(RcpStarConfig::default())),
            "dctcp" => Some(Protocol::Dctcp(DctcpConfig::default())),
            "pfabric" => Some(Protocol::Pfabric(PfabricConfig::default())),
            _ => None,
        }
    }

    /// Map the `--protocol` option to a scheme with default parameters
    /// (`numfabric` when absent). An unrecognized name is a hard error —
    /// reported and exiting non-zero, like any other malformed option value —
    /// so a typo never silently benchmarks the wrong scheme.
    pub fn from_options(opts: &ScenarioOptions) -> Protocol {
        let name = opts.value("--protocol").unwrap_or("numfabric");
        Protocol::from_name(name).unwrap_or_else(|| {
            eprintln!(
                "error: invalid value `{name}` for option `--protocol`: expected {}",
                Protocol::NAMES
            );
            std::process::exit(2);
        })
    }

    /// The three schemes compared in the convergence experiments (Fig. 4a,
    /// Fig. 5, Fig. 6), with their default configurations.
    pub fn convergence_contenders() -> Vec<Protocol> {
        vec![
            Protocol::NumFabric(NumFabricConfig::default()),
            Protocol::Dgd(DgdConfig::default()),
            Protocol::RcpStar(RcpStarConfig::default()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_num::utility::LogUtility;
    use numfabric_sim::topology::LeafSpineConfig;
    use numfabric_sim::{FlowPhase, SimTime};
    use std::sync::Arc;

    #[test]
    fn every_protocol_can_run_a_small_transfer() {
        for protocol in [
            Protocol::NumFabric(NumFabricConfig::default()),
            Protocol::Dgd(DgdConfig::default()),
            Protocol::RcpStar(RcpStarConfig::default()),
            Protocol::Dctcp(DctcpConfig::default()),
            Protocol::Pfabric(PfabricConfig::default()),
        ] {
            let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
            let mut net = protocol.build_network(topo);
            let hosts: Vec<_> = net.topology().hosts().to_vec();
            let util: UtilityRef = Arc::new(LogUtility::new());
            let flow = net.add_flow(
                hosts[0],
                hosts[7],
                Some(300_000),
                SimTime::ZERO,
                0,
                None,
                protocol.make_agent(util),
            );
            net.run_until(SimTime::from_millis(50));
            assert_eq!(
                net.flow_phase(flow),
                FlowPhase::Completed,
                "{} did not complete a 300 kB flow",
                protocol.name()
            );
        }
    }

    #[test]
    fn from_name_resolves_known_schemes_and_rejects_typos() {
        assert_eq!(
            Protocol::from_name("numfabric").unwrap().name(),
            "NUMFabric"
        );
        assert_eq!(Protocol::from_name("dgd").unwrap().name(), "DGD");
        assert_eq!(Protocol::from_name("rcp*").unwrap().name(), "RCP*");
        assert_eq!(Protocol::from_name("dctcp").unwrap().name(), "DCTCP");
        assert_eq!(Protocol::from_name("pfabric").unwrap().name(), "pFabric");
        assert!(Protocol::from_name("dctpc").is_none());
        assert!(Protocol::from_name("").is_none());
    }

    #[test]
    fn contender_list_has_the_three_convergence_schemes() {
        let names: Vec<_> = Protocol::convergence_contenders()
            .iter()
            .map(|p| p.name())
            .collect();
        assert_eq!(names, vec!["NUMFabric", "DGD", "RCP*"]);
    }
}

//! The sweep engine's determinism contract: the aggregated report is a pure
//! function of the [`SweepSpec`] — **bit-identical regardless of the thread
//! count** — because every cell is a self-contained, fully-seeded
//! simulation owned by one worker and the aggregate is assembled in
//! cell-index order.
//!
//! This is the proof-case that the event core's determinism contract
//! (ROADMAP: every parallelism PR must preserve it) survives concurrency:
//! parallelism lives strictly *between* simulations, never inside one.

use numfabric_bench::sweep::{execute_cells, markdown_table, sweep_report_json};
use numfabric_workloads::fabric::TopologySpec;
use numfabric_workloads::impairments::ImpairmentProfile;
use numfabric_workloads::sweep::{derive_cell_seed, SweepScenario, SweepSpec};

/// The ISSUE's mini-grid: incast × shuffle on leaf-spine × fat-tree:k=4,
/// 8 cells. Small transfers keep the whole grid fast enough to run twice.
fn mini_grid() -> SweepSpec {
    SweepSpec {
        scenarios: vec![SweepScenario::Incast, SweepScenario::Shuffle],
        topologies: vec![TopologySpec::LeafSpine, TopologySpec::FatTree { k: 4 }],
        protocols: vec!["numfabric".to_string()],
        loads: vec![0.25],
        sizes: vec![50_000],
        impairments: vec![ImpairmentProfile::None],
        replicates: 2,
        base_seed: 7,
    }
}

/// The impairment-axis grid: the mini-grid's incast half crossed with every
/// non-trivial impairment profile — cable flaps, seeded wire loss, and delay
/// jitter all exercise the network RNG and the reroute path, which is
/// exactly the machinery whose determinism this suite must pin.
fn impaired_grid() -> SweepSpec {
    SweepSpec {
        scenarios: vec![SweepScenario::Incast, SweepScenario::Stride],
        topologies: vec![TopologySpec::FatTree { k: 4 }],
        protocols: vec!["numfabric".to_string()],
        loads: vec![0.25],
        sizes: vec![50_000],
        impairments: vec![
            ImpairmentProfile::Flap,
            ImpairmentProfile::Loss,
            ImpairmentProfile::Jitter,
        ],
        replicates: 1,
        base_seed: 11,
    }
}

fn aggregate_with_threads(spec: &SweepSpec, threads: usize) -> (String, String) {
    let cells = spec.expand().expect("valid spec");
    let results = execute_cells(cells, threads).expect("all cells run");
    (
        sweep_report_json(spec, &results).render(),
        markdown_table(&results),
    )
}

#[test]
fn aggregate_json_is_bit_identical_for_one_and_eight_threads() {
    let spec = mini_grid();
    assert_eq!(spec.cell_count(), 8, "the ISSUE's grid is 8 cells");
    let (json_serial, table_serial) = aggregate_with_threads(&spec, 1);
    let (json_pooled, table_pooled) = aggregate_with_threads(&spec, 8);
    assert_eq!(
        json_serial, json_pooled,
        "aggregate JSON must not depend on --threads"
    );
    assert_eq!(
        table_serial, table_pooled,
        "the markdown table must not depend on --threads"
    );
    // And the report must never mention how it was scheduled.
    assert!(!json_serial.contains("threads"));
}

#[test]
fn aggregate_is_reproducible_run_to_run_on_the_pool() {
    let spec = mini_grid();
    let (a, _) = aggregate_with_threads(&spec, 3);
    let (b, _) = aggregate_with_threads(&spec, 5);
    assert_eq!(a, b);
}

#[test]
fn impaired_grid_is_bit_identical_across_thread_counts() {
    let spec = impaired_grid();
    assert_eq!(spec.cell_count(), 6);
    let (json_serial, table_serial) = aggregate_with_threads(&spec, 1);
    let (json_pooled, table_pooled) = aggregate_with_threads(&spec, 6);
    assert_eq!(
        json_serial, json_pooled,
        "impaired cells must not make the report depend on --threads"
    );
    assert_eq!(table_serial, table_pooled);
    // The axis is actually in the report, not silently dropped.
    for name in ["flap", "loss", "jitter"] {
        assert!(json_serial.contains(name), "missing impairment `{name}`");
    }
}

#[test]
fn every_cell_reports_and_completes_on_the_mini_grid() {
    let spec = mini_grid();
    let results = execute_cells(spec.expand().unwrap(), 4).unwrap();
    assert_eq!(results.len(), 8);
    for r in &results {
        assert_eq!(
            r.completed,
            Some(r.flows),
            "cell {} ({} on {}) left transfers incomplete",
            r.cell.index,
            r.cell.scenario,
            r.cell.topology
        );
        assert!(r.median_fct_seconds.unwrap() > 0.0);
    }
    // Replicates of the same point differ only in their derived seed — and
    // therefore genuinely resample the workload.
    assert_eq!(results[0].cell.replicate, 0);
    assert_eq!(results[1].cell.replicate, 1);
    assert_ne!(results[0].cell.seed, results[1].cell.seed);
}

#[test]
fn cell_seeds_match_the_documented_derivation() {
    let spec = mini_grid();
    for cell in spec.expand().unwrap() {
        assert_eq!(
            cell.seed,
            derive_cell_seed(spec.base_seed, cell.index as u64)
        );
    }
    // Changing the base seed changes every cell seed (no accidental
    // index-only dependence).
    let mut other = mini_grid();
    other.base_seed = 8;
    for (a, b) in spec.expand().unwrap().iter().zip(other.expand().unwrap()) {
        assert_ne!(a.seed, b.seed);
    }
}

//! The **Dual Gradient Descent (DGD)** rate-control baseline (§3 and §6 of
//! the paper), an idealized packet-level realization of Low & Lapsley's
//! optimization flow control.
//!
//! * Switches keep one price per egress link and update it periodically
//!   (Eq. 14): `p ← [p + a·(y − C) + b·q]⁺`, where `y` is the measured
//!   throughput over the interval, `C` the capacity and `q` the queue
//!   backlog.
//! * Senders learn the sum of prices on their path from ACKs and transmit at
//!   exactly `x = U'⁻¹(Σ p_l)` (Eq. 3), paced packet by packet, with the
//!   number of unacknowledged bytes capped at 2× the bandwidth-delay product
//!   (the enhancement described in the paper's "Note on the implementation").
//!
//! Prices and rates use the same Gbps-based units as NUMFabric so the same
//! utility-function objects can be used. The gains `a` and `b` are expressed
//! per-Gbps and per-byte respectively; as in the paper, they need tuning per
//! workload — [`DgdConfig::default`] holds values tuned for the 10/40 Gbps
//! fabrics used in this repository's experiments.

use numfabric_num::utility::{Utility, UtilityRef};
use numfabric_sim::network::{AgentCtx, Network};
use numfabric_sim::packet::{Packet, DEFAULT_PAYLOAD_BYTES, MTU_BYTES};
use numfabric_sim::queue::DropTailFifo;
use numfabric_sim::timer::TimerHandle;
use numfabric_sim::topology::Topology;
use numfabric_sim::transport::{FlowAgent, LinkController};
use numfabric_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Timer tag used by the DGD sender's pacing loop.
const PACING_TIMER: u64 = 1;

/// DGD parameters (Table 2, adapted to this repository's Gbps-based units).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DgdConfig {
    /// Price update interval (16 µs in the paper — one RTT).
    pub price_update_interval: SimDuration,
    /// Utilization gain `a` (price change per Gbps of rate mismatch).
    pub a_per_gbps: f64,
    /// Queue gain `b` (price change per byte of standing queue).
    pub b_per_byte: f64,
    /// Cap on unacknowledged data, in units of the bandwidth-delay product.
    pub unacked_cap_bdp: f64,
    /// Initial sending rate as a fraction of the first-hop capacity, used
    /// until the first price feedback arrives.
    pub initial_rate_fraction: f64,
}

impl Default for DgdConfig {
    fn default() -> Self {
        Self {
            price_update_interval: SimDuration::from_micros(16),
            a_per_gbps: 2e-3,
            b_per_byte: 6e-7,
            unacked_cap_bdp: 2.0,
            initial_rate_fraction: 0.05,
        }
    }
}

/// Per-link DGD price computation (Eq. 14).
#[derive(Debug, Clone)]
pub struct DgdPriceController {
    price: f64,
    bytes_serviced: u64,
    capacity_bps: f64,
    config: DgdConfig,
}

impl DgdPriceController {
    /// A controller for a link of `capacity_bps`.
    pub fn new(config: DgdConfig, capacity_bps: f64) -> Self {
        assert!(capacity_bps > 0.0, "capacity must be positive");
        Self {
            price: 0.0,
            bytes_serviced: 0,
            capacity_bps,
            config,
        }
    }

    /// The current price.
    pub fn price(&self) -> f64 {
        self.price
    }

    /// One price update given the backlog at the update instant.
    pub fn price_update(&mut self, queue_bytes: usize) {
        let interval = self.config.price_update_interval.as_secs_f64();
        let y_gbps = self.bytes_serviced as f64 * 8.0 / interval / 1e9;
        let c_gbps = self.capacity_bps / 1e9;
        self.price = (self.price
            + self.config.a_per_gbps * (y_gbps - c_gbps)
            + self.config.b_per_byte * queue_bytes as f64)
            .max(0.0);
        self.bytes_serviced = 0;
    }
}

impl LinkController for DgdPriceController {
    fn on_enqueue(&mut self, _packet: &mut Packet, _now: SimTime) {}

    fn on_dequeue(&mut self, packet: &mut Packet, _now: SimTime, _queue_bytes: usize) {
        self.bytes_serviced += packet.wire_bytes as u64;
        packet.header.path_price += self.price;
        packet.header.path_len += 1;
    }

    fn initial_timer(&self) -> Option<SimDuration> {
        Some(self.config.price_update_interval)
    }

    fn on_timer(&mut self, _now: SimTime, queue_bytes: usize) -> Option<SimDuration> {
        self.price_update(queue_bytes);
        Some(self.config.price_update_interval)
    }

    fn on_capacity_change(&mut self, new_capacity_bps: f64) {
        self.capacity_bps = new_capacity_bps;
    }

    fn name(&self) -> &'static str {
        "dgd-price"
    }
}

/// The DGD flow agent: rate-paced sender plus feedback-reflecting receiver.
pub struct DgdAgent {
    config: DgdConfig,
    utility: UtilityRef,
    path_price: f64,
    rate_bps: f64,
    next_seq: u64,
    highest_ack: u64,
    unacked_cap_bytes: u64,
    /// The pending pacing timer, if one is scheduled. Completion cancels it
    /// structurally via the network's timer service.
    pacing_timer: Option<TimerHandle>,
}

impl DgdAgent {
    /// An agent with the given configuration and utility function.
    pub fn new(config: DgdConfig, utility: impl Utility + 'static) -> Self {
        Self::with_utility_ref(config, Arc::new(utility))
    }

    /// An agent sharing an already-constructed utility handle.
    pub fn with_utility_ref(config: DgdConfig, utility: UtilityRef) -> Self {
        Self {
            config,
            utility,
            path_price: 0.0,
            rate_bps: 0.0,
            next_seq: 0,
            highest_ack: 0,
            unacked_cap_bytes: u64::MAX,
            pacing_timer: None,
        }
    }

    /// The sender's current target rate (for tests and tracing).
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn recompute_rate(&mut self, ctx: &AgentCtx<'_>) {
        let first_hop = ctx.first_hop_capacity_bps();
        let rate_gbps = self.utility.inverse_marginal(self.path_price.max(0.0));
        // Never exceed the NIC speed; never stall completely (a tiny floor
        // keeps price discovery alive when prices overshoot).
        self.rate_bps = (rate_gbps * 1e9).clamp(first_hop * 1e-3, first_hop);
    }

    fn unacked_bytes(&self) -> u64 {
        self.next_seq.saturating_sub(self.highest_ack)
    }

    fn send_one_and_reschedule(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.rate_bps <= 0.0 {
            self.pacing_timer = None;
            return;
        }
        let under_cap =
            self.unacked_bytes() + (DEFAULT_PAYLOAD_BYTES as u64) <= self.unacked_cap_bytes;
        let payload = match ctx.remaining_bytes() {
            Some(0) => {
                self.pacing_timer = None;
                return;
            }
            Some(rem) => rem.min(DEFAULT_PAYLOAD_BYTES as u64) as u32,
            None => DEFAULT_PAYLOAD_BYTES,
        };
        if under_cap {
            let seq = self.next_seq;
            ctx.send_data(seq, payload, |_| {});
            self.next_seq += payload as u64;
        }
        // Schedule the next transmission opportunity at the paced interval
        // regardless of whether this one was capped, so sending resumes as
        // soon as ACKs free up the cap.
        let interval = SimDuration::transmission((payload + 40) as u64, self.rate_bps.max(1e6));
        self.pacing_timer = Some(ctx.set_timer(interval, PACING_TIMER));
    }
}

impl FlowAgent for DgdAgent {
    fn on_start(&mut self, ctx: &mut AgentCtx<'_>) {
        let first_hop = ctx.first_hop_capacity_bps();
        self.rate_bps = first_hop * self.config.initial_rate_fraction;
        let bdp = first_hop * ctx.base_rtt().as_secs_f64() / 8.0;
        self.unacked_cap_bytes =
            ((bdp * self.config.unacked_cap_bdp) as u64).max(2 * MTU_BYTES as u64);
        self.send_one_and_reschedule(ctx);
    }

    fn on_ack(&mut self, packet: &Packet, ctx: &mut AgentCtx<'_>) {
        self.highest_ack = self.highest_ack.max(packet.header.ack_bytes);
        if packet.header.reflected_path_len > 0 {
            self.path_price = packet.header.reflected_path_price;
        }
        self.recompute_rate(ctx);
        if self.pacing_timer.is_none() {
            self.send_one_and_reschedule(ctx);
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut AgentCtx<'_>) {
        if tag == PACING_TIMER {
            self.pacing_timer = None;
            self.send_one_and_reschedule(ctx);
        }
    }

    fn name(&self) -> &'static str {
        "dgd"
    }
}

/// Build a network ready for DGD: drop-tail FIFOs and a DGD price controller
/// on every link.
pub fn dgd_network(topo: Topology, config: &DgdConfig) -> Network {
    let mut net = Network::new(topo, |_| Box::new(DropTailFifo::with_default_buffer()));
    let cfg = config.clone();
    net.set_all_link_controllers(move |_, capacity| {
        Box::new(DgdPriceController::new(cfg.clone(), capacity))
    });
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_num::utility::LogUtility;
    use numfabric_sim::topology::LeafSpineConfig;
    use numfabric_sim::FlowPhase;

    #[test]
    fn price_rises_with_overload_and_queue() {
        let mut ctrl = DgdPriceController::new(DgdConfig::default(), 10e9);
        // Service 20 Gbps worth of traffic in one 16 µs interval (overload).
        ctrl.bytes_serviced = (20e9 * 16e-6 / 8.0) as u64;
        ctrl.price_update(0);
        let p1 = ctrl.price();
        assert!(p1 > 0.0);
        // Overload plus a standing queue raises it further.
        ctrl.bytes_serviced = (20e9 * 16e-6 / 8.0) as u64;
        ctrl.price_update(100_000);
        assert!(ctrl.price() > p1);
    }

    #[test]
    fn price_decays_when_underutilized_and_never_goes_negative() {
        let mut ctrl = DgdPriceController::new(DgdConfig::default(), 10e9);
        ctrl.bytes_serviced = (20e9 * 16e-6 / 8.0) as u64;
        ctrl.price_update(0);
        let high = ctrl.price();
        for _ in 0..1000 {
            ctrl.bytes_serviced = 0;
            ctrl.price_update(0);
        }
        assert!(ctrl.price() < high);
        assert!(ctrl.price() >= 0.0);
    }

    #[test]
    fn two_dgd_flows_eventually_share_a_bottleneck() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let mut net = dgd_network(topo, &DgdConfig::default());
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let f0 = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(DgdAgent::new(DgdConfig::default(), LogUtility::new())),
        );
        let f1 = net.add_flow(
            hosts[1],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(DgdAgent::new(DgdConfig::default(), LogUtility::new())),
        );
        net.run_until(SimTime::from_millis(30));
        let r0 = net.flow_rate_estimate(f0);
        let r1 = net.flow_rate_estimate(f1);
        let total = r0 + r1;
        assert!(total > 7.5e9, "bottleneck badly underutilized: {total:.3e}");
        assert!(total < 10.5e9, "oversubscribed: {total:.3e}");
        assert!(
            (r0 - r1).abs() / total < 0.25,
            "very unfair split: {r0:.3e} vs {r1:.3e}"
        );
    }

    #[test]
    fn finite_dgd_flow_completes() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let mut net = dgd_network(topo, &DgdConfig::default());
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            Some(500_000),
            SimTime::ZERO,
            0,
            None,
            Box::new(DgdAgent::new(DgdConfig::default(), LogUtility::new())),
        );
        net.run_until(SimTime::from_millis(60));
        assert_eq!(net.flow_phase(flow), FlowPhase::Completed);
    }

    #[test]
    fn unacked_cap_limits_burstiness() {
        // With a very large initial rate fraction the 2×BDP cap must prevent
        // a huge uncontrolled burst before the first feedback arrives.
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let cfg = DgdConfig {
            initial_rate_fraction: 1.0,
            ..DgdConfig::default()
        };
        let mut net = dgd_network(topo, &cfg);
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(DgdAgent::new(cfg.clone(), LogUtility::new())),
        );
        // Run for only half an RTT: nothing has been acknowledged yet, so no
        // more than 2×BDP ≈ 40 kB may have been sent.
        net.run_until(SimTime::from_micros(8));
        let sent = net.flow_stats(flow).bytes_sent;
        assert!(sent <= 45_000, "sent {sent} bytes before any feedback");
    }
}

//! The failure-recovery scenario: how fast does each protocol re-converge
//! after a fabric cable fails?
//!
//! The experiment starts a stride permutation of long-lived flows, lets
//! them converge, then cuts the **busiest fabric cable** (both directions,
//! via [`ImpairmentSchedule::cable_cut`]) at `--fail-us` and optionally
//! restores it at `--restore-us`. Rates are sampled on a fixed grid; at
//! every sample the per-flow rates are compared against the fluid oracle of
//! the *currently active* regime — the healthy allocation before the
//! failure, the allocation over the surviving ECMP routes while the cable
//! is down, and the healthy allocation again after restoration. The
//! headline metric is **time-to-reconverge**: how long after the failure
//! (and after the restore) until a quorum of flows is back within
//! tolerance of the active oracle, sustained over several samples.
//!
//! Victim selection is deterministic — the cable carrying the most flow
//! routes, ties to the lowest link id — so a `recovery` run is a pure
//! function of its options, like every other scenario.

use crate::fabric::{
    cli_error, exit_if_wedged, partition_threads_from_options, partitions_from_options,
};
use crate::protocols::Protocol;
use crate::report::{print_table, Json};
use numfabric_num::utility::{LogUtility, UtilityRef};
use numfabric_sim::topology::{LinkId, Topology};
use numfabric_sim::{SimDuration, SimTime};
use numfabric_workloads::convergence::oracle_rates_bps;
use numfabric_workloads::impairments::{fabric_cables, ImpairmentSchedule};
use numfabric_workloads::registry::ScenarioOptions;
use numfabric_workloads::scenarios::{stride_pairs, PathSpec};
use numfabric_workloads::TopologySpec;
use std::sync::Arc;

/// How the recovery run is sampled and judged.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// When the victim cable goes down.
    pub fail_at: SimTime,
    /// When (if ever) the cable comes back.
    pub restore_at: Option<SimTime>,
    /// Total simulated time.
    pub run_for: SimDuration,
    /// Rate-sampling period.
    pub sample_every: SimDuration,
    /// Relative tolerance a flow must be within of its oracle rate.
    pub tolerance: f64,
    /// Fraction of flows that must be within tolerance to count as
    /// converged.
    pub quorum: f64,
    /// Minimum number of samples the quorum must cover. Reconvergence has
    /// settling-time semantics: the quorum must hold from the reported
    /// instant through the end of the regime, and for at least this many
    /// samples.
    pub sustain: usize,
    /// Number of per-partition event cores the network is decomposed into.
    /// A cable cut is a deterministic impairment, so the report is
    /// bit-identical for every partition count.
    pub partitions: usize,
    /// Number of worker threads the partition cores run on each epoch.
    /// Like `partitions`, never changes a report byte.
    pub partition_threads: usize,
}

impl Default for RecoveryConfig {
    /// Fail at 1.5 ms, no restore, 6 ms run, 25 µs samples; converged =
    /// 75% of flows within 20% of the oracle for 3 consecutive samples.
    fn default() -> Self {
        Self {
            fail_at: SimTime::from_micros(1_500),
            restore_at: None,
            run_for: SimDuration::from_millis(6),
            sample_every: SimDuration::from_micros(25),
            tolerance: 0.20,
            quorum: 0.75,
            sustain: 3,
            partitions: 1,
            partition_threads: 1,
        }
    }
}

/// One sampled point of the run: the sample instant and the fraction of
/// flows within tolerance of the oracle active at that instant.
#[derive(Debug, Clone, Copy)]
pub struct RecoverySample {
    /// The sample instant.
    pub at: SimTime,
    /// Fraction of flows within tolerance of the active oracle.
    pub fraction_within: f64,
}

/// The outcome of one protocol's recovery run.
#[derive(Debug, Clone)]
pub struct RecoveryResult {
    /// Protocol that was run.
    pub protocol: String,
    /// Number of long-lived flows.
    pub flows: usize,
    /// The failed cable's forward link id.
    pub victim_forward: LinkId,
    /// The failed cable's reverse link id.
    pub victim_reverse: LinkId,
    /// Time from the failure until the post-failure quorum settled — held
    /// from that instant through the end of the failed regime (`None`:
    /// never within the run).
    pub reconverge_after_failure: Option<SimDuration>,
    /// Same, measured from the restore against the healthy oracle
    /// (`None` when no restore was scheduled, or it never reconverged).
    pub reconverge_after_restore: Option<SimDuration>,
    /// Fraction of flows within tolerance of the active oracle at the final
    /// sample.
    pub final_fraction_within: f64,
    /// Total measured / total oracle throughput at the final sample.
    pub final_throughput_ratio: f64,
    /// The full sampled time series.
    pub samples: Vec<RecoverySample>,
}

/// The busiest fabric cable under the given flow population: the
/// `(forward, reverse)` twin pair whose two directions carry the most
/// routes, ties broken toward the lowest forward link id. Deterministic by
/// construction — this is what makes the default `recovery` victim
/// reproducible without a seed.
pub fn busiest_cable(topo: &Topology, pairs: &[PathSpec]) -> (LinkId, LinkId) {
    let mut usage = vec![0usize; topo.links().len()];
    for p in pairs {
        for &l in topo.host_route(p.src, p.dst, p.spine_choice).links() {
            usage[l] += 1;
        }
    }
    fabric_cables(topo)
        .into_iter()
        .max_by_key(|&(fwd, rev)| (usage[fwd] + usage[rev], std::cmp::Reverse(fwd)))
        .expect("topology has no fabric cables")
}

/// Oracle rates for the current regime: healthy routes, or the surviving
/// ECMP re-selection while `down` is non-empty. Flows partitioned by the
/// failure (no surviving route) get an oracle rate of zero — they cannot
/// make progress, and counting them against convergence would let a
/// partition masquerade as slow recovery.
fn regime_oracle(
    topo: &Topology,
    pairs: &[PathSpec],
    utility: &Arc<LogUtility>,
    down: &std::collections::HashSet<LinkId>,
) -> Vec<f64> {
    let mut routed = Vec::new();
    let mut slots = Vec::new();
    for p in pairs {
        let route = if down.is_empty() {
            Some(topo.host_route(p.src, p.dst, p.spine_choice))
        } else {
            topo.host_route_avoiding(p.src, p.dst, p.spine_choice, down)
        };
        slots.push(route.is_some());
        if let Some(route) = route {
            routed.push((route, utility.clone() as UtilityRef));
        }
    }
    let mut solved = oracle_rates_bps(topo, &routed).into_iter();
    slots
        .into_iter()
        .map(|has_route| {
            if has_route {
                solved.next().expect("oracle rate per routed flow")
            } else {
                0.0
            }
        })
        .collect()
}

/// Fraction of flows whose measured rate is within `tol` of the oracle.
/// A zero-oracle (partitioned) flow counts as within tolerance only when it
/// is actually stalled.
fn fraction_within(rates: &[f64], oracle: &[f64], tol: f64) -> f64 {
    let ok = rates
        .iter()
        .zip(oracle)
        .filter(|(&r, &o)| (r - o).abs() <= tol * o.max(1.0))
        .count();
    ok as f64 / rates.len().max(1) as f64
}

/// Run the recovery experiment for one protocol and measure its
/// time-to-reconverge.
pub fn run_recovery(
    protocol: &Protocol,
    topo: Topology,
    pairs: &[PathSpec],
    config: &RecoveryConfig,
) -> RecoveryResult {
    let (victim_forward, victim_reverse) = busiest_cable(&topo, pairs);
    let schedule =
        ImpairmentSchedule::cable_cut(&topo, victim_forward, config.fail_at, config.restore_at);
    let utility = Arc::new(LogUtility::new());
    let healthy_oracle = regime_oracle(&topo, pairs, &utility, &Default::default());
    let failed_oracle = regime_oracle(
        &topo,
        pairs,
        &utility,
        &[victim_forward, victim_reverse].into_iter().collect(),
    );

    let mut net = protocol.build_network(topo);
    net.set_partitions(config.partitions);
    net.set_partition_threads(config.partition_threads);
    schedule.apply(&mut net);
    let ids: Vec<_> = pairs
        .iter()
        .map(|p| {
            net.add_flow(
                p.src,
                p.dst,
                None,
                SimTime::ZERO,
                p.spine_choice,
                None,
                protocol.make_agent(utility.clone()),
            )
        })
        .collect();

    let end = SimTime::ZERO + config.run_for;
    let mut samples = Vec::new();
    let mut t = SimTime::ZERO + config.sample_every;
    let mut final_rates = vec![0.0; ids.len()];
    while t <= end {
        net.run_until(t);
        let rates: Vec<f64> = ids.iter().map(|&id| net.flow_rate_estimate(id)).collect();
        let cable_down = t >= config.fail_at && config.restore_at.is_none_or(|restore| t < restore);
        let oracle = if cable_down {
            &failed_oracle
        } else {
            &healthy_oracle
        };
        samples.push(RecoverySample {
            at: t,
            fraction_within: fraction_within(&rates, oracle, config.tolerance),
        });
        final_rates = rates;
        t += config.sample_every;
    }

    // Time-to-reconverge, with settling-time semantics: the quorum must
    // hold from the reported sample all the way to the END of the regime
    // (and cover at least `sustain` samples). Any-window detection would
    // be fooled by the first instants after a failure, when the rate
    // EWMAs still show the pre-failure allocation and can transiently
    // agree with the new regime's oracle before the queues even react.
    let reconverged_at = |from: SimTime, until: Option<SimTime>| -> Option<SimDuration> {
        let window: Vec<&RecoverySample> = samples
            .iter()
            .filter(|s| s.at >= from && until.is_none_or(|u| s.at < u))
            .collect();
        let holds_from = window
            .iter()
            .rposition(|s| s.fraction_within < config.quorum)
            .map_or(0, |i| i + 1);
        (window.len() - holds_from >= config.sustain.max(1)).then(|| window[holds_from].at - from)
    };
    let reconverge_after_failure = reconverged_at(config.fail_at, config.restore_at);
    let reconverge_after_restore = config.restore_at.and_then(|r| reconverged_at(r, None));

    let final_oracle = if config.restore_at.is_some() {
        &healthy_oracle
    } else {
        &failed_oracle
    };
    let oracle_total: f64 = final_oracle.iter().sum();
    RecoveryResult {
        protocol: protocol.name().to_string(),
        flows: ids.len(),
        victim_forward,
        victim_reverse,
        reconverge_after_failure,
        reconverge_after_restore,
        final_fraction_within: samples.last().map_or(0.0, |s| s.fraction_within),
        final_throughput_ratio: final_rates.iter().sum::<f64>() / oracle_total.max(1.0),
        samples,
    }
}

fn result_json(topology: &str, config: &RecoveryConfig, result: &RecoveryResult) -> Json {
    let opt_us = |d: Option<SimDuration>| d.map_or(Json::Null, |d| Json::Num(d.as_micros_f64()));
    Json::Obj(vec![
        ("scenario", Json::str("recovery")),
        ("topology", Json::str(topology)),
        ("protocol", Json::str(result.protocol.clone())),
        ("flows", Json::Int(result.flows as u64)),
        ("fail_us", Json::Num(config.fail_at.as_micros_f64())),
        (
            "restore_us",
            config
                .restore_at
                .map_or(Json::Null, |r| Json::Num(r.as_micros_f64())),
        ),
        (
            "victim_links",
            Json::Arr(vec![
                Json::Int(result.victim_forward as u64),
                Json::Int(result.victim_reverse as u64),
            ]),
        ),
        (
            "reconverge_after_failure_us",
            opt_us(result.reconverge_after_failure),
        ),
        (
            "reconverge_after_restore_us",
            opt_us(result.reconverge_after_restore),
        ),
        (
            "final_fraction_within",
            Json::Num(result.final_fraction_within),
        ),
        (
            "final_throughput_ratio",
            Json::Num(result.final_throughput_ratio),
        ),
        (
            "samples_us",
            Json::nums(result.samples.iter().map(|s| s.at.as_micros_f64())),
        ),
        (
            "fraction_within",
            Json::nums(result.samples.iter().map(|s| s.fraction_within)),
        ),
    ])
}

/// The `recovery` scenario entry point: cut the busiest cable under a
/// stride permutation and report time-to-reconverge, for one `--protocol`
/// or a `--compare` list.
pub fn recovery(opts: &ScenarioOptions) {
    let spec: TopologySpec = opts.parsed_or("--topology", TopologySpec::FatTree { k: 4 });
    let seed: u64 = opts.parsed_or("--seed", 1);
    let millis: u64 = opts.parsed_or("--millis", 6);
    let fail_us: u64 = opts.parsed_or("--fail-us", 1_500);
    let restore_us: Option<u64> = opts.try_parsed("--restore-us").unwrap_or_else(|e| {
        cli_error(e);
    });
    let json = opts.flag("--json");
    let protocols: Vec<Protocol> = match opts.value("--compare") {
        Some(list) => list
            .split(',')
            .map(|name| {
                Protocol::from_name(name.trim()).unwrap_or_else(|| {
                    cli_error(format!(
                        "invalid value `{name}` for option `--compare`: expected {}",
                        Protocol::NAMES
                    ))
                })
            })
            .collect(),
        None if opts.flag("--compare") => {
            vec![
                Protocol::from_name("numfabric").unwrap(),
                Protocol::from_name("dctcp").unwrap(),
                Protocol::from_name("pfabric").unwrap(),
            ]
        }
        None => vec![Protocol::from_options(opts)],
    };

    let topo = spec.build(opts.full());
    let default_stride = topo.hosts().len() / 2;
    let stride_by: usize = opts.parsed_or("--stride", default_stride);
    if stride_by.is_multiple_of(topo.hosts().len()) {
        cli_error(format!(
            "--stride {stride_by} is a multiple of the host count {} (flows would be self-loops)",
            topo.hosts().len()
        ));
    }
    let config = RecoveryConfig {
        fail_at: SimTime::from_micros(fail_us),
        restore_at: restore_us.map(SimTime::from_micros),
        run_for: SimDuration::from_millis(millis),
        partitions: partitions_from_options(opts),
        partition_threads: partition_threads_from_options(opts),
        ..RecoveryConfig::default()
    };
    if config.fail_at + config.sample_every * config.sustain as u64 > SimTime::ZERO + config.run_for
    {
        cli_error(format!(
            "--fail-us {fail_us} leaves no room to observe recovery in a {millis} ms run"
        ));
    }
    let pairs = stride_pairs(&topo, stride_by, seed);
    let topology = spec.describe(&topo);

    if !json {
        println!(
            "Recovery: busiest-cable cut on {topology}\n\
             stride {stride_by} permutation, {} long-lived flows; fail at {fail_us} us{}, {millis} ms run (seed {seed})\n",
            pairs.len(),
            restore_us.map_or(String::new(), |r| format!(", restore at {r} us")),
        );
    }
    let results: Vec<RecoveryResult> = protocols
        .iter()
        .map(|p| run_recovery(p, topo.clone(), &pairs, &config))
        .collect();

    if json {
        let docs: Vec<Json> = results
            .iter()
            .map(|r| result_json(&topology, &config, r))
            .collect();
        match <[Json; 1]>::try_from(docs) {
            Ok([single]) => println!("{}", single.render()),
            Err(docs) => println!("{}", Json::Arr(docs).render()),
        }
    } else {
        let us = |d: Option<SimDuration>| {
            d.map_or_else(
                || "-".to_string(),
                |d| format!("{:.0} us", d.as_micros_f64()),
            )
        };
        print_table(
            &[
                "protocol",
                "flows",
                "victim cable",
                "reconverge (fail)",
                "reconverge (restore)",
                "final within 20%",
                "final vs oracle",
            ],
            &results
                .iter()
                .map(|r| {
                    vec![
                        r.protocol.clone(),
                        format!("{}", r.flows),
                        format!("{}<->{}", r.victim_forward, r.victim_reverse),
                        us(r.reconverge_after_failure),
                        us(r.reconverge_after_restore),
                        format!("{:.0}%", r.final_fraction_within * 100.0),
                        format!("{:.2}", r.final_throughput_ratio),
                    ]
                })
                .collect::<Vec<_>>(),
        );
        println!(
            "\nExpected shape: xWI re-prices the surviving paths within a few RTTs, so NUMFabric\n\
             reconverges fastest; DCTCP recovers on ECN feedback more slowly, and restoration is\n\
             quicker than failure because no retransmission state has to drain."
        );
    }
    // A recovery run is wedged when the simulation stalled outright —
    // non-finite estimates or the fabric moving (almost) no traffic vs the
    // final regime's oracle. Slow reconvergence is a *finding*, not a wedge.
    for r in &results {
        exit_if_wedged(
            !r.final_throughput_ratio.is_finite() || r.final_throughput_ratio < 0.1,
            format!(
                "recovery run wedged: {} final throughput ratio {:.3} vs the active oracle",
                r.protocol, r.final_throughput_ratio
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_core::NumFabricConfig;

    fn setup() -> (Topology, Vec<PathSpec>) {
        let topo = TopologySpec::FatTree { k: 4 }.build(false);
        let pairs = stride_pairs(&topo, 8, 3);
        (topo, pairs)
    }

    #[test]
    fn busiest_cable_is_deterministic_and_switch_to_switch() {
        let (topo, pairs) = setup();
        let (fwd, rev) = busiest_cable(&topo, &pairs);
        assert_eq!(busiest_cable(&topo, &pairs), (fwd, rev));
        let spec = &topo.links()[fwd];
        assert!(topo.nodes()[spec.from].kind.is_switch());
        assert!(topo.nodes()[spec.to].kind.is_switch());
        assert_eq!(topo.link_between(spec.to, spec.from), Some(rev));
    }

    #[test]
    fn numfabric_reconverges_after_a_cable_cut() {
        let (topo, pairs) = setup();
        let protocol = Protocol::NumFabric(NumFabricConfig::default());
        let config = RecoveryConfig {
            fail_at: SimTime::from_micros(1_500),
            run_for: SimDuration::from_millis(5),
            ..RecoveryConfig::default()
        };
        let result = run_recovery(&protocol, topo, &pairs, &config);
        assert_eq!(result.flows, 16);
        let reconverge = result
            .reconverge_after_failure
            .expect("xWI must reconverge onto the surviving paths");
        assert!(
            reconverge < SimDuration::from_millis(3),
            "reconvergence took {reconverge}"
        );
        assert!(result.final_throughput_ratio > 0.8);
    }

    #[test]
    fn restoration_reconverges_back_onto_the_healthy_oracle() {
        let (topo, pairs) = setup();
        let protocol = Protocol::NumFabric(NumFabricConfig::default());
        let config = RecoveryConfig {
            fail_at: SimTime::from_micros(1_000),
            restore_at: Some(SimTime::from_micros(2_500)),
            run_for: SimDuration::from_millis(6),
            ..RecoveryConfig::default()
        };
        let result = run_recovery(&protocol, topo, &pairs, &config);
        assert!(result.reconverge_after_restore.is_some());
        assert!(result.final_fraction_within >= 0.75);
    }

    #[test]
    fn recovery_runs_are_replay_identical() {
        let (topo, pairs) = setup();
        let protocol = Protocol::NumFabric(NumFabricConfig::default());
        let config = RecoveryConfig {
            run_for: SimDuration::from_millis(3),
            ..RecoveryConfig::default()
        };
        let a = run_recovery(&protocol, topo.clone(), &pairs, &config);
        let b = run_recovery(&protocol, topo, &pairs, &config);
        assert_eq!(a.victim_forward, b.victim_forward);
        assert_eq!(a.samples.len(), b.samples.len());
        for (sa, sb) in a.samples.iter().zip(&b.samples) {
            assert_eq!(sa.at, sb.at);
            assert_eq!(sa.fraction_within.to_bits(), sb.fraction_within.to_bits());
        }
    }
}

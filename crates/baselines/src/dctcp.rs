//! **DCTCP** — Data Center TCP, used by the paper only as a qualitative
//! comparison point (Fig. 4b): its rates are stable over milliseconds but far
//! too noisy at the 100 µs timescales NUMFabric converges on.
//!
//! The implementation follows the standard DCTCP description: switches mark
//! packets (ECN) once the queue exceeds a threshold (`EcnFifo` in the
//! simulator crate); receivers echo the marks; senders maintain an estimate
//! `α` of the marked fraction per window and cut the window by `α/2` once per
//! RTT, otherwise growing additively (one MSS per RTT, plus slow start at
//! flow start).

use numfabric_sim::network::{AgentCtx, Network};
use numfabric_sim::packet::{Packet, DEFAULT_PAYLOAD_BYTES, MTU_BYTES};
use numfabric_sim::queue::EcnFifo;
use numfabric_sim::topology::Topology;
use numfabric_sim::transport::FlowAgent;
use serde::{Deserialize, Serialize};

/// DCTCP parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DctcpConfig {
    /// ECN marking threshold at the switch, in bytes (≈65 MTU-sized packets
    /// for 10 Gbps links in the DCTCP paper).
    pub marking_threshold_bytes: usize,
    /// The gain `g` of the marked-fraction EWMA (1/16 in the DCTCP paper).
    pub g: f64,
    /// Initial congestion window in packets (slow start begins here).
    pub initial_window_packets: u64,
}

impl Default for DctcpConfig {
    fn default() -> Self {
        Self {
            marking_threshold_bytes: 65 * MTU_BYTES as usize,
            g: 1.0 / 16.0,
            initial_window_packets: 10,
        }
    }
}

/// The DCTCP flow agent.
pub struct DctcpAgent {
    config: DctcpConfig,
    cwnd_bytes: f64,
    ssthresh_bytes: f64,
    alpha: f64,
    // Marked/total ACK counts in the current observation window (one RTT).
    acks_marked: u64,
    acks_total: u64,
    window_end_seq: u64,
    cut_this_window: bool,
    next_seq: u64,
    highest_ack: u64,
}

impl DctcpAgent {
    /// An agent with the given configuration.
    pub fn new(config: DctcpConfig) -> Self {
        let cwnd = (config.initial_window_packets * MTU_BYTES as u64) as f64;
        Self {
            config,
            cwnd_bytes: cwnd,
            ssthresh_bytes: f64::MAX,
            alpha: 0.0,
            acks_marked: 0,
            acks_total: 0,
            window_end_seq: 0,
            cut_this_window: false,
            next_seq: 0,
            highest_ack: 0,
        }
    }

    /// The sender's current congestion window in bytes.
    pub fn cwnd_bytes(&self) -> f64 {
        self.cwnd_bytes
    }

    /// The current marked-fraction estimate α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    fn in_flight(&self) -> u64 {
        self.next_seq.saturating_sub(self.highest_ack)
    }

    fn send_available(&mut self, ctx: &mut AgentCtx<'_>) {
        while (self.in_flight() as f64) + DEFAULT_PAYLOAD_BYTES as f64 <= self.cwnd_bytes {
            let payload = match ctx.remaining_bytes() {
                Some(0) => break,
                Some(rem) => rem.min(DEFAULT_PAYLOAD_BYTES as u64) as u32,
                None => DEFAULT_PAYLOAD_BYTES,
            };
            let seq = self.next_seq;
            ctx.send_data(seq, payload, |h| {
                h.ecn_capable = true;
            });
            self.next_seq += payload as u64;
        }
    }

    fn end_of_window_update(&mut self) {
        let fraction = if self.acks_total > 0 {
            self.acks_marked as f64 / self.acks_total as f64
        } else {
            0.0
        };
        self.alpha = (1.0 - self.config.g) * self.alpha + self.config.g * fraction;
        self.acks_marked = 0;
        self.acks_total = 0;
        self.cut_this_window = false;
        self.window_end_seq = self.next_seq;
    }
}

impl FlowAgent for DctcpAgent {
    fn on_start(&mut self, ctx: &mut AgentCtx<'_>) {
        self.window_end_seq = 0;
        self.send_available(ctx);
        self.window_end_seq = self.next_seq;
    }

    fn on_ack(&mut self, packet: &Packet, ctx: &mut AgentCtx<'_>) {
        self.highest_ack = self.highest_ack.max(packet.header.ack_bytes);
        self.acks_total += 1;
        if packet.header.ecn_echo {
            self.acks_marked += 1;
            // React at most once per window (per RTT), like TCP/DCTCP.
            if !self.cut_this_window {
                // Use the running α for the cut; the canonical algorithm cuts
                // at window boundaries but per-mark cuts with the smoothed α
                // behave equivalently at this level of abstraction.
                self.cwnd_bytes = (self.cwnd_bytes * (1.0 - self.alpha.max(1.0 / 16.0) / 2.0))
                    .max(MTU_BYTES as f64);
                self.ssthresh_bytes = self.cwnd_bytes;
                self.cut_this_window = true;
            }
        } else if self.cwnd_bytes < self.ssthresh_bytes {
            // Slow start: one MSS per ACK.
            self.cwnd_bytes += DEFAULT_PAYLOAD_BYTES as f64;
        } else {
            // Congestion avoidance: one MSS per window.
            self.cwnd_bytes +=
                (DEFAULT_PAYLOAD_BYTES as f64 * DEFAULT_PAYLOAD_BYTES as f64) / self.cwnd_bytes;
        }
        if packet.header.ack_bytes >= self.window_end_seq {
            self.end_of_window_update();
        }
        self.send_available(ctx);
    }

    // This DCTCP model is purely ACK-clocked (drops on the lossless test
    // fabrics are recovered by the window stall resolving via later ACKs),
    // so it arms no flow timers and nothing needs cancelling on completion.
    fn on_timer(&mut self, _tag: u64, _ctx: &mut AgentCtx<'_>) {}

    fn on_reroute(&mut self, path_was_lost: bool, ctx: &mut AgentCtx<'_>) {
        if !path_was_lost {
            return;
        }
        // With no retransmission timer, losing the whole in-flight window
        // to a failed path would stall the ACK clock forever. Recover the
        // way TCP does after an RTO: go-back-N from the last cumulative
        // ACK and slow-start toward half the old window.
        self.ssthresh_bytes = (self.cwnd_bytes / 2.0).max(2.0 * MTU_BYTES as f64);
        self.cwnd_bytes = (self.config.initial_window_packets * MTU_BYTES as u64) as f64;
        self.next_seq = self.highest_ack;
        ctx.rewind_sent(self.highest_ack);
        self.acks_marked = 0;
        self.acks_total = 0;
        self.cut_this_window = false;
        self.send_available(ctx);
        self.window_end_seq = self.next_seq;
    }

    fn name(&self) -> &'static str {
        "dctcp"
    }
}

/// Build a network ready for DCTCP: ECN-marking FIFOs on every link.
pub fn dctcp_network(topo: Topology, config: &DctcpConfig) -> Network {
    let threshold = config.marking_threshold_bytes;
    Network::new(topo, move |_| {
        Box::new(EcnFifo::new(
            numfabric_sim::queue::DEFAULT_BUFFER_BYTES,
            threshold,
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_sim::topology::LeafSpineConfig;
    use numfabric_sim::{FlowPhase, SimTime};

    #[test]
    fn two_dctcp_flows_are_fair_on_average_but_noisy() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let mut net = dctcp_network(topo, &DctcpConfig::default());
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let f0 = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(DctcpAgent::new(DctcpConfig::default())),
        );
        let f1 = net.add_flow(
            hosts[1],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(DctcpAgent::new(DctcpConfig::default())),
        );
        // Long-run average over several milliseconds.
        let mut sum0 = 0.0;
        let mut sum1 = 0.0;
        let mut samples = 0;
        for step in 1..=40 {
            net.run_until(SimTime::from_micros(step * 250));
            if step > 8 {
                sum0 += net.flow_rate_estimate(f0);
                sum1 += net.flow_rate_estimate(f1);
                samples += 1;
            }
        }
        let avg0 = sum0 / samples as f64;
        let avg1 = sum1 / samples as f64;
        let total = avg0 + avg1;
        assert!(total > 7e9, "severely underutilized: {total:.3e}");
        assert!(
            (avg0 - avg1).abs() / total < 0.35,
            "{avg0:.3e} vs {avg1:.3e}"
        );
    }

    #[test]
    fn dctcp_keeps_queues_bounded_by_the_marking_threshold_region() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let cfg = DctcpConfig::default();
        let mut net = dctcp_network(topo, &cfg);
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let _ = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(DctcpAgent::new(cfg.clone())),
        );
        let _ = net.add_flow(
            hosts[1],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(DctcpAgent::new(cfg.clone())),
        );
        net.run_until(SimTime::from_millis(10));
        let topo = net.topology().clone();
        let hosts: Vec<_> = topo.hosts().to_vec();
        let leaf = topo.leaf_of(hosts[4]).unwrap();
        let bottleneck = topo.link_between(leaf, hosts[4]).unwrap();
        let q = net.link_stats(bottleneck).queue_bytes;
        // The queue oscillates around the threshold; it must stay well below
        // the 1 MB buffer (no tail-drop regime).
        assert!(q < 400_000, "queue = {q} bytes");
    }

    #[test]
    fn dctcp_flow_completes() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let mut net = dctcp_network(topo, &DctcpConfig::default());
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            Some(1_000_000),
            SimTime::ZERO,
            0,
            None,
            Box::new(DctcpAgent::new(DctcpConfig::default())),
        );
        net.run_until(SimTime::from_millis(50));
        assert_eq!(net.flow_phase(flow), FlowPhase::Completed);
    }

    #[test]
    fn cable_cut_on_the_path_restarts_the_ack_clock() {
        // Same regression surface as NUMFabric's reroute test: DCTCP has
        // no RTX timer, so losing the whole in-flight window to a cable
        // cut would stall the flow forever without the go-back-N restart
        // in `on_reroute`.
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let mut net = dctcp_network(topo, &DctcpConfig::default());
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(DctcpAgent::new(DctcpConfig::default())),
        );
        net.run_until(SimTime::from_millis(2));
        let original = net.flow_spec(flow).route;
        let topo = net.topology().clone();
        let (fwd, rev) = net
            .route(original)
            .links()
            .iter()
            .find_map(|&l| {
                let spec = &topo.links()[l];
                (topo.nodes()[spec.from].kind.is_switch() && topo.nodes()[spec.to].kind.is_switch())
                    .then(|| (l, topo.link_between(spec.to, spec.from).unwrap()))
            })
            .expect("cross-rack route crosses a fabric cable");
        use numfabric_sim::LinkChange;
        net.schedule_link_change(SimTime::from_millis(2), fwd, LinkChange::Down);
        net.schedule_link_change(SimTime::from_millis(2), rev, LinkChange::Down);
        net.run_until(SimTime::from_millis(5));
        assert_ne!(net.flow_spec(flow).route, original);
        let delivered = net.flow_stats(flow).bytes_delivered;
        net.run_until(SimTime::from_millis(8));
        let grown = net.flow_stats(flow).bytes_delivered - delivered;
        // 3 ms of a recovered flow on a 10 Gbps NIC moves megabytes.
        assert!(
            grown > 1_000_000,
            "flow barely moved after the cut: {grown} bytes"
        );
    }

    #[test]
    fn alpha_estimate_rises_under_persistent_marking() {
        let mut agent = DctcpAgent::new(DctcpConfig::default());
        assert_eq!(agent.alpha(), 0.0);
        // Simulate five windows in which every ACK was marked.
        for _ in 0..5 {
            agent.acks_total = 10;
            agent.acks_marked = 10;
            agent.end_of_window_update();
        }
        assert!(agent.alpha() > 0.2, "alpha = {}", agent.alpha());
    }
}

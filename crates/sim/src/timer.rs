//! First-class flow timers: handle-based arm/cancel on top of the event
//! core's tombstone cancellation.
//!
//! Historically agents juggled raw `(flow, tag)` pairs: a timer, once
//! scheduled, could not be taken back, so stale `FlowTimer` events for
//! stopped or completed flows kept traversing the queue and the dispatch
//! path, filtered only by an ad-hoc phase check. The [`TimerService`] makes
//! cancellation structural:
//!
//! * [`TimerService::arm`] schedules a cancellable `FlowTimer` and returns a
//!   [`TimerHandle`] the agent can keep (e.g. "my pending RTX timer");
//! * [`TimerService::cancel`] revokes one handle in O(1);
//! * [`TimerService::cancel_all`] revokes every outstanding timer of a flow
//!   — the engine calls this when a flow stops or completes, so dead flows
//!   leave nothing behind in the queue.
//!
//! Agents reach this through [`crate::network::AgentCtx::set_timer`] (which
//! now returns the handle) and [`crate::network::AgentCtx::cancel_timer`];
//! the `tag` passed to [`crate::transport::FlowAgent::on_timer`] still
//! distinguishes timer kinds (RTX vs pacing, say), while the handle carries
//! identity.

use crate::event::{Event, EventId, EventQueue};
use crate::packet::FlowId;
use crate::time::{SimDuration, SimTime};

/// A handle to one armed flow timer. Obtained from
/// [`crate::network::AgentCtx::set_timer`]; remains valid until the timer
/// fires or is cancelled (after which [`TimerService::cancel`] is a no-op
/// returning `false`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle {
    flow: FlowId,
    id: EventId,
}

impl TimerHandle {
    /// The flow this timer belongs to.
    pub fn flow(&self) -> FlowId {
        self.flow
    }
}

/// Per-flow bookkeeping of outstanding timers (see the module docs).
///
/// The service itself does not own the clock or the queue — it borrows the
/// [`EventQueue`] per call, which is what lets the network engine keep both
/// as plain struct fields.
#[derive(Debug, Default)]
pub struct TimerService {
    /// `pending[flow]`: event ids of that flow's armed, un-fired timers.
    /// Flows keep at most a handful outstanding, so a small Vec beats any
    /// map.
    pending: Vec<Vec<EventId>>,
}

impl TimerService {
    /// An empty service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register bookkeeping for the next flow id. Must be called once per
    /// flow, in flow-id order (the network engine does this in `add_flow`).
    pub fn register_flow(&mut self) {
        self.pending.push(Vec::new());
    }

    /// Reset a flow's bookkeeping for slot reuse (the network engine calls
    /// this when retiring a flow into the free list; a retiring flow has no
    /// armed timers left, so this only releases the slot's scratch).
    pub fn reset_flow(&mut self, flow: FlowId) {
        debug_assert!(
            self.pending[flow].is_empty(),
            "retiring a flow with armed timers"
        );
        self.pending[flow].clear();
    }

    /// Arm a timer: after `delay`, `flow`'s agent receives
    /// [`crate::transport::FlowAgent::on_timer`] with `tag` — unless the
    /// handle is cancelled first.
    pub fn arm(
        &mut self,
        events: &mut EventQueue,
        flow: FlowId,
        delay: SimDuration,
        tag: u64,
    ) -> TimerHandle {
        let at = events.now() + delay;
        let id = events.schedule_cancellable(at, Event::FlowTimer { flow, tag });
        self.pending[flow].push(id);
        TimerHandle { flow, id }
    }

    /// [`Self::arm`] under an external clock and event key. The partitioned
    /// network uses this: a partition's wheel clock lags the global clock
    /// between barriers, so the delay is anchored at the core's own `now`,
    /// and `seq` is a content-derived key (flow id plus a per-sender arm
    /// counter) so the timer merges deterministically for any partition and
    /// thread count.
    #[allow(clippy::too_many_arguments)]
    pub fn arm_seeded(
        &mut self,
        events: &mut EventQueue,
        now: SimTime,
        seq: u64,
        flow: FlowId,
        delay: SimDuration,
        tag: u64,
    ) -> TimerHandle {
        let at = now + delay;
        let id = events.schedule_cancellable_seeded(at, Event::FlowTimer { flow, tag }, seq);
        self.pending[flow].push(id);
        TimerHandle { flow, id }
    }

    /// Cancel one armed timer. Returns `true` if it was still pending,
    /// `false` if it already fired or was already cancelled.
    pub fn cancel(&mut self, events: &mut EventQueue, handle: TimerHandle) -> bool {
        if events.cancel(handle.id) {
            self.forget(handle.flow, handle.id);
            true
        } else {
            false
        }
    }

    /// Cancel every outstanding timer of `flow` (flow stop / completion).
    /// Returns how many timers were revoked.
    pub fn cancel_all(&mut self, events: &mut EventQueue, flow: FlowId) -> usize {
        let ids = std::mem::take(&mut self.pending[flow]);
        let mut cancelled = 0;
        for id in ids {
            if events.cancel(id) {
                cancelled += 1;
            }
        }
        cancelled
    }

    /// Record that a timer event was popped for dispatch (the engine calls
    /// this before invoking the agent, so re-arming inside the callback
    /// starts from a clean slate).
    pub fn fired(&mut self, flow: FlowId, id: EventId) {
        self.forget(flow, id);
    }

    /// Number of armed, un-fired timers of `flow`.
    pub fn pending_count(&self, flow: FlowId) -> usize {
        self.pending[flow].len()
    }

    fn forget(&mut self, flow: FlowId, id: EventId) {
        let pending = &mut self.pending[flow];
        if let Some(pos) = pending.iter().position(|&p| p == id) {
            pending.swap_remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn pop_tags(events: &mut EventQueue, timers: &mut TimerService) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some((t, id, event)) = events.pop_entry() {
            match event {
                Event::FlowTimer { flow, tag } => {
                    timers.fired(flow, id);
                    out.push((t.as_nanos(), tag));
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
        out
    }

    #[test]
    fn armed_timers_fire_with_their_tags() {
        let mut events = EventQueue::new();
        let mut timers = TimerService::new();
        timers.register_flow();
        timers.arm(&mut events, 0, SimDuration::from_micros(5), 7);
        timers.arm(&mut events, 0, SimDuration::from_micros(2), 8);
        assert_eq!(timers.pending_count(0), 2);
        let fired = pop_tags(&mut events, &mut timers);
        assert_eq!(fired, vec![(2_000, 8), (5_000, 7)]);
        assert_eq!(timers.pending_count(0), 0);
    }

    #[test]
    fn cancel_revokes_a_single_timer() {
        let mut events = EventQueue::new();
        let mut timers = TimerService::new();
        timers.register_flow();
        let keep = timers.arm(&mut events, 0, SimDuration::from_micros(3), 1);
        let drop = timers.arm(&mut events, 0, SimDuration::from_micros(1), 2);
        assert!(timers.cancel(&mut events, drop));
        assert!(
            !timers.cancel(&mut events, drop),
            "double cancel is a no-op"
        );
        assert_eq!(timers.pending_count(0), 1);
        assert_eq!(pop_tags(&mut events, &mut timers), vec![(3_000, 1)]);
        assert!(
            !timers.cancel(&mut events, keep),
            "fired handles cannot be cancelled"
        );
    }

    #[test]
    fn cancel_all_sweeps_a_flow() {
        let mut events = EventQueue::new();
        let mut timers = TimerService::new();
        timers.register_flow();
        timers.register_flow();
        for tag in 0..3 {
            timers.arm(&mut events, 0, SimDuration::from_micros(tag + 1), tag);
        }
        let other = timers.arm(&mut events, 1, SimDuration::from_micros(9), 42);
        assert_eq!(timers.cancel_all(&mut events, 0), 3);
        assert_eq!(timers.pending_count(0), 0);
        assert_eq!(events.len(), 1, "flow 1's timer must survive");
        assert_eq!(pop_tags(&mut events, &mut timers), vec![(9_000, 42)]);
        let _ = other;
        assert_eq!(events.now(), SimTime::from_micros(9));
    }
}

//! Utility functions (Table 1 of the paper).
//!
//! Each bandwidth-allocation policy in NUMFabric is expressed by choosing a
//! utility function `U_i(x_i)` per flow; the network then maximizes
//! `Σ_i U_i(x_i)` subject to link capacities. This module provides the
//! catalogue of utilities used in the paper behind a single [`Utility`]
//! trait:
//!
//! | Policy | Type |
//! |---|---|
//! | α-fairness / weighted α-fairness | [`AlphaFair`] |
//! | Proportional fairness (α = 1) | [`LogUtility`] (also `AlphaFair::new(1.0)`) |
//! | Minimize flow completion time | [`FctUtility`] |
//! | Bandwidth functions (BwE) | [`BandwidthFunctionUtility`] |
//! | Resource pooling (multipath) | [`MultipathAggregate`] |
//!
//! The solvers only ever need three operations: the utility value, the
//! marginal utility `U'(x)` and its inverse `U'⁻¹(p)`. All implementations
//! keep these three mutually consistent, which the property tests in this
//! module verify.

use crate::bandwidth_function::BandwidthFunction;
use crate::{clamp_rate, MAX_RATE, MIN_RATE};
use std::fmt;
use std::sync::Arc;

/// A smooth, increasing, strictly concave utility function of a flow's rate.
///
/// Rates and prices are non-negative `f64` values in consistent units
/// (the library does not care whether rates are in bits/s or Gb/s as long as
/// link capacities use the same unit).
pub trait Utility: Send + Sync + fmt::Debug {
    /// The utility value `U(x)` at rate `x`.
    fn value(&self, x: f64) -> f64;

    /// The marginal utility `U'(x)`.
    ///
    /// Implementations clamp `x` to a small positive floor so that the
    /// marginal stays finite even when a transient assigns a zero rate.
    fn marginal(&self, x: f64) -> f64;

    /// The inverse marginal utility `U'⁻¹(p)`: the rate at which the marginal
    /// utility equals the price `p`.
    ///
    /// This is the map used both by DGD (to pick rates, Eq. 3) and by xWI
    /// (to pick Swift weights, Eq. 7).
    fn inverse_marginal(&self, p: f64) -> f64;

    /// A short human-readable name used in logs and benchmark tables.
    fn name(&self) -> String;

    /// The largest rate at which the flow still derives meaningful marginal
    /// utility, if the utility saturates (e.g. a bandwidth function's maximum
    /// bandwidth). `None` for utilities that always want more bandwidth
    /// (α-fair, FCT). Transports use this as a demand cap so a saturated flow
    /// does not soak up bandwidth it derives no benefit from.
    fn max_useful_rate(&self) -> Option<f64> {
        None
    }
}

/// Shared-ownership handle to a utility function.
///
/// Utilities are immutable once constructed, so flows and solvers share them
/// via `Arc` rather than cloning boxed trait objects.
pub type UtilityRef = Arc<dyn Utility>;

/// α-fair utility (rows 1–2 of Table 1):
/// `U(x) = w^α · x^{1-α} / (1-α)` for `α ≠ 1`, and `w · log x` for `α = 1`.
///
/// * `α = 0` maximizes total throughput,
/// * `α = 1` is (weighted) proportional fairness,
/// * `α → ∞` approaches max-min fairness.
#[derive(Debug, Clone, PartialEq)]
pub struct AlphaFair {
    alpha: f64,
    weight: f64,
}

impl AlphaFair {
    /// An unweighted α-fair utility.
    ///
    /// # Panics
    /// Panics if `alpha` is negative or not finite.
    pub fn new(alpha: f64) -> Self {
        Self::weighted(alpha, 1.0)
    }

    /// A weighted α-fair utility with weight multiplier `weight > 0`.
    ///
    /// # Panics
    /// Panics if `alpha < 0`, `weight <= 0`, or either is not finite.
    pub fn weighted(alpha: f64, weight: f64) -> Self {
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be >= 0");
        assert!(weight.is_finite() && weight > 0.0, "weight must be > 0");
        Self { alpha, weight }
    }

    /// Proportional fairness (`α = 1`, weight 1).
    pub fn proportional_fairness() -> Self {
        Self::new(1.0)
    }

    /// The fairness exponent α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The weight multiplier.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    fn is_log(&self) -> bool {
        (self.alpha - 1.0).abs() < 1e-12
    }
}

impl Utility for AlphaFair {
    fn value(&self, x: f64) -> f64 {
        let x = clamp_rate(x);
        if self.is_log() {
            self.weight * x.ln()
        } else {
            self.weight.powf(self.alpha) * x.powf(1.0 - self.alpha) / (1.0 - self.alpha)
        }
    }

    fn marginal(&self, x: f64) -> f64 {
        let x = clamp_rate(x);
        // U'(x) = w^α x^{-α}; for α = 0 this is the constant 1 (pure throughput).
        if self.alpha == 0.0 {
            1.0
        } else {
            (self.weight / x).powf(self.alpha)
        }
    }

    fn inverse_marginal(&self, p: f64) -> f64 {
        if self.alpha == 0.0 {
            // Linear utility: the marginal is constant, the inverse is not
            // well defined; return the rate cap (flow wants as much as it can get).
            return MAX_RATE;
        }
        if p <= 0.0 {
            return MAX_RATE;
        }
        clamp_rate(self.weight * p.powf(-1.0 / self.alpha))
    }

    fn name(&self) -> String {
        if self.weight == 1.0 {
            format!("alpha-fair(alpha={})", self.alpha)
        } else {
            format!("alpha-fair(alpha={}, w={})", self.alpha, self.weight)
        }
    }
}

/// Logarithmic (proportionally fair) utility `U(x) = w log x`.
///
/// Identical to [`AlphaFair`] with `α = 1`, provided as its own type because
/// proportional fairness is the default objective in the paper's convergence
/// experiments (§6.1).
#[derive(Debug, Clone, PartialEq)]
pub struct LogUtility {
    weight: f64,
}

impl LogUtility {
    /// Unweighted log utility.
    pub fn new() -> Self {
        Self { weight: 1.0 }
    }

    /// Weighted log utility `w log x`.
    ///
    /// # Panics
    /// Panics if `weight <= 0` or not finite.
    pub fn weighted(weight: f64) -> Self {
        assert!(weight.is_finite() && weight > 0.0, "weight must be > 0");
        Self { weight }
    }

    /// The weight multiplier.
    pub fn weight(&self) -> f64 {
        self.weight
    }
}

impl Default for LogUtility {
    fn default() -> Self {
        Self::new()
    }
}

impl Utility for LogUtility {
    fn value(&self, x: f64) -> f64 {
        self.weight * clamp_rate(x).ln()
    }

    fn marginal(&self, x: f64) -> f64 {
        self.weight / clamp_rate(x)
    }

    fn inverse_marginal(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return MAX_RATE;
        }
        clamp_rate(self.weight / p)
    }

    fn name(&self) -> String {
        format!("log(w={})", self.weight)
    }
}

/// Flow-completion-time minimizing utility (row 3 of Table 1), in the
/// strictly-concave form the paper actually uses (§6.3):
/// `U(x) = x^{1-ε} / ((1-ε) · s)` with a small `ε` (default 0.125).
///
/// The weight `1/s` is inversely proportional to the flow size `s`, which
/// approximates Shortest-Flow-First; using the remaining size instead
/// approximates SRPT.
#[derive(Debug, Clone, PartialEq)]
pub struct FctUtility {
    size: f64,
    epsilon: f64,
}

impl FctUtility {
    /// ε used by the paper's FCT experiments.
    pub const DEFAULT_EPSILON: f64 = 0.125;

    /// FCT utility for a flow of `size` (any positive unit, typically bytes),
    /// with the paper's default ε = 0.125.
    ///
    /// # Panics
    /// Panics if `size <= 0` or not finite.
    pub fn new(size: f64) -> Self {
        Self::with_epsilon(size, Self::DEFAULT_EPSILON)
    }

    /// FCT utility with an explicit concavity parameter `ε ∈ (0, 1)`.
    ///
    /// # Panics
    /// Panics if `size <= 0`, `ε <= 0` or `ε >= 1`.
    pub fn with_epsilon(size: f64, epsilon: f64) -> Self {
        assert!(size.is_finite() && size > 0.0, "flow size must be > 0");
        assert!(
            epsilon.is_finite() && epsilon > 0.0 && epsilon < 1.0,
            "epsilon must be in (0,1)"
        );
        Self { size, epsilon }
    }

    /// The flow size this utility was built for.
    pub fn size(&self) -> f64 {
        self.size
    }

    /// The concavity parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl Utility for FctUtility {
    fn value(&self, x: f64) -> f64 {
        let x = clamp_rate(x);
        x.powf(1.0 - self.epsilon) / ((1.0 - self.epsilon) * self.size)
    }

    fn marginal(&self, x: f64) -> f64 {
        let x = clamp_rate(x);
        x.powf(-self.epsilon) / self.size
    }

    fn inverse_marginal(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return MAX_RATE;
        }
        clamp_rate((p * self.size).powf(-1.0 / self.epsilon))
    }

    fn name(&self) -> String {
        format!("fct(size={}, eps={})", self.size, self.epsilon)
    }
}

/// Bandwidth-function utility (row 5 of Table 1):
/// `U(x) = ∫_0^x F(τ)^{-α} dτ`, where `F = B⁻¹` is the inverse of the
/// operator-specified bandwidth function `B(f)`.
///
/// For large α the NUM allocation approaches the BwE water-filling allocation
/// induced by the bandwidth functions; the paper finds α ≈ 5 is sufficient.
#[derive(Debug, Clone)]
pub struct BandwidthFunctionUtility {
    bwf: BandwidthFunction,
    alpha: f64,
}

impl BandwidthFunctionUtility {
    /// The α the paper recommends (≈5 gives a very good approximation).
    pub const DEFAULT_ALPHA: f64 = 5.0;

    /// Build the utility for a bandwidth function with the default α = 5.
    pub fn new(bwf: BandwidthFunction) -> Self {
        Self::with_alpha(bwf, Self::DEFAULT_ALPHA)
    }

    /// Build the utility with an explicit α > 0.
    ///
    /// # Panics
    /// Panics if `alpha <= 0` or not finite.
    pub fn with_alpha(bwf: BandwidthFunction, alpha: f64) -> Self {
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be > 0");
        Self { bwf, alpha }
    }

    /// The underlying bandwidth function.
    pub fn bandwidth_function(&self) -> &BandwidthFunction {
        &self.bwf
    }

    /// The sharpness parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Utility for BandwidthFunctionUtility {
    fn value(&self, x: f64) -> f64 {
        // Numerical integral of F(τ)^{-α} from 0 to x (composite trapezoid on
        // a modest grid; only used for reporting, never inside solver loops).
        let x = clamp_rate(x).min(self.bwf.max_bandwidth());
        let n = 256;
        let h = x / n as f64;
        if h <= 0.0 {
            return 0.0;
        }
        let mut acc = 0.0;
        let f = |t: f64| {
            self.bwf
                .fair_share(t.max(MIN_RATE))
                .max(MIN_RATE)
                .powf(-self.alpha)
        };
        for k in 0..n {
            let a = k as f64 * h;
            let b = a + h;
            acc += 0.5 * (f(a) + f(b)) * h;
        }
        acc
    }

    fn marginal(&self, x: f64) -> f64 {
        let x = clamp_rate(x);
        let fair_share = self.bwf.fair_share(x).max(MIN_RATE);
        fair_share.powf(-self.alpha)
    }

    fn inverse_marginal(&self, p: f64) -> f64 {
        if p <= 0.0 {
            return clamp_rate(self.bwf.max_bandwidth());
        }
        // F(x)^{-α} = p  =>  F(x) = p^{-1/α}  =>  x = B(p^{-1/α})
        let fair_share = p.powf(-1.0 / self.alpha);
        clamp_rate(self.bwf.bandwidth(fair_share))
    }

    fn name(&self) -> String {
        format!("bandwidth-function(alpha={})", self.alpha)
    }

    fn max_useful_rate(&self) -> Option<f64> {
        Some(self.bwf.max_bandwidth())
    }
}

/// Multipath / resource-pooling aggregate (row 4 of Table 1).
///
/// The utility applies to the *total* rate of a multipath flow,
/// `y = Σ_p x_p` over its subflows. In the fluid solvers the aggregate is
/// handled by the multipath-aware oracle; in the packet-level protocol
/// (`numfabric-core::multipath`) each subflow derives its weight from the
/// aggregate marginal evaluated at the total rate. This type carries the
/// inner utility and the subflow count so both layers agree on semantics.
#[derive(Debug, Clone)]
pub struct MultipathAggregate {
    inner: UtilityRef,
    subflows: usize,
}

impl MultipathAggregate {
    /// Wrap `inner` as the utility of the aggregate rate of `subflows` subflows.
    ///
    /// # Panics
    /// Panics if `subflows == 0`.
    pub fn new(inner: UtilityRef, subflows: usize) -> Self {
        assert!(subflows > 0, "a multipath flow needs at least one subflow");
        Self { inner, subflows }
    }

    /// The inner (aggregate-rate) utility.
    pub fn inner(&self) -> &UtilityRef {
        &self.inner
    }

    /// Number of subflows in the aggregate.
    pub fn subflows(&self) -> usize {
        self.subflows
    }

    /// The marginal utility of the aggregate evaluated at total rate `y`.
    ///
    /// This is the value every subflow compares against its own path price.
    pub fn aggregate_marginal(&self, y: f64) -> f64 {
        self.inner.marginal(y)
    }
}

impl Utility for MultipathAggregate {
    fn value(&self, y: f64) -> f64 {
        self.inner.value(y)
    }

    fn marginal(&self, y: f64) -> f64 {
        self.inner.marginal(y)
    }

    fn inverse_marginal(&self, p: f64) -> f64 {
        self.inner.inverse_marginal(p)
    }

    fn name(&self) -> String {
        format!("multipath({}x {})", self.subflows, self.inner.name())
    }

    fn max_useful_rate(&self) -> Option<f64> {
        self.inner.max_useful_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandwidth_function::BandwidthFunction;
    use proptest::prelude::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!(
            (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs())),
            "{a} vs {b}"
        );
    }

    #[test]
    fn alpha_fair_log_limit_matches_log_utility() {
        let af = AlphaFair::new(1.0);
        let log = LogUtility::new();
        for &x in &[0.1, 1.0, 2.5, 100.0] {
            assert_close(af.value(x), log.value(x), 1e-12);
            assert_close(af.marginal(x), log.marginal(x), 1e-12);
        }
        for &p in &[0.01, 0.5, 3.0] {
            assert_close(af.inverse_marginal(p), log.inverse_marginal(p), 1e-12);
        }
    }

    #[test]
    fn alpha_zero_is_pure_throughput() {
        let u = AlphaFair::new(0.0);
        assert_eq!(u.marginal(1.0), 1.0);
        assert_eq!(u.marginal(1000.0), 1.0);
        assert_eq!(u.inverse_marginal(0.5), MAX_RATE);
    }

    #[test]
    fn weighted_alpha_fair_scales_inverse_marginal_by_weight() {
        // U'(x) = (w/x)^α, so U'⁻¹(p) = w p^{-1/α}: at the same price a flow
        // with twice the weight gets twice the rate.
        let a = AlphaFair::weighted(2.0, 1.0);
        let b = AlphaFair::weighted(2.0, 2.0);
        for &p in &[0.1, 1.0, 4.0] {
            assert_close(b.inverse_marginal(p), 2.0 * a.inverse_marginal(p), 1e-12);
        }
    }

    #[test]
    fn fct_utility_prefers_small_flows() {
        let small = FctUtility::new(1e4);
        let large = FctUtility::new(1e7);
        // At equal rates the small flow has the larger marginal utility, so the
        // NUM solution gives it priority (Shortest-Flow-First behaviour).
        assert!(small.marginal(1.0) > large.marginal(1.0));
        // At equal price the small flow is allocated the higher rate.
        assert!(small.inverse_marginal(1e-5) > large.inverse_marginal(1e-5));
    }

    #[test]
    fn log_utility_marginal_is_reciprocal() {
        let u = LogUtility::weighted(3.0);
        assert_close(u.marginal(6.0), 0.5, 1e-12);
        assert_close(u.inverse_marginal(0.5), 6.0, 1e-12);
    }

    #[test]
    fn bandwidth_function_utility_inverse_marginal_follows_bwf() {
        // Figure 2 of the paper: flow 1 has strict priority for its first
        // 10 Gbps, so at moderate prices its allocated rate is larger.
        let bwf1 =
            BandwidthFunction::from_points(&[(0.0, 0.0), (2.0, 10.0), (2.5, 15.0), (4.0, 15.0)])
                .unwrap();
        let u1 = BandwidthFunctionUtility::new(bwf1);
        // price = marginal at fair share 2 => F(x)=2 => x = B(2) = 10
        let p = 2.0_f64.powf(-u1.alpha());
        assert_close(u1.inverse_marginal(p), 10.0, 1e-9);
    }

    #[test]
    fn multipath_aggregate_delegates_to_inner() {
        let inner: UtilityRef = Arc::new(LogUtility::new());
        let mp = MultipathAggregate::new(inner, 4);
        assert_eq!(mp.subflows(), 4);
        assert_close(mp.marginal(2.0), 0.5, 1e-12);
        assert_close(mp.aggregate_marginal(2.0), 0.5, 1e-12);
        assert_close(mp.inverse_marginal(0.25), 4.0, 1e-12);
    }

    #[test]
    #[should_panic]
    fn alpha_fair_rejects_negative_alpha() {
        let _ = AlphaFair::new(-0.5);
    }

    #[test]
    #[should_panic]
    fn fct_rejects_zero_size() {
        let _ = FctUtility::new(0.0);
    }

    #[test]
    #[should_panic]
    fn multipath_rejects_zero_subflows() {
        let inner: UtilityRef = Arc::new(LogUtility::new());
        let _ = MultipathAggregate::new(inner, 0);
    }

    proptest! {
        /// U'⁻¹ really inverts U' for the α-fair family.
        #[test]
        fn prop_alpha_fair_inverse_roundtrip(alpha in 0.1f64..6.0, w in 0.1f64..10.0, x in 1e-3f64..1e6) {
            let u = AlphaFair::weighted(alpha, w);
            let p = u.marginal(x);
            let x2 = u.inverse_marginal(p);
            prop_assert!((x - x2).abs() / x < 1e-6, "x={x} x2={x2}");
        }

        /// Marginal utility is strictly decreasing (concavity) for α-fair.
        #[test]
        fn prop_alpha_fair_marginal_decreasing(alpha in 0.1f64..6.0, x in 1e-3f64..1e6, factor in 1.01f64..100.0) {
            let u = AlphaFair::new(alpha);
            prop_assert!(u.marginal(x * factor) < u.marginal(x));
        }

        /// Utility value is increasing in rate for α-fair.
        #[test]
        fn prop_alpha_fair_value_increasing(alpha in 0.1f64..4.0, x in 1e-3f64..1e5, factor in 1.01f64..10.0) {
            let u = AlphaFair::new(alpha);
            prop_assert!(u.value(x * factor) > u.value(x));
        }

        /// FCT utility inverse-marginal roundtrip.
        #[test]
        fn prop_fct_inverse_roundtrip(size in 1e2f64..1e9, x in 1e-2f64..1e5) {
            let u = FctUtility::new(size);
            let p = u.marginal(x);
            let x2 = u.inverse_marginal(p);
            prop_assert!((x - x2).abs() / x < 1e-6);
        }

        /// Inverse marginal is non-increasing in price (higher price, lower rate).
        #[test]
        fn prop_inverse_marginal_monotone(alpha in 0.2f64..5.0, p in 1e-6f64..1e3, factor in 1.01f64..50.0) {
            let u = AlphaFair::new(alpha);
            prop_assert!(u.inverse_marginal(p * factor) <= u.inverse_marginal(p) + 1e-12);
        }
    }
}

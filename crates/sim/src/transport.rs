//! The interfaces protocols implement to run on the simulator.
//!
//! A transport protocol consists of:
//!
//! * a [`FlowAgent`] per flow — the **sender-side** end-host logic
//!   ([`FlowAgent::on_ack`], [`FlowAgent::on_timer`]). The receiver side is
//!   universal and lives in the engine: every data arrival updates delivery
//!   counters and reflects an ACK carrying the cumulative delivered byte
//!   count plus every feedback field of the data packet's header (path
//!   price/length, RCP feedback, ECN mark, inter-packet arrival time). The
//!   only receiver knob a protocol has is [`FlowAgent::ack_mode`], which
//!   selects how the echoed `ack_seq` is formed. NUMFabric's Swift/xWI
//!   sender, DGD, RCP*, DCTCP and pFabric are all implemented as
//!   `FlowAgent`s (in `numfabric-core` and `numfabric-baselines`).
//! * optionally a [`LinkController`] per link — the switch-side logic that
//!   runs at one egress port: xWI's price computation, DGD's price update,
//!   RCP*'s fair-share update. Controllers see every packet at enqueue and
//!   dequeue time and can run a periodic timer (the synchronized price
//!   update of §5).
//!
//! Agents interact with the network exclusively through [`AgentCtx`]
//! (sending packets, setting timers, reading flow state), which keeps them
//! free of any knowledge of the event queue or link internals. Timers are
//! handle-based: [`AgentCtx::set_timer`] returns a
//! [`crate::timer::TimerHandle`] that [`AgentCtx::cancel_timer`] revokes,
//! and a flow that stops or completes sheds its outstanding timers
//! automatically — agents never have to defend against a stale callback
//! firing into dead state.

use crate::network::AgentCtx;
use crate::packet::Packet;
use crate::time::{SimDuration, SimTime};

/// How the engine's universal receiver forms the echoed `ack_seq` of the
/// ACK it reflects for every delivered data packet. (`ack_bytes` is always
/// the cumulative delivered byte count, whatever the mode.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AckMode {
    /// `ack_seq = packet.seq + payload`: the byte offset one past the
    /// delivered segment, TCP-style. The default; what window- and
    /// rate-based senders expect.
    #[default]
    Cumulative,
    /// `ack_seq = packet.seq`: echo the delivered packet's own sequence
    /// number, SACK-style. pFabric uses this to retire exactly the
    /// outstanding segment the ACK names.
    PerPacket,
}

/// Per-flow transport logic (the sender side; the receiver is universal,
/// see [`AckMode`]).
pub trait FlowAgent: Send {
    /// The flow reached its start time. Typically sends a SYN or the initial
    /// burst/window of data.
    fn on_start(&mut self, ctx: &mut AgentCtx<'_>);

    /// An ACK arrived back at the source. Typically updates rate/window state
    /// and transmits more data.
    fn on_ack(&mut self, packet: &Packet, ctx: &mut AgentCtx<'_>);

    /// How the engine's receiver echoes `ack_seq` for this flow. Captured
    /// once when the flow is added.
    fn ack_mode(&self) -> AckMode {
        AckMode::Cumulative
    }

    /// A timer set via [`AgentCtx::set_timer`] fired. The `tag` is the one
    /// passed at arm time (distinguishing timer kinds — RTX vs pacing,
    /// say); the corresponding [`crate::timer::TimerHandle`] is spent by
    /// the time this runs, so re-arming starts from a clean slate.
    fn on_timer(&mut self, tag: u64, ctx: &mut AgentCtx<'_>);

    /// The network moved the flow onto a new ECMP route (a link on the old
    /// path failed, or a restore put the original path back). By the time
    /// this runs [`AgentCtx::route`] and [`AgentCtx::base_rtt`] already
    /// describe the new path. `path_was_lost` is true when the old route
    /// traversed a downed link in either direction — every packet in
    /// flight there must be presumed lost. Purely ACK-clocked protocols
    /// (no retransmission timer) **must** retransmit here: with the whole
    /// window gone no ACK will ever arrive to reopen it, and the flow
    /// stalls forever. The default does nothing, which is correct for
    /// timer-driven protocols that recover via their own RTO.
    fn on_reroute(&mut self, _path_was_lost: bool, _ctx: &mut AgentCtx<'_>) {}

    /// A human-readable protocol name (for logs and experiment tables).
    fn name(&self) -> &'static str {
        "unnamed"
    }
}

/// Per-egress-port switch logic.
pub trait LinkController: Send {
    /// A data packet is about to be enqueued at this port. xWI uses this to
    /// track the minimum `normalizedResidual` seen since the last price
    /// update (Figure 3 of the paper).
    fn on_enqueue(&mut self, packet: &mut Packet, now: SimTime);

    /// A packet is being dequeued for transmission. xWI stamps `pathPrice`
    /// and `pathLen` here and counts serviced bytes; RCP* adds `R_l^{-α}`.
    fn on_dequeue(&mut self, packet: &mut Packet, now: SimTime, queue_bytes: usize);

    /// The delay until the controller's first periodic timer, or `None` if it
    /// does not need one.
    fn initial_timer(&self) -> Option<SimDuration>;

    /// The periodic timer fired. Returns the delay until the next firing, or
    /// `None` to stop the timer. `queue_bytes` is the port's current backlog.
    fn on_timer(&mut self, now: SimTime, queue_bytes: usize) -> Option<SimDuration>;

    /// The link's capacity was changed at runtime (e.g. the Fig. 10
    /// capacity-change experiment). Controllers that normalize by capacity
    /// should update their notion of it; the default implementation ignores
    /// the change.
    fn on_capacity_change(&mut self, _new_capacity_bps: f64) {}

    /// A human-readable name (for logs).
    fn name(&self) -> &'static str {
        "unnamed"
    }
}

/// A no-op controller, useful for protocols whose switches only schedule
/// packets (pFabric, DCTCP) and for tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullController;

impl LinkController for NullController {
    fn on_enqueue(&mut self, _packet: &mut Packet, _now: SimTime) {}
    fn on_dequeue(&mut self, _packet: &mut Packet, _now: SimTime, _queue_bytes: usize) {}
    fn initial_timer(&self) -> Option<SimDuration> {
        None
    }
    fn on_timer(&mut self, _now: SimTime, _queue_bytes: usize) -> Option<SimDuration> {
        None
    }
    fn name(&self) -> &'static str {
        "null"
    }
}

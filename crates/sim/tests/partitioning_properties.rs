//! Property tests for the deterministic graph partitioner behind the
//! domain-decomposed network (`Topology::partition`), plus the epoch-worker
//! conformance contract: running the partition cores on a thread pool must
//! pop the exact same `(time, key)` event sequence as the sequential
//! barrier loop.
//!
//! The partitioner is the root of the partition-conformance contract: event
//! ownership, timer routing and the per-link impairment streams all key
//! off the node → partition assignment, so it must (1) be a pure function of
//! the topology and the partition count, (2) assign **every** node exactly
//! one partition in range, and (3) keep each host attached to the same
//! partition as the chunked `i * n / num_hosts` rule promises, so the
//! assignment never depends on construction order or hashing.

use numfabric_sim::queue::DropTailFifo;
use numfabric_sim::reference::SimpleWindowAgent;
use numfabric_sim::topology::{FatTreeConfig, LeafSpineConfig, Topology};
use numfabric_sim::{Network, SimDuration, SimTime};
use proptest::prelude::*;

/// Assert the coverage contract on one topology/partition-count pair:
/// every node is owned by exactly one in-range partition, hosts follow the
/// chunk rule, and a second partitioning call reproduces the first.
fn assert_partitioning_contract(topo: &Topology, partitions: usize) {
    let parts = topo.partition(partitions);
    assert_eq!(parts.partitions(), partitions);
    // Exactly-once coverage: the assignment is total (one slot per node)
    // and every slot is in range — no node unassigned, none assigned twice.
    assert_eq!(parts.assignment().len(), topo.nodes().len());
    for (node, &p) in parts.assignment().iter().enumerate() {
        assert!(
            p < partitions,
            "node {node} assigned out-of-range partition {p}"
        );
    }
    // Hosts follow the contiguous chunk rule.
    let num_hosts = topo.hosts().len();
    for (i, &host) in topo.hosts().iter().enumerate() {
        assert_eq!(
            parts.of(host),
            i * partitions / num_hosts,
            "host {host} not in its chunk partition"
        );
    }
    // Determinism: a fresh partitioning of the same topology is identical.
    let again = topo.partition(partitions);
    assert_eq!(
        parts.assignment(),
        again.assignment(),
        "partitioner is not deterministic"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fat-trees of arity 2–6 partition deterministically with exact node
    /// coverage for any partition count 1–8.
    #[test]
    fn prop_fat_tree_partitioning_is_total_and_deterministic(
        half_k in 1usize..=3,
        partitions in 1usize..=8,
    ) {
        let topo = Topology::fat_tree(&FatTreeConfig::new(2 * half_k));
        assert_partitioning_contract(&topo, partitions);
    }

    /// Leaf-spine fabrics (including oversubscribed shapes) partition
    /// deterministically with exact node coverage.
    #[test]
    fn prop_leaf_spine_partitioning_is_total_and_deterministic(
        leaves in 2usize..=5,
        per_leaf in 1usize..=6,
        spines in 1usize..=5,
        ratio in 1.0f64..8.0,
        partitions in 1usize..=8,
    ) {
        let cfg = LeafSpineConfig::oversubscribed(leaves * per_leaf, leaves, spines, ratio);
        let topo = Topology::leaf_spine(&cfg);
        assert_partitioning_contract(&topo, partitions);
    }
}

#[test]
fn single_partition_owns_everything() {
    let topo = Topology::fat_tree(&FatTreeConfig::new(4));
    let parts = topo.partition(1);
    assert!(parts.assignment().iter().all(|&p| p == 0));
}

/// Run a small leaf-spine fabric carrying `flows` stride-patterned window
/// flows for 300 µs, decomposed into `partitions` cores advancing on
/// `threads` epoch workers, and return the per-partition `(time, key)`
/// event traces.
fn traced_run(
    flows: usize,
    window: usize,
    partitions: usize,
    threads: usize,
) -> Vec<Vec<(SimTime, u64)>> {
    let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
    let hosts = topo.hosts().to_vec();
    let mut net = Network::new(topo, |_| Box::new(DropTailFifo::with_default_buffer()));
    net.set_partitions(partitions);
    net.set_partition_threads(threads);
    net.set_event_trace(true);
    for i in 0..flows {
        let src = hosts[i % hosts.len()];
        let dst = hosts[(i + hosts.len() / 2) % hosts.len()];
        net.add_flow(
            src,
            dst,
            None,
            SimTime::ZERO,
            i,
            None,
            Box::new(SimpleWindowAgent::new(window)),
        );
    }
    net.run_until(SimTime::ZERO + SimDuration::from_micros(300));
    net.take_event_traces()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Threaded epoch execution is a pure scheduling change: for any flow
    /// mix and any worker count, every partition core pops the exact same
    /// `(time, key)` event sequence as the sequential barrier loop.
    #[test]
    fn prop_threaded_epochs_pop_the_sequential_event_trace(
        flows in 1usize..=8,
        window in 1usize..=4,
        partitions in 1usize..=4,
        threads in 2usize..=4,
    ) {
        let sequential = traced_run(flows, window, partitions, 1);
        let threaded = traced_run(flows, window, partitions, threads);
        prop_assert!(
            sequential.iter().map(|t| t.len()).sum::<usize>() > 0,
            "run popped no events"
        );
        prop_assert_eq!(
            sequential,
            threaded,
            "event traces diverged at {} partitions x {} threads",
            partitions,
            threads
        );
    }
}

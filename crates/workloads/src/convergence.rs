//! Convergence measurement (§6.1).
//!
//! The paper defines the convergence time of a network event as "the time it
//! takes for the rates of at least 95% of the flows to reach within 10% of
//! the optimal NUM allocation", holding for at least 5 ms, with the rate
//! filter's rise time subtracted. This module provides:
//!
//! * [`fluid_instance`] — map a set of packet-simulator flows onto a fluid
//!   NUM instance (Gbps capacities) so the [`Oracle`] can compute the target
//!   allocation;
//! * [`ConvergenceCriterion`] / [`measure_convergence`] — drive the packet
//!   simulation forward, polling destination-side rate estimates until the
//!   criterion holds.

use numfabric_num::utility::UtilityRef;
use numfabric_num::{FluidNetwork, FluidNetworkBuilder, Oracle};
use numfabric_sim::network::Network;
use numfabric_sim::topology::{Route, Topology};
use numfabric_sim::tracer::PAPER_EWMA_TAU;
use numfabric_sim::{FlowId, SimDuration, SimTime};

/// Build a fluid NUM instance for a set of flows on a packet topology.
///
/// Link capacities are converted to Gbps (the unit all utility functions in
/// this repository operate in). Only links actually traversed by at least one
/// flow are included, keeping the oracle solve small; the mapping is interned
/// by [`FluidNetworkBuilder`] (so it works over any topology — leaf-spine,
/// fat-tree, oversubscribed or custom) and the returned instance's flows are
/// in the same order as `flows`.
pub fn fluid_instance(topo: &Topology, flows: &[(Route, UtilityRef)]) -> FluidNetwork {
    let mut builder = FluidNetworkBuilder::new();
    for (route, utility) in flows {
        builder.add_flow_on(
            route
                .links()
                .iter()
                .map(|&l| (l, topo.links()[l].capacity_bps / 1e9)),
            utility.clone(),
        );
    }
    builder.finish()
}

/// Solve the NUM instance for `flows` and return the optimal rate of each, in
/// bits per second (same order as the input).
pub fn oracle_rates_bps(topo: &Topology, flows: &[(Route, UtilityRef)]) -> Vec<f64> {
    let net = fluid_instance(topo, flows);
    let solution = Oracle::with_tolerance(1e-4).solve(&net);
    solution.rates.iter().map(|r| r * 1e9).collect()
}

/// The convergence criterion of §6.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceCriterion {
    /// Fraction of flows that must be close to their target (0.95).
    pub fraction: f64,
    /// Relative rate tolerance (0.10).
    pub tolerance: f64,
    /// How long the condition must hold before convergence is declared (5 ms).
    pub hold: SimDuration,
    /// How often to poll the rate estimates.
    pub poll_interval: SimDuration,
    /// The measurement filter's rise time, subtracted from the result
    /// (≈184 µs for the paper's 80 µs EWMA).
    pub filter_rise_time: SimDuration,
}

impl Default for ConvergenceCriterion {
    fn default() -> Self {
        Self {
            fraction: 0.95,
            tolerance: 0.10,
            hold: SimDuration::from_millis(5),
            poll_interval: SimDuration::from_micros(10),
            filter_rise_time: SimDuration::from_secs_f64(PAPER_EWMA_TAU.as_secs_f64() * 10f64.ln()),
        }
    }
}

/// The outcome of a convergence measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceOutcome {
    /// Convergence time (rise time already subtracted), if the criterion was
    /// met within the allowed window.
    pub convergence_time: Option<SimDuration>,
    /// Simulation time at which the measurement ended.
    pub measured_until: SimTime,
}

/// Run `net` forward until the rates of `flows` satisfy the criterion with
/// respect to `targets_bps`, or `max_wait` elapses.
///
/// The convergence time is measured from the current simulation time (the
/// caller should invoke this immediately after injecting the network event)
/// and the filter rise time is subtracted, exactly as in the paper.
///
/// # Panics
/// Panics if `flows` and `targets_bps` have different lengths or are empty.
pub fn measure_convergence(
    net: &mut Network,
    flows: &[FlowId],
    targets_bps: &[f64],
    criterion: &ConvergenceCriterion,
    max_wait: SimDuration,
) -> ConvergenceOutcome {
    assert_eq!(flows.len(), targets_bps.len(), "one target per flow");
    assert!(!flows.is_empty(), "need at least one flow to measure");
    let event_time = net.now();
    let deadline = event_time + max_wait;

    let satisfied = |net: &Network| -> bool {
        let ok = flows
            .iter()
            .zip(targets_bps.iter())
            .filter(|(&f, &t)| {
                let rate = net.flow_rate_estimate(f);
                (rate - t).abs() <= criterion.tolerance * t.max(1.0)
            })
            .count();
        ok as f64 >= criterion.fraction * flows.len() as f64
    };

    let mut first_satisfied: Option<SimTime> = None;
    loop {
        let now = net.now();
        if satisfied(net) {
            let since = *first_satisfied.get_or_insert(now);
            if now.duration_since(since) >= criterion.hold {
                let raw = since.duration_since(event_time);
                return ConvergenceOutcome {
                    convergence_time: Some(raw.saturating_sub(criterion.filter_rise_time)),
                    measured_until: now,
                };
            }
        } else {
            first_satisfied = None;
            if now >= deadline {
                return ConvergenceOutcome {
                    convergence_time: None,
                    measured_until: now,
                };
            }
        }
        // Keep simulating: past the deadline we only continue if we are inside
        // a promising hold window.
        if now >= deadline + criterion.hold {
            return ConvergenceOutcome {
                convergence_time: None,
                measured_until: now,
            };
        }
        net.run_for(criterion.poll_interval);
    }
}

/// Summary statistics over a set of convergence times.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceStats {
    /// Number of events that converged.
    pub converged: usize,
    /// Number of events measured.
    pub total: usize,
    /// Median convergence time among converged events.
    pub median: Option<SimDuration>,
    /// 95th-percentile convergence time among converged events.
    pub p95: Option<SimDuration>,
}

/// Compute median / p95 statistics from per-event convergence times.
pub fn convergence_stats(times: &[Option<SimDuration>]) -> ConvergenceStats {
    let mut converged: Vec<SimDuration> = times.iter().filter_map(|t| *t).collect();
    converged.sort_unstable();
    let pick = |q: f64| -> Option<SimDuration> {
        if converged.is_empty() {
            None
        } else {
            let idx = ((converged.len() as f64 - 1.0) * q).round() as usize;
            Some(converged[idx])
        }
    };
    ConvergenceStats {
        converged: converged.len(),
        total: times.len(),
        median: pick(0.5),
        p95: pick(0.95),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_num::utility::LogUtility;
    use numfabric_sim::queue::DropTailFifo;
    use numfabric_sim::reference::SimpleWindowAgent;
    use numfabric_sim::topology::LeafSpineConfig;
    use std::sync::Arc;

    fn topo() -> Topology {
        Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2))
    }

    #[test]
    fn fluid_instance_only_includes_used_links_and_converts_units() {
        let topo = topo();
        let hosts = topo.hosts().to_vec();
        let util: UtilityRef = Arc::new(LogUtility::new());
        let flows = vec![
            (topo.host_route(hosts[0], hosts[4], 0), util.clone()),
            (topo.host_route(hosts[1], hosts[4], 0), util.clone()),
        ];
        let fluid = fluid_instance(&topo, &flows);
        assert_eq!(fluid.num_flows(), 2);
        // Far fewer links than the full topology (only traversed ones).
        assert!(fluid.num_links() < topo.num_links());
        // Host links are 10 Gbps → 10.0 in fluid units.
        assert!(fluid
            .links()
            .iter()
            .any(|l| (l.capacity - 10.0).abs() < 1e-9));
        assert!(fluid
            .links()
            .iter()
            .any(|l| (l.capacity - 40.0).abs() < 1e-9));
    }

    #[test]
    fn oracle_rates_for_two_flows_sharing_a_nic_split_it() {
        let topo = topo();
        let hosts = topo.hosts().to_vec();
        let util: UtilityRef = Arc::new(LogUtility::new());
        let flows = vec![
            (topo.host_route(hosts[0], hosts[4], 0), util.clone()),
            (topo.host_route(hosts[1], hosts[4], 1), util.clone()),
        ];
        let rates = oracle_rates_bps(&topo, &flows);
        assert_eq!(rates.len(), 2);
        for r in &rates {
            assert!((r - 5e9).abs() < 5e7, "rates = {rates:?}");
        }
    }

    #[test]
    fn measure_convergence_reports_a_time_for_a_converging_system() {
        // Two fixed-window flows sharing a NIC reach a stable near-equal split
        // quickly; with targets set to the observed equilibrium the criterion
        // must trigger.
        let topo = topo();
        let hosts = topo.hosts().to_vec();
        let mut net = Network::new(topo, |_| Box::new(DropTailFifo::with_default_buffer()));
        let f0 = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(8)),
        );
        let f1 = net.add_flow(
            hosts[1],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(8)),
        );
        let criterion = ConvergenceCriterion {
            hold: SimDuration::from_millis(1),
            ..Default::default()
        };
        let outcome = measure_convergence(
            &mut net,
            &[f0, f1],
            &[4.86e9, 4.86e9],
            &criterion,
            SimDuration::from_millis(20),
        );
        let t = outcome.convergence_time.expect("should converge");
        assert!(t < SimDuration::from_millis(10), "t = {t}");
    }

    #[test]
    fn measure_convergence_times_out_when_targets_are_wrong() {
        let topo = topo();
        let hosts = topo.hosts().to_vec();
        let mut net = Network::new(topo, |_| Box::new(DropTailFifo::with_default_buffer()));
        let f0 = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(8)),
        );
        let criterion = ConvergenceCriterion {
            hold: SimDuration::from_millis(1),
            ..Default::default()
        };
        // Target of 1 Gbps is far from what the flow actually achieves.
        let outcome = measure_convergence(
            &mut net,
            &[f0],
            &[1e9],
            &criterion,
            SimDuration::from_millis(5),
        );
        assert!(outcome.convergence_time.is_none());
    }

    #[test]
    fn stats_pick_median_and_p95() {
        let times: Vec<Option<SimDuration>> = (1..=100)
            .map(|i| Some(SimDuration::from_micros(i * 10)))
            .chain(std::iter::once(None))
            .collect();
        let stats = convergence_stats(&times);
        assert_eq!(stats.total, 101);
        assert_eq!(stats.converged, 100);
        assert_eq!(stats.median, Some(SimDuration::from_micros(510)));
        assert_eq!(stats.p95, Some(SimDuration::from_micros(950)));
        let empty = convergence_stats(&[None, None]);
        assert_eq!(empty.converged, 0);
        assert!(empty.median.is_none());
    }
}

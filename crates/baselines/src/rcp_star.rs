//! **RCP\*** — the paper's generalization of the Rate Control Protocol to
//! α-fairness (§6, Eqs. 15–16).
//!
//! Each link advertises a fair-share rate `R_l`, updated periodically from
//! the spare capacity and the queue backlog:
//!
//! ```text
//! R_l ← R_l · (1 + (T/d) · (a·(C − y) − b·q/d) / C)
//! ```
//!
//! When a packet is served, the link adds `R_l^{-α}` to a header field; the
//! source sets its rate to `(Σ_l R_l^{-α})^{-1/α}`, which for α = 1 reduces
//! to the classic RCP rate `(Σ 1/R_l)^{-1}` and as α → ∞ approaches
//! max-min. Like DGD, senders are rate-paced with a 2×BDP cap on
//! unacknowledged bytes.

use numfabric_sim::network::{AgentCtx, Network};
use numfabric_sim::packet::{Packet, DEFAULT_PAYLOAD_BYTES, MTU_BYTES};
use numfabric_sim::queue::DropTailFifo;
use numfabric_sim::timer::TimerHandle;
use numfabric_sim::topology::Topology;
use numfabric_sim::transport::{FlowAgent, LinkController};
use numfabric_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Timer tag used by the RCP* sender's pacing loop.
const PACING_TIMER: u64 = 1;

/// RCP* parameters (Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RcpStarConfig {
    /// Rate update interval `T` (16 µs in the paper).
    pub rate_update_interval: SimDuration,
    /// Spare-capacity gain `a` (3.6 in the paper).
    pub a: f64,
    /// Queue gain `b` (1.8 in the paper).
    pub b: f64,
    /// The α of the α-fair objective the fabric enforces.
    pub alpha: f64,
    /// Assumed average RTT `d` used in the update rule.
    pub avg_rtt: SimDuration,
    /// Cap on unacknowledged data in bandwidth-delay products.
    pub unacked_cap_bdp: f64,
}

impl Default for RcpStarConfig {
    fn default() -> Self {
        Self {
            rate_update_interval: SimDuration::from_micros(16),
            a: 0.4,
            b: 0.2,
            alpha: 1.0,
            avg_rtt: SimDuration::from_micros(16),
            unacked_cap_bdp: 2.0,
        }
    }
}

impl RcpStarConfig {
    /// The paper's published gains (a = 3.6, b = 1.8). These are aggressive;
    /// the defaults of this crate use smaller gains that are stable across
    /// the repository's test topologies, mirroring the parameter sweep the
    /// paper performed.
    pub fn paper_gains() -> Self {
        Self {
            a: 3.6,
            b: 1.8,
            ..Self::default()
        }
    }

    /// Same configuration with a different α.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        self.alpha = alpha;
        self
    }
}

/// Per-link advertised-rate computation (Eq. 15).
#[derive(Debug, Clone)]
pub struct RcpStarController {
    share_gbps: f64,
    bytes_serviced: u64,
    capacity_bps: f64,
    config: RcpStarConfig,
}

impl RcpStarController {
    /// A controller for a link of `capacity_bps`. The advertised rate starts
    /// at the full link capacity (standard RCP initialization).
    pub fn new(config: RcpStarConfig, capacity_bps: f64) -> Self {
        assert!(capacity_bps > 0.0, "capacity must be positive");
        Self {
            share_gbps: capacity_bps / 1e9,
            bytes_serviced: 0,
            capacity_bps,
            config,
        }
    }

    /// The advertised fair-share rate in Gbps.
    pub fn share_gbps(&self) -> f64 {
        self.share_gbps
    }

    /// One advertised-rate update given the backlog at the update instant.
    pub fn rate_update(&mut self, queue_bytes: usize) {
        let t = self.config.rate_update_interval.as_secs_f64();
        let d = self.config.avg_rtt.as_secs_f64();
        let c_gbps = self.capacity_bps / 1e9;
        let y_gbps = self.bytes_serviced as f64 * 8.0 / t / 1e9;
        // Queue drain term: the backlog expressed as a rate over one RTT.
        let q_gbps = queue_bytes as f64 * 8.0 / d / 1e9;
        let factor =
            1.0 + (t / d) * (self.config.a * (c_gbps - y_gbps) - self.config.b * q_gbps) / c_gbps;
        self.share_gbps = (self.share_gbps * factor.clamp(0.5, 2.0)).clamp(1e-4, 10.0 * c_gbps);
        self.bytes_serviced = 0;
    }
}

impl LinkController for RcpStarController {
    fn on_enqueue(&mut self, _packet: &mut Packet, _now: SimTime) {}

    fn on_dequeue(&mut self, packet: &mut Packet, _now: SimTime, _queue_bytes: usize) {
        self.bytes_serviced += packet.wire_bytes as u64;
        packet.header.rcp_feedback += self.share_gbps.max(1e-9).powf(-self.config.alpha);
        packet.header.path_len += 1;
    }

    fn initial_timer(&self) -> Option<SimDuration> {
        Some(self.config.rate_update_interval)
    }

    fn on_timer(&mut self, _now: SimTime, queue_bytes: usize) -> Option<SimDuration> {
        self.rate_update(queue_bytes);
        Some(self.config.rate_update_interval)
    }

    fn on_capacity_change(&mut self, new_capacity_bps: f64) {
        self.capacity_bps = new_capacity_bps;
    }

    fn name(&self) -> &'static str {
        "rcp-star"
    }
}

/// The RCP* flow agent: paced sender plus feedback-reflecting receiver.
pub struct RcpStarAgent {
    config: RcpStarConfig,
    feedback: f64,
    rate_bps: f64,
    next_seq: u64,
    highest_ack: u64,
    unacked_cap_bytes: u64,
    /// The pending pacing timer, if one is scheduled. Completion cancels it
    /// structurally via the network's timer service.
    pacing_timer: Option<TimerHandle>,
}

impl RcpStarAgent {
    /// An agent with the given configuration.
    pub fn new(config: RcpStarConfig) -> Self {
        Self {
            config,
            feedback: 0.0,
            rate_bps: 0.0,
            next_seq: 0,
            highest_ack: 0,
            unacked_cap_bytes: u64::MAX,
            pacing_timer: None,
        }
    }

    /// The sender's current target rate (for tests and tracing).
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    fn recompute_rate(&mut self, ctx: &AgentCtx<'_>) {
        let first_hop = ctx.first_hop_capacity_bps();
        let rate_gbps = if self.feedback > 0.0 {
            self.feedback.powf(-1.0 / self.config.alpha)
        } else {
            first_hop / 1e9
        };
        self.rate_bps = (rate_gbps * 1e9).clamp(first_hop * 1e-3, first_hop);
    }

    fn unacked_bytes(&self) -> u64 {
        self.next_seq.saturating_sub(self.highest_ack)
    }

    fn send_one_and_reschedule(&mut self, ctx: &mut AgentCtx<'_>) {
        let payload = match ctx.remaining_bytes() {
            Some(0) => {
                self.pacing_timer = None;
                return;
            }
            Some(rem) => rem.min(DEFAULT_PAYLOAD_BYTES as u64) as u32,
            None => DEFAULT_PAYLOAD_BYTES,
        };
        if self.unacked_bytes() + payload as u64 <= self.unacked_cap_bytes {
            let seq = self.next_seq;
            ctx.send_data(seq, payload, |_| {});
            self.next_seq += payload as u64;
        }
        let interval = SimDuration::transmission((payload + 40) as u64, self.rate_bps.max(1e6));
        self.pacing_timer = Some(ctx.set_timer(interval, PACING_TIMER));
    }
}

impl FlowAgent for RcpStarAgent {
    fn on_start(&mut self, ctx: &mut AgentCtx<'_>) {
        // Standard RCP behaviour: start at the advertised rate, which before
        // any feedback is the NIC rate — the 2×BDP cap bounds the burst.
        let first_hop = ctx.first_hop_capacity_bps();
        self.rate_bps = first_hop * 0.1;
        let bdp = first_hop * ctx.base_rtt().as_secs_f64() / 8.0;
        self.unacked_cap_bytes =
            ((bdp * self.config.unacked_cap_bdp) as u64).max(2 * MTU_BYTES as u64);
        self.send_one_and_reschedule(ctx);
    }

    fn on_ack(&mut self, packet: &Packet, ctx: &mut AgentCtx<'_>) {
        self.highest_ack = self.highest_ack.max(packet.header.ack_bytes);
        if packet.header.reflected_path_len > 0 {
            self.feedback = packet.header.reflected_rcp_feedback;
        }
        self.recompute_rate(ctx);
        if self.pacing_timer.is_none() {
            self.send_one_and_reschedule(ctx);
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut AgentCtx<'_>) {
        if tag == PACING_TIMER {
            self.pacing_timer = None;
            self.send_one_and_reschedule(ctx);
        }
    }

    fn name(&self) -> &'static str {
        "rcp-star"
    }
}

/// Build a network ready for RCP*: drop-tail FIFOs and an RCP* controller on
/// every link.
pub fn rcp_star_network(topo: Topology, config: &RcpStarConfig) -> Network {
    let mut net = Network::new(topo, |_| Box::new(DropTailFifo::with_default_buffer()));
    let cfg = config.clone();
    net.set_all_link_controllers(move |_, capacity| {
        Box::new(RcpStarController::new(cfg.clone(), capacity))
    });
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_sim::topology::LeafSpineConfig;
    use numfabric_sim::FlowPhase;

    #[test]
    fn advertised_rate_rises_with_spare_capacity_and_falls_with_queues() {
        let mut ctrl = RcpStarController::new(RcpStarConfig::default(), 10e9);
        let start = ctrl.share_gbps();
        // Completely idle interval: advertised rate should rise.
        ctrl.rate_update(0);
        assert!(ctrl.share_gbps() > start * 0.99);
        // Saturated interval with a deep queue: advertised rate should fall.
        let mut ctrl = RcpStarController::new(RcpStarConfig::default(), 10e9);
        ctrl.bytes_serviced = (10e9 * 16e-6 / 8.0) as u64;
        let before = ctrl.share_gbps();
        ctrl.rate_update(500_000);
        assert!(ctrl.share_gbps() < before);
    }

    #[test]
    fn dequeue_accumulates_inverse_share_feedback() {
        let cfg = RcpStarConfig::default().with_alpha(2.0);
        let mut ctrl = RcpStarController::new(cfg, 10e9);
        let mut p = Packet::data(
            0,
            0,
            DEFAULT_PAYLOAD_BYTES,
            numfabric_sim::RouteTable::new()
                .intern(numfabric_sim::topology::Route::from_links(vec![0])),
        );
        ctrl.on_dequeue(&mut p, SimTime::ZERO, 0);
        // Share starts at 10 Gbps → feedback = 10^-2 = 0.01.
        assert!((p.header.rcp_feedback - 0.01).abs() < 1e-12);
        assert_eq!(p.header.path_len, 1);
    }

    #[test]
    fn two_rcp_flows_share_a_bottleneck() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let mut net = rcp_star_network(topo, &RcpStarConfig::default());
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let f0 = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(RcpStarAgent::new(RcpStarConfig::default())),
        );
        let f1 = net.add_flow(
            hosts[1],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(RcpStarAgent::new(RcpStarConfig::default())),
        );
        net.run_until(SimTime::from_millis(30));
        let r0 = net.flow_rate_estimate(f0);
        let r1 = net.flow_rate_estimate(f1);
        let total = r0 + r1;
        assert!(total > 7.5e9, "underutilized: {total:.3e}");
        assert!(total < 10.5e9, "oversubscribed: {total:.3e}");
        assert!(
            (r0 - r1).abs() / total < 0.25,
            "very unfair split: {r0:.3e} vs {r1:.3e}"
        );
    }

    #[test]
    fn finite_rcp_flow_completes() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let mut net = rcp_star_network(topo, &RcpStarConfig::default());
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            Some(500_000),
            SimTime::ZERO,
            0,
            None,
            Box::new(RcpStarAgent::new(RcpStarConfig::default())),
        );
        net.run_until(SimTime::from_millis(60));
        assert_eq!(net.flow_phase(flow), FlowPhase::Completed);
    }

    #[test]
    #[should_panic]
    fn nonpositive_alpha_rejected() {
        RcpStarConfig::default().with_alpha(0.0);
    }
}

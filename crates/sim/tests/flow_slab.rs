//! The flow slab under churn: driving far more flows through a network
//! than it ever holds concurrently must keep per-flow memory bounded by
//! the *concurrent* flow count, because completed flows are retired into
//! a free list and their slots recycled (mirrors the
//! `payload_pools_stay_bounded_under_churn` idiom of the event core).

use numfabric_sim::flow::FlowPhase;
use numfabric_sim::network::Network;
use numfabric_sim::queue::DropTailFifo;
use numfabric_sim::reference::SimpleWindowAgent;
use numfabric_sim::time::{SimDuration, SimTime};
use numfabric_sim::topology::{LeafSpineConfig, Topology};

fn churn_net(partitions: usize) -> Network {
    let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
    let mut net = Network::new(topo, |_| Box::new(DropTailFifo::with_default_buffer()));
    net.set_partitions(partitions);
    net
}

/// ≥100k one-packet flow completions through an 8-host leaf-spine, retiring
/// each completed flow before adding the next wave: the slab's high-water
/// mark must track the wave size (concurrent flows), not the total count.
#[test]
fn flow_slab_stays_bounded_under_churn() {
    const WAVE: usize = 8; // concurrent flows per round
    const ROUNDS: usize = 12_500; // 100k completions in all
    let mut net = churn_net(1);
    let hosts: Vec<_> = net.topology().hosts().to_vec();
    let mut completed_total: u64 = 0;
    let mut live: Vec<usize> = Vec::new();
    for round in 0..ROUNDS {
        let start = net.now();
        for i in 0..WAVE {
            let src = hosts[(round + i) % hosts.len()];
            let dst = hosts[(round + i + 1 + i % (hosts.len() - 1)) % hosts.len()];
            let dst = if dst == src {
                hosts[(round + i + 2) % hosts.len()]
            } else {
                dst
            };
            let id = net.add_flow(
                src,
                dst,
                Some(1460),
                start,
                i % 2,
                None,
                Box::new(SimpleWindowAgent::new(4)),
            );
            live.push(id);
        }
        // One small leaf-spine RTT is ~10 µs; 200 µs drains a 1-packet flow
        // and its trailing ACK comfortably.
        net.run_for(SimDuration::from_micros(200));
        live.retain(|&id| {
            if net.flow_phase(id) == FlowPhase::Completed {
                completed_total += 1;
                assert_eq!(net.flow_in_flight_packets(id), 0);
                assert!(net.try_retire_flow(id), "quiescent flow must retire");
                false
            } else {
                true
            }
        });
        assert!(
            live.is_empty(),
            "round {round}: {} flows failed to complete",
            live.len()
        );
    }
    assert!(completed_total >= 100_000);
    // The slab never grew past one wave (plus nothing: every round retired
    // before the next added).
    assert!(
        net.num_flows() <= WAVE,
        "slab high-water {} exceeds the concurrent flow bound {WAVE}",
        net.num_flows()
    );
    assert_eq!(net.free_flow_slots(), net.num_flows());
}

/// Retirement is refused while the flow still owes the network anything —
/// and the recycled slot runs a brand-new flow to completion.
#[test]
fn retire_requires_quiescence_and_slots_recycle_cleanly() {
    let mut net = churn_net(2);
    let hosts: Vec<_> = net.topology().hosts().to_vec();
    let id = net.add_flow(
        hosts[0],
        hosts[5],
        Some(14_600),
        SimTime::ZERO,
        0,
        None,
        Box::new(SimpleWindowAgent::new(4)),
    );
    assert!(!net.try_retire_flow(id), "a pending flow must not retire");
    net.run_for(SimDuration::from_micros(2));
    assert!(!net.try_retire_flow(id), "an active flow must not retire");
    net.run_for(SimDuration::from_millis(1));
    assert_eq!(net.flow_phase(id), FlowPhase::Completed);
    let stats = net.flow_stats(id);
    assert_eq!(stats.bytes_delivered, 14_600);
    assert!(net.try_retire_flow(id));
    assert!(net.flow_is_retired(id));
    assert!(!net.try_retire_flow(id), "double retire is refused");
    // The freed slot is reused by the next add_flow, and works end to end.
    let id2 = net.add_flow(
        hosts[2],
        hosts[7],
        Some(2920),
        net.now(),
        1,
        None,
        Box::new(SimpleWindowAgent::new(4)),
    );
    assert_eq!(id2, id, "LIFO free list must hand back the retired slot");
    assert_eq!(net.free_flow_slots(), 0);
    net.run_for(SimDuration::from_millis(1));
    assert_eq!(net.flow_phase(id2), FlowPhase::Completed);
    let stats = net.flow_stats(id2);
    assert_eq!(stats.bytes_delivered, 2920, "recycled slot state is fresh");
    assert_eq!(stats.packets_dropped, 0);
}

/// The retire decision (and so the id-reuse sequence) is identical for any
/// partition count: in-flight accounting sums per-core deltas that the
/// deterministic event order fully determines.
#[test]
fn retirement_is_partition_invariant() {
    let ids_for = |partitions: usize| -> Vec<(usize, bool)> {
        let mut net = churn_net(partitions);
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let mut out = Vec::new();
        for round in 0..40 {
            let id = net.add_flow(
                hosts[round % 8],
                hosts[(round + 3) % 8],
                Some(4380),
                net.now(),
                round % 2,
                None,
                Box::new(SimpleWindowAgent::new(4)),
            );
            // A deliberately short slice: some rounds retire, some don't,
            // and the pattern must match across partitionings.
            net.run_for(SimDuration::from_micros(25));
            let retired = net.try_retire_flow(id);
            out.push((id, retired));
        }
        out
    };
    let base = ids_for(1);
    for parts in [2, 4] {
        assert_eq!(base, ids_for(parts), "partitions={parts}");
    }
}

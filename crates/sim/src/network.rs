//! The simulation engine: links with queues and controllers, flows with
//! transport agents, and the event loop tying them together.
//!
//! A [`Network`] is built from a [`Topology`] plus a queue discipline per
//! link; protocols then attach per-flow [`FlowAgent`]s and per-link
//! [`LinkController`]s. The engine models:
//!
//! * store-and-forward output-queued switches (one queue per egress link),
//! * link serialization and propagation delay,
//! * packet drops decided by the queue disciplines,
//! * per-flow and per-link statistics, destination-side EWMA rate tracking,
//!   and flow-completion-time bookkeeping.
//!
//! Every run is deterministic: events are processed in timestamp order with
//! FIFO tie-breaking, and the engine itself uses no randomness. Flow timers
//! are first-class: [`AgentCtx::set_timer`] returns a
//! [`TimerHandle`] that [`AgentCtx::cancel_timer`] revokes, and stopping or
//! completing a flow structurally cancels its outstanding timers (see
//! [`crate::timer`]).
//!
//! Two further mechanisms ride on the same event loop:
//!
//! * **A control lane per link.** Non-data packets (ACKs, SYNs) bypass the
//!   data queue discipline at every egress and are served with strict
//!   priority, modeling the highest-priority control class real fabrics
//!   configure. An ACK therefore waits at most one data serialization per
//!   hop instead of a full reverse-path data backlog — the fix for the
//!   bidirectional ACK-queueing rate gap. Link controllers still observe
//!   every dequeued packet, so price stamping on reverse paths is intact.
//! * **Link impairments.** [`Network::schedule_link_change`] injects
//!   failures, restorations, speed changes, loss and jitter as ordinary
//!   scheduled events; see [`crate::impairment`] for the determinism story
//!   and [`LinkChange`] for per-variant semantics.

use crate::event::{Event, EventId, EventQueue};
use crate::flow::{FlowPhase, FlowSpec, FlowStats};
use crate::impairment::{derive_partition_seed, splitmix64_unit, LinkChange, LinkHealth};
use crate::packet::{FlowId, Packet, PacketHeader, PacketKind, SeqNo, HEADER_BYTES, MTU_BYTES};
use crate::queue::QueueDiscipline;
use crate::routes::{RouteId, RouteTable};
use crate::time::{SimDuration, SimTime};
use crate::timer::{TimerHandle, TimerService};
use crate::topology::{LinkId, NodeId, Route, Topology};
use crate::tracer::EwmaRateTracer;
use crate::transport::{FlowAgent, LinkController};

/// Snapshot of one link's counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkStats {
    /// Total bytes serialized onto the link.
    pub bytes_transmitted: u64,
    /// Packets serialized onto the link.
    pub packets_transmitted: u64,
    /// Packets dropped at this link's queue.
    pub packets_dropped: u64,
    /// Current queue backlog in bytes.
    pub queue_bytes: usize,
    /// Current queue backlog in packets.
    pub queue_packets: usize,
}

struct LinkRuntime {
    capacity_bps: f64,
    delay: SimDuration,
    queue: Box<dyn QueueDiscipline>,
    /// Strict-priority lane for non-data packets (ACKs, SYNs): never
    /// dropped by a discipline, always served before the data queue.
    control_lane: std::collections::VecDeque<Packet>,
    controller: Option<Box<dyn LinkController>>,
    busy: bool,
    health: LinkHealth,
    stats: LinkStats,
}

struct FlowRuntime {
    spec: FlowSpec,
    agent: Option<Box<dyn FlowAgent>>,
    phase: FlowPhase,
    stats: FlowStats,
    tracer: EwmaRateTracer,
}

/// Configuration knobs of the engine itself (not of any protocol).
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Time constant of the destination-side rate measurement filter.
    pub rate_ewma_tau: SimDuration,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self {
            rate_ewma_tau: crate::tracer::PAPER_EWMA_TAU,
        }
    }
}

/// One spatial partition's event core: its own timing wheel, its own timer
/// bookkeeping, its own impairment RNG stream, and a boundary inbox for
/// cross-partition packet deliveries produced during the current epoch.
struct PartitionCore {
    events: EventQueue,
    timers: TimerService,
    /// SplitMix64 state for randomized impairments (loss, jitter) on links
    /// owned by this partition. Advances only when an impaired link
    /// transmits; see [`crate::impairment`].
    rng: u64,
    /// Boundary messages addressed *to* this partition: cross-cut packet
    /// arrivals stamped `(deliver_time, seq)` at creation and merged into
    /// the wheel at the next time barrier. The conservative lookahead
    /// guarantees every entry's deliver time is at or past that barrier.
    inbox: Vec<(SimTime, u64, Event)>,
}

impl PartitionCore {
    fn new(seed: u64, partition: usize) -> Self {
        Self {
            events: EventQueue::new(),
            timers: TimerService::new(),
            rng: derive_partition_seed(seed, partition),
            inbox: Vec::new(),
        }
    }
}

/// The packet-level network simulator.
///
/// A `Network` owns every piece of its simulation state and is `Send`
/// (asserted at compile time below): move it to a worker thread and run it
/// there. Concurrent sweeps exploit this — one fully-owned `Network` per
/// thread — without any change to the single-threaded event core or its
/// determinism contract.
///
/// # Partitions
///
/// Internally the network is **domain-decomposed**: [`Network::set_partitions`]
/// splits the fabric into spatial partitions (via [`Topology::partition`]),
/// each owning a disjoint subset of nodes with its own timing wheel,
/// [`TimerService`] and impairment RNG stream. Cross-partition deliveries
/// travel as boundary messages released at conservative time barriers
/// (lookahead = the minimum propagation delay over boundary links), and the
/// run loop merges partition wheels by a **globally shared** `(time, seq)`
/// key — so the observable pop order, and therefore every report byte, is
/// identical for any partition count. The default single partition *is* the
/// historical single-queue engine, bit for bit; the public API is unchanged
/// either way. Execution is still sequential — the partition structure is
/// the groundwork for intra-simulation threading, not yet the threads.
pub struct Network {
    topo: Topology,
    links: Vec<LinkRuntime>,
    flows: Vec<FlowRuntime>,
    routes: RouteTable,
    /// The per-partition event cores. Always at least one; index 0 is the
    /// whole network until [`Network::set_partitions`] says otherwise.
    parts: Vec<PartitionCore>,
    /// Partition owning each node.
    node_part: Vec<usize>,
    /// Partition owning each link's runtime state (its tail node's).
    link_part: Vec<usize>,
    /// Whether each link crosses a partition boundary (its endpoints live
    /// in different partitions) — the links whose deliveries become
    /// boundary messages.
    link_cut: Vec<bool>,
    /// Conservative lookahead: the minimum propagation delay over boundary
    /// links. `None` when no link crosses a cut (single partition), in
    /// which case an epoch spans the whole run.
    lookahead: Option<SimDuration>,
    clock: SimTime,
    config: NetworkConfig,
    events_processed: u64,
    /// The globally shared event sequence counter. Every event in every
    /// partition's wheel draws from this one counter at schedule time, so
    /// the cross-partition `(time, seq)` merge reproduces the single-queue
    /// pop order exactly.
    next_seq: u64,
    /// The base impairment seed; per-partition streams derive from it.
    impair_seed: u64,
}

impl Network {
    /// Build a network from a topology, creating one queue per link with
    /// `queue_factory`.
    pub fn new(topo: Topology, queue_factory: impl Fn(LinkId) -> Box<dyn QueueDiscipline>) -> Self {
        Self::with_config(topo, queue_factory, NetworkConfig::default())
    }

    /// Build a network with explicit engine configuration.
    pub fn with_config(
        topo: Topology,
        queue_factory: impl Fn(LinkId) -> Box<dyn QueueDiscipline>,
        config: NetworkConfig,
    ) -> Self {
        let links = topo
            .links()
            .iter()
            .enumerate()
            .map(|(id, spec)| LinkRuntime {
                capacity_bps: spec.capacity_bps,
                delay: spec.delay,
                queue: queue_factory(id),
                control_lane: std::collections::VecDeque::new(),
                controller: None,
                busy: false,
                health: LinkHealth::default(),
                stats: LinkStats::default(),
            })
            .collect();
        let num_nodes = topo.nodes().len();
        let num_links = topo.links().len();
        Self {
            topo,
            links,
            flows: Vec::new(),
            routes: RouteTable::new(),
            parts: vec![PartitionCore::new(0, 0)],
            node_part: vec![0; num_nodes],
            link_part: vec![0; num_links],
            link_cut: vec![false; num_links],
            lookahead: None,
            clock: SimTime::ZERO,
            config,
            events_processed: 0,
            next_seq: 0,
            impair_seed: 0,
        }
    }

    /// Re-split the network into `partitions` spatial domains (see the
    /// type-level docs). Each partition gets its own timing wheel, timer
    /// service and impairment stream; events already scheduled (e.g. link
    /// controller timers installed at construction) migrate to their owning
    /// partition's wheel with their original sequence numbers, so the
    /// partition count never perturbs event order.
    ///
    /// Must be called during setup: after construction and controller
    /// installation, before any flow is added or the simulation runs.
    ///
    /// # Panics
    /// Panics if `partitions` is zero, or if flows exist or events have
    /// already been processed.
    pub fn set_partitions(&mut self, partitions: usize) {
        assert!(partitions >= 1, "partition count must be at least 1");
        assert!(
            self.flows.is_empty() && self.events_processed == 0,
            "set_partitions must be called before flows are added or the simulation runs"
        );
        let partitioning = self.topo.partition(partitions);
        self.node_part = partitioning.assignment().to_vec();
        self.link_part = self
            .topo
            .links()
            .iter()
            .map(|spec| self.node_part[spec.from])
            .collect();
        self.link_cut = self
            .topo
            .links()
            .iter()
            .map(|spec| self.node_part[spec.from] != self.node_part[spec.to])
            .collect();
        self.lookahead = self
            .topo
            .links()
            .iter()
            .enumerate()
            .filter(|&(l, _)| self.link_cut[l])
            .map(|(_, spec)| spec.delay.max(SimDuration::from_nanos(1)))
            .min();
        // Migrate pending events (setup-time controller timers and link
        // changes) into the new per-partition wheels, keeping their
        // original global sequence numbers.
        let mut pending: Vec<(SimTime, u64, Event, bool)> = Vec::new();
        for core in &mut self.parts {
            pending.extend(core.events.drain_entries());
        }
        pending.sort_by_key(|&(t, seq, ..)| (t, seq));
        self.parts = (0..partitions)
            .map(|p| PartitionCore::new(self.impair_seed, p))
            .collect();
        for (at, seq, event, cancellable) in pending {
            let p = self.event_partition(&event);
            let core = &mut self.parts[p].events;
            if cancellable {
                core.schedule_cancellable_seeded(at, event, seq);
            } else {
                core.schedule_seeded(at, event, seq);
            }
        }
    }

    /// The number of spatial partitions this network is decomposed into.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// The partition that owns (handles events of) `event`: arrivals belong
    /// to the receiving end of their link, everything else link-scoped to
    /// the transmitting end, and flow-scoped events to the source host.
    fn event_partition(&self, event: &Event) -> usize {
        match event {
            Event::Arrival { link, .. } => self.node_part[self.topo.links()[*link].to],
            Event::TransmitComplete { link }
            | Event::LinkTimer { link, .. }
            | Event::LinkChange { link, .. } => self.link_part[*link],
            Event::FlowStart { flow }
            | Event::FlowStop { flow }
            | Event::FlowTimer { flow, .. } => self.node_part[self.flows[*flow].spec.src],
        }
    }

    /// Allocate the next globally shared sequence number.
    fn alloc_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        seq
    }

    /// Schedule `event` into its owning partition's wheel under the global
    /// sequence counter — the partition-aware replacement for what used to
    /// be `self.events.schedule(...)`.
    fn schedule_event(&mut self, at: SimTime, event: Event) -> EventId {
        let seq = self.alloc_seq();
        let p = self.event_partition(&event);
        self.parts[p].events.schedule_seeded(at, event, seq)
    }

    /// The topology this network was built from.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Resolve an interned route id (from a [`FlowSpec`] or [`Packet`]) to
    /// the route itself.
    pub fn route(&self, id: RouteId) -> &Route {
        self.routes.get(id)
    }

    /// The network's route arena (interned, deduplicated flow routes).
    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Attach a switch-side controller to a link. If the controller requests
    /// a periodic timer it starts `initial_timer()` from the current time.
    pub fn set_link_controller(&mut self, link: LinkId, controller: Box<dyn LinkController>) {
        let initial = controller.initial_timer();
        self.links[link].controller = Some(controller);
        if let Some(delay) = initial {
            self.schedule_event(self.clock + delay, Event::LinkTimer { link, tag: 0 });
        }
    }

    /// Attach the same controller (via a factory) to every link in the
    /// network — the common case where every switch port runs the protocol.
    pub fn set_all_link_controllers(
        &mut self,
        factory: impl Fn(LinkId, f64) -> Box<dyn LinkController>,
    ) {
        for link in 0..self.links.len() {
            let capacity = self.links[link].capacity_bps;
            self.set_link_controller(link, factory(link, capacity));
        }
    }

    /// Add a flow between two hosts of a leaf-spine topology, pinning it to
    /// the spine chosen by `spine_choice` (ECMP hash stand-in). Returns the
    /// flow id. The flow starts at `start_time` (scheduled automatically).
    #[allow(clippy::too_many_arguments)]
    pub fn add_flow(
        &mut self,
        src: NodeId,
        dst: NodeId,
        size_bytes: Option<u64>,
        start_time: SimTime,
        spine_choice: usize,
        group: Option<usize>,
        agent: Box<dyn FlowAgent>,
    ) -> FlowId {
        let route = self.topo.host_route(src, dst, spine_choice);
        let id = self.add_flow_on_route(src, dst, route, size_bytes, start_time, group, agent);
        // Remember the ECMP pin so link failures can re-select the route
        // over the surviving paths; explicit-route flows stay `None`.
        self.flows[id].spec.ecmp_choice = Some(spine_choice);
        id
    }

    /// Add a flow with an explicit route (for custom topologies).
    #[allow(clippy::too_many_arguments)]
    pub fn add_flow_on_route(
        &mut self,
        src: NodeId,
        dst: NodeId,
        route: Route,
        size_bytes: Option<u64>,
        start_time: SimTime,
        group: Option<usize>,
        agent: Box<dyn FlowAgent>,
    ) -> FlowId {
        assert!(
            !route.is_empty(),
            "flow route must traverse at least one link"
        );
        let reverse = self.topo.reverse_route(&route);
        let base_rtt = self
            .topo
            .base_rtt(&route, MTU_BYTES as u64, HEADER_BYTES as u64);
        let route = self.routes.intern(route);
        let reverse_route = self.routes.intern(reverse);
        let spec = FlowSpec {
            src,
            dst,
            size_bytes,
            start_time: start_time.max(self.clock),
            route,
            reverse_route,
            base_rtt,
            group,
            ecmp_choice: None,
        };
        let id = self.flows.len();
        self.flows.push(FlowRuntime {
            spec,
            agent: Some(agent),
            phase: FlowPhase::Pending,
            stats: FlowStats::default(),
            tracer: EwmaRateTracer::new(self.config.rate_ewma_tau),
        });
        // Dense per-flow timer bookkeeping on every partition: a flow's
        // timers live only in its owning partition's service, but the flow
        // id must index into all of them.
        for core in &mut self.parts {
            core.timers.register_flow();
        }
        let at = self.flows[id].spec.start_time;
        self.schedule_event(at, Event::FlowStart { flow: id });
        id
    }

    /// Stop an active flow (it stops sending; in-flight packets still drain).
    pub fn stop_flow(&mut self, flow: FlowId) {
        self.schedule_event(self.clock, Event::FlowStop { flow });
    }

    /// The earliest `(time, seq)` key across every partition's wheel, and
    /// the partition holding it — the cross-partition merge point. Shared
    /// sequence numbers make the winner unique and identical to what a
    /// single queue would pop next.
    fn peek_min(&mut self) -> Option<(SimTime, u64, usize)> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for p in 0..self.parts.len() {
            if let Some((t, seq)) = self.parts[p].events.peek_key() {
                if best.is_none_or(|(bt, bs, _)| (t, seq) < (bt, bs)) {
                    best = Some((t, seq, p));
                }
            }
        }
        best
    }

    /// Release every buffered boundary message into its destination
    /// partition's wheel — the time-barrier merge. Messages carry the
    /// `(deliver_time, seq)` stamped at creation, so insertion order here
    /// cannot perturb pop order.
    fn drain_inboxes(&mut self) {
        for p in 0..self.parts.len() {
            if self.parts[p].inbox.is_empty() {
                continue;
            }
            let msgs = std::mem::take(&mut self.parts[p].inbox);
            for (at, seq, event) in msgs {
                self.parts[p].events.schedule_seeded(at, event, seq);
            }
        }
    }

    /// Run the simulation until (and including) time `until`.
    ///
    /// With multiple partitions the loop runs in **epochs**: each epoch
    /// starts at the earliest pending event time `t`, processes every event
    /// strictly before the barrier `t + lookahead` in merged `(time, seq)`
    /// order, then releases the boundary messages produced meanwhile. The
    /// lookahead (minimum boundary-link propagation delay) guarantees no
    /// boundary message can be due before the barrier, so the merged order
    /// — and every observable byte — is independent of the partition count.
    pub fn run_until(&mut self, until: SimTime) {
        loop {
            self.drain_inboxes();
            let Some((t, _, _)) = self.peek_min() else {
                break;
            };
            if t > until {
                break;
            }
            let barrier = self.lookahead.map(|la| t + la);
            while let Some((time, _, p)) = self.peek_min() {
                if time > until || barrier.is_some_and(|b| time >= b) {
                    break;
                }
                let (time, id, event) = self.parts[p]
                    .events
                    .pop_entry()
                    .expect("peeked event must exist");
                self.clock = time;
                self.handle(id, event);
            }
        }
        self.clock = self.clock.max(until);
    }

    /// Run the simulation for `duration` beyond the current time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let until = self.clock + duration;
        self.run_until(until);
    }

    /// Run until no events remain (only sensible for workloads where every
    /// flow has a finite size). Same epoch structure as [`Self::run_until`],
    /// without the time bound.
    pub fn run_to_completion(&mut self) {
        loop {
            self.drain_inboxes();
            let Some((t, _, _)) = self.peek_min() else {
                break;
            };
            let barrier = self.lookahead.map(|la| t + la);
            while let Some((time, _, p)) = self.peek_min() {
                if barrier.is_some_and(|b| time >= b) {
                    break;
                }
                let (time, id, event) = self.parts[p]
                    .events
                    .pop_entry()
                    .expect("peeked event must exist");
                self.clock = time;
                self.handle(id, event);
            }
        }
    }

    // ---- statistics -------------------------------------------------------

    /// Number of flows added so far.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// A flow's static description.
    pub fn flow_spec(&self, flow: FlowId) -> &FlowSpec {
        &self.flows[flow].spec
    }

    /// A flow's counters.
    pub fn flow_stats(&self, flow: FlowId) -> &FlowStats {
        &self.flows[flow].stats
    }

    /// A flow's lifecycle phase.
    pub fn flow_phase(&self, flow: FlowId) -> FlowPhase {
        self.flows[flow].phase
    }

    /// The destination-side EWMA rate estimate for a flow, in bits/s.
    pub fn flow_rate_estimate(&self, flow: FlowId) -> f64 {
        self.flows[flow].tracer.rate_bps(self.clock)
    }

    /// Ids of flows currently in the [`FlowPhase::Active`] phase.
    pub fn active_flows(&self) -> Vec<FlowId> {
        (0..self.flows.len())
            .filter(|&f| self.flows[f].phase == FlowPhase::Active)
            .collect()
    }

    /// Change a link's capacity at runtime (used by the bandwidth-function
    /// experiments, where the bottleneck capacity changes mid-run). The
    /// packet currently being serialized keeps its old transmission time;
    /// subsequent packets use the new rate.
    ///
    /// # Panics
    /// Panics if the capacity is not strictly positive.
    pub fn set_link_capacity(&mut self, link: LinkId, capacity_bps: f64) {
        assert!(
            capacity_bps.is_finite() && capacity_bps > 0.0,
            "capacity must be positive"
        );
        self.links[link].capacity_bps = capacity_bps;
        if let Some(ctrl) = &mut self.links[link].controller {
            ctrl.on_capacity_change(capacity_bps);
        }
    }

    /// A link's current capacity in bits per second.
    pub fn link_capacity_bps(&self, link: LinkId) -> f64 {
        self.links[link].capacity_bps
    }

    // ---- impairments ------------------------------------------------------

    /// Schedule a [`LinkChange`] to take effect at `at` (clamped to the
    /// current time), as an ordinary event in the wheel. Impairment
    /// schedules built by `numfabric-workloads` reduce to a sequence of
    /// these calls.
    pub fn schedule_link_change(&mut self, at: SimTime, link: LinkId, change: LinkChange) {
        assert!(link < self.links.len(), "no such link: {link}");
        self.schedule_event(at.max(self.clock), Event::LinkChange { link, change });
    }

    /// Seed the impairment streams that randomized [`LinkChange::Loss`] and
    /// [`LinkChange::Jitter`] draws come from — one stream per partition,
    /// derived via [`derive_partition_seed`] (partition 0 gets `seed`
    /// itself, so a single-partition network reproduces the historical
    /// single-stream draws exactly). Runs that never impair a link never
    /// touch any stream, so the seed is irrelevant to them.
    pub fn set_impairment_seed(&mut self, seed: u64) {
        self.impair_seed = seed;
        for (p, core) in self.parts.iter_mut().enumerate() {
            core.rng = derive_partition_seed(seed, p);
        }
    }

    /// Whether a link is currently up.
    pub fn link_is_up(&self, link: LinkId) -> bool {
        self.links[link].health.up
    }

    /// A link's current impairment state.
    pub fn link_health(&self, link: LinkId) -> LinkHealth {
        self.links[link].health
    }

    /// Counters for a link. Backlog counts include the control lane.
    pub fn link_stats(&self, link: LinkId) -> LinkStats {
        let lr = &self.links[link];
        let lane_bytes: usize = lr.control_lane.iter().map(|p| p.wire_bytes as usize).sum();
        LinkStats {
            queue_bytes: lr.queue.backlog_bytes() + lane_bytes,
            queue_packets: lr.queue.backlog_packets() + lr.control_lane.len(),
            ..lr.stats
        }
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Total number of events dispatched so far (the `event_core` benchmark
    /// divides this by wall time to report events/sec).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of events currently pending across every partition's wheel
    /// and boundary inbox. Structurally cancelled timers (see
    /// [`AgentCtx::cancel_timer`]) do not count.
    pub fn pending_events(&self) -> usize {
        self.parts
            .iter()
            .map(|c| c.events.len() + c.inbox.len())
            .sum()
    }

    /// Number of armed, un-fired timers of `flow`. Stopping or completing a
    /// flow cancels all of them, so this drops to zero structurally — the
    /// regression surface for the stale-RTX-timer bug.
    pub fn pending_timer_count(&self, flow: FlowId) -> usize {
        let p = self.node_part[self.flows[flow].spec.src];
        self.parts[p].timers.pending_count(flow)
    }

    // ---- event handling ---------------------------------------------------

    fn handle(&mut self, id: EventId, event: Event) {
        self.events_processed += 1;
        match event {
            Event::FlowStart { flow } => self.handle_flow_start(flow),
            Event::FlowStop { flow } => self.handle_flow_stop(flow),
            Event::FlowTimer { flow, tag } => self.dispatch_timer(flow, tag, id),
            Event::LinkTimer { link, tag } => self.handle_link_timer(link, tag),
            Event::TransmitComplete { link } => {
                self.links[link].busy = false;
                self.try_transmit(link);
            }
            Event::Arrival { link, packet } => self.handle_arrival(link, packet),
            Event::LinkChange { link, change } => self.handle_link_change(link, change),
        }
    }

    fn handle_link_change(&mut self, link: LinkId, change: LinkChange) {
        match change {
            LinkChange::Down | LinkChange::DownFwd => {
                if !self.links[link].health.up {
                    return;
                }
                self.links[link].health.up = false;
                // An asymmetric failure dies identically at this link but
                // leaves the reverse twin routable (see `reroute_ecmp_flows`).
                self.links[link].health.asymmetric_down = change == LinkChange::DownFwd;
                // Everything queued behind the failed cable is lost,
                // deterministically (drain order is the discipline's own
                // dequeue order). Packets already propagating are lost at
                // their arrival instant (see `handle_arrival`).
                self.drop_link_backlog(link);
                self.reroute_ecmp_flows();
            }
            LinkChange::Up => {
                if self.links[link].health.up {
                    return;
                }
                self.links[link].health.up = true;
                self.links[link].health.asymmetric_down = false;
                self.reroute_ecmp_flows();
                self.try_transmit(link);
            }
            LinkChange::Speed(capacity_bps) => self.set_link_capacity(link, capacity_bps),
            LinkChange::Loss(probability) => {
                assert!(
                    (0.0..=1.0).contains(&probability),
                    "loss probability out of range: {probability}"
                );
                self.links[link].health.loss = probability;
            }
            LinkChange::Jitter(max_extra) => self.links[link].health.jitter = max_extra,
        }
    }

    /// Drop every packet queued on `link` (data queue and control lane),
    /// with full drop accounting.
    fn drop_link_backlog(&mut self, link: LinkId) {
        let mut dropped_flows = Vec::new();
        {
            let lr = &mut self.links[link];
            while let Some(p) = lr.control_lane.pop_front() {
                dropped_flows.push(p.flow);
            }
            while let Some(p) = lr.queue.dequeue(self.clock) {
                dropped_flows.push(p.flow);
            }
            lr.stats.packets_dropped += dropped_flows.len() as u64;
        }
        for flow in dropped_flows {
            self.flows[flow].stats.packets_dropped += 1;
        }
    }

    /// Re-select the route of every live ECMP-pinned flow over the links
    /// that survive the current failure set. Flows whose surviving choice
    /// is unchanged keep their route (and their in-flight packets); a
    /// partitioned flow keeps its dead route and stalls until a restore.
    ///
    /// Every rerouted *active* flow is then told via
    /// [`FlowAgent::on_reroute`], with `path_was_lost` reporting whether
    /// its old path (either direction) crossed a downed link — that is the
    /// case in which its in-flight window died with the cable and a purely
    /// ACK-clocked sender must retransmit to restart its clock.
    fn reroute_ecmp_flows(&mut self) {
        let down: std::collections::HashSet<LinkId> = self
            .links
            .iter()
            .enumerate()
            .filter(|(_, lr)| !lr.health.up)
            .map(|(id, _)| id)
            .collect();
        // The route-selection ban set: a symmetric failure bans the whole
        // cable (a flow cannot use a path its ACKs cannot retrace), while an
        // asymmetric `DownFwd` failure bans only the dead direction — the
        // routing plane only learned about the direction that went dark.
        let mut banned = down.clone();
        for &id in &down {
            if self.links[id].health.asymmetric_down {
                continue;
            }
            let spec = &self.topo.links()[id];
            if let Some(twin) = self.topo.link_between(spec.to, spec.from) {
                banned.insert(twin);
            }
        }
        let mut rerouted: Vec<(FlowId, bool)> = Vec::new();
        for flow in 0..self.flows.len() {
            let fr = &self.flows[flow];
            if !matches!(fr.phase, FlowPhase::Pending | FlowPhase::Active) {
                continue;
            }
            let Some(choice) = fr.spec.ecmp_choice else {
                continue;
            };
            let (src, dst, old) = (fr.spec.src, fr.spec.dst, fr.spec.route);
            let old_reverse = fr.spec.reverse_route;
            let Some(new_route) = self
                .topo
                .host_route_avoiding_directed(src, dst, choice, &banned)
            else {
                continue;
            };
            if self.routes.links(old) == new_route.links.as_slice() {
                continue;
            }
            // Old in-flight and queued packets carry the old interned
            // route and keep following it (dying at the failed hop); the
            // flow's own per-queue state moves to the new path.
            for &l in self.routes.links(old) {
                self.links[l].queue.release_flow(flow);
            }
            let path_was_lost = self
                .routes
                .links(old)
                .iter()
                .chain(self.routes.links(old_reverse))
                .any(|l| down.contains(l));
            let reverse = self.topo.reverse_route(&new_route);
            let base_rtt = self
                .topo
                .base_rtt(&new_route, MTU_BYTES as u64, HEADER_BYTES as u64);
            let active = self.flows[flow].phase == FlowPhase::Active;
            let fr = &mut self.flows[flow];
            fr.spec.base_rtt = base_rtt;
            fr.spec.route = self.routes.intern(new_route);
            fr.spec.reverse_route = self.routes.intern(reverse);
            if active {
                rerouted.push((flow, path_was_lost));
            }
        }
        for (flow, path_was_lost) in rerouted {
            self.with_agent(flow, |agent, ctx| agent.on_reroute(path_was_lost, ctx));
        }
    }

    fn handle_flow_start(&mut self, flow: FlowId) {
        if self.flows[flow].phase != FlowPhase::Pending {
            return;
        }
        self.flows[flow].phase = FlowPhase::Active;
        self.flows[flow].stats.started_at = Some(self.clock);
        self.with_agent(flow, |agent, ctx| agent.on_start(ctx));
    }

    /// Cancel every outstanding timer of `flow` in its owning partition.
    fn cancel_flow_timers(&mut self, flow: FlowId) {
        let p = self.node_part[self.flows[flow].spec.src];
        let core = &mut self.parts[p];
        core.timers.cancel_all(&mut core.events, flow);
    }

    fn handle_flow_stop(&mut self, flow: FlowId) {
        if self.flows[flow].phase == FlowPhase::Active {
            self.flows[flow].phase = FlowPhase::Stopped;
            for &l in self.routes.links(self.flows[flow].spec.route) {
                self.links[l].queue.release_flow(flow);
            }
            // Structural cancellation: a stopped flow leaves no timers
            // behind to fire into the dispatch path.
            self.cancel_flow_timers(flow);
        }
    }

    fn handle_link_timer(&mut self, link: LinkId, tag: u64) {
        let next = {
            let lr = &mut self.links[link];
            let backlog = lr.queue.backlog_bytes();
            match &mut lr.controller {
                Some(ctrl) => ctrl.on_timer(self.clock, backlog),
                None => None,
            }
        };
        if let Some(delay) = next {
            self.schedule_event(self.clock + delay, Event::LinkTimer { link, tag });
        }
    }

    fn handle_arrival(&mut self, link: LinkId, mut packet: Packet) {
        // A packet in flight is delivered unless its cable is down at the
        // arrival instant: failing a link loses whatever was on the wire.
        if !self.links[link].health.up {
            self.links[link].stats.packets_dropped += 1;
            self.flows[packet.flow].stats.packets_dropped += 1;
            return;
        }
        packet.advance_hop();
        if let Some(next) = packet.next_link(&self.routes) {
            self.enqueue_on_link(next, packet);
            return;
        }
        // Delivered to the end host.
        let flow = packet.flow;
        match packet.kind {
            PacketKind::Data | PacketKind::Syn => {
                if packet.is_data() {
                    let fr = &mut self.flows[flow];
                    fr.stats.bytes_delivered += packet.payload_bytes as u64;
                    fr.stats.packets_delivered += 1;
                    fr.tracer
                        .on_arrival(packet.payload_bytes as u64, self.clock);
                }
                if self.flows[flow].phase == FlowPhase::Active {
                    self.with_agent(flow, |agent, ctx| agent.on_data(&packet, ctx));
                }
                self.check_completion(flow);
            }
            PacketKind::Ack => {
                {
                    let fr = &mut self.flows[flow];
                    fr.stats.bytes_acked = fr.stats.bytes_acked.max(packet.header.ack_bytes);
                }
                if self.flows[flow].phase == FlowPhase::Active {
                    self.with_agent(flow, |agent, ctx| agent.on_ack(&packet, ctx));
                }
            }
        }
    }

    fn check_completion(&mut self, flow: FlowId) {
        let fr = &mut self.flows[flow];
        if fr.phase != FlowPhase::Active {
            return;
        }
        if let Some(size) = fr.spec.size_bytes {
            if fr.stats.bytes_delivered >= size {
                fr.phase = FlowPhase::Completed;
                fr.stats.completed_at = Some(self.clock);
                let route = fr.spec.route;
                for &l in self.routes.links(route) {
                    self.links[l].queue.release_flow(flow);
                }
                self.cancel_flow_timers(flow);
            }
        }
    }

    fn dispatch_timer(&mut self, flow: FlowId, tag: u64, id: EventId) {
        let p = self.node_part[self.flows[flow].spec.src];
        self.parts[p].timers.fired(flow, id);
        // Stop/completion cancels outstanding timers structurally; this
        // guard is defence in depth, not the cancellation mechanism.
        if self.flows[flow].phase != FlowPhase::Active {
            return;
        }
        self.with_agent(flow, |agent, ctx| agent.on_timer(tag, ctx));
    }

    fn with_agent(
        &mut self,
        flow: FlowId,
        f: impl FnOnce(&mut Box<dyn FlowAgent>, &mut AgentCtx<'_>),
    ) {
        let mut agent = match self.flows[flow].agent.take() {
            Some(a) => a,
            None => return,
        };
        {
            let mut ctx = AgentCtx { net: self, flow };
            f(&mut agent, &mut ctx);
        }
        self.flows[flow].agent = Some(agent);
    }

    fn enqueue_on_link(&mut self, link: LinkId, mut packet: Packet) {
        if !self.links[link].health.up {
            // Forwarding onto a failed link drops the packet at the port.
            self.links[link].stats.packets_dropped += 1;
            self.flows[packet.flow].stats.packets_dropped += 1;
            return;
        }
        {
            let lr = &mut self.links[link];
            if packet.is_data() {
                if let Some(ctrl) = &mut lr.controller {
                    ctrl.on_enqueue(&mut packet, self.clock);
                }
                let outcome = lr.queue.enqueue(packet, self.clock);
                if let Some(dropped) = outcome.dropped() {
                    lr.stats.packets_dropped += 1;
                    self.flows[dropped.flow].stats.packets_dropped += 1;
                }
            } else {
                // ACKs and SYNs ride the strict-priority control lane:
                // they skip the data discipline entirely and are never
                // dropped by buffer pressure.
                lr.control_lane.push_back(packet);
            }
        }
        self.try_transmit(link);
    }

    fn try_transmit(&mut self, link: LinkId) {
        let rng_part = self.link_part[link];
        let (packet, tx_time, delay, lost, jitter) = {
            let rng = &mut self.parts[rng_part].rng;
            let lr = &mut self.links[link];
            if lr.busy || !lr.health.up {
                return;
            }
            // Price controllers see the *data* backlog, control lane
            // excluded: control bytes are invisible to the queue-based
            // price signal, exactly like a separate hardware class.
            let backlog = lr.queue.backlog_bytes();
            let mut packet = match lr.control_lane.pop_front() {
                Some(p) => p,
                None => match lr.queue.dequeue(self.clock) {
                    Some(p) => p,
                    None => return,
                },
            };
            if let Some(ctrl) = &mut lr.controller {
                ctrl.on_dequeue(&mut packet, self.clock, backlog);
            }
            lr.busy = true;
            lr.stats.bytes_transmitted += packet.wire_bytes as u64;
            lr.stats.packets_transmitted += 1;
            let tx_time = SimDuration::transmission(packet.wire_bytes as u64, lr.capacity_bps);
            // Randomized impairments: one stream draw per decision, taken
            // only on impaired links, so unimpaired runs never touch the
            // stream and stay bit-identical with pre-impairment builds.
            let health = lr.health;
            let delay = lr.delay;
            let lost = health.loss > 0.0 && splitmix64_unit(rng) < health.loss;
            let jitter = if !lost && !health.jitter.is_zero() {
                let unit = splitmix64_unit(rng);
                SimDuration::from_nanos((health.jitter.as_nanos() as f64 * unit) as u64)
            } else {
                SimDuration::ZERO
            };
            (packet, tx_time, delay, lost, jitter)
        };
        self.schedule_event(self.clock + tx_time, Event::TransmitComplete { link });
        if lost {
            // Corrupted on the wire: it occupied the link for its full
            // serialization time but never arrives.
            self.links[link].stats.packets_dropped += 1;
            self.flows[packet.flow].stats.packets_dropped += 1;
        } else {
            let at = self.clock + tx_time + delay + jitter;
            let event = Event::Arrival { link, packet };
            if self.link_cut[link] {
                // Boundary message: the arrival belongs to the partition on
                // the far side of the cut. It is buffered (with its global
                // sequence number already stamped) and drained into that
                // partition's wheel at the next epoch barrier — safe because
                // `at >= barrier`: the cut link's propagation delay is at
                // least the lookahead window by construction.
                let seq = self.alloc_seq();
                let dest = self.node_part[self.topo.links()[link].to];
                self.parts[dest].inbox.push((at, seq, event));
            } else {
                self.schedule_event(at, event);
            }
        }
    }
}

/// The interface through which a [`FlowAgent`] interacts with the network
/// during one of its callbacks.
pub struct AgentCtx<'a> {
    net: &'a mut Network,
    flow: FlowId,
}

impl AgentCtx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.net.clock
    }

    /// The flow this context belongs to.
    pub fn flow_id(&self) -> FlowId {
        self.flow
    }

    /// The flow's static description.
    pub fn spec(&self) -> &FlowSpec {
        &self.net.flows[self.flow].spec
    }

    /// The flow's counters.
    pub fn stats(&self) -> &FlowStats {
        &self.net.flows[self.flow].stats
    }

    /// Payload bytes not yet handed to the network (`None` for long-running
    /// flows).
    pub fn remaining_bytes(&self) -> Option<u64> {
        let fr = &self.net.flows[self.flow];
        fr.spec
            .size_bytes
            .map(|s| s.saturating_sub(fr.stats.bytes_sent))
    }

    /// Rewind the sent-bytes high-water mark to `to` (typically the highest
    /// cumulative ACK) ahead of a go-back-N retransmission, so that
    /// [`Self::remaining_bytes`] counts the lost tail as still owed rather
    /// than treating the dead transmission as spent. A `to` at or beyond
    /// the current mark is a no-op.
    pub fn rewind_sent(&mut self, to: u64) {
        let stats = &mut self.net.flows[self.flow].stats;
        stats.bytes_sent = stats.bytes_sent.min(to);
    }

    /// The flow's forward route.
    pub fn route(&self) -> &Route {
        self.net.routes.get(self.net.flows[self.flow].spec.route)
    }

    /// Capacity of the flow's first-hop (host NIC) link, in bits/s.
    pub fn first_hop_capacity_bps(&self) -> f64 {
        let first = self.net.routes.links(self.net.flows[self.flow].spec.route)[0];
        self.net.links[first].capacity_bps
    }

    /// The smallest link capacity along the flow's path, in bits/s.
    pub fn bottleneck_capacity_bps(&self) -> f64 {
        self.net
            .routes
            .links(self.net.flows[self.flow].spec.route)
            .iter()
            .map(|&l| self.net.links[l].capacity_bps)
            .fold(f64::INFINITY, f64::min)
    }

    /// The flow's base (empty-queue) RTT.
    pub fn base_rtt(&self) -> SimDuration {
        self.net.flows[self.flow].spec.base_rtt
    }

    /// Send a data packet of `payload_bytes` starting at byte offset `seq`,
    /// customizing the header with `modify`. Returns the wire size sent.
    pub fn send_data(
        &mut self,
        seq: SeqNo,
        payload_bytes: u32,
        modify: impl FnOnce(&mut PacketHeader),
    ) -> u32 {
        let route = self.net.flows[self.flow].spec.route;
        let mut packet = Packet::data(self.flow, seq, payload_bytes, route);
        packet.header.sent_time = self.net.clock;
        modify(&mut packet.header);
        let wire = packet.wire_bytes;
        {
            let stats = &mut self.net.flows[self.flow].stats;
            stats.bytes_sent += payload_bytes as u64;
            stats.packets_sent += 1;
        }
        let first = self.net.routes.links(route)[0];
        self.net.enqueue_on_link(first, packet);
        wire
    }

    /// Send a SYN packet along the forward route.
    pub fn send_syn(&mut self, modify: impl FnOnce(&mut PacketHeader)) {
        let route = self.net.flows[self.flow].spec.route;
        let mut packet = Packet::syn(self.flow, route);
        packet.header.sent_time = self.net.clock;
        modify(&mut packet.header);
        let first = self.net.routes.links(route)[0];
        self.net.enqueue_on_link(first, packet);
    }

    /// Send an ACK along the reverse route (receiver side).
    pub fn send_ack(&mut self, modify: impl FnOnce(&mut PacketHeader)) {
        let route = self.net.flows[self.flow].spec.reverse_route;
        let mut packet = Packet::ack(self.flow, route);
        packet.header.sent_time = self.net.clock;
        modify(&mut packet.header);
        let first = self.net.routes.links(route)[0];
        self.net.enqueue_on_link(first, packet);
    }

    /// Arrange for [`FlowAgent::on_timer`] to be called with `tag` after
    /// `delay`. The returned [`TimerHandle`] can be kept to
    /// [`Self::cancel_timer`] the callback before it fires; when the flow
    /// stops or completes, every outstanding timer is cancelled
    /// automatically.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerHandle {
        // Anchor at the engine's global clock (a partition wheel's own clock
        // may lag between barriers) and stamp the shared sequence number so
        // the timer merges deterministically across partitions.
        let p = self.net.node_part[self.net.flows[self.flow].spec.src];
        let seq = self.net.alloc_seq();
        let now = self.net.clock;
        let core = &mut self.net.parts[p];
        core.timers
            .arm_seeded(&mut core.events, now, seq, self.flow, delay, tag)
    }

    /// Cancel a timer previously armed with [`Self::set_timer`]. Returns
    /// `true` if the timer was still pending, `false` if it already fired
    /// or was already cancelled.
    pub fn cancel_timer(&mut self, handle: TimerHandle) -> bool {
        let p = self.net.node_part[self.net.flows[handle.flow()].spec.src];
        let core = &mut self.net.parts[p];
        core.timers.cancel(&mut core.events, handle)
    }

    /// Number of this flow's armed, un-fired timers.
    pub fn pending_timers(&self) -> usize {
        let p = self.net.node_part[self.net.flows[self.flow].spec.src];
        self.net.parts[p].timers.pending_count(self.flow)
    }
}

// The parallel-sweep contract, pinned at compile time: a `Network` owns its
// entire simulation (topology, route arena, queues, agents, controllers,
// event wheel, timers — no `Rc`, no interior sharing), so a worker thread
// can own one outright and independent simulations can run concurrently
// without touching the event core's determinism. `FlowAgent`,
// `QueueDiscipline` and `LinkController` carry `Send` bounds for exactly
// this reason; if a future change smuggles in a non-`Send` field, this is
// the line that fails to compile.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Network>();
    assert_send::<EventQueue>();
    assert_send::<crate::timer::TimerService>();
    assert_send::<Topology>();
    assert_send::<crate::routes::RouteTable>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::DropTailFifo;
    use crate::reference::SimpleWindowAgent;
    use crate::topology::{LeafSpineConfig, NodeKind};
    use crate::transport::NullController;

    fn small_net() -> Network {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        Network::new(topo, |_| Box::new(DropTailFifo::with_default_buffer()))
    }

    #[test]
    fn single_flow_completes_and_fct_is_sensible() {
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let size = 150_000u64; // 100 MTU payloads
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            Some(size),
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(20)),
        );
        net.run_until(SimTime::from_millis(50));
        assert_eq!(net.flow_phase(flow), FlowPhase::Completed);
        let stats = net.flow_stats(flow);
        // The 150 kB flow is an exact number of full payloads, so delivery
        // is byte-exact.
        assert_eq!(stats.bytes_delivered, size);
        let fct = stats.fct().expect("completed flow has an FCT");
        // 150 KB at 10 Gbps minimum is 120 µs plus propagation; the window of
        // 20 packets never stalls the 16 µs-RTT path, so it finishes quickly.
        assert!(fct >= SimDuration::from_micros(120), "fct = {fct}");
        assert!(fct < SimDuration::from_millis(2), "fct = {fct}");
        assert!(stats.packets_dropped == 0);
    }

    #[test]
    fn two_flows_share_a_bottleneck_roughly_equally() {
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        // Both flows converge on the same destination host link.
        let f0 = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(8)),
        );
        let f1 = net.add_flow(
            hosts[1],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(8)),
        );
        net.run_until(SimTime::from_millis(10));
        let r0 = net.flow_rate_estimate(f0);
        let r1 = net.flow_rate_estimate(f1);
        let total = r0 + r1;
        assert!(total > 8e9, "bottleneck underutilized: {total}");
        assert!(total < 10.5e9, "bottleneck oversubscribed: {total}");
        assert!((r0 - r1).abs() / total < 0.2, "unfair split {r0} vs {r1}");
    }

    #[test]
    fn flows_count_drops_when_buffers_are_tiny() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let mut net = Network::new(topo, |_| Box::new(DropTailFifo::new(4 * 1500)));
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        for src in 0..4 {
            net.add_flow(
                hosts[src],
                hosts[5],
                None,
                SimTime::ZERO,
                0,
                None,
                Box::new(SimpleWindowAgent::new(64)),
            );
        }
        net.run_until(SimTime::from_millis(2));
        let dropped: u64 = (0..net.num_flows())
            .map(|f| net.flow_stats(f).packets_dropped)
            .sum();
        assert!(dropped > 0, "expected drops with 4-packet buffers");
    }

    #[test]
    fn stopping_a_flow_stops_its_traffic() {
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(8)),
        );
        net.run_until(SimTime::from_millis(1));
        assert!(net.flow_rate_estimate(flow) > 1e9);
        net.stop_flow(flow);
        net.run_until(SimTime::from_millis(1) + SimDuration::from_micros(100));
        let sent_at_stop = net.flow_stats(flow).packets_sent;
        net.run_until(SimTime::from_millis(3));
        assert_eq!(net.flow_phase(flow), FlowPhase::Stopped);
        assert_eq!(net.flow_stats(flow).packets_sent, sent_at_stop);
        // The rate estimate decays once traffic stops.
        assert!(net.flow_rate_estimate(flow) < 1e9);
    }

    #[test]
    fn pending_flows_start_at_their_start_time() {
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            Some(15_000),
            SimTime::from_millis(1),
            0,
            None,
            Box::new(SimpleWindowAgent::new(8)),
        );
        net.run_until(SimTime::from_micros(500));
        assert_eq!(net.flow_phase(flow), FlowPhase::Pending);
        assert_eq!(net.flow_stats(flow).packets_sent, 0);
        net.run_until(SimTime::from_millis(5));
        assert_eq!(net.flow_phase(flow), FlowPhase::Completed);
        assert_eq!(
            net.flow_stats(flow).started_at,
            Some(SimTime::from_millis(1))
        );
    }

    #[test]
    fn link_stats_reflect_traffic() {
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            Some(150_000),
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(16)),
        );
        net.run_until(SimTime::from_millis(20));
        assert_eq!(net.flow_phase(flow), FlowPhase::Completed);
        let first_link = net.route(net.flow_spec(flow).route).links[0];
        let stats = net.link_stats(first_link);
        assert!(stats.packets_transmitted >= 100);
        assert!(stats.bytes_transmitted >= 150_000);
        assert_eq!(stats.queue_packets, 0);
    }

    #[test]
    fn null_controller_and_all_links_installation() {
        let mut net = small_net();
        net.set_all_link_controllers(|_, _| Box::new(NullController));
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[1],
            Some(15_000),
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(4)),
        );
        net.run_until(SimTime::from_millis(5));
        assert_eq!(net.flow_phase(flow), FlowPhase::Completed);
    }

    #[test]
    fn intra_rack_flows_avoid_the_spine() {
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[1],
            Some(15_000),
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(4)),
        );
        net.run_until(SimTime::from_millis(5));
        assert_eq!(net.flow_phase(flow), FlowPhase::Completed);
        // No spine link should have carried data packets.
        let topo = net.topology().clone();
        for (id, spec) in topo.links().iter().enumerate() {
            let from_spine = topo.nodes()[spec.from].kind == NodeKind::Spine;
            let to_spine = topo.nodes()[spec.to].kind == NodeKind::Spine;
            if from_spine || to_spine {
                assert_eq!(net.link_stats(id).packets_transmitted, 0);
            }
        }
    }

    /// Arms one timer on start and counts how often it fires — the probe
    /// for structural timer cancellation.
    struct TimerProbe {
        delay: SimDuration,
        fired: std::sync::Arc<std::sync::atomic::AtomicUsize>,
    }

    impl FlowAgent for TimerProbe {
        fn on_start(&mut self, ctx: &mut AgentCtx<'_>) {
            ctx.set_timer(self.delay, 7);
        }
        fn on_data(&mut self, _packet: &Packet, _ctx: &mut AgentCtx<'_>) {}
        fn on_ack(&mut self, _packet: &Packet, _ctx: &mut AgentCtx<'_>) {}
        fn on_timer(&mut self, tag: u64, _ctx: &mut AgentCtx<'_>) {
            assert_eq!(tag, 7);
            self.fired.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
    }

    #[test]
    fn stopping_a_flow_cancels_its_pending_timers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let fired = Arc::new(AtomicUsize::new(0));
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(TimerProbe {
                delay: SimDuration::from_micros(500),
                fired: fired.clone(),
            }),
        );
        net.run_until(SimTime::from_micros(100));
        assert_eq!(net.pending_timer_count(flow), 1);
        let pending_with_timer = net.pending_events();
        net.stop_flow(flow);
        net.run_until(SimTime::from_micros(200));
        // The stop structurally removed the timer: it no longer counts as a
        // pending event and never dispatches.
        assert_eq!(net.pending_timer_count(flow), 0);
        assert!(net.pending_events() < pending_with_timer);
        net.run_until(SimTime::from_millis(2));
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        assert_eq!(net.flow_phase(flow), FlowPhase::Stopped);
    }

    #[test]
    fn unstopped_timers_still_fire_and_can_be_cancelled_by_handle() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let fired = Arc::new(AtomicUsize::new(0));
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[7],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(TimerProbe {
                delay: SimDuration::from_micros(500),
                fired: fired.clone(),
            }),
        );
        net.run_until(SimTime::from_millis(1));
        assert_eq!(fired.load(Ordering::SeqCst), 1, "positive control");
        assert_eq!(net.pending_timer_count(flow), 0);
    }

    /// The leaf0 -> spine0 uplink of the small test fabric.
    fn uplink(net: &Network, spine: usize) -> LinkId {
        let topo = net.topology();
        let leaf0 = topo
            .nodes()
            .iter()
            .position(|n| n.kind == NodeKind::Leaf)
            .unwrap();
        let spine0 = topo
            .nodes()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.kind == NodeKind::Spine)
            .map(|(id, _)| id)
            .nth(spine)
            .unwrap();
        topo.link_between(leaf0, spine0).unwrap()
    }

    #[test]
    fn failing_a_link_drops_its_backlog_and_blocks_traffic() {
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        // Pin the flow on spine 0 with an explicit route so the failure
        // cannot be routed around.
        let route = net.topology().host_route(hosts[0], hosts[4], 0);
        let flow = net.add_flow_on_route(
            hosts[0],
            hosts[4],
            route,
            None,
            SimTime::ZERO,
            None,
            Box::new(SimpleWindowAgent::new(32)),
        );
        net.run_until(SimTime::from_millis(1));
        let link = uplink(&net, 0);
        assert!(net.link_is_up(link));
        let sent_before = net.flow_stats(flow).packets_sent;
        assert!(sent_before > 0);
        net.schedule_link_change(SimTime::from_millis(1), link, LinkChange::Down);
        net.run_until(SimTime::from_millis(4));
        assert!(!net.link_is_up(link));
        // The window drains into the dead link and the flow wedges: drops
        // are accounted and delivery stops growing.
        assert!(net.flow_stats(flow).packets_dropped > 0);
        let delivered = net.flow_stats(flow).bytes_delivered;
        net.run_until(SimTime::from_millis(8));
        assert_eq!(net.flow_stats(flow).bytes_delivered, delivered);
    }

    #[test]
    fn ecmp_pinned_flows_reroute_around_a_failure_and_return_on_restore() {
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0, // ECMP pin on spine 0
            None,
            Box::new(SimpleWindowAgent::new(16)),
        );
        let original = net.flow_spec(flow).route;
        let failed = uplink(&net, 0);
        net.schedule_link_change(SimTime::from_millis(1), failed, LinkChange::Down);
        net.schedule_link_change(SimTime::from_millis(3), failed, LinkChange::Up);
        net.run_until(SimTime::from_millis(2));
        let detour = net.flow_spec(flow).route;
        assert_ne!(detour, original, "failure must move the flow off spine 0");
        assert!(!net.route(detour).links.contains(&failed));
        let delivered_at_2ms = net.flow_stats(flow).bytes_delivered;
        net.run_until(SimTime::from_millis(4));
        // The restore puts the ECMP choice back on its original path, and
        // the flow kept making progress across the whole flap.
        assert_eq!(net.flow_spec(flow).route, original);
        assert!(net.flow_stats(flow).bytes_delivered > delivered_at_2ms);
    }

    #[test]
    fn down_fwd_reroutes_only_the_dead_direction() {
        // Two ECMP-pinned flows crossing the same cable in opposite
        // directions: h0 -> h4 climbs leaf0 -> spine0, h4 -> h0 descends
        // spine0 -> leaf0 (the twin). An asymmetric failure of the uplink
        // must move only the climbing flow; a symmetric one moves both.
        let run = |change: LinkChange| {
            let mut net = small_net();
            let hosts: Vec<_> = net.topology().hosts().to_vec();
            let fwd_flow = net.add_flow(
                hosts[0],
                hosts[4],
                None,
                SimTime::ZERO,
                0,
                None,
                Box::new(SimpleWindowAgent::new(16)),
            );
            let rev_flow = net.add_flow(
                hosts[4],
                hosts[0],
                None,
                SimTime::ZERO,
                0,
                None,
                Box::new(SimpleWindowAgent::new(16)),
            );
            let dead = uplink(&net, 0);
            let fwd_route = net.flow_spec(fwd_flow).route;
            let rev_route = net.flow_spec(rev_flow).route;
            net.schedule_link_change(SimTime::from_millis(1), dead, change);
            net.run_until(SimTime::from_millis(2));
            assert!(!net.link_is_up(dead));
            let fwd_moved = net.flow_spec(fwd_flow).route != fwd_route;
            let rev_moved = net.flow_spec(rev_flow).route != rev_route;
            assert!(fwd_moved, "the dead direction is always avoided");
            assert!(!net
                .route(net.flow_spec(fwd_flow).route)
                .links
                .contains(&dead));
            rev_moved
        };
        assert!(
            !run(LinkChange::DownFwd),
            "down-fwd must leave the live twin direction routable"
        );
        assert!(
            run(LinkChange::Down),
            "a symmetric down bans the whole cable"
        );
    }

    #[test]
    fn wire_loss_drops_packets_deterministically_per_seed() {
        let run = |seed: u64| {
            let mut net = small_net();
            net.set_impairment_seed(seed);
            let hosts: Vec<_> = net.topology().hosts().to_vec();
            let link = uplink(&net, 0);
            net.schedule_link_change(SimTime::ZERO, link, LinkChange::Loss(0.2));
            let route = net.topology().host_route(hosts[0], hosts[4], 0);
            let flow = net.add_flow_on_route(
                hosts[0],
                hosts[4],
                route,
                None,
                SimTime::ZERO,
                None,
                Box::new(SimpleWindowAgent::new(32)),
            );
            net.run_until(SimTime::from_millis(2));
            let stats = net.flow_stats(flow);
            (stats.packets_dropped, stats.bytes_delivered)
        };
        let (dropped, delivered) = run(7);
        assert!(dropped > 0, "20% wire loss must drop something");
        assert!(delivered > 0, "most packets still get through");
        assert_eq!(run(7), (dropped, delivered), "same seed, same losses");
        assert_ne!(run(8), (dropped, delivered), "loss pattern follows seed");
    }

    #[test]
    fn jitter_delays_but_does_not_drop() {
        let mut net = small_net();
        net.set_impairment_seed(1);
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let link = uplink(&net, 0);
        net.schedule_link_change(
            SimTime::ZERO,
            link,
            LinkChange::Jitter(SimDuration::from_micros(20)),
        );
        let route = net.topology().host_route(hosts[0], hosts[4], 0);
        let flow = net.add_flow_on_route(
            hosts[0],
            hosts[4],
            route,
            Some(150_000),
            SimTime::ZERO,
            None,
            Box::new(SimpleWindowAgent::new(16)),
        );
        net.run_until(SimTime::from_millis(20));
        assert_eq!(net.flow_phase(flow), FlowPhase::Completed);
        assert_eq!(net.flow_stats(flow).packets_dropped, 0);
    }

    #[test]
    fn speed_change_event_matches_direct_capacity_change() {
        let mut net = small_net();
        let link = uplink(&net, 0);
        net.schedule_link_change(SimTime::from_micros(10), link, LinkChange::Speed(1e9));
        net.run_until(SimTime::from_micros(20));
        assert_eq!(net.link_capacity_bps(link), 1e9);
    }

    #[test]
    fn acks_ride_the_control_lane_past_a_data_backlog() {
        // Saturate h0 -> h4 with a big window, then check that the reverse
        // direction's ACK-bearing links report no control-lane induced
        // drops and the flow's ACK clock keeps running: bytes_acked tracks
        // bytes_delivered closely even under full forward queues.
        let mut net = small_net();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(64)),
        );
        net.run_until(SimTime::from_millis(4));
        let stats = net.flow_stats(flow);
        assert!(stats.bytes_delivered > 0);
        // With a strict-priority control lane the ACK path adds at most one
        // serialization per hop, so the ACK horizon hugs delivery.
        let lag = stats.bytes_delivered.saturating_sub(stats.bytes_acked);
        assert!(
            lag <= 16 * 1460,
            "ACKs lag delivery by {lag} bytes — control lane not serving"
        );
    }

    #[test]
    fn determinism_same_inputs_same_outputs() {
        let run = || {
            let mut net = small_net();
            let hosts: Vec<_> = net.topology().hosts().to_vec();
            for i in 0..4 {
                net.add_flow(
                    hosts[i],
                    hosts[7 - i],
                    Some(50_000 + i as u64 * 10_000),
                    SimTime::from_micros(i as u64 * 10),
                    i,
                    None,
                    Box::new(SimpleWindowAgent::new(8)),
                );
            }
            net.run_until(SimTime::from_millis(10));
            (0..net.num_flows())
                .map(|f| {
                    (
                        net.flow_stats(f).packets_sent,
                        net.flow_stats(f).fct().map(|d| d.as_nanos()),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}

//! NUMFabric configuration (Table 2 of the paper).

use numfabric_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// All tunable parameters of NUMFabric, with the defaults of Table 2.
///
/// Rates inside the protocol (weights, marginal utilities, prices) are
/// expressed in **Gbps**; the conversion from the simulator's bits-per-second
/// happens inside the protocol agents. This keeps the numerical range of the
/// utility calculations comfortable for every α the paper sweeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NumFabricConfig {
    /// Time constant of the Swift sender's EWMA over inter-packet times
    /// (`ewmaTime`, 20 µs).
    pub ewma_time: SimDuration,
    /// Delay slack added to the base RTT when sizing the window
    /// (`dt`, 6 µs ≈ 5 packets at 10 Gbps).
    pub dt: SimDuration,
    /// Interval between synchronized xWI price updates at the switches
    /// (`priceUpdateInterval`, 30 µs ≈ 2 RTTs).
    pub price_update_interval: SimDuration,
    /// Gain of the under-utilization term in the price update (η, Eq. 10).
    pub eta: f64,
    /// Price averaging factor (β, Eq. 11).
    pub beta: f64,
    /// Number of packets in the initial burst Swift sends to seed the
    /// receiver's inter-packet time measurement (§4.1; 3 in the paper).
    pub initial_burst_packets: usize,
    /// Optional initial window in bytes. The FCT-minimization experiments set
    /// this to one bandwidth-delay product, mimicking pFabric, so that short
    /// flows can finish in their first RTT (§6.3). `None` keeps the default
    /// 3-packet slow start.
    pub initial_window_bytes: Option<u64>,
    /// Minimum window in packets. WFQ needs at least one packet of every
    /// backlogged flow queued at its bottleneck; two avoids ACK-clock stalls.
    pub min_window_packets: u64,
    /// Initial Swift weight used before the first price feedback arrives.
    pub initial_weight: f64,
}

impl Default for NumFabricConfig {
    fn default() -> Self {
        Self {
            ewma_time: SimDuration::from_micros(20),
            dt: SimDuration::from_micros(6),
            price_update_interval: SimDuration::from_micros(30),
            eta: 5.0,
            beta: 0.5,
            initial_burst_packets: 3,
            initial_window_bytes: None,
            min_window_packets: 2,
            initial_weight: 1.0,
        }
    }
}

impl NumFabricConfig {
    /// The paper's default parameters (Table 2).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// The "2× slowed down" configuration used for extreme α values and the
    /// FCT-minimization objective (§6.2): price updates every 60 µs and a
    /// 40 µs EWMA time constant.
    pub fn slowed_down(factor: f64) -> Self {
        assert!(factor >= 1.0, "slow-down factor must be >= 1");
        let base = Self::default();
        Self {
            ewma_time: base.ewma_time * factor,
            price_update_interval: base.price_update_interval * factor,
            ..base
        }
    }

    /// Override the delay slack `dt` (Figure 6a sweeps 3–24 µs).
    pub fn with_dt(mut self, dt: SimDuration) -> Self {
        self.dt = dt;
        self
    }

    /// Override the price update interval (Figure 6b sweeps 30–128 µs).
    pub fn with_price_update_interval(mut self, interval: SimDuration) -> Self {
        self.price_update_interval = interval;
        self
    }

    /// Override the under-utilization gain η.
    pub fn with_eta(mut self, eta: f64) -> Self {
        self.eta = eta;
        self
    }

    /// Override the averaging factor β.
    pub fn with_beta(mut self, beta: f64) -> Self {
        assert!((0.0..1.0).contains(&beta), "beta must be in [0, 1)");
        self.beta = beta;
        self
    }

    /// Set the initial window to one bandwidth-delay product of `rate_bps`
    /// and `rtt` (used by the FCT experiments).
    pub fn with_bdp_initial_window(mut self, rate_bps: f64, rtt: SimDuration) -> Self {
        let bdp_bytes = (rate_bps * rtt.as_secs_f64() / 8.0).ceil() as u64;
        self.initial_window_bytes = Some(bdp_bytes);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_2() {
        let c = NumFabricConfig::paper_default();
        assert_eq!(c.ewma_time, SimDuration::from_micros(20));
        assert_eq!(c.dt, SimDuration::from_micros(6));
        assert_eq!(c.price_update_interval, SimDuration::from_micros(30));
        assert_eq!(c.eta, 5.0);
        assert_eq!(c.beta, 0.5);
        assert_eq!(c.initial_burst_packets, 3);
    }

    #[test]
    fn slowdown_scales_the_control_loops_only() {
        let c = NumFabricConfig::slowed_down(2.0);
        assert_eq!(c.ewma_time, SimDuration::from_micros(40));
        assert_eq!(c.price_update_interval, SimDuration::from_micros(60));
        assert_eq!(c.dt, SimDuration::from_micros(6));
        assert_eq!(c.eta, 5.0);
    }

    #[test]
    fn bdp_initial_window_matches_arithmetic() {
        // 10 Gbps × 16 µs = 160 kb = 20 kB.
        let c =
            NumFabricConfig::default().with_bdp_initial_window(10e9, SimDuration::from_micros(16));
        assert_eq!(c.initial_window_bytes, Some(20_000));
    }

    #[test]
    #[should_panic]
    fn beta_out_of_range_rejected() {
        NumFabricConfig::default().with_beta(1.5);
    }

    #[test]
    fn builder_overrides_apply() {
        let c = NumFabricConfig::default()
            .with_dt(SimDuration::from_micros(12))
            .with_price_update_interval(SimDuration::from_micros(64))
            .with_eta(2.0)
            .with_beta(0.25);
        assert_eq!(c.dt, SimDuration::from_micros(12));
        assert_eq!(c.price_update_interval, SimDuration::from_micros(64));
        assert_eq!(c.eta, 2.0);
        assert_eq!(c.beta, 0.25);
    }
}

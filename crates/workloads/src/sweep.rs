//! Parameter-sweep grids over the datacenter scenario family.
//!
//! NUMFabric's headline claims are evaluated over a *grid* of conditions —
//! objectives × workloads × fabrics — and reproducing a figure family means
//! running every cell of that grid. A [`SweepSpec`] names the axes
//! (scenarios, topologies, protocols, loads, transfer sizes, seed
//! replicates) and [`SweepSpec::expand`] takes their cartesian product into
//! a flat list of [`SweepCell`]s in a *fixed, documented order*, each cell
//! carrying a deterministic seed derived from `(base_seed, cell_index)` by
//! [`derive_cell_seed`].
//!
//! Because every cell is self-describing and owns its seed, the cells can be
//! executed in any order — serially, or on a thread pool (see
//! `numfabric_bench::sweep`) — and re-assembling the per-cell results in
//! cell-index order reproduces the identical aggregate report regardless of
//! scheduling. This module is the *specification* half of that contract; it
//! has no execution machinery.

use crate::fabric::TopologySpec;
use crate::impairments::ImpairmentProfile;
use crate::registry::{InvalidOption, ScenarioOptions};
use std::fmt;
use std::str::FromStr;

/// One scenario family a sweep cell can run.
///
/// The finite-transfer scenarios (`Incast`, `Shuffle`) interpret the cell's
/// `load` as the fraction of eligible hosts participating and `size_bytes`
/// as the per-transfer size. The steady-state scenario (`Stride`) starts
/// long-lived flows and measures rates against the fluid oracle, so the
/// size axis does not apply to it. The open-loop scenario (`Churn`)
/// interprets `load` as the offered load of its Poisson class mix and
/// ignores the size axis (sizes come from the mix's distributions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SweepScenario {
    /// N-to-1 incast: `load` scales the fan-in.
    Incast,
    /// All-to-all shuffle: `load` scales the participant count.
    Shuffle,
    /// Stride permutation, steady-state rates vs the fluid oracle.
    Stride,
    /// Open-loop Poisson churn at `load` with the foreground/background
    /// heavy-tail class mix (see [`crate::churn`]).
    Churn,
}

impl SweepScenario {
    /// Every scenario, in the canonical axis order.
    pub const ALL: [SweepScenario; 4] = [
        SweepScenario::Incast,
        SweepScenario::Shuffle,
        SweepScenario::Stride,
        SweepScenario::Churn,
    ];

    /// The registry/CLI name of the scenario.
    pub fn name(&self) -> &'static str {
        match self {
            SweepScenario::Incast => "incast",
            SweepScenario::Shuffle => "shuffle",
            SweepScenario::Stride => "stride",
            SweepScenario::Churn => "churn",
        }
    }
}

impl fmt::Display for SweepScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error produced when a scenario name in a sweep axis does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidScenario(String);

impl fmt::Display for InvalidScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid scenario `{}`; expected incast, shuffle, stride or churn",
            self.0
        )
    }
}

impl std::error::Error for InvalidScenario {}

impl FromStr for SweepScenario {
    type Err = InvalidScenario;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SweepScenario::ALL
            .into_iter()
            .find(|sc| sc.name() == s)
            .ok_or_else(|| InvalidScenario(s.to_string()))
    }
}

/// The axes of a parameter sweep: the cartesian product of every listed
/// value is one grid, expanded cell-by-cell by [`SweepSpec::expand`].
///
/// Protocol names are kept as strings here — the workload layer does not
/// know the protocol catalogue (that lives above it, in `numfabric-bench`);
/// executors validate the names before running.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Scenario axis (outermost in expansion order).
    pub scenarios: Vec<SweepScenario>,
    /// Topology axis.
    pub topologies: Vec<TopologySpec>,
    /// Protocol-name axis (validated by the executor).
    pub protocols: Vec<String>,
    /// Load axis: fraction of eligible hosts participating, in `(0, 1]`.
    pub loads: Vec<f64>,
    /// Transfer-size axis in bytes (finite-transfer scenarios only).
    pub sizes: Vec<u64>,
    /// Impairment axis: each named profile expands to a seeded failure /
    /// degradation schedule on the cell's fabric (`none` = healthy run).
    pub impairments: Vec<ImpairmentProfile>,
    /// Seed replicates per point (innermost axis): each replicate is its own
    /// cell with its own derived seed.
    pub replicates: usize,
    /// The seed every per-cell seed is derived from.
    pub base_seed: u64,
}

impl Default for SweepSpec {
    /// The default 8-cell mini-grid: `{incast, shuffle} × {leaf-spine,
    /// fat-tree:k=4} × {numfabric, dctcp}` at load 0.5, 100 kB transfers,
    /// one replicate, base seed 1.
    fn default() -> Self {
        Self {
            scenarios: vec![SweepScenario::Incast, SweepScenario::Shuffle],
            topologies: vec![TopologySpec::LeafSpine, TopologySpec::FatTree { k: 4 }],
            protocols: vec!["numfabric".to_string(), "dctcp".to_string()],
            loads: vec![0.5],
            sizes: vec![100_000],
            impairments: vec![ImpairmentProfile::None],
            replicates: 1,
            base_seed: 1,
        }
    }
}

/// One fully-specified point of a sweep grid: every axis value plus the
/// cell's position and derived seed. Cells are self-contained — an executor
/// needs nothing but the cell to run it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Position in the expanded grid (aggregation key: results are
    /// re-assembled in index order regardless of execution order).
    pub index: usize,
    /// Scenario family.
    pub scenario: SweepScenario,
    /// Fabric to build.
    pub topology: TopologySpec,
    /// Protocol name (as accepted by `--protocol`).
    pub protocol: String,
    /// Fraction of eligible hosts participating.
    pub load: f64,
    /// Per-transfer size in bytes (finite-transfer scenarios).
    pub size_bytes: u64,
    /// Impairment profile applied to the cell's fabric.
    pub impairment: ImpairmentProfile,
    /// Which seed replicate this cell is (0-based).
    pub replicate: usize,
    /// The cell's own seed, `derive_cell_seed(base_seed, index)`.
    pub seed: u64,
}

/// Derive the seed of cell `cell_index` from the sweep's base seed.
///
/// SplitMix64 over `base_seed + (cell_index + 1) · γ` (γ the 64-bit golden
/// ratio): statistically independent streams per cell, stable across
/// executors and thread counts, and documented here so external tools can
/// reproduce any single cell in isolation.
///
/// The mixer is spelled out here rather than delegated to the offline rand
/// shim's `splitmix64` helper on purpose: that helper is shim-internal
/// (real crates.io `rand` does not export it), and the compat shims must
/// stay swappable for the real crates by a manifest-only change.
pub fn derive_cell_seed(base_seed: u64, cell_index: u64) -> u64 {
    let mut z =
        base_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(cell_index.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Error produced when a sweep specification is structurally invalid
/// (an empty axis, a load outside `(0, 1]`, zero replicates).
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidSweep(String);

impl fmt::Display for InvalidSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid sweep: {}", self.0)
    }
}

impl std::error::Error for InvalidSweep {}

impl SweepSpec {
    /// The number of cells the grid expands to.
    pub fn cell_count(&self) -> usize {
        self.scenarios.len()
            * self.topologies.len()
            * self.protocols.len()
            * self.loads.len()
            * self.sizes.len()
            * self.impairments.len()
            * self.replicates
    }

    /// Check the axes are usable: nothing empty, loads in `(0, 1]`, sizes
    /// positive, at least one replicate.
    pub fn validate(&self) -> Result<(), InvalidSweep> {
        for (axis, empty) in [
            ("--scenarios", self.scenarios.is_empty()),
            ("--topologies", self.topologies.is_empty()),
            ("--protocols", self.protocols.is_empty()),
            ("--loads", self.loads.is_empty()),
            ("--sizes", self.sizes.is_empty()),
            ("--impairments", self.impairments.is_empty()),
        ] {
            if empty {
                return Err(InvalidSweep(format!("axis {axis} is empty")));
            }
        }
        if self.replicates == 0 {
            return Err(InvalidSweep("--replicates must be at least 1".into()));
        }
        if let Some(&bad) = self
            .loads
            .iter()
            .find(|l| !(l.is_finite() && **l > 0.0 && **l <= 1.0))
        {
            return Err(InvalidSweep(format!(
                "load {bad} is outside (0, 1] (loads scale the participating host fraction)"
            )));
        }
        if self.sizes.contains(&0) {
            return Err(InvalidSweep(
                "size 0 would inject empty transfers (every --sizes value must be positive)".into(),
            ));
        }
        Ok(())
    }

    /// Expand the grid into its cells.
    ///
    /// Expansion order is fixed and documented: scenarios (outermost) →
    /// topologies → protocols → loads → sizes → impairments → replicates
    /// (innermost), each axis in its listed order. `cell.index` is the
    /// position in this order and the input to [`derive_cell_seed`] — so the
    /// cell list, and with it every derived seed, is a pure function of the
    /// spec.
    pub fn expand(&self) -> Result<Vec<SweepCell>, InvalidSweep> {
        self.validate()?;
        let mut cells = Vec::with_capacity(self.cell_count());
        for &scenario in &self.scenarios {
            for &topology in &self.topologies {
                for protocol in &self.protocols {
                    for &load in &self.loads {
                        for &size_bytes in &self.sizes {
                            for &impairment in &self.impairments {
                                for replicate in 0..self.replicates {
                                    let index = cells.len();
                                    cells.push(SweepCell {
                                        index,
                                        scenario,
                                        topology,
                                        protocol: protocol.clone(),
                                        load,
                                        size_bytes,
                                        impairment,
                                        replicate,
                                        seed: derive_cell_seed(self.base_seed, index as u64),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(cells)
    }

    /// Build a spec from CLI options, with [`SweepSpec::default`]'s mini-grid
    /// filling in any absent axis:
    ///
    /// * `--scenarios incast,shuffle,stride`
    /// * `--topologies leaf-spine,fat-tree:k=4,oversub:4:1`
    /// * `--protocols numfabric,dctcp,dgd,rcp,pfabric`
    /// * `--loads 0.25,0.5,1.0`
    /// * `--sizes 50000,500000`
    /// * `--impairments none,flap,loss,jitter`
    /// * `--replicates N` and `--seed S`
    ///
    /// The singular spellings the per-scenario CLIs use (`--topology`,
    /// `--protocol`, …) are rejected with a pointer to the plural axis —
    /// never silently ignored, which would run the default grid instead of
    /// the one the user asked for.
    pub fn try_from_options(opts: &ScenarioOptions) -> Result<SweepSpec, InvalidOption> {
        for (singular, plural) in [
            ("--scenario", "--scenarios"),
            ("--topology", "--topologies"),
            ("--protocol", "--protocols"),
            ("--load", "--loads"),
            ("--size", "--sizes"),
            ("--impair", "--impairments"),
        ] {
            if opts.flag(singular) {
                return Err(InvalidOption {
                    name: singular.to_string(),
                    value: String::new(),
                    reason: format!("sweep axes are plural: use {plural} <comma-separated list>"),
                });
            }
        }
        let defaults = SweepSpec::default();
        Ok(SweepSpec {
            scenarios: parse_csv(opts, "--scenarios")?.unwrap_or(defaults.scenarios),
            topologies: parse_csv(opts, "--topologies")?.unwrap_or(defaults.topologies),
            protocols: parse_csv(opts, "--protocols")?.unwrap_or(defaults.protocols),
            loads: parse_csv(opts, "--loads")?.unwrap_or(defaults.loads),
            sizes: parse_csv(opts, "--sizes")?.unwrap_or(defaults.sizes),
            impairments: parse_csv(opts, "--impairments")?.unwrap_or(defaults.impairments),
            replicates: opts
                .try_parsed("--replicates")?
                .unwrap_or(defaults.replicates),
            base_seed: opts.try_parsed("--seed")?.unwrap_or(defaults.base_seed),
        })
    }
}

/// Parse a comma-separated option value into a list. `Ok(None)` when the
/// option is absent; an [`InvalidOption`] naming the offending element when
/// any element fails to parse.
fn parse_csv<T: FromStr>(
    opts: &ScenarioOptions,
    name: &str,
) -> Result<Option<Vec<T>>, InvalidOption>
where
    T::Err: fmt::Display,
{
    let Some(raw) = opts.value(name) else {
        // Present-but-valueless (last token on the line) is a hard error,
        // like try_parsed — never a silent fall-through to the default grid.
        if opts.flag(name) {
            return Err(InvalidOption {
                name: name.to_string(),
                value: String::new(),
                reason: "missing value".to_string(),
            });
        }
        return Ok(None);
    };
    let mut out = Vec::new();
    for part in raw.split(',') {
        let part = part.trim();
        if part.is_empty() {
            return Err(InvalidOption {
                name: name.to_string(),
                value: raw.to_string(),
                reason: "empty element in comma-separated list".to_string(),
            });
        }
        out.push(part.parse().map_err(|e: T::Err| InvalidOption {
            name: name.to_string(),
            value: part.to_string(),
            reason: e.to_string(),
        })?);
    }
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> ScenarioOptions {
        ScenarioOptions::new(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn default_grid_is_eight_cells() {
        let spec = SweepSpec::default();
        assert_eq!(spec.cell_count(), 8);
        let cells = spec.expand().unwrap();
        assert_eq!(cells.len(), 8);
    }

    #[test]
    fn expansion_order_is_scenario_major_replicate_minor() {
        let spec = SweepSpec {
            scenarios: vec![SweepScenario::Incast, SweepScenario::Shuffle],
            topologies: vec![TopologySpec::LeafSpine, TopologySpec::FatTree { k: 4 }],
            protocols: vec!["numfabric".into()],
            loads: vec![0.5],
            sizes: vec![1000, 2000],
            impairments: vec![ImpairmentProfile::None, ImpairmentProfile::Flap],
            replicates: 2,
            base_seed: 7,
        };
        let cells = spec.expand().unwrap();
        assert_eq!(cells.len(), 2 * 2 * 2 * 2 * 2);
        // Innermost axis (replicates) varies fastest, then impairments.
        let inner = |c: &SweepCell| (c.size_bytes, c.impairment, c.replicate);
        assert_eq!(inner(&cells[0]), (1000, ImpairmentProfile::None, 0));
        assert_eq!(inner(&cells[1]), (1000, ImpairmentProfile::None, 1));
        assert_eq!(inner(&cells[2]), (1000, ImpairmentProfile::Flap, 0));
        assert_eq!(inner(&cells[3]), (1000, ImpairmentProfile::Flap, 1));
        assert_eq!(inner(&cells[4]), (2000, ImpairmentProfile::None, 0));
        // Outermost axis (scenario) varies slowest: first half incast.
        assert!(cells[..16]
            .iter()
            .all(|c| c.scenario == SweepScenario::Incast));
        assert!(cells[16..]
            .iter()
            .all(|c| c.scenario == SweepScenario::Shuffle));
        // Indices are positions.
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn cell_seeds_are_derived_distinct_and_stable() {
        let cells = SweepSpec::default().expand().unwrap();
        for c in &cells {
            assert_eq!(c.seed, derive_cell_seed(1, c.index as u64));
        }
        let unique: std::collections::HashSet<u64> = cells.iter().map(|c| c.seed).collect();
        assert_eq!(unique.len(), cells.len(), "per-cell seeds must be distinct");
        // The derivation is a pure function: pin two values so any change to
        // the mixer is a loud, intentional break of cell reproducibility.
        assert_eq!(derive_cell_seed(1, 0), derive_cell_seed(1, 0));
        assert_ne!(derive_cell_seed(1, 0), derive_cell_seed(1, 1));
        assert_ne!(derive_cell_seed(1, 0), derive_cell_seed(2, 0));
    }

    #[test]
    fn expansion_is_reproducible() {
        let spec = SweepSpec::default();
        assert_eq!(spec.expand().unwrap(), spec.expand().unwrap());
    }

    #[test]
    fn scenario_names_round_trip() {
        for sc in SweepScenario::ALL {
            assert_eq!(sc.name().parse::<SweepScenario>().unwrap(), sc);
        }
        assert!("mesh".parse::<SweepScenario>().is_err());
    }

    #[test]
    fn options_override_each_axis() {
        let spec = SweepSpec::try_from_options(&opts(&[
            "--scenarios",
            "stride",
            "--topologies",
            "oversub:4:1,fat-tree:k=4",
            "--protocols",
            "dgd",
            "--loads",
            "0.25,1.0",
            "--sizes",
            "50000",
            "--impairments",
            "none,flap",
            "--replicates",
            "3",
            "--seed",
            "42",
        ]))
        .unwrap();
        assert_eq!(spec.scenarios, vec![SweepScenario::Stride]);
        assert_eq!(
            spec.topologies,
            vec![
                TopologySpec::Oversubscribed { ratio: 4.0 },
                TopologySpec::FatTree { k: 4 }
            ]
        );
        assert_eq!(spec.protocols, vec!["dgd".to_string()]);
        assert_eq!(spec.loads, vec![0.25, 1.0]);
        assert_eq!(spec.sizes, vec![50000]);
        assert_eq!(
            spec.impairments,
            vec![ImpairmentProfile::None, ImpairmentProfile::Flap]
        );
        assert_eq!(spec.replicates, 3);
        assert_eq!(spec.base_seed, 42);
        // 1 scenario x 2 topologies x 1 protocol x 2 loads x 1 size x
        // 2 impairments x 3 replicates.
        assert_eq!(spec.cell_count(), 24);
    }

    #[test]
    fn malformed_axis_elements_are_errors() {
        let err =
            SweepSpec::try_from_options(&opts(&["--topologies", "leaf-spine,mesh"])).unwrap_err();
        assert_eq!(err.name, "--topologies");
        assert_eq!(err.value, "mesh");
        let err =
            SweepSpec::try_from_options(&opts(&["--scenarios", "incast,,shuffle"])).unwrap_err();
        assert!(err.reason.contains("empty element"));
        let err = SweepSpec::try_from_options(&opts(&["--loads", "0.5,banana"])).unwrap_err();
        assert_eq!(err.value, "banana");
        let err =
            SweepSpec::try_from_options(&opts(&["--impairments", "none,blackhole"])).unwrap_err();
        assert_eq!(err.value, "blackhole");
        // An axis option as the dangling last token must not silently fall
        // back to the default grid.
        let err = SweepSpec::try_from_options(&opts(&["--scenarios"])).unwrap_err();
        assert_eq!(err.name, "--scenarios");
        assert!(err.reason.contains("missing value"));
    }

    #[test]
    fn singular_option_spellings_are_rejected_not_silently_ignored() {
        // The exact trap: the per-scenario CLIs spell these singular, and a
        // silently-ignored option would run the default grid instead.
        for (args, plural) in [
            (vec!["--topology", "fat-tree:k=4"], "--topologies"),
            (vec!["--protocol", "dctcp"], "--protocols"),
            (vec!["--scenario", "incast"], "--scenarios"),
            (vec!["--load", "0.5"], "--loads"),
            (vec!["--size", "1000"], "--sizes"),
            (vec!["--impair", "flap"], "--impairments"),
        ] {
            let err = SweepSpec::try_from_options(&opts(&args)).unwrap_err();
            assert!(err.reason.contains(plural), "{args:?}: {err}");
        }
    }

    #[test]
    fn zero_sizes_are_rejected() {
        let spec = SweepSpec {
            sizes: vec![100_000, 0],
            ..SweepSpec::default()
        };
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("--sizes"), "{err}");
        assert!(spec.expand().is_err());
    }

    #[test]
    fn validation_rejects_empty_axes_and_bad_loads() {
        let mut spec = SweepSpec {
            loads: vec![1.5],
            ..SweepSpec::default()
        };
        assert!(spec.validate().is_err());
        spec.loads = vec![0.0];
        assert!(spec.validate().is_err());
        spec.loads = vec![0.5];
        spec.replicates = 0;
        assert!(spec.validate().is_err());
        spec.replicates = 1;
        spec.protocols.clear();
        let err = spec.validate().unwrap_err();
        assert!(err.to_string().contains("--protocols"));
    }
}

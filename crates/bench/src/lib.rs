//! # numfabric-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! NUMFabric paper's evaluation (§6). The library half contains the shared
//! drivers; every scenario is registered by name in [`figures::registry`]
//! and dispatched by the single `numfabric-run` binary
//! (`cargo run --release -p numfabric-bench --bin numfabric-run -- --list`).
//! The per-figure `figNN` binaries are kept as thin wrappers. Criterion
//! micro-benchmarks live in `benches/`.
//!
//! * [`protocols`] — build any of the compared schemes (NUMFabric, DGD,
//!   RCP*, DCTCP, pFabric) on a given topology.
//! * [`semi_dynamic`] — the §6.1 controlled convergence experiment
//!   (Figures 4a, 4b/c and 6).
//! * [`dynamic`] — Poisson-arrival workloads with Oracle and empty-network
//!   references (Figures 5 and 7).
//! * [`churn`] — the production-scale trace-driven churn driver: streaming
//!   arrivals + flow-slab recycling + fixed-size per-class sketches keep
//!   peak memory O(concurrent flows) over million-flow horizons.
//! * [`fabric`] — the generalized-fabric scenario family (incast, shuffle,
//!   stride) runnable on leaf-spine, oversubscribed and fat-tree fabrics,
//!   with optional `--impair` failure/degradation schedules.
//! * [`recovery`] — the failure-recovery scenario: cut the busiest fabric
//!   cable mid-run and measure each protocol's time to re-converge onto the
//!   post-failure fluid allocation.
//! * [`figures`] — every figure/table as a registry-dispatchable function.
//! * [`perf`] — the `bench` scenario: event-core throughput and end-to-end
//!   scenario wall-clock, written to `BENCH_<rev>.json` for the perf
//!   trajectory.
//! * [`report`] — percentiles, CDFs, Fig. 5 bins, table printing, and the
//!   streaming bounded-stats layer: [`QuantileSketch`] (1 % relative-error
//!   geometric buckets, exactly mergeable) and per-class accumulators.
//! * [`sweep`] — the deterministic parallel sweep engine: a work-stealing
//!   thread pool executes a `SweepSpec` grid (scenarios × topologies ×
//!   protocols × loads × sizes × seeds) cell-by-cell and aggregates the
//!   results into one JSON document + markdown comparison table whose bytes
//!   are independent of `--threads`.
//!
//! Scenarios that list `--full` in their usage run at the paper's scale
//! with it (128 hosts, 1000 paths, 100 events, …); the default is a
//! reduced-scale run with the same structure that finishes in minutes on a
//! laptop.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod churn;
pub mod dynamic;
pub mod fabric;
pub mod figures;
pub mod perf;
pub mod protocols;
pub mod recovery;
pub mod report;
pub mod semi_dynamic;
pub mod sweep;

pub use churn::{run_churn, run_churn_impaired, ChurnRun};
pub use dynamic::{generate_arrivals, run_dynamic, DynamicFlowResult, DynamicRun, Objective};
pub use fabric::{
    run_steady_state, run_steady_state_impaired, run_transfers, run_transfers_impaired,
    SteadyStateSummary, TransferSummary,
};
pub use figures::registry;
pub use perf::{bench_report_json, event_core_timing, Timing};
pub use protocols::Protocol;
pub use recovery::{run_recovery, RecoveryConfig, RecoveryResult};
pub use report::{churn_report_json, ChurnSummary, ClassStats, QuantileSketch};
pub use semi_dynamic::{rate_timeseries, run_semi_dynamic, SemiDynamicResult, SemiDynamicRun};
pub use sweep::{
    execute_cells, execute_cells_partitioned, markdown_table, run_cell, run_cell_partitioned,
    sweep_report_json, CellResult,
};

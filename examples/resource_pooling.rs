//! Resource pooling (MPTCP-style, §6.3): a multipath flow whose subflows are
//! pinned to different spine paths pools their capacity, because its utility
//! applies to the *aggregate* rate. Here one aggregate with 4 subflows
//! competes with a single-path flow that shares just one of those paths.
//!
//! ```text
//! cargo run --release --example resource_pooling
//! ```

use numfabric::core::{numfabric_network, AggregateState, NumFabricAgent, NumFabricConfig};
use numfabric::num::utility::LogUtility;
use numfabric::sim::topology::{LeafSpineConfig, Topology};
use numfabric::sim::SimTime;

fn main() {
    // All-10 Gbps fabric so the leaf→spine paths are the scarce resource.
    let topo_cfg = LeafSpineConfig {
        hosts: 8,
        leaves: 2,
        spines: 4,
        host_link_bps: 40e9,
        fabric_link_bps: 10e9,
        ..LeafSpineConfig::resource_pooling()
    };
    let topo = Topology::leaf_spine(&topo_cfg);
    let config = NumFabricConfig::paper_default();
    let mut net = numfabric_network(topo, &config);
    let hosts: Vec<_> = net.topology().hosts().to_vec();

    // A multipath aggregate from host0 to host4 with one subflow per spine.
    let handles = AggregateState::create(4);
    let mut subflows = Vec::new();
    for (spine, handle) in handles.into_iter().enumerate() {
        let id = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            spine,
            Some(0),
            Box::new(NumFabricAgent::new(config.clone(), LogUtility::new()).with_aggregate(handle)),
        );
        subflows.push(id);
    }
    // A single-path competitor sharing spine 0 only.
    let single = net.add_flow(
        hosts[1],
        hosts[5],
        None,
        SimTime::ZERO,
        0,
        None,
        Box::new(NumFabricAgent::new(config.clone(), LogUtility::new())),
    );

    net.run_until(SimTime::from_millis(10));

    let aggregate: f64 = subflows.iter().map(|&f| net.flow_rate_estimate(f)).sum();
    println!(
        "multipath aggregate (4 subflows over 4 spines): {:.2} Gbps",
        aggregate / 1e9
    );
    for (i, &f) in subflows.iter().enumerate() {
        println!(
            "  subflow via spine {i}: {:.2} Gbps",
            net.flow_rate_estimate(f) / 1e9
        );
    }
    println!(
        "single-path competitor on spine 0: {:.2} Gbps",
        net.flow_rate_estimate(single) / 1e9
    );
    println!(
        "\nThe aggregate pools the capacity of all four 10 Gbps spine paths (minus what the\n\
         competitor gets on spine 0), instead of being stuck with a single path's 10 Gbps."
    );
}

//! Resource pooling: multipath aggregates (§6.3 of the paper).
//!
//! A multipath "flow" is a set of subflows between the same source and
//! destination, each pinned to a different path. The resource-pooling
//! objective applies the utility function to the *aggregate* rate (row 4 of
//! Table 1), so the subflows must coordinate:
//!
//! * every subflow first computes the total weight
//!   `w_total = U'⁻¹(pathPrice)` from its own path's price and the
//!   *aggregate* utility;
//! * it then takes as its own Swift weight the fraction of `w_total`
//!   proportional to the share of the aggregate throughput it currently
//!   carries (the heuristic described in §6.3).
//!
//! [`AggregateState`] is the tiny piece of shared state (per-subflow rate
//! estimates) this coordination requires; it lives at the sender host, so
//! sharing it between the subflow agents of one flow is realistic.

use std::sync::{Arc, Mutex};

/// Shared state of one multipath aggregate: the latest rate estimate of each
/// subflow, maintained by the subflow agents themselves.
#[derive(Debug)]
pub struct AggregateState {
    rates_bps: Mutex<Vec<f64>>,
}

/// A subflow's handle onto its aggregate's shared state.
#[derive(Debug, Clone)]
pub struct AggregateHandle {
    state: Arc<AggregateState>,
    index: usize,
}

impl AggregateState {
    /// Create the shared state for an aggregate of `subflows` subflows and
    /// return one handle per subflow.
    ///
    /// # Panics
    /// Panics if `subflows == 0`.
    pub fn create(subflows: usize) -> Vec<AggregateHandle> {
        assert!(subflows > 0, "an aggregate needs at least one subflow");
        let state = Arc::new(AggregateState {
            rates_bps: Mutex::new(vec![0.0; subflows]),
        });
        (0..subflows)
            .map(|index| AggregateHandle {
                state: Arc::clone(&state),
                index,
            })
            .collect()
    }
}

impl AggregateHandle {
    /// Number of subflows in the aggregate.
    pub fn subflows(&self) -> usize {
        self.state.rates_bps.lock().expect("poisoned").len()
    }

    /// This subflow's index within the aggregate.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Publish this subflow's latest rate estimate (bits per second).
    pub fn update_rate(&self, rate_bps: f64) {
        let mut rates = self.state.rates_bps.lock().expect("poisoned");
        rates[self.index] = rate_bps.max(0.0);
    }

    /// The aggregate (total) rate across all subflows, in bits per second.
    pub fn total_rate_bps(&self) -> f64 {
        self.state.rates_bps.lock().expect("poisoned").iter().sum()
    }

    /// The fraction of the aggregate throughput this subflow currently
    /// carries. When nothing has been measured yet every subflow assumes an
    /// equal share so that startup is symmetric.
    pub fn throughput_fraction(&self) -> f64 {
        let rates = self.state.rates_bps.lock().expect("poisoned");
        let total: f64 = rates.iter().sum();
        if total <= 0.0 {
            1.0 / rates.len() as f64
        } else {
            (rates[self.index] / total).max(1e-3)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state() {
        let handles = AggregateState::create(4);
        assert_eq!(handles.len(), 4);
        handles[0].update_rate(6e9);
        handles[1].update_rate(2e9);
        handles[2].update_rate(1e9);
        handles[3].update_rate(1e9);
        for h in &handles {
            assert_eq!(h.total_rate_bps(), 10e9);
            assert_eq!(h.subflows(), 4);
        }
        assert!((handles[0].throughput_fraction() - 0.6).abs() < 1e-12);
        assert!((handles[2].throughput_fraction() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn startup_assumes_equal_shares() {
        let handles = AggregateState::create(8);
        for h in &handles {
            assert!((h.throughput_fraction() - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn fraction_has_a_floor_to_keep_starved_subflows_probing() {
        let handles = AggregateState::create(2);
        handles[0].update_rate(10e9);
        handles[1].update_rate(0.0);
        assert!(handles[1].throughput_fraction() >= 1e-3);
    }

    #[test]
    #[should_panic]
    fn zero_subflows_rejected() {
        AggregateState::create(0);
    }
}

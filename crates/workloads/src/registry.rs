//! A registry of named, runnable scenarios.
//!
//! Every figure of the paper's evaluation (and any future workload) is
//! registered under a short name with a one-line summary and a run function;
//! a single CLI (`numfabric-run` in `numfabric-bench`) lists and dispatches
//! them. Adding a workload is one [`ScenarioSpec`] entry instead of a new
//! binary.
//!
//! The registry machinery lives here (the workload layer) so that any crate
//! above `numfabric-workloads` in the dependency DAG can populate it; the
//! paper's figure scenarios themselves are registered by `numfabric-bench`,
//! which owns the protocol drivers.

use std::fmt;
use std::str::FromStr;

/// Parsed command-line style options handed to a scenario's run function.
///
/// Options are a flat list of tokens; flags are `--name`, valued options are
/// `--name value`. Scenarios with more than one scale accept `--full`
/// (paper scale) by convention and list it in their usage string.
#[derive(Debug, Clone, Default)]
pub struct ScenarioOptions {
    args: Vec<String>,
}

impl ScenarioOptions {
    /// Options from an explicit token list.
    pub fn new(args: Vec<String>) -> Self {
        Self { args }
    }

    /// Options from the process arguments (skipping the program name).
    pub fn from_env() -> Self {
        Self::new(std::env::args().skip(1).collect())
    }

    /// Whether the bare flag `name` (e.g. `--full`) is present.
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The token following `name`, if any (e.g. `--load 0.6`).
    pub fn value(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(String::as_str)
    }

    /// Parse the value of `name`: `Ok(None)` when the option is absent,
    /// `Ok(Some(v))` on success, and an [`InvalidOption`] when the option is
    /// present but its value is missing or unparsable.
    pub fn try_parsed<T: FromStr>(&self, name: &str) -> Result<Option<T>, InvalidOption>
    where
        T::Err: fmt::Display,
    {
        let Some(pos) = self.args.iter().position(|a| a == name) else {
            return Ok(None);
        };
        let Some(raw) = self.args.get(pos + 1) else {
            return Err(InvalidOption {
                name: name.to_string(),
                value: String::new(),
                reason: "missing value".to_string(),
            });
        };
        raw.parse().map(Some).map_err(|e: T::Err| InvalidOption {
            name: name.to_string(),
            value: raw.clone(),
            reason: e.to_string(),
        })
    }

    /// Parse the value of `name`, falling back to `default` when the option
    /// is absent. A malformed value (e.g. `--hosts banana`) is a hard error:
    /// it is reported on stderr and the process exits non-zero — scenarios
    /// must never silently run with a default the user tried to override.
    pub fn parsed_or<T: FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: fmt::Display,
    {
        match self.try_parsed(name) {
            Ok(Some(v)) => v,
            Ok(None) => default,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// The conventional `--full` flag: run at the paper's scale.
    pub fn full(&self) -> bool {
        self.flag("--full")
    }
}

/// Error produced when an option is present but its value is missing or
/// does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidOption {
    /// The option's name (e.g. `--hosts`).
    pub name: String,
    /// The offending raw value (empty when the value token was missing).
    pub value: String,
    /// Why it failed to parse.
    pub reason: String,
}

impl fmt::Display for InvalidOption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.value.is_empty() {
            write!(f, "option `{}`: {}", self.name, self.reason)
        } else {
            write!(
                f,
                "invalid value `{}` for option `{}`: {}",
                self.value, self.name, self.reason
            )
        }
    }
}

impl std::error::Error for InvalidOption {}

/// The run function of a scenario.
pub type ScenarioFn = fn(&ScenarioOptions);

/// One registered scenario.
#[derive(Clone)]
pub struct ScenarioSpec {
    /// Registry name (what the CLI dispatches on), e.g. `fig4a`.
    pub name: &'static str,
    /// One-line summary shown by `--list`.
    pub summary: &'static str,
    /// The options the scenario understands, for `--list` (e.g.
    /// `[--events N] [--full]`).
    pub usage: &'static str,
    /// The run function.
    pub run: ScenarioFn,
}

/// Error returned when dispatching an unknown scenario name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScenario {
    /// The name that failed to resolve.
    pub name: String,
    /// All registered names, for the error message.
    pub known: Vec<&'static str>,
}

impl fmt::Display for UnknownScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scenario `{}`; known scenarios: {}",
            self.name,
            self.known.join(", ")
        )
    }
}

impl std::error::Error for UnknownScenario {}

/// A set of named scenarios, dispatched by name.
#[derive(Default)]
pub struct ScenarioRegistry {
    entries: Vec<ScenarioSpec>,
}

impl ScenarioRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a scenario.
    ///
    /// # Panics
    /// Panics if the name is already taken (two scenarios must not shadow
    /// each other).
    pub fn register(&mut self, spec: ScenarioSpec) {
        assert!(
            self.get(spec.name).is_none(),
            "scenario `{}` registered twice",
            spec.name
        );
        self.entries.push(spec);
    }

    /// The registered scenarios, in registration order.
    pub fn entries(&self) -> &[ScenarioSpec] {
        &self.entries
    }

    /// Look up a scenario by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioSpec> {
        self.entries.iter().find(|s| s.name == name)
    }

    /// Run the scenario registered under `name`.
    pub fn run(&self, name: &str, options: &ScenarioOptions) -> Result<(), UnknownScenario> {
        match self.get(name) {
            Some(spec) => {
                (spec.run)(options);
                Ok(())
            }
            None => Err(UnknownScenario {
                name: name.to_string(),
                known: self.entries.iter().map(|s| s.name).collect(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop(_: &ScenarioOptions) {}

    fn two_entry_registry() -> ScenarioRegistry {
        let mut registry = ScenarioRegistry::new();
        registry.register(ScenarioSpec {
            name: "a",
            summary: "first",
            usage: "",
            run: noop,
        });
        registry.register(ScenarioSpec {
            name: "b",
            summary: "second",
            usage: "[--full]",
            run: noop,
        });
        registry
    }

    #[test]
    fn registers_looks_up_and_runs() {
        let registry = two_entry_registry();
        assert_eq!(registry.entries().len(), 2);
        assert_eq!(registry.get("a").unwrap().summary, "first");
        assert!(registry.get("c").is_none());
        assert!(registry.run("b", &ScenarioOptions::default()).is_ok());
        let err = registry
            .run("nope", &ScenarioOptions::default())
            .unwrap_err();
        assert_eq!(err.known, vec!["a", "b"]);
        assert!(err.to_string().contains("unknown scenario `nope`"));
    }

    #[test]
    #[should_panic]
    fn duplicate_names_are_rejected() {
        let mut registry = two_entry_registry();
        registry.register(ScenarioSpec {
            name: "a",
            summary: "shadow",
            usage: "",
            run: noop,
        });
    }

    #[test]
    fn options_parse_flags_and_values() {
        let opts = ScenarioOptions::new(
            ["--full", "--load", "0.6", "--events", "12", "--bad"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert!(opts.full());
        assert!(opts.flag("--bad"));
        assert!(!opts.flag("--missing"));
        assert_eq!(opts.value("--load"), Some("0.6"));
        assert_eq!(opts.parsed_or("--load", 0.0), 0.6);
        assert_eq!(opts.parsed_or("--events", 5usize), 12);
        assert_eq!(opts.parsed_or("--missing", 7u32), 7);
        // `--bad` has no following value token.
        assert_eq!(opts.value("--bad"), None);
    }

    fn opts(args: &[&str]) -> ScenarioOptions {
        ScenarioOptions::new(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn try_parsed_absent_option_is_ok_none() {
        assert_eq!(opts(&["--full"]).try_parsed::<usize>("--hosts"), Ok(None));
    }

    #[test]
    fn try_parsed_valid_value_parses() {
        assert_eq!(
            opts(&["--hosts", "32"]).try_parsed("--hosts"),
            Ok(Some(32usize))
        );
        assert_eq!(
            opts(&["--load", "0.6"]).try_parsed("--load"),
            Ok(Some(0.6f64))
        );
    }

    #[test]
    fn try_parsed_malformed_value_is_an_error() {
        // The exact regression of the silent-fallback bug: `--hosts banana`
        // must NOT fall back to the default.
        let err = opts(&["--hosts", "banana"])
            .try_parsed::<usize>("--hosts")
            .unwrap_err();
        assert_eq!(err.name, "--hosts");
        assert_eq!(err.value, "banana");
        assert!(err.to_string().contains("invalid value `banana`"));
    }

    #[test]
    fn try_parsed_trailing_flag_without_value_is_an_error() {
        let err = opts(&["--hosts"])
            .try_parsed::<usize>("--hosts")
            .unwrap_err();
        assert!(err.value.is_empty());
        assert!(err.to_string().contains("missing value"));
    }
}

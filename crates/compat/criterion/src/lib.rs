//! Offline API-compatible shim for the `criterion` benchmark harness.
//!
//! Implements the subset the workspace's benches use: `Criterion`,
//! benchmark groups, `Bencher::iter`, `BenchmarkId` and the
//! `criterion_group!`/`criterion_main!` macros. Instead of criterion's
//! statistical sampling it times a small fixed number of iterations and
//! prints the mean — enough to compare runs by hand and to keep
//! `cargo bench` working offline. When invoked by `cargo test` (which
//! passes `--test` to bench harnesses) every benchmark runs exactly one
//! iteration so the suite stays fast. See `crates/compat/README.md`.

#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<D: Display>(function_name: &str, parameter: D) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<D: Display>(parameter: D) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn in_cargo_test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_one(name: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = if b.iters > 0 {
        b.elapsed / (b.iters as u32)
    } else {
        Duration::ZERO
    };
    println!("bench {name:<50} {mean:>12.3?}/iter ({} iters)", b.iters);
}

/// Top-level benchmark driver (shim for `criterion::Criterion`).
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: in_cargo_test_mode(),
        }
    }
}

impl Criterion {
    fn iters(&self, sample_size: usize) -> u64 {
        if self.test_mode {
            1
        } else {
            sample_size as u64
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let iters = self.iters(10);
        run_one(name, iters, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.id);
        let iters = self.criterion.iters(self.sample_size);
        run_one(&name, iters, &mut f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let name = format!("{}/{}", self.name, id.id);
        let iters = self.criterion.iters(self.sample_size);
        run_one(&name, iters, &mut |b| f(b, input));
        self
    }

    /// Finish the group (no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declare a benchmark group function (shim for criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main` (shim for criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 7,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 7);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter(0.5).id, "0.5");
    }
}

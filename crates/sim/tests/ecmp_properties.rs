//! Property tests for the generalized ECMP enumerator.
//!
//! Two families of pins:
//!
//! 1. **Route validity** — every route produced on fat-tree and
//!    oversubscribed leaf-spine fabrics is a contiguous path (consecutive
//!    links share a node), leaves the source host on its first link, enters
//!    the destination host on its last link, and is valley-free: node tiers
//!    rise monotonically to a single peak and then fall (no down-then-up).
//! 2. **ECMP behavior** — the same `(src, dst, choice)` triple always
//!    produces the identical route (and thus interns to the same `RouteId`),
//!    and uniformly drawn choices spread across the equal-cost path set
//!    within a 2x uniformity bound over 10k draws.
//! 3. **Failure re-selection** — routes re-selected over the surviving DAG
//!    after arbitrary link failures keep every validity invariant, never
//!    traverse a banned cable (a failed link or one whose reverse twin
//!    failed), and reduce exactly to the healthy enumeration when nothing
//!    failed.

use numfabric_sim::routes::RouteTable;
use numfabric_sim::topology::{FatTreeConfig, LeafSpineConfig, NodeId, Topology};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Check the route invariants of satellite pin #1 for one route.
fn assert_valid_route(topo: &Topology, src: NodeId, dst: NodeId, route: &numfabric_sim::Route) {
    assert!(!route.is_empty(), "route must traverse at least one link");
    let links = topo.links();
    // First link leaves the source, last link enters the destination.
    assert_eq!(
        links[route.links()[0]].from,
        src,
        "first link must leave src"
    );
    assert_eq!(
        links[*route.links().last().unwrap()].to,
        dst,
        "last link must enter dst"
    );
    // Contiguity: consecutive links share a node.
    for w in route.links().windows(2) {
        assert_eq!(
            links[w[0]].to, links[w[1]].from,
            "consecutive links must share a node"
        );
    }
    // Valley-freedom: the tier sequence rises strictly to one peak, then
    // falls strictly — once the path starts descending it never ascends.
    let mut tiers = vec![topo.nodes()[src].kind.tier()];
    for &l in route.links() {
        tiers.push(topo.nodes()[links[l].to].kind.tier());
    }
    let mut descending = false;
    for w in tiers.windows(2) {
        if w[1] > w[0] {
            assert!(
                !descending,
                "valley: tier sequence {tiers:?} ascends after descending"
            );
        } else if w[1] < w[0] {
            descending = true;
        } else {
            panic!("flat hop between equal tiers in {tiers:?}");
        }
    }
}

proptest! {
    /// Every ECMP route on a k-ary fat-tree is a valid valley-free path,
    /// for arities 2–6, all host pairs drawn from the generated indices and
    /// arbitrary choice values.
    #[test]
    fn prop_fat_tree_routes_are_valid(
        half_k in 1usize..=3,
        src_pick in 0usize..10_000,
        dst_pick in 0usize..10_000,
        choice in 0usize..1_000,
    ) {
        let k = 2 * half_k;
        let topo = Topology::fat_tree(&FatTreeConfig::new(k));
        let hosts = topo.hosts();
        let src = hosts[src_pick % hosts.len()];
        let dst = hosts[dst_pick % hosts.len()];
        if src != dst {
            assert_valid_route(&topo, src, dst, &topo.host_route(src, dst, choice));
            for route in topo.host_routes(src, dst) {
                assert_valid_route(&topo, src, dst, &route);
            }
        }
    }

    /// Every ECMP route on an oversubscribed leaf-spine fabric is a valid
    /// valley-free path, across fabric shapes and oversubscription ratios.
    #[test]
    fn prop_oversubscribed_routes_are_valid(
        leaves in 2usize..=5,
        per_leaf in 1usize..=6,
        spines in 1usize..=5,
        ratio in 1.0f64..8.0,
        src_pick in 0usize..10_000,
        dst_pick in 0usize..10_000,
        choice in 0usize..1_000,
    ) {
        let hosts_total = leaves * per_leaf;
        let cfg = LeafSpineConfig::oversubscribed(hosts_total, leaves, spines, ratio);
        let topo = Topology::leaf_spine(&cfg);
        let hosts = topo.hosts();
        let src = hosts[src_pick % hosts.len()];
        let dst = hosts[dst_pick % hosts.len()];
        if src != dst {
            assert_valid_route(&topo, src, dst, &topo.host_route(src, dst, choice));
            for route in topo.host_routes(src, dst) {
                assert_valid_route(&topo, src, dst, &route);
            }
        }
    }

    /// Flow stability: the same `(src, dst, choice)` always yields the
    /// identical route, so repeated interning returns the same `RouteId` —
    /// on both fabric families.
    #[test]
    fn prop_ecmp_choice_is_flow_stable(
        src_pick in 0usize..10_000,
        dst_pick in 0usize..10_000,
        choice in 0usize..1_000,
    ) {
        for topo in [
            Topology::fat_tree(&FatTreeConfig::new(4)),
            Topology::leaf_spine(&LeafSpineConfig::oversubscribed(16, 4, 2, 4.0)),
        ] {
            let hosts = topo.hosts();
            let src = hosts[src_pick % hosts.len()];
            let dst = hosts[dst_pick % hosts.len()];
            if src == dst {
                continue;
            }
            let mut table = RouteTable::new();
            let first = topo.host_route(src, dst, choice);
            let id = table.intern(first.clone());
            // Re-deriving the route must produce the identical link sequence
            // and re-interning must return the identical id.
            for _ in 0..3 {
                let again = topo.host_route(src, dst, choice);
                assert_eq!(again, first, "route derivation is not stable");
                assert_eq!(table.intern(again), id, "interning is not stable");
            }
        }
    }
}

proptest! {
    /// Surviving-DAG re-selection (the impairment layer's route recovery):
    /// after failing an arbitrary subset of fabric links, every re-selected
    /// route is still a valid valley-free path over the remaining graph and
    /// never touches a banned cable — a down link or a link whose reverse
    /// twin is down (its ACKs could not return). When the failures partition
    /// the pair, the enumeration is empty and `host_route_avoiding` reports
    /// `None` instead of fabricating a route.
    #[test]
    fn prop_failure_reselection_is_valid_and_avoids_banned_cables(
        half_k in 1usize..=3,
        src_pick in 0usize..10_000,
        dst_pick in 0usize..10_000,
        choice in 0usize..1_000,
        fail_seed in 0u64..10_000,
        fail_count in 1usize..=6,
    ) {
        let k = 2 * half_k;
        let topo = Topology::fat_tree(&FatTreeConfig::new(k));
        let hosts = topo.hosts();
        let src = hosts[src_pick % hosts.len()];
        let dst = hosts[dst_pick % hosts.len()];
        if src != dst {
            // Fail a random subset of switch-to-switch links (host NIC
            // failures always partition and are uninteresting here).
            let mut rng = ChaCha8Rng::seed_from_u64(fail_seed);
            let fabric_links: Vec<usize> = topo
                .links()
                .iter()
                .enumerate()
                .filter(|(_, l)| {
                    topo.nodes()[l.from].kind.is_switch() && topo.nodes()[l.to].kind.is_switch()
                })
                .map(|(id, _)| id)
                .collect();
            let mut down = std::collections::HashSet::new();
            for _ in 0..fail_count {
                down.insert(fabric_links[rng.gen_range(0..fabric_links.len())]);
            }
            let banned = |l: usize| {
                let spec = &topo.links()[l];
                down.contains(&l)
                    || topo
                        .link_between(spec.to, spec.from)
                        .is_some_and(|twin| down.contains(&twin))
            };
            let surviving = topo.host_routes_avoiding(src, dst, &down);
            for route in &surviving {
                assert_valid_route(&topo, src, dst, route);
                for &l in route.links() {
                    prop_assert!(!banned(l), "surviving route uses banned link {l}");
                }
            }
            match topo.host_route_avoiding(src, dst, choice, &down) {
                Some(route) => {
                    prop_assert!(!surviving.is_empty());
                    prop_assert_eq!(&route, &surviving[choice % surviving.len()]);
                }
                None => prop_assert!(surviving.is_empty(), "route withheld despite survivors"),
            }
        }
    }

    /// With no failures, the surviving enumeration reduces exactly to the
    /// healthy ECMP enumeration on both fabric families — same paths, same
    /// deterministic order.
    #[test]
    fn prop_empty_failure_set_reproduces_healthy_routes(
        src_pick in 0usize..10_000,
        dst_pick in 0usize..10_000,
    ) {
        for topo in [
            Topology::fat_tree(&FatTreeConfig::new(4)),
            Topology::leaf_spine(&LeafSpineConfig::oversubscribed(16, 4, 2, 4.0)),
        ] {
            let hosts = topo.hosts();
            let src = hosts[src_pick % hosts.len()];
            let dst = hosts[dst_pick % hosts.len()];
            if src == dst {
                continue;
            }
            let none = std::collections::HashSet::new();
            prop_assert_eq!(
                topo.host_routes_avoiding(src, dst, &none),
                topo.host_routes(src, dst)
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Uniformly drawn choice values spread flows across the equal-cost
    /// path set within a 2x uniformity bound over 10k draws (fat-tree
    /// inter-pod pairs and oversubscribed inter-rack pairs).
    #[test]
    fn prop_ecmp_spreads_within_2x_over_10k_draws(seed in 0u64..1_000) {
        let cases: [(Topology, usize, usize); 2] = [
            // Inter-pod fat-tree pair: (k/2)² = 4 equal-cost paths.
            (Topology::fat_tree(&FatTreeConfig::new(4)), 0, 15),
            // Inter-rack oversubscribed pair: one path per spine.
            (
                Topology::leaf_spine(&LeafSpineConfig::oversubscribed(16, 4, 4, 4.0)),
                0,
                15,
            ),
        ];
        for (topo, s, d) in cases {
            let hosts = topo.hosts();
            let (src, dst) = (hosts[s], hosts[d]);
            let num_paths = topo.host_routes(src, dst).len();
            prop_assert!(num_paths > 1, "pair must have equal-cost alternatives");
            let mut table = RouteTable::new();
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut counts = std::collections::HashMap::new();
            for _ in 0..10_000 {
                let choice = rng.gen_range(0..1 << 30);
                let id = table.intern(topo.host_route(src, dst, choice));
                *counts.entry(id).or_insert(0u32) += 1;
            }
            prop_assert_eq!(counts.len(), num_paths, "all equal-cost paths must be hit");
            let max = *counts.values().max().unwrap();
            let min = *counts.values().min().unwrap();
            prop_assert!(
                max <= 2 * min,
                "2x uniformity violated: min {min}, max {max} over {num_paths} paths"
            );
        }
    }
}

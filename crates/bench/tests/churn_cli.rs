//! End-to-end smokes of the `numfabric-run churn` CLI: the happy path in
//! human and `--json` forms, and the exit-2 contract for option
//! validation (the `parse_load_fraction` rejection path, which unit tests
//! cannot reach because `cli_error` terminates the process).

use std::process::Command;

/// The churn binary invocation all tests share, kept tiny so the suite
/// stays fast: a short arrival window on the reduced leaf-spine fabric.
fn churn_cmd() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_numfabric-run"));
    cmd.args(["churn", "--millis", "4", "--drain-millis", "40"]);
    cmd
}

#[test]
fn churn_human_output_reports_per_class_rows() {
    let out = churn_cmd().output().expect("spawn numfabric-run");
    assert!(
        out.status.success(),
        "churn exited {:?}: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("utf-8 stdout");
    for needle in ["fg", "bg", "all", "flows/s"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn churn_json_is_parseable_and_partition_invariant() {
    let run = |partitions: &str, threads: &str| {
        let out = churn_cmd()
            .args([
                "--json",
                "--partitions",
                partitions,
                "--partition-threads",
                threads,
            ])
            .output()
            .expect("spawn numfabric-run");
        assert!(
            out.status.success(),
            "churn --json exited {:?}: {}",
            out.status.code(),
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let base = run("1", "1");
    let text = String::from_utf8(base.clone()).expect("utf-8 json");
    numfabric_bench::report::ParsedJson::parse(&text).expect("valid JSON");
    assert!(text.contains("\"scenario\":\"churn\""), "got:\n{text}");
    assert_eq!(
        base,
        run("2", "2"),
        "churn --json bytes must not depend on --partitions/--partition-threads"
    );
}

#[test]
fn out_of_range_load_exits_with_status_two() {
    for bad in ["1.5", "0", "-0.3", "nan"] {
        let out = churn_cmd()
            .args(["--load", bad])
            .output()
            .expect("spawn numfabric-run");
        assert_eq!(
            out.status.code(),
            Some(2),
            "--load {bad} must exit 2, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains("--load"),
            "stderr should name the offending option: {err}"
        );
    }
}

#[test]
fn out_of_range_fg_share_exits_with_status_two() {
    let out = churn_cmd()
        .args(["--fg-share", "1.0"])
        .output()
        .expect("spawn numfabric-run");
    assert_eq!(
        out.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

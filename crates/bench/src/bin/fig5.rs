//! Regenerate **Figure 5** — thin wrapper over
//! [`numfabric_bench::figures::fig5`] (also available as
//! `numfabric-run fig5 [--workload websearch|enterprise] [--load F] [--full]`).

use numfabric_workloads::registry::ScenarioOptions;

fn main() {
    numfabric_bench::figures::fig5(&ScenarioOptions::from_env());
}

//! The deterministic event core at the heart of the simulator.
//!
//! Events are ordered by timestamp; ties are broken by insertion order
//! (FIFO), which makes every simulation run fully deterministic for a given
//! seed and input — a property the convergence measurements rely on.
//!
//! # The timing wheel
//!
//! [`EventQueue`] is a hierarchical timing wheel (Varghese & Lauck), not a
//! binary heap: the workload shape of a packet-level datacenter simulation —
//! dense near-future timestamps (packet serialization every few hundred ns)
//! with heavy schedule/pop churn — is exactly what calendar-queue schedulers
//! were designed for. The layout:
//!
//! * **Levels.** `LEVELS` wheels of `SLOTS` (a power of two) buckets
//!   each. A level-`l` slot spans `SLOTS^l` nanosecond ticks, so level 0
//!   resolves single nanoseconds and the whole hierarchy covers
//!   `SLOTS^LEVELS` ns (≈ 68 simulated seconds) ahead of the cursor.
//!   Scheduling picks the level from the magnitude of the delay
//!   (`floor(log2(delta) / log2(SLOTS))`) and the slot from the absolute
//!   timestamp's bits — both O(1).
//! * **Cascading.** When the cursor reaches a higher-level slot whose range
//!   may hide the next event, the slot's events are redistributed one level
//!   down (their remaining delay now fits the finer wheel). Each event
//!   cascades at most `LEVELS − 1` times, so scheduling stays amortized
//!   O(1).
//! * **Overflow.** Timestamps beyond the wheel horizon wait in a
//!   `(time, seq)`-ordered overflow heap; whenever the cursor advances they
//!   cascade into the near wheels as soon as they come within the horizon.
//! * **Early inserts.** [`EventQueue::peek_time`] may advance the internal
//!   cursor past quiet stretches. Events later scheduled *behind* the cursor
//!   (but never behind [`EventQueue::now`] — scheduling into the past still
//!   panics) are kept in a small `(time, seq)`-ordered side heap that is
//!   always drained first; this is what lets scenario drivers peek ahead,
//!   stop, and then add flows at the current wall-clock time.
//! * **SoA payload pools.** [`Event`]s are large (a [`Packet`] rides
//!   inline), and an `enum` slab would pad every timer to packet size. The
//!   payloads are split structure-of-arrays style into two free-listed
//!   pools: a dense arrival pool (`(LinkId, Packet)` — the dominant hot
//!   path) and a compact pool for everything else (timers, transmit
//!   completions, flow starts/stops, link changes — a few words each). The
//!   pool is encoded in the top bit of the payload index, so everything
//!   that moves through wheel slots, cascades and heaps is still a 24-byte
//!   key `(time, seq, packed pool index)`, and popping a timer no longer
//!   drags a cacheline-spanning union through memory.
//!
//! # Determinism contract: bucket FIFO == seq FIFO
//!
//! Every scheduled event gets a monotonically increasing sequence number,
//! and a same-timestamp **batch** is drained in one pass and sorted by that
//! sequence number before dispatch. The observable pop order is therefore
//! lexicographic `(time, seq)` — bit-identical to the binary-heap
//! implementation this replaced ([`HeapEventQueue`], kept as the executable
//! reference model for differential tests and benchmarks).
//!
//! # Cancellation
//!
//! [`EventQueue::schedule_cancellable`] returns an [`EventId`] that
//! [`EventQueue::cancel`] turns into a tombstone in O(1); cancelled events
//! are dropped when their bucket drains instead of traversing the dispatch
//! path. The [`crate::timer::TimerService`] builds flow-timer bookkeeping on
//! top of this, so stopping a flow structurally removes its pending timers.

use crate::packet::{FlowId, Packet};
use crate::time::SimTime;
use crate::topology::LinkId;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// The kinds of events the simulator processes.
#[derive(Debug)]
pub enum Event {
    /// A packet has finished propagating across a link and arrives at the
    /// link's head node (next switch or the destination host).
    Arrival {
        /// The link the packet just traversed.
        link: LinkId,
        /// The packet itself.
        packet: Packet,
    },
    /// A link finished serializing its current packet and can start on the
    /// next one in its queue.
    TransmitComplete {
        /// The link that became free.
        link: LinkId,
    },
    /// A timer owned by a flow's transport agent fired.
    FlowTimer {
        /// The owning flow.
        flow: FlowId,
        /// Agent-chosen tag to distinguish multiple timers.
        tag: u64,
    },
    /// A timer owned by a link controller (e.g. the xWI price updater) fired.
    LinkTimer {
        /// The owning link.
        link: LinkId,
        /// Controller-chosen tag.
        tag: u64,
    },
    /// A flow reaches its scheduled start time.
    FlowStart {
        /// The flow to start.
        flow: FlowId,
    },
    /// A flow is forcibly stopped (used by the semi-dynamic scenario's
    /// "stop 100 flows" events).
    FlowStop {
        /// The flow to stop.
        flow: FlowId,
    },
    /// A scheduled link impairment takes effect (failure, restore, speed
    /// change, loss rate, jitter — see [`crate::impairment::LinkChange`]).
    LinkChange {
        /// The affected link.
        link: LinkId,
        /// The state change to apply.
        change: crate::impairment::LinkChange,
    },
}

/// Identity of a scheduled event: its insertion sequence number, which also
/// serves as the FIFO tie-breaker for equal timestamps. Returned by the
/// `schedule` methods and consumed by [`EventQueue::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// The raw sequence number (for logs and diagnostics).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

/// What moves through wheel slots, cascades and the side heaps: the
/// ordering key plus the packed pool index of the payload (see
/// [`POOL_ARRIVAL`]).
#[derive(Clone, Copy)]
struct Key {
    time: u64,
    seq: u64,
    idx: u32,
    cancellable: bool,
}

/// An opaque claim on one event of an open dispatch batch (see
/// [`EventQueue::begin_batch`]). Redeem with [`EventQueue::claim`]; the
/// embedded sequence number is exposed for merge ordering against rejoins.
#[derive(Clone, Copy)]
pub struct BatchTicket(Key);

impl BatchTicket {
    /// The `(time, seq)` tie-breaking sequence number of the claimed event.
    pub fn seq(&self) -> u64 {
        self.0.seq
    }

    /// The kind/payload discriminant without claiming: `true` if this
    /// ticket's payload is a packet arrival (the groupable hot path).
    pub fn is_arrival(&self) -> bool {
        self.0.idx & POOL_ARRIVAL != 0
    }
}

/// Top bit of [`Key::idx`]: set for the arrival pool, clear for the small
/// pool. The low 31 bits are the index within the pool.
const POOL_ARRIVAL: u32 = 1 << 31;
/// Mask extracting the within-pool index from a packed [`Key::idx`].
const POOL_IDX_MASK: u32 = POOL_ARRIVAL - 1;

/// The non-arrival event payloads, a few words each. Splitting these off
/// from [`Event::Arrival`] (which carries a whole [`Packet`]) keeps the
/// timer/transmit pool entries small and dense.
#[derive(Debug, Clone, Copy)]
enum SmallEvent {
    TransmitComplete {
        link: LinkId,
    },
    FlowTimer {
        flow: FlowId,
        tag: u64,
    },
    LinkTimer {
        link: LinkId,
        tag: u64,
    },
    FlowStart {
        flow: FlowId,
    },
    FlowStop {
        flow: FlowId,
    },
    LinkChange {
        link: LinkId,
        change: crate::impairment::LinkChange,
    },
}

impl SmallEvent {
    fn into_event(self) -> Event {
        match self {
            SmallEvent::TransmitComplete { link } => Event::TransmitComplete { link },
            SmallEvent::FlowTimer { flow, tag } => Event::FlowTimer { flow, tag },
            SmallEvent::LinkTimer { link, tag } => Event::LinkTimer { link, tag },
            SmallEvent::FlowStart { flow } => Event::FlowStart { flow },
            SmallEvent::FlowStop { flow } => Event::FlowStop { flow },
            SmallEvent::LinkChange { link, change } => Event::LinkChange { link, change },
        }
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Key {}

impl PartialOrd for Key {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Key {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// log2 of the number of slots per wheel level.
const LEVEL_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Bitmask extracting a slot index from a timestamp.
const SLOT_MASK: u64 = (SLOTS - 1) as u64;
/// Number of wheel levels.
const LEVELS: usize = 6;
/// Ticks (nanoseconds) covered by the whole hierarchy ahead of the cursor.
const HORIZON: u64 = 1 << (LEVEL_BITS * LEVELS as u32);

/// A deterministic priority queue of simulation events, implemented as a
/// hierarchical timing wheel (see the module docs for the layout and the
/// determinism contract).
pub struct EventQueue {
    /// `levels[l][s]`: the event keys of slot `s` of wheel level `l`.
    levels: Vec<Vec<Vec<Key>>>,
    /// One occupancy bit per slot, per level (bit `s` set ⇔ slot non-empty).
    occupancy: [u64; LEVELS],
    /// `slot_min[l][s]`: minimum timestamp in that slot (`u64::MAX` when
    /// empty). Maintained on push and slot drain, so the cursor's own slot
    /// — whose lower bound is its actual minimum, not its range start —
    /// never needs scanning.
    slot_min: Vec<[u64; SLOTS]>,
    /// Total keys across all wheel levels (excludes overflow/early/batch).
    wheel_count: usize,
    /// Arrival payloads (the hot path), written at schedule time and taken
    /// at pop time. Indexed by `Key::idx & POOL_IDX_MASK` when the
    /// `POOL_ARRIVAL` bit is set.
    arrivals: Vec<Option<(LinkId, Packet)>>,
    /// Free arrival-pool indices.
    arrivals_free: Vec<u32>,
    /// All other payloads (timers, transmit completions, flow/link control),
    /// each a few words. Indexed by `Key::idx` when `POOL_ARRIVAL` is clear.
    small: Vec<Option<SmallEvent>>,
    /// Free small-pool indices.
    small_free: Vec<u32>,
    /// Events beyond the wheel horizon, ordered by `(time, seq)`.
    overflow: BinaryHeap<Key>,
    /// Events scheduled behind the cursor (but at/after `now`), ordered by
    /// `(time, seq)`. Always drained before the wheel.
    early: BinaryHeap<Key>,
    /// The current same-timestamp batch, sorted by `seq`.
    batch: VecDeque<Key>,
    /// Timestamp shared by every entry in `batch`.
    batch_time: u64,
    /// Whether a dispatch batch opened by [`Self::begin_batch`] is active.
    batch_open: bool,
    /// Timestamp of the open dispatch batch (only meaningful while
    /// `batch_open`; independent of `batch_time`, because the open batch
    /// may have been drained from the early heap while the wheel batch
    /// holds later entries).
    open_time: u64,
    /// Same-timestamp events scheduled while the dispatch batch was open,
    /// sorted by `seq`; the dispatcher interleaves them with its tickets.
    rejoins: VecDeque<Key>,
    /// Sequence numbers of cancellable events that are still pending (not
    /// fired, not cancelled) — what makes [`Self::cancel`] O(1).
    cancellable_pending: HashSet<u64>,
    /// Sequence numbers of cancelled-but-not-yet-drained events.
    cancelled: HashSet<u64>,
    /// Scratch buffer reused by cascades (avoids per-cascade allocation).
    scratch: Vec<Key>,
    /// Wheel cursor: `now <= cursor <= `the earliest pending wheel event.
    cursor: u64,
    /// Timestamp of the last popped event (the public clock).
    now: u64,
    next_seq: u64,
    /// Pending (scheduled − popped − cancelled) events.
    live: usize,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            occupancy: [0; LEVELS],
            slot_min: vec![[u64::MAX; SLOTS]; LEVELS],
            wheel_count: 0,
            arrivals: Vec::new(),
            arrivals_free: Vec::new(),
            small: Vec::new(),
            small_free: Vec::new(),
            overflow: BinaryHeap::new(),
            early: BinaryHeap::new(),
            batch: VecDeque::new(),
            batch_time: 0,
            batch_open: false,
            open_time: 0,
            rejoins: VecDeque::new(),
            cancellable_pending: HashSet::new(),
            cancelled: HashSet::new(),
            scratch: Vec::new(),
            cursor: 0,
            now: 0,
            next_seq: 0,
            live: 0,
        }
    }

    /// The current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now)
    }

    /// Remove every pending event and rewind the clock to zero, retaining
    /// every internal allocation (wheel slots, payload pools, free lists,
    /// heaps) at peak capacity. This is what lets one queue be reused across
    /// sweep cells or repartitions with zero steady-state allocation —
    /// before this existed, callers dropped the queue and re-grew a fresh
    /// one from empty every cell.
    pub fn reset(&mut self) {
        for level in &mut self.levels {
            for slot in level {
                slot.clear();
            }
        }
        self.occupancy = [0; LEVELS];
        for sm in &mut self.slot_min {
            *sm = [u64::MAX; SLOTS];
        }
        self.wheel_count = 0;
        self.arrivals.clear();
        self.arrivals_free.clear();
        self.small.clear();
        self.small_free.clear();
        self.overflow.clear();
        self.early.clear();
        self.batch.clear();
        self.batch_time = 0;
        self.batch_open = false;
        self.open_time = 0;
        self.rejoins.clear();
        self.cancellable_pending.clear();
        self.cancelled.clear();
        self.scratch.clear();
        self.cursor = 0;
        self.now = 0;
        self.next_seq = 0;
        self.live = 0;
    }

    /// `(arrival pool entries, small pool entries)` currently allocated —
    /// the memory footprint of the payload stores, free or live. Test-only
    /// diagnostic for the bounded-memory regression tests.
    #[doc(hidden)]
    pub fn debug_pool_sizes(&self) -> (usize, usize) {
        (self.arrivals.len(), self.small.len())
    }

    /// Park `event` in its pool and return the packed index.
    fn store_payload(&mut self, event: Event) -> u32 {
        match event {
            Event::Arrival { link, packet } => {
                let idx = match self.arrivals_free.pop() {
                    Some(idx) => {
                        self.arrivals[idx as usize] = Some((link, packet));
                        idx
                    }
                    None => {
                        let idx = u32::try_from(self.arrivals.len())
                            .expect("more than 2^31 pending arrivals");
                        assert!(idx < POOL_ARRIVAL, "more than 2^31 pending arrivals");
                        self.arrivals.push(Some((link, packet)));
                        idx
                    }
                };
                idx | POOL_ARRIVAL
            }
            Event::TransmitComplete { link } => {
                self.store_small(SmallEvent::TransmitComplete { link })
            }
            Event::FlowTimer { flow, tag } => self.store_small(SmallEvent::FlowTimer { flow, tag }),
            Event::LinkTimer { link, tag } => self.store_small(SmallEvent::LinkTimer { link, tag }),
            Event::FlowStart { flow } => self.store_small(SmallEvent::FlowStart { flow }),
            Event::FlowStop { flow } => self.store_small(SmallEvent::FlowStop { flow }),
            Event::LinkChange { link, change } => {
                self.store_small(SmallEvent::LinkChange { link, change })
            }
        }
    }

    fn store_small(&mut self, ev: SmallEvent) -> u32 {
        match self.small_free.pop() {
            Some(idx) => {
                self.small[idx as usize] = Some(ev);
                idx
            }
            None => {
                let idx = u32::try_from(self.small.len()).expect("more than 2^31 pending events");
                assert!(idx < POOL_ARRIVAL, "more than 2^31 pending events");
                self.small.push(Some(ev));
                idx
            }
        }
    }

    /// Take the payload behind a packed index out of its pool, freeing the
    /// slot.
    fn take_payload(&mut self, idx: u32) -> Event {
        if idx & POOL_ARRIVAL != 0 {
            let i = (idx & POOL_IDX_MASK) as usize;
            let (link, packet) = self.arrivals[i].take().expect("pending key has a payload");
            self.arrivals_free.push(idx & POOL_IDX_MASK);
            Event::Arrival { link, packet }
        } else {
            let ev = self.small[idx as usize]
                .take()
                .expect("pending key has a payload");
            self.small_free.push(idx);
            ev.into_event()
        }
    }

    /// Free the pool slot behind a packed index without materializing the
    /// event (cancelled tombstones).
    fn drop_payload(&mut self, idx: u32) {
        if idx & POOL_ARRIVAL != 0 {
            let i = (idx & POOL_IDX_MASK) as usize;
            self.arrivals[i] = None;
            self.arrivals_free.push(idx & POOL_IDX_MASK);
        } else {
            self.small[idx as usize] = None;
            self.small_free.push(idx);
        }
    }

    /// Whether the pool slot behind a packed index holds a payload
    /// (diagnostics only).
    fn payload_exists(&self, idx: u32) -> bool {
        if idx & POOL_ARRIVAL != 0 {
            self.arrivals[(idx & POOL_IDX_MASK) as usize].is_some()
        } else {
            self.small[idx as usize].is_some()
        }
    }

    /// Schedule `event` at absolute time `at`. Returns the event's identity
    /// (mostly useful for diagnostics; see [`Self::schedule_cancellable`]
    /// for events that may be cancelled later).
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule(&mut self, at: SimTime, event: Event) -> EventId {
        self.schedule_entry(at, event, false)
    }

    /// Schedule `event` at absolute time `at`, opting into O(1)
    /// cancellation via [`Self::cancel`]. Cancellable events pay one hash
    /// insertion; plain [`Self::schedule`] stays hash-free.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule_cancellable(&mut self, at: SimTime, event: Event) -> EventId {
        self.schedule_entry(at, event, true)
    }

    /// Schedule `event` at `at` under an externally allocated sequence
    /// number. This is the partitioned-network entry point: the `Network`
    /// owns one global `seq` counter shared by every partition's wheel, so
    /// the cross-partition merge order `(time, seq)` is identical to the
    /// single-queue pop order. The queue's own counter is untouched — do
    /// not mix seeded and unseeded scheduling on one queue.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule_seeded(&mut self, at: SimTime, event: Event, seq: u64) -> EventId {
        self.schedule_entry_with_seq(at, event, false, seq)
    }

    /// [`Self::schedule_seeded`] with O(1) cancellation via [`Self::cancel`].
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule_cancellable_seeded(&mut self, at: SimTime, event: Event, seq: u64) -> EventId {
        self.schedule_entry_with_seq(at, event, true, seq)
    }

    fn schedule_entry(&mut self, at: SimTime, event: Event, cancellable: bool) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.schedule_entry_with_seq(at, event, cancellable, seq)
    }

    fn schedule_entry_with_seq(
        &mut self,
        at: SimTime,
        event: Event,
        cancellable: bool,
        seq: u64,
    ) -> EventId {
        let t = at.as_nanos();
        assert!(
            t >= self.now,
            "cannot schedule an event in the past: {at} < {}",
            self.now()
        );
        self.live += 1;
        let idx = self.store_payload(event);
        let key = Key {
            time: t,
            seq,
            idx,
            cancellable,
        };
        if cancellable {
            self.cancellable_pending.insert(seq);
        }
        if self.batch_open && t == self.open_time {
            // A mid-dispatch handler scheduled back into the open batch:
            // park it in the rejoin queue at its seq-sorted position (after
            // any equal seq, for FIFO among content-keyed duplicates); the
            // dispatcher interleaves rejoins with its remaining tickets.
            let pos = self.rejoins.partition_point(|k| k.seq <= seq);
            self.rejoins.insert(pos, key);
        } else if !self.batch.is_empty() && t == self.batch_time {
            // Joins the batch currently being drained. With the queue's own
            // counter `seq` is always the largest so far and this is a plain
            // append; externally seeded sequence numbers (boundary messages
            // drained at a barrier) may be smaller than a direct insert that
            // raced ahead, so insert at the seq-sorted position — *after*
            // any equal seq, so content-keyed duplicates pop in FIFO
            // (schedule) order.
            let pos = self.batch.partition_point(|k| k.seq <= seq);
            self.batch.insert(pos, key);
        } else if t < self.cursor {
            // Behind the wheel cursor (which may have advanced during a
            // peek): the side heap serves these before the wheel.
            self.early.push(key);
        } else {
            self.insert_into_wheel(key);
        }
        EventId(seq)
    }

    /// Cancel a pending event previously scheduled with
    /// [`Self::schedule_cancellable`]. Returns `true` if the event was still
    /// pending (it will never be popped), `false` if it already fired or was
    /// already cancelled.
    ///
    /// Cancelling an id that came from plain [`Self::schedule`] returns
    /// `false` and has no effect.
    pub fn cancel(&mut self, id: EventId) -> bool {
        // `cancellable_pending` membership is exactly "cancellable, not yet
        // fired, not yet cancelled", so this is one hash removal — O(1).
        if !self.cancellable_pending.remove(&id.0) {
            return false;
        }
        self.cancelled.insert(id.0);
        self.live -= 1;
        true
    }

    /// If `key` is a cancelled tombstone, release its payload and return
    /// `true`.
    fn reap_if_cancelled(&mut self, key: &Key) -> bool {
        if key.cancellable && !self.cancelled.is_empty() && self.cancelled.remove(&key.seq) {
            self.drop_payload(key.idx);
            true
        } else {
            false
        }
    }

    /// Pop the next event, advancing the simulation clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.pop_entry().map(|(t, _, e)| (t, e))
    }

    /// Pop the next event together with its [`EventId`] (used by the network
    /// engine to tie fired timers back to their bookkeeping).
    pub fn pop_entry(&mut self) -> Option<(SimTime, EventId, Event)> {
        loop {
            // The early heap always precedes the wheel (its times are behind
            // the cursor) and never ties with the batch (equal times join
            // the batch at schedule time).
            let early_first = match (self.early.peek(), self.batch.front()) {
                (Some(e), Some(b)) => e.time < b.time,
                (Some(_), None) => true,
                (None, _) => false,
            };
            let key = if early_first {
                self.early.pop()
            } else if self.batch.front().is_some() {
                self.batch.pop_front()
            } else {
                if !self.refill_batch() {
                    return None;
                }
                continue;
            };
            let key = key.expect("selected source is non-empty");
            if self.reap_if_cancelled(&key) {
                continue;
            }
            if key.cancellable {
                // Fired: the id is no longer cancellable.
                self.cancellable_pending.remove(&key.seq);
            }
            self.live -= 1;
            self.now = key.time;
            let event = self.take_payload(key.idx);
            return Some((SimTime::from_nanos(key.time), EventId(key.seq), event));
        }
    }

    /// Open a same-timestamp dispatch batch: move *every* pending entry at
    /// the next event time into `out` as opaque [`BatchTicket`]s, sorted by
    /// sequence number, and return that time. Returns `None` (leaving `out`
    /// empty) when the queue is exhausted.
    ///
    /// The tickets are claims, not pops: the clock, the live count and the
    /// cancellation bookkeeping are untouched until [`Self::claim`] redeems
    /// a ticket, so a handler running mid-batch can still [`Self::cancel`]
    /// a later ticket of the same batch and observe exactly the per-event
    /// semantics. Events scheduled *at the batch time* while the batch is
    /// open rejoin through the queue (see [`Self::rejoin_front_seq`] /
    /// [`Self::claim_rejoin`]); the dispatcher merges tickets and rejoins by
    /// sequence number, which reproduces the per-event pop order exactly.
    /// Close with [`Self::end_batch`].
    pub fn begin_batch(&mut self, out: &mut Vec<BatchTicket>) -> Option<SimTime> {
        debug_assert!(!self.batch_open, "begin_batch while a batch is open");
        debug_assert!(out.is_empty());
        let t = self.peek_time()?.as_nanos();
        // After peek_time the live head sits at the front of the early heap
        // or the wheel batch. The two never split one timestamp: early
        // entries are strictly behind the cursor and the wheel batch is at
        // or ahead of it, so the time-`t` group lives wholly in one of them.
        let early_first = self.early.peek().is_some_and(|e| e.time == t);
        if early_first {
            while let Some(e) = self.early.peek() {
                if e.time != t {
                    break;
                }
                let key = self.early.pop().expect("peeked entry exists");
                if self.reap_if_cancelled(&key) {
                    continue;
                }
                out.push(BatchTicket(key));
            }
            // The early heap yields (time, seq) order directly.
        } else {
            debug_assert_eq!(self.batch_time, t);
            while let Some(b) = self.batch.front() {
                debug_assert_eq!(b.time, t);
                let key = self.batch.pop_front().expect("front entry exists");
                if self.reap_if_cancelled(&key) {
                    continue;
                }
                out.push(BatchTicket(key));
            }
        }
        if out.is_empty() {
            // Every entry at `t` was a tombstone; recurse for the next time.
            return self.begin_batch(out);
        }
        debug_assert!(out.windows(2).all(|w| w[0].0.seq < w[1].0.seq));
        self.batch_open = true;
        self.open_time = t;
        Some(SimTime::from_nanos(t))
    }

    /// Redeem a ticket from the open batch: exactly the effect of
    /// [`Self::pop_entry`] returning this entry, or `None` if the entry was
    /// cancelled after the batch opened.
    pub fn claim(&mut self, ticket: BatchTicket) -> Option<(EventId, Event)> {
        let key = ticket.0;
        if self.reap_if_cancelled(&key) {
            return None;
        }
        if key.cancellable {
            self.cancellable_pending.remove(&key.seq);
        }
        self.live -= 1;
        self.now = key.time;
        let event = self.take_payload(key.idx);
        Some((EventId(key.seq), event))
    }

    /// The sequence number of the earliest not-yet-claimed event that joined
    /// the open batch after it was opened (a same-timestamp schedule by a
    /// mid-batch handler), if any.
    pub fn rejoin_front_seq(&self) -> Option<u64> {
        debug_assert!(self.batch_open);
        self.rejoins.front().map(|k| k.seq)
    }

    /// Claim the earliest rejoin of the open batch (see
    /// [`Self::rejoin_front_seq`]); `None` if it was cancelled in the
    /// meantime.
    pub fn claim_rejoin(&mut self) -> Option<(EventId, Event)> {
        debug_assert!(self.batch_open);
        let key = self
            .rejoins
            .pop_front()
            .expect("claim_rejoin on empty rejoin queue");
        self.claim(BatchTicket(key))
    }

    /// Close the batch opened by [`Self::begin_batch`]. Unclaimed rejoins
    /// (the dispatcher normally drains them all) re-enter the queue through
    /// the ordinary insertion path and pop normally.
    pub fn end_batch(&mut self) {
        debug_assert!(self.batch_open);
        self.batch_open = false;
        while let Some(key) = self.rejoins.pop_front() {
            if !self.batch.is_empty() && key.time == self.batch_time {
                let pos = self.batch.partition_point(|k| k.seq <= key.seq);
                self.batch.insert(pos, key);
            } else if key.time < self.cursor {
                self.early.push(key);
            } else {
                self.insert_into_wheel(key);
            }
        }
    }

    /// The timestamp of the next pending event, if any.
    ///
    /// Takes `&mut self` because looking ahead may cascade higher wheel
    /// levels into nearer ones; the observable pop order is unaffected.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            // Purge cancelled tombstones from both candidate fronts so the
            // reported time is that of a live event.
            if let Some(e) = self.early.peek() {
                if e.cancellable && !self.cancelled.is_empty() && self.cancelled.contains(&e.seq) {
                    let e = self.early.pop().expect("peeked entry exists");
                    let reaped = self.reap_if_cancelled(&e);
                    debug_assert!(reaped);
                    continue;
                }
            }
            if let Some(b) = self.batch.front() {
                if b.cancellable && !self.cancelled.is_empty() && self.cancelled.contains(&b.seq) {
                    let b = self.batch.pop_front().expect("front entry exists");
                    let reaped = self.reap_if_cancelled(&b);
                    debug_assert!(reaped);
                    continue;
                }
            }
            let early_first = match (self.early.peek(), self.batch.front()) {
                (Some(e), Some(b)) => e.time < b.time,
                (Some(_), None) => true,
                (None, _) => false,
            };
            if early_first {
                return self.early.peek().map(|e| SimTime::from_nanos(e.time));
            }
            if let Some(b) = self.batch.front() {
                return Some(SimTime::from_nanos(b.time));
            }
            if !self.refill_batch() {
                return None;
            }
        }
    }

    /// The `(time, seq)` ordering key of the next pending event, if any —
    /// what the partitioned network's merge loop compares across wheels to
    /// pick the globally next event. Purges cancelled tombstones like
    /// [`Self::peek_time`].
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        // `peek_time` leaves the live head at the front of either the early
        // heap or the batch, so the key is read off whichever front wins.
        self.peek_time()?;
        let early_first = match (self.early.peek(), self.batch.front()) {
            (Some(e), Some(b)) => e.time < b.time,
            (Some(_), None) => true,
            (None, _) => false,
        };
        let key = if early_first {
            self.early.peek().copied()
        } else {
            self.batch.front().copied()
        };
        key.map(|k| (SimTime::from_nanos(k.time), k.seq))
    }

    /// Remove every pending entry, returning `(time, seq, event,
    /// cancellable)` tuples in `(time, seq)` order and leaving the queue
    /// empty with its clock unchanged. Used when a network is re-partitioned
    /// before running: pending events migrate to the new per-partition
    /// wheels with their original sequence numbers.
    pub(crate) fn drain_entries(&mut self) -> Vec<(SimTime, u64, Event, bool)> {
        let saved_now = self.now;
        let mut out = Vec::with_capacity(self.live);
        loop {
            let early_first = match (self.early.peek(), self.batch.front()) {
                (Some(e), Some(b)) => e.time < b.time,
                (Some(_), None) => true,
                (None, _) => false,
            };
            let key = if early_first {
                self.early.pop()
            } else if self.batch.front().is_some() {
                self.batch.pop_front()
            } else {
                if !self.refill_batch() {
                    break;
                }
                continue;
            };
            let key = key.expect("selected source is non-empty");
            if self.reap_if_cancelled(&key) {
                continue;
            }
            if key.cancellable {
                self.cancellable_pending.remove(&key.seq);
            }
            self.live -= 1;
            self.now = key.time;
            let event = self.take_payload(key.idx);
            out.push((
                SimTime::from_nanos(key.time),
                key.seq,
                event,
                key.cancellable,
            ));
        }
        self.now = saved_now;
        out
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Check every internal invariant of the wheel (slot residency, bitmap
    /// consistency, revolution bounds, slab/key agreement). Test-only
    /// diagnostic; panics with a description on the first violation.
    #[doc(hidden)]
    pub fn debug_validate(&self) {
        let mut counted = 0usize;
        for level in 0..LEVELS {
            let shift = LEVEL_BITS * level as u32;
            for slot in 0..SLOTS {
                let occupied = self.occupancy[level] & (1 << slot) != 0;
                let keys = &self.levels[level][slot];
                counted += keys.len();
                assert_eq!(
                    occupied,
                    !keys.is_empty(),
                    "level {level} slot {slot}: occupancy bit {occupied} but {} entries",
                    keys.len()
                );
                assert_eq!(
                    self.slot_min[level][slot],
                    keys.iter().map(|k| k.time).min().unwrap_or(u64::MAX),
                    "level {level} slot {slot}: stale slot_min"
                );
                for k in keys {
                    assert!(
                        k.time >= self.cursor,
                        "level {level} slot {slot}: entry t={} seq={} behind cursor {}",
                        k.time,
                        k.seq,
                        self.cursor
                    );
                    assert_eq!(
                        ((k.time >> shift) & SLOT_MASK) as usize,
                        slot,
                        "entry t={} seq={} in wrong slot of level {level}",
                        k.time,
                        k.seq
                    );
                    let revolution = 1u64 << (shift + LEVEL_BITS);
                    assert!(
                        k.time - self.cursor < revolution,
                        "level {level} slot {slot}: entry t={} seq={} beyond one revolution of cursor {}",
                        k.time,
                        k.seq,
                        self.cursor
                    );
                    assert!(
                        self.payload_exists(k.idx),
                        "key seq={} points at an empty pool slot",
                        k.seq
                    );
                }
            }
        }
        assert_eq!(counted, self.wheel_count, "wheel_count out of sync");
        for k in &self.batch {
            assert_eq!(k.time, self.batch_time, "batch entry off batch_time");
        }
        for k in self.early.iter() {
            assert!(k.time >= self.now, "early entry behind now");
        }
        for k in self.overflow.iter() {
            assert!(k.time >= self.cursor, "overflow entry behind cursor");
        }
    }

    /// Render the full internal state (test-only diagnostic).
    #[doc(hidden)]
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "cursor={} now={} live={} batch_time={}",
            self.cursor, self.now, self.live, self.batch_time
        );
        let fmt = |ks: &[Key]| -> String {
            ks.iter()
                .map(|k| format!("(t={},seq={})", k.time, k.seq))
                .collect::<Vec<_>>()
                .join(" ")
        };
        for level in 0..LEVELS {
            for slot in 0..SLOTS {
                if !self.levels[level][slot].is_empty() {
                    let _ = writeln!(
                        s,
                        "  L{level} slot {slot}: {}",
                        fmt(&self.levels[level][slot])
                    );
                }
            }
        }
        let heap_fmt = |it: std::collections::binary_heap::Iter<'_, Key>| -> String {
            it.map(|k| format!("(t={},seq={})", k.time, k.seq))
                .collect::<Vec<_>>()
                .join(" ")
        };
        let _ = writeln!(s, "  overflow: {}", heap_fmt(self.overflow.iter()));
        let _ = writeln!(s, "  early: {}", heap_fmt(self.early.iter()));
        let batch: Vec<Key> = self.batch.iter().copied().collect();
        let _ = writeln!(s, "  batch: {}", fmt(&batch));
        s
    }

    // ---- wheel internals --------------------------------------------------

    fn insert_into_wheel(&mut self, key: Key) {
        debug_assert!(
            key.time >= self.cursor,
            "entry t={} seq={} behind cursor {}",
            key.time,
            key.seq,
            self.cursor
        );
        let delta = key.time - self.cursor;
        if delta >= HORIZON {
            self.overflow.push(key);
            return;
        }
        let level = if delta == 0 {
            0
        } else {
            ((63 - delta.leading_zeros()) / LEVEL_BITS) as usize
        };
        let slot = ((key.time >> (LEVEL_BITS * level as u32)) & SLOT_MASK) as usize;
        let min = &mut self.slot_min[level][slot];
        if key.time < *min {
            *min = key.time;
        }
        self.levels[level][slot].push(key);
        self.occupancy[level] |= 1 << slot;
        self.wheel_count += 1;
    }

    /// Redistribute one slot of level `l` into finer levels. The cursor must
    /// already be inside the slot's time range, which guarantees every
    /// non-wrapped event strictly descends.
    fn cascade(&mut self, level: usize, slot: usize) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.append(&mut self.levels[level][slot]);
        self.occupancy[level] &= !(1 << slot);
        self.slot_min[level][slot] = u64::MAX;
        self.wheel_count -= scratch.len();
        for key in scratch.drain(..) {
            if self.reap_if_cancelled(&key) {
                continue;
            }
            self.insert_into_wheel(key);
        }
        self.scratch = scratch;
    }

    /// The exact tick of the earliest occupied level-0 slot, if any. Within
    /// the active 64-tick window each level-0 slot holds events of exactly
    /// one timestamp.
    fn level0_first_tick(&self) -> Option<u64> {
        let occ = self.occupancy[0];
        if occ == 0 {
            return None;
        }
        let base = (self.cursor & SLOT_MASK) as u32;
        let distance = occ.rotate_right(base).trailing_zeros() as u64;
        Some(self.cursor + distance)
    }

    /// The `(lower bound, level, slot)` of the earliest-bounded occupied
    /// slot among levels 1.., if any.
    ///
    /// For slots ahead of the cursor the bound is the slot's range start
    /// (exact enough: every event inside is at or after it, and the
    /// delta-within-one-revolution invariant rules out wrapped residents —
    /// among those slots the first in cyclic order has the smallest start).
    /// The cursor's *own* slot is the one place the invariant allows events
    /// from the next wheel revolution, so its bound is its actual minimum
    /// event time — which can exceed the range starts of slots later in the
    /// cycle, so when the own slot is occupied both it and the next occupied
    /// slot are candidates. (Using the range start for the own slot would
    /// cascade a wrapped event back into the very same slot forever.)
    fn higher_first_slot(&self) -> Option<(u64, usize, usize)> {
        let mut best: Option<(u64, usize, usize)> = None;
        let consider = |bound: u64, level: usize, slot: usize, best: &mut Option<_>| {
            if best.is_none_or(|(b, _, _)| bound < b) {
                *best = Some((bound, level, slot));
            }
        };
        for level in 1..LEVELS {
            let occ = self.occupancy[level];
            if occ == 0 {
                continue;
            }
            let shift = LEVEL_BITS * level as u32;
            let base_slot = (self.cursor >> shift) & SLOT_MASK;
            let mut rotated = occ.rotate_right(base_slot as u32);
            if rotated & 1 != 0 {
                let slot = base_slot as usize;
                consider(self.slot_min[level][slot], level, slot, &mut best);
                rotated &= !1;
            }
            if rotated != 0 {
                let distance = rotated.trailing_zeros() as u64;
                let slot = ((base_slot + distance) & SLOT_MASK) as usize;
                let start = ((self.cursor >> shift) + distance) << shift;
                consider(start, level, slot, &mut best);
            }
        }
        best
    }

    /// Refill `batch` with the next same-timestamp group of events, sorted
    /// by sequence number. Returns `false` when the queue is exhausted.
    fn refill_batch(&mut self) -> bool {
        debug_assert!(self.batch.is_empty());
        let mut iterations = 0u64;
        loop {
            // Defensive livelock guard: every iteration either returns,
            // empties a structure, or strictly lowers an event's level, so
            // legitimate runs stay far below this bound.
            iterations += 1;
            assert!(
                iterations <= 1_000_000,
                "refill_batch livelock: cursor={} occupancy={:?} live={} overflow={} early={}",
                self.cursor,
                self.occupancy,
                self.live,
                self.overflow.len(),
                self.early.len()
            );
            // Cascade due overflow entries into the wheels. If the wheels
            // are empty the cursor can jump straight to the overflow front
            // (nothing pends before it).
            if self.wheel_count == 0 {
                match self.overflow.peek() {
                    Some(top) => self.cursor = self.cursor.max(top.time),
                    None => return false,
                }
            }
            while let Some(top) = self.overflow.peek() {
                if top.time - self.cursor >= HORIZON {
                    break;
                }
                let key = self.overflow.pop().expect("peeked entry exists");
                if self.reap_if_cancelled(&key) {
                    continue;
                }
                self.insert_into_wheel(key);
            }

            let tick0 = self.level0_first_tick();
            // A higher-level slot whose bound sits at or before the best
            // level-0 tick may hide an earlier event (or a tie): cascade it
            // and re-evaluate.
            if let Some((bound, level, slot)) = self.higher_first_slot() {
                let reachable = bound.max(self.cursor);
                if tick0.is_none_or(|t| reachable <= t) {
                    self.cursor = reachable;
                    self.cascade(level, slot);
                    continue;
                }
            }
            let Some(tick) = tick0 else {
                // Only cancelled events remained; loop to re-check overflow.
                continue;
            };

            let slot = (tick & SLOT_MASK) as usize;
            self.occupancy[0] &= !(1 << slot);
            self.slot_min[0][slot] = u64::MAX;
            let mut bucket = std::mem::take(&mut self.scratch);
            bucket.append(&mut self.levels[0][slot]);
            self.wheel_count -= bucket.len();
            for key in bucket.drain(..) {
                debug_assert_eq!(key.time, tick);
                if self.reap_if_cancelled(&key) {
                    continue;
                }
                self.batch.push_back(key);
            }
            self.scratch = bucket;
            self.cursor = tick;
            if self.batch.is_empty() {
                continue; // the whole bucket had been cancelled
            }
            // Bucket FIFO == seq FIFO: direct inserts and cascades may have
            // interleaved, so restore the heap's (time, seq) order within
            // the same-timestamp batch. Nearly always already sorted. The
            // sort must be *stable*: seeded (content-derived) keys may
            // repeat, and equal keys keep their schedule order.
            self.batch_time = tick;
            self.batch.make_contiguous().sort_by_key(|k| k.seq);
            return true;
        }
    }
}

struct HeapEntry {
    time: u64,
    seq: u64,
    cancellable: bool,
    event: Event,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The binary-heap event queue the timing wheel replaced, kept as the
/// executable reference model: differential tests (`tests/event_core.rs`)
/// and the `event_core` benchmark pin the wheel's observable behaviour —
/// lexicographic `(time, seq)` pop order, cancellation semantics, clock
/// advancement — against this implementation. Events are stored inline in
/// the heap entries, exactly as the pre-wheel implementation did.
#[derive(Default)]
pub struct HeapEventQueue {
    heap: BinaryHeap<HeapEntry>,
    cancellable_pending: HashSet<u64>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: u64,
    live: usize,
}

impl HeapEventQueue {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now)
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule(&mut self, at: SimTime, event: Event) -> EventId {
        self.schedule_entry(at, event, false)
    }

    /// Schedule a cancellable event at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule_cancellable(&mut self, at: SimTime, event: Event) -> EventId {
        self.schedule_entry(at, event, true)
    }

    fn schedule_entry(&mut self, at: SimTime, event: Event, cancellable: bool) -> EventId {
        assert!(
            at.as_nanos() >= self.now,
            "cannot schedule an event in the past: {at} < {}",
            self.now()
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live += 1;
        if cancellable {
            self.cancellable_pending.insert(seq);
        }
        self.heap.push(HeapEntry {
            time: at.as_nanos(),
            seq,
            cancellable,
            event,
        });
        EventId(seq)
    }

    /// Cancel a pending cancellable event; same contract as
    /// [`EventQueue::cancel`].
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.cancellable_pending.remove(&id.0) {
            return false;
        }
        self.cancelled.insert(id.0);
        self.live -= 1;
        true
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.pop_entry().map(|(t, _, e)| (t, e))
    }

    /// Pop the next event together with its [`EventId`].
    pub fn pop_entry(&mut self) -> Option<(SimTime, EventId, Event)> {
        while let Some(entry) = self.heap.pop() {
            if entry.cancellable && !self.cancelled.is_empty() && self.cancelled.remove(&entry.seq)
            {
                continue;
            }
            if entry.cancellable {
                self.cancellable_pending.remove(&entry.seq);
            }
            self.live -= 1;
            self.now = entry.time;
            return Some((
                SimTime::from_nanos(entry.time),
                EventId(entry.seq),
                entry.event,
            ));
        }
        None
    }

    /// The timestamp of the next pending event, if any. (`&mut self` to
    /// mirror [`EventQueue::peek_time`]; tombstones are purged here.)
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if entry.cancellable
                && !self.cancelled.is_empty()
                && self.cancelled.contains(&entry.seq)
            {
                let entry = self.heap.pop().expect("peeked entry exists");
                self.cancelled.remove(&entry.seq);
                continue;
            }
            return Some(SimTime::from_nanos(entry.time));
        }
        None
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(flow: FlowId) -> Event {
        Event::FlowStart { flow }
    }

    fn popped_flows(q: &mut EventQueue) -> Vec<(u64, FlowId)> {
        std::iter::from_fn(|| q.pop())
            .map(|(t, e)| match e {
                Event::FlowStart { flow } => (t.as_nanos(), flow),
                other => panic!("unexpected event {other:?}"),
            })
            .collect()
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), start(3));
        q.schedule(SimTime::from_micros(10), start(1));
        q.schedule(SimTime::from_micros(20), start(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_nanos() / 1000)
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for flow in 0..10 {
            q.schedule(t, start(flow));
        }
        let mut flows = Vec::new();
        while let Some((_, Event::FlowStart { flow })) = q.pop() {
            flows.push(flow);
        }
        assert_eq!(flows, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn ties_across_wheel_levels_still_pop_in_seq_order() {
        // Event 0 lands on wheel level 1 (delta 1000 ns) and stays there
        // while the cursor advances past 936 ns via two level-0 pops. Event
        // 3 then schedules at the same 1000 ns timestamp with delta < 64,
        // going straight into the level-0 bucket — *before* event 0 cascades
        // into it. The drain must still pop seq 0 first.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1000), start(0));
        q.schedule(SimTime::from_nanos(900), start(1));
        q.schedule(SimTime::from_nanos(950), start(2));
        assert_eq!(q.pop().map(|(t, _)| t.as_nanos()), Some(900));
        assert_eq!(q.pop().map(|(t, _)| t.as_nanos()), Some(950));
        q.schedule(SimTime::from_nanos(1000), start(3));
        assert_eq!(popped_flows(&mut q), vec![(1000, 0), (1000, 3)]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), start(0));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), start(0));
        q.pop();
        q.schedule(SimTime::from_micros(5), start(1));
    }

    #[test]
    fn peek_then_earlier_schedule_pops_in_order() {
        // Peeking may advance the wheel cursor; an event scheduled behind
        // the cursor afterwards (the add-flow-between-runs pattern) must
        // still pop first.
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5), start(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
        q.schedule(SimTime::from_millis(1), start(1));
        q.schedule(SimTime::from_millis(2), start(2));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(1)));
        assert_eq!(
            popped_flows(&mut q),
            vec![(1_000_000, 1), (2_000_000, 2), (5_000_000, 0)]
        );
    }

    #[test]
    fn far_future_events_cascade_through_the_overflow_level() {
        // 100 s and 200 s are far beyond the 2^36 ns (~68.7 s) wheel
        // horizon; both must wait in the overflow level and cascade into the
        // near wheels in (time, seq) order, interleaved with near events.
        let mut q = EventQueue::new();
        let far_a = SimTime::from_secs_f64(100.0);
        let far_b = SimTime::from_secs_f64(200.0);
        q.schedule(far_b, start(0));
        q.schedule(far_a, start(1));
        q.schedule(far_a, start(2)); // tie inside the overflow level
        q.schedule(SimTime::from_micros(3), start(3));
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop().map(|(t, _)| t), Some(SimTime::from_micros(3)));
        // After draining the near event the overflow front comes within the
        // horizon and cascades in.
        q.schedule(SimTime::from_secs_f64(99.0), start(4));
        assert_eq!(
            popped_flows(&mut q),
            vec![
                (99_000_000_000, 4),
                (100_000_000_000, 1),
                (100_000_000_000, 2),
                (200_000_000_000, 0),
            ]
        );
    }

    #[test]
    fn wrapped_residents_of_the_cursor_slot_do_not_mask_other_slots() {
        // Regression for the hashed-wheel wrap bug: park the cursor at the
        // very end of its own level-1 slot range, leave a next-revolution
        // event in that slot, and schedule an earlier event that maps to a
        // *different* slot. The earlier event must still pop first.
        let mut q = EventQueue::new();
        // Cursor to 2111 (the last tick of level-1 slot [2048, 2112)).
        q.schedule(SimTime::from_nanos(2111), start(0));
        q.pop();
        // 6200 ∈ [2048, 2112) + 4096 → wraps into the cursor's own slot.
        q.schedule(SimTime::from_nanos(6200), start(1));
        // 4300 maps elsewhere and precedes 6200.
        q.schedule(SimTime::from_nanos(4300), start(2));
        assert_eq!(popped_flows(&mut q), vec![(4300, 2), (6200, 1)]);
    }

    #[test]
    fn cancellation_removes_pending_events() {
        let mut q = EventQueue::new();
        let a = q.schedule_cancellable(SimTime::from_micros(10), start(0));
        let b = q.schedule_cancellable(SimTime::from_micros(10), start(1));
        let c = q.schedule_cancellable(SimTime::from_micros(20), start(2));
        assert_eq!(q.len(), 3);
        assert!(q.cancel(b));
        assert!(!q.cancel(b), "double-cancel must be a no-op");
        assert_eq!(q.len(), 2);
        assert_eq!(popped_flows(&mut q), vec![(10_000, 0), (20_000, 2)]);
        assert!(!q.cancel(a), "fired events cannot be cancelled");
        assert!(!q.cancel(c));
        assert!(q.is_empty());
    }

    #[test]
    fn plain_events_are_not_cancellable() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_micros(5), start(0));
        assert!(!q.cancel(id));
        assert_eq!(q.len(), 1);
        assert_eq!(popped_flows(&mut q), vec![(5_000, 0)]);
    }

    #[test]
    fn cancelling_the_whole_bucket_skips_to_the_next_time() {
        let mut q = EventQueue::new();
        let ids: Vec<_> = (0..4)
            .map(|f| q.schedule_cancellable(SimTime::from_micros(10), start(f)))
            .collect();
        q.schedule(SimTime::from_micros(30), start(9));
        for id in ids {
            assert!(q.cancel(id));
        }
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(30)));
        assert_eq!(popped_flows(&mut q), vec![(30_000, 9)]);
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        for round in 0..100u64 {
            let at = SimTime::from_nanos(round * 1000);
            q.schedule(at, start(0));
            q.schedule(at, start(1));
            q.pop();
            q.pop();
        }
        assert!(q.is_empty());
        q.debug_validate();
    }

    /// The payload-pool twin of `queue::pfabric_tombstones_stay_bounded`:
    /// on a long schedule/cancel/pop churn the SoA pools must stay sized to
    /// the peak *live* population, not the total event count — a free-list
    /// leak would grow them monotonically.
    #[test]
    fn payload_pools_stay_bounded_under_churn() {
        let mut q = EventQueue::new();
        let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut step = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        let route =
            crate::routes::RouteTable::new().intern(crate::topology::Route::from_links(vec![0]));
        let mut live_peak = 0usize;
        for round in 0..2000u64 {
            let base = q.now().as_nanos();
            let mut cancellable = Vec::new();
            for i in 0..8 {
                let at = SimTime::from_nanos(base + 1 + (step() % 5000));
                if i % 2 == 0 {
                    cancellable.push(q.schedule_cancellable(at, start(i)));
                } else {
                    q.schedule(
                        at,
                        Event::Arrival {
                            link: 3,
                            packet: crate::packet::Packet::data(0, 0, 1000, route),
                        },
                    );
                }
            }
            live_peak = live_peak.max(q.len());
            for id in cancellable {
                if step() % 2 == 0 {
                    q.cancel(id);
                }
            }
            // Drain roughly half the backlog each round.
            for _ in 0..5 {
                q.pop();
            }
            if round % 100 == 0 {
                let (arrivals, small) = q.debug_pool_sizes();
                let bound = 2 * live_peak + 16;
                assert!(
                    arrivals + small <= bound,
                    "pools grew to {arrivals}+{small} (live peak {live_peak})"
                );
            }
        }
        while q.pop().is_some() {}
        let (arrivals, small) = q.debug_pool_sizes();
        assert!(arrivals + small <= 2 * live_peak + 16);
        q.debug_validate();
    }

    /// `reset()` rewinds a queue for reuse (the arena-per-simulation story):
    /// pending events vanish, the clock rewinds, and repeated
    /// fill/reset cycles never grow the pools past one cycle's footprint.
    #[test]
    fn reset_rewinds_and_keeps_memory_bounded() {
        let mut q = EventQueue::new();
        let mut footprint_after_first = None;
        for _cycle in 0..50 {
            for i in 0..64 {
                q.schedule(SimTime::from_nanos(100 + i as u64 * 37), start(i));
            }
            for _ in 0..20 {
                q.pop();
            }
            q.reset();
            assert!(q.is_empty());
            assert_eq!(q.len(), 0);
            assert_eq!(q.now(), SimTime::ZERO);
            assert_eq!(q.peek_time(), None);
            let fp = q.debug_pool_sizes();
            match footprint_after_first {
                None => footprint_after_first = Some(fp),
                Some(first) => assert_eq!(fp, first, "reset cycles must not grow the pools"),
            }
            // The rewound clock accepts early timestamps again.
            q.schedule(SimTime::from_nanos(1), start(0));
            assert_eq!(q.pop().map(|(t, _)| t.as_nanos()), Some(1));
            q.reset();
        }
    }

    #[test]
    fn heap_reference_matches_on_a_smoke_sequence() {
        let mut wheel = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let times = [7u64, 3, 3, 900_000, 3, 64, 65, 4096, 1 << 37, 12];
        for (i, &t) in times.iter().enumerate() {
            let at = SimTime::from_nanos(t);
            wheel.schedule(at, start(i));
            heap.schedule(at, start(i));
        }
        loop {
            assert_eq!(wheel.peek_time(), heap.peek_time());
            let (a, b) = (wheel.pop_entry(), heap.pop_entry());
            match (a, b) {
                (None, None) => break,
                (Some((ta, ia, _)), Some((tb, ib, _))) => {
                    assert_eq!((ta, ia), (tb, ib));
                    assert_eq!(wheel.now(), heap.now());
                }
                (a, b) => panic!(
                    "queues diverged: wheel popped {:?}, heap popped {:?}",
                    a.map(|(t, i, _)| (t, i)),
                    b.map(|(t, i, _)| (t, i))
                ),
            }
        }
    }
}

//! Property tests for the deterministic graph partitioner behind the
//! domain-decomposed network (`Topology::partition`).
//!
//! The partitioner is the root of the partition-conformance contract: event
//! ownership, timer routing and the per-partition impairment streams all key
//! off the node → partition assignment, so it must (1) be a pure function of
//! the topology and the partition count, (2) assign **every** node exactly
//! one partition in range, and (3) keep each host attached to the same
//! partition as the chunked `i * n / num_hosts` rule promises, so the
//! assignment never depends on construction order or hashing.

use numfabric_sim::topology::{FatTreeConfig, LeafSpineConfig, Topology};
use proptest::prelude::*;

/// Assert the coverage contract on one topology/partition-count pair:
/// every node is owned by exactly one in-range partition, hosts follow the
/// chunk rule, and a second partitioning call reproduces the first.
fn assert_partitioning_contract(topo: &Topology, partitions: usize) {
    let parts = topo.partition(partitions);
    assert_eq!(parts.partitions(), partitions);
    // Exactly-once coverage: the assignment is total (one slot per node)
    // and every slot is in range — no node unassigned, none assigned twice.
    assert_eq!(parts.assignment().len(), topo.nodes().len());
    for (node, &p) in parts.assignment().iter().enumerate() {
        assert!(
            p < partitions,
            "node {node} assigned out-of-range partition {p}"
        );
    }
    // Hosts follow the contiguous chunk rule.
    let num_hosts = topo.hosts().len();
    for (i, &host) in topo.hosts().iter().enumerate() {
        assert_eq!(
            parts.of(host),
            i * partitions / num_hosts,
            "host {host} not in its chunk partition"
        );
    }
    // Determinism: a fresh partitioning of the same topology is identical.
    let again = topo.partition(partitions);
    assert_eq!(
        parts.assignment(),
        again.assignment(),
        "partitioner is not deterministic"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fat-trees of arity 2–6 partition deterministically with exact node
    /// coverage for any partition count 1–8.
    #[test]
    fn prop_fat_tree_partitioning_is_total_and_deterministic(
        half_k in 1usize..=3,
        partitions in 1usize..=8,
    ) {
        let topo = Topology::fat_tree(&FatTreeConfig::new(2 * half_k));
        assert_partitioning_contract(&topo, partitions);
    }

    /// Leaf-spine fabrics (including oversubscribed shapes) partition
    /// deterministically with exact node coverage.
    #[test]
    fn prop_leaf_spine_partitioning_is_total_and_deterministic(
        leaves in 2usize..=5,
        per_leaf in 1usize..=6,
        spines in 1usize..=5,
        ratio in 1.0f64..8.0,
        partitions in 1usize..=8,
    ) {
        let cfg = LeafSpineConfig::oversubscribed(leaves * per_leaf, leaves, spines, ratio);
        let topo = Topology::leaf_spine(&cfg);
        assert_partitioning_contract(&topo, partitions);
    }
}

#[test]
fn single_partition_owns_everything() {
    let topo = Topology::fat_tree(&FatTreeConfig::new(4));
    let parts = topo.partition(1);
    assert!(parts.assignment().iter().all(|&p| p == 0));
}

//! **pFabric** — the state-of-the-art FCT-minimizing datacenter transport the
//! paper compares against (Fig. 7).
//!
//! pFabric decouples scheduling from rate control: packets carry a priority
//! equal to the flow's *remaining* size, switches serve the highest-priority
//! (smallest remaining size) packet and drop the lowest-priority one when
//! full, and end hosts use only minimal rate control — flows start at line
//! rate with a window of one bandwidth-delay product, rely on the fabric to
//! do the scheduling, and recover losses with a small retransmission timeout.
//!
//! The implementation here keeps pFabric's essential behaviour (SRPT-like
//! scheduling via remaining-size priorities, shallow buffers,
//! lowest-priority drop, per-packet selective ACKs, timeout-based
//! retransmission) and omits the probe mode used to avoid starvation of very
//! long flows, which does not influence the workloads reproduced here.

use numfabric_sim::network::{AgentCtx, Network};
use numfabric_sim::packet::{Packet, DEFAULT_PAYLOAD_BYTES, MTU_BYTES};
use numfabric_sim::queue::PfabricQueue;
use numfabric_sim::timer::TimerHandle;
use numfabric_sim::topology::Topology;
use numfabric_sim::transport::{AckMode, FlowAgent};
use numfabric_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Timer tag for the retransmission-timeout check.
const RTO_TIMER: u64 = 1;

/// pFabric parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PfabricConfig {
    /// Per-port buffer in bytes. pFabric uses very shallow buffers — the
    /// paper suggests ~2×BDP; 36 kB ≈ 24 packets for a 10 Gbps / 16 µs fabric.
    pub buffer_bytes: usize,
    /// Congestion window in bytes (pFabric keeps this at one BDP).
    pub window_bytes: u64,
    /// Retransmission timeout (small: ~3 RTTs).
    pub rto: SimDuration,
}

impl Default for PfabricConfig {
    fn default() -> Self {
        Self {
            buffer_bytes: 36_000,
            window_bytes: 40_000,
            rto: SimDuration::from_micros(48),
        }
    }
}

/// The pFabric flow agent.
pub struct PfabricAgent {
    config: PfabricConfig,
    /// Unacknowledged packets: seq → (payload, last transmission time).
    outstanding: BTreeMap<u64, (u32, SimTime)>,
    /// Bytes of payload acknowledged so far (distinct packets).
    acked_payload: u64,
    next_seq: u64,
    flow_size: Option<u64>,
    /// The pending RTX timer, if armed. Held as a handle so the timer has
    /// identity; flow stop/completion cancels it structurally.
    rto_timer: Option<TimerHandle>,
}

impl PfabricAgent {
    /// An agent with the given configuration.
    pub fn new(config: PfabricConfig) -> Self {
        Self {
            config,
            outstanding: BTreeMap::new(),
            acked_payload: 0,
            next_seq: 0,
            flow_size: None,
            rto_timer: None,
        }
    }

    fn in_flight(&self) -> u64 {
        self.outstanding.values().map(|&(p, _)| p as u64).sum()
    }

    /// The flow's remaining size (the pFabric priority; lower = served first).
    fn remaining_bytes_priority(&self) -> f64 {
        match self.flow_size {
            Some(size) => (size.saturating_sub(self.acked_payload)) as f64,
            // Long-running flows always have "infinite" remaining size, i.e.
            // the lowest priority.
            None => 1e15,
        }
    }

    fn arm_rto(&mut self, ctx: &mut AgentCtx<'_>) {
        if self.rto_timer.is_none() && !self.outstanding.is_empty() {
            self.rto_timer = Some(ctx.set_timer(self.config.rto, RTO_TIMER));
        }
    }

    fn send_new_data(&mut self, ctx: &mut AgentCtx<'_>) {
        let priority = self.remaining_bytes_priority();
        while self.in_flight() + (DEFAULT_PAYLOAD_BYTES as u64) <= self.config.window_bytes {
            // Remaining *new* data is tracked by sequence number, not by the
            // flow's cumulative sent-byte counter: retransmissions must not
            // eat into the budget of bytes that still need a first
            // transmission.
            let unsent = self
                .flow_size
                .map(|size| size.saturating_sub(self.next_seq));
            let payload = match unsent {
                Some(0) => break,
                Some(rem) => rem.min(DEFAULT_PAYLOAD_BYTES as u64) as u32,
                None => DEFAULT_PAYLOAD_BYTES,
            };
            let seq = self.next_seq;
            ctx.send_data(seq, payload, |h| {
                h.pfabric_priority = priority;
            });
            self.outstanding.insert(seq, (payload, ctx.now()));
            self.next_seq += payload as u64;
        }
        self.arm_rto(ctx);
    }

    fn retransmit_expired(&mut self, ctx: &mut AgentCtx<'_>) {
        let now = ctx.now();
        let rto = self.config.rto;
        let priority = self.remaining_bytes_priority();
        let expired: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, &(_, sent))| now.duration_since(sent) >= rto)
            .map(|(&seq, _)| seq)
            .collect();
        for seq in expired {
            let (payload, _) = self.outstanding[&seq];
            ctx.send_data(seq, payload, |h| {
                h.pfabric_priority = priority;
            });
            self.outstanding.insert(seq, (payload, now));
        }
    }
}

impl FlowAgent for PfabricAgent {
    fn on_start(&mut self, ctx: &mut AgentCtx<'_>) {
        self.flow_size = ctx.spec().size_bytes;
        self.send_new_data(ctx);
    }

    fn ack_mode(&self) -> AckMode {
        // Selective per-packet ACK: the receiver echoes exactly the
        // delivered packet's sequence number.
        AckMode::PerPacket
    }

    fn on_ack(&mut self, packet: &Packet, ctx: &mut AgentCtx<'_>) {
        if let Some((payload, _)) = self.outstanding.remove(&packet.header.ack_seq) {
            self.acked_payload += payload as u64;
        }
        self.send_new_data(ctx);
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut AgentCtx<'_>) {
        if tag != RTO_TIMER {
            return;
        }
        self.rto_timer = None;
        self.retransmit_expired(ctx);
        self.send_new_data(ctx);
        self.arm_rto(ctx);
    }

    fn name(&self) -> &'static str {
        "pfabric"
    }
}

/// Build a network ready for pFabric: shallow priority queues on every link.
pub fn pfabric_network(topo: Topology, config: &PfabricConfig) -> Network {
    let buffer = config.buffer_bytes;
    Network::new(topo, move |_| Box::new(PfabricQueue::new(buffer)))
}

/// The pFabric window for a fabric of `rate_bps` and base RTT `rtt`
/// (one bandwidth-delay product, at least two packets).
pub fn bdp_window_bytes(rate_bps: f64, rtt: SimDuration) -> u64 {
    ((rate_bps * rtt.as_secs_f64() / 8.0).ceil() as u64).max(2 * MTU_BYTES as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_sim::topology::LeafSpineConfig;
    use numfabric_sim::FlowPhase;

    fn small_pfabric() -> Network {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        pfabric_network(topo, &PfabricConfig::default())
    }

    #[test]
    fn short_flow_preempts_a_long_flow() {
        let mut net = small_pfabric();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        // A long flow keeps the bottleneck busy…
        let long = net.add_flow(
            hosts[0],
            hosts[4],
            Some(10_000_000),
            SimTime::ZERO,
            0,
            None,
            Box::new(PfabricAgent::new(PfabricConfig::default())),
        );
        // …and a short flow arrives 1 ms later.
        let short = net.add_flow(
            hosts[1],
            hosts[4],
            Some(30_000),
            SimTime::from_millis(1),
            0,
            None,
            Box::new(PfabricAgent::new(PfabricConfig::default())),
        );
        net.run_until(SimTime::from_millis(30));
        assert_eq!(net.flow_phase(short), FlowPhase::Completed);
        let short_fct = net.flow_stats(short).fct().unwrap();
        // Ideal FCT for 30 kB at 10 Gbps is ~24 µs + ~16 µs RTT; pFabric
        // should finish it within a small multiple of that despite the
        // competing elephant.
        assert!(
            short_fct < SimDuration::from_micros(200),
            "short flow took {short_fct}"
        );
        let _ = long;
    }

    #[test]
    fn srpt_order_smaller_flows_finish_first() {
        let mut net = small_pfabric();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        // Three flows to the same destination, started together.
        let small = net.add_flow(
            hosts[0],
            hosts[4],
            Some(50_000),
            SimTime::ZERO,
            0,
            None,
            Box::new(PfabricAgent::new(PfabricConfig::default())),
        );
        let medium = net.add_flow(
            hosts[1],
            hosts[4],
            Some(500_000),
            SimTime::ZERO,
            0,
            None,
            Box::new(PfabricAgent::new(PfabricConfig::default())),
        );
        let large = net.add_flow(
            hosts[2],
            hosts[4],
            Some(2_000_000),
            SimTime::ZERO,
            0,
            None,
            Box::new(PfabricAgent::new(PfabricConfig::default())),
        );
        net.run_until(SimTime::from_millis(30));
        let fct = |f| net.flow_stats(f).fct().unwrap();
        assert_eq!(net.flow_phase(small), FlowPhase::Completed);
        assert_eq!(net.flow_phase(medium), FlowPhase::Completed);
        assert_eq!(net.flow_phase(large), FlowPhase::Completed);
        assert!(
            fct(small) < fct(medium),
            "{} vs {}",
            fct(small),
            fct(medium)
        );
        assert!(
            fct(medium) < fct(large),
            "{} vs {}",
            fct(medium),
            fct(large)
        );
    }

    #[test]
    fn losses_are_recovered_by_retransmission() {
        let mut net = small_pfabric();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        // Four simultaneous senders into one host overload the shallow
        // buffers, forcing drops; every flow must still complete.
        let flows: Vec<_> = (0..4)
            .map(|i| {
                net.add_flow(
                    hosts[i],
                    hosts[4],
                    Some(400_000),
                    SimTime::ZERO,
                    i,
                    None,
                    Box::new(PfabricAgent::new(PfabricConfig::default())),
                )
            })
            .collect();
        net.run_until(SimTime::from_millis(50));
        let total_drops: u64 = (0..net.num_links())
            .map(|l| net.link_stats(l).packets_dropped)
            .sum();
        assert!(
            total_drops > 0,
            "expected drops with shallow pFabric buffers"
        );
        for f in flows {
            assert_eq!(
                net.flow_phase(f),
                FlowPhase::Completed,
                "flow {f} did not finish"
            );
        }
    }

    #[test]
    fn stopping_a_flow_with_a_pending_rtx_timer_cancels_it() {
        // Regression: stale FlowTimer events for stopped flows used to stay
        // in the queue and fire into the (phase-guarded) dispatch path.
        // With handle-based timers the stop cancels the armed RTO
        // structurally.
        let mut net = small_pfabric();
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        // A long-running flow always has unacknowledged data in flight, so
        // its RTO timer is re-armed continuously.
        let flow = net.add_flow(
            hosts[0],
            hosts[4],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(PfabricAgent::new(PfabricConfig::default())),
        );
        net.run_until(SimTime::from_micros(200));
        assert_eq!(
            net.pending_timer_count(flow),
            1,
            "an active pFabric flow keeps exactly one RTO armed"
        );
        net.stop_flow(flow);
        net.run_until(SimTime::from_micros(210));
        assert_eq!(
            net.pending_timer_count(flow),
            0,
            "stop must cancel the pending RTX timer"
        );
        let sent_at_stop = net.flow_stats(flow).packets_sent;
        // Run well past several RTO periods: no retransmission fires.
        net.run_until(SimTime::from_millis(2));
        assert_eq!(net.flow_phase(flow), FlowPhase::Stopped);
        assert_eq!(net.flow_stats(flow).packets_sent, sent_at_stop);
    }

    #[test]
    fn bdp_window_helper_matches_paper_fabric() {
        // 10 Gbps × 16 µs = 20 kB.
        assert_eq!(bdp_window_bytes(10e9, SimDuration::from_micros(16)), 20_000);
        // Tiny fabrics still get a two-packet floor.
        assert_eq!(bdp_window_bytes(1e6, SimDuration::from_micros(1)), 3_000);
    }
}

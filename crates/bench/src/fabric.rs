//! The generalized-fabric scenario family: incast, all-to-all shuffle and
//! stride permutation, runnable on any `--topology` (full-bisection
//! leaf-spine, oversubscribed leaf-spine, k-ary fat-tree) under any
//! protocol.
//!
//! The drivers come in two flavors: [`run_transfers`] injects finite flows
//! and reports completion statistics (incast, shuffle), and
//! [`run_steady_state`] runs long-lived flows and compares measured rates to
//! the fluid NUM oracle (stride) — the cross-check that pins the packet
//! simulation against the fluid solution on non-leaf-spine fabrics.

use crate::protocols::Protocol;
use crate::report::{
    mean, percentile, print_table, steady_state_report_json, transfer_report_json,
};
use numfabric_num::utility::LogUtility;
use numfabric_sim::topology::Topology;
use numfabric_sim::{SimDuration, SimTime};
use numfabric_workloads::convergence::oracle_rates_bps;
use numfabric_workloads::impairments::ImpairmentSchedule;
use numfabric_workloads::registry::ScenarioOptions;
use numfabric_workloads::scenarios::{incast_pairs, shuffle_pairs, stride_pairs, PathSpec};
use numfabric_workloads::TopologySpec;
use std::sync::Arc;

/// Completion statistics of a finite-transfer run.
#[derive(Debug, Clone)]
pub struct TransferSummary {
    /// Number of flows injected.
    pub flows: usize,
    /// Flows that completed before the deadline.
    pub completed: usize,
    /// Per-flow completion times (only completed flows), seconds.
    pub fcts: Vec<f64>,
    /// Total payload bytes of the completed flows.
    pub completed_bytes: u64,
    /// Simulation time when the last completed flow finished.
    pub makespan: Option<SimDuration>,
}

impl TransferSummary {
    /// Aggregate goodput of the completed transfers in bits per second
    /// (payload bytes over the makespan).
    pub fn aggregate_goodput_bps(&self) -> f64 {
        match self.makespan {
            Some(t) if !t.is_zero() => self.completed_bytes as f64 * 8.0 / t.as_secs_f64(),
            _ => 0.0,
        }
    }

    /// Whether every injected flow completed.
    pub fn all_completed(&self) -> bool {
        self.completed == self.flows
    }
}

/// Inject one finite flow of `size_bytes` per pair at `t = 0` and run until
/// `deadline`. All flows use proportional fairness, matching the dynamic
/// workload drivers.
pub fn run_transfers(
    protocol: &Protocol,
    topo: Topology,
    pairs: &[PathSpec],
    size_bytes: u64,
    deadline: SimDuration,
) -> TransferSummary {
    run_transfers_impaired(
        protocol,
        topo,
        pairs,
        size_bytes,
        deadline,
        &ImpairmentSchedule::new(),
        0,
        1,
        1,
    )
}

/// [`run_transfers`] with an [`ImpairmentSchedule`] injected before the run
/// starts; `impair_seed` seeds the network's loss/jitter draws so impaired
/// replays stay bit-identical. `partitions` decomposes the network into
/// per-partition event cores and `partition_threads` runs them on that many
/// worker threads — with per-link impairment streams the report is
/// bit-identical for every partition and thread count.
#[allow(clippy::too_many_arguments)]
pub fn run_transfers_impaired(
    protocol: &Protocol,
    topo: Topology,
    pairs: &[PathSpec],
    size_bytes: u64,
    deadline: SimDuration,
    impairments: &ImpairmentSchedule,
    impair_seed: u64,
    partitions: usize,
    partition_threads: usize,
) -> TransferSummary {
    let utility = Arc::new(LogUtility::new());
    let mut net = protocol.build_network(topo);
    net.set_partitions(partitions);
    net.set_partition_threads(partition_threads);
    net.set_impairment_seed(impair_seed);
    impairments.apply(&mut net);
    let ids: Vec<_> = pairs
        .iter()
        .map(|p| {
            net.add_flow(
                p.src,
                p.dst,
                Some(size_bytes),
                SimTime::ZERO,
                p.spine_choice,
                None,
                protocol.make_agent(utility.clone()),
            )
        })
        .collect();
    net.run_until(SimTime::ZERO + deadline);

    let mut fcts = Vec::new();
    let mut completed_bytes = 0u64;
    let mut makespan: Option<SimDuration> = None;
    for &id in &ids {
        if let Some(fct) = net.flow_stats(id).fct() {
            fcts.push(fct.as_secs_f64());
            completed_bytes += size_bytes;
            makespan = Some(makespan.map_or(fct, |m| m.max(fct)));
        }
    }
    TransferSummary {
        flows: ids.len(),
        completed: fcts.len(),
        fcts,
        completed_bytes,
        makespan,
    }
}

/// Measured vs oracle steady-state rates of long-lived flows.
#[derive(Debug, Clone)]
pub struct SteadyStateSummary {
    /// Destination-side EWMA rate estimate per flow, bits per second.
    pub rates_bps: Vec<f64>,
    /// Fluid NUM oracle rate per flow, bits per second.
    pub oracle_bps: Vec<f64>,
}

impl SteadyStateSummary {
    /// Fraction of flows whose measured rate is within `tol` (relative) of
    /// the oracle allocation.
    pub fn fraction_within(&self, tol: f64) -> f64 {
        let ok = self
            .rates_bps
            .iter()
            .zip(&self.oracle_bps)
            .filter(|(&r, &o)| (r - o).abs() <= tol * o.max(1.0))
            .count();
        ok as f64 / self.rates_bps.len().max(1) as f64
    }

    /// Total measured throughput over total oracle throughput.
    pub fn throughput_ratio(&self) -> f64 {
        let measured: f64 = self.rates_bps.iter().sum();
        let oracle: f64 = self.oracle_bps.iter().sum();
        measured / oracle.max(1.0)
    }
}

/// Start one long-lived flow per pair, run for `run_for`, and report the
/// measured rates next to the fluid oracle's allocation for the identical
/// flow population (same routes, proportional fairness).
pub fn run_steady_state(
    protocol: &Protocol,
    topo: Topology,
    pairs: &[PathSpec],
    run_for: SimDuration,
) -> SteadyStateSummary {
    run_steady_state_impaired(
        protocol,
        topo,
        pairs,
        run_for,
        &ImpairmentSchedule::new(),
        0,
        1,
        1,
    )
}

/// [`run_steady_state`] with an [`ImpairmentSchedule`] injected before the
/// run starts. The oracle is still the *healthy* fluid allocation — under a
/// persistent impairment the measured rates document the concession, and the
/// dedicated `recovery` scenario compares against the post-failure oracle.
/// `partitions` decomposes the network into per-partition event cores and
/// `partition_threads` runs them on that many worker threads — with per-link
/// impairment streams the report is bit-identical for every partition and
/// thread count.
#[allow(clippy::too_many_arguments)]
pub fn run_steady_state_impaired(
    protocol: &Protocol,
    topo: Topology,
    pairs: &[PathSpec],
    run_for: SimDuration,
    impairments: &ImpairmentSchedule,
    impair_seed: u64,
    partitions: usize,
    partition_threads: usize,
) -> SteadyStateSummary {
    let utility = Arc::new(LogUtility::new());
    let mut net = protocol.build_network(topo.clone());
    net.set_partitions(partitions);
    net.set_partition_threads(partition_threads);
    net.set_impairment_seed(impair_seed);
    impairments.apply(&mut net);
    let ids: Vec<_> = pairs
        .iter()
        .map(|p| {
            net.add_flow(
                p.src,
                p.dst,
                None,
                SimTime::ZERO,
                p.spine_choice,
                None,
                protocol.make_agent(utility.clone()),
            )
        })
        .collect();
    net.run_until(SimTime::ZERO + run_for);
    let rates_bps: Vec<f64> = ids.iter().map(|&id| net.flow_rate_estimate(id)).collect();

    let fluid_flows: Vec<_> = pairs
        .iter()
        .map(|p| {
            (
                topo.host_route(p.src, p.dst, p.spine_choice),
                utility.clone() as numfabric_num::utility::UtilityRef,
            )
        })
        .collect();
    let oracle_bps = oracle_rates_bps(&topo, &fluid_flows);
    SteadyStateSummary {
        rates_bps,
        oracle_bps,
    }
}

/// Parse `--topology` (default `leaf-spine`). Malformed specs go through
/// `ScenarioOptions::parsed_or`'s report-and-exit-2 path.
fn spec_from_options(opts: &ScenarioOptions) -> TopologySpec {
    opts.parsed_or("--topology", TopologySpec::LeafSpine)
}

/// Parse `--partitions` (default 1): the number of per-partition event cores
/// the network is decomposed into. Zero is rejected; the knob never changes
/// report bytes — including randomized impairment draws, which are keyed per
/// link — so any value is safe for replay.
pub(crate) fn partitions_from_options(opts: &ScenarioOptions) -> usize {
    let partitions: usize = opts.parsed_or("--partitions", 1);
    if partitions == 0 {
        cli_error("--partitions must be at least 1");
    }
    partitions
}

/// Parse `--partition-threads` (default 1): the number of worker threads the
/// per-partition event cores run on each epoch. Zero is rejected; like
/// `--partitions`, the knob never changes report bytes.
pub(crate) fn partition_threads_from_options(opts: &ScenarioOptions) -> usize {
    let threads: usize = opts.parsed_or("--partition-threads", 1);
    if threads == 0 {
        cli_error("--partition-threads must be at least 1");
    }
    threads
}

/// Parse `--load` (defaulting to `default`) and validate it is a finite
/// fraction strictly inside `(0, 1)` — the shared contract of every
/// load-driven scenario (fig5, dynamic, churn): the arrival-rate formula
/// `λ = load·bps·hosts/(8·mean)` degenerates at 0 and diverges service
/// time at ≥ 1. Out-of-range values exit 2 like every other usage error.
pub(crate) fn parse_load_fraction(opts: &ScenarioOptions, default: f64) -> f64 {
    let load: f64 = opts.parsed_or("--load", default);
    if !load.is_finite() || load <= 0.0 || load >= 1.0 {
        cli_error(format!(
            "--load {load} must be a fraction strictly between 0 and 1"
        ));
    }
    load
}

/// Parse `--impair` into an [`ImpairmentSchedule`] (empty when absent) and
/// validate every referenced link against the built fabric. Malformed specs
/// and out-of-range links exit 2 like every other usage error.
pub(crate) fn impairments_from_options(
    opts: &ScenarioOptions,
    topo: &Topology,
) -> ImpairmentSchedule {
    let Some(raw) = opts.value("--impair") else {
        if opts.flag("--impair") {
            cli_error("option --impair: missing value");
        }
        return ImpairmentSchedule::new();
    };
    let schedule: ImpairmentSchedule = raw.parse().unwrap_or_else(|e| cli_error(e));
    for event in &schedule.events {
        if event.link >= topo.links().len() {
            cli_error(format!(
                "--impair references link {} but this fabric has links 0..{}",
                event.link,
                topo.links().len()
            ));
        }
    }
    schedule
}

/// Report a semantically invalid option combination and exit non-zero —
/// the same contract as `ScenarioOptions::parsed_or` for unparsable values.
pub(crate) fn cli_error(message: impl std::fmt::Display) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

/// Exit 1 after the report has been printed when the run ended wedged —
/// unfinished flows or a failed oracle comparison. Exit 0 is reserved for
/// runs whose report is complete and trustworthy, so CI smoke steps cannot
/// silently pass on a partial simulation.
pub(crate) fn exit_if_wedged(wedged: bool, reason: impl std::fmt::Display) {
    if wedged {
        eprintln!("error: {reason}");
        std::process::exit(1);
    }
}

/// A deadline generous enough for `total_bytes` through one `bottleneck_bps`
/// link, with convergence slack.
pub(crate) fn transfer_deadline(total_bytes: u64, bottleneck_bps: f64) -> SimDuration {
    let drain = total_bytes as f64 * 8.0 / bottleneck_bps;
    SimDuration::from_secs_f64(4.0 * drain) + SimDuration::from_millis(10)
}

/// The worst leaf downlink:uplink capacity ratio of the fabric (1.0 when no
/// leaf is oversubscribed, or when there is no fabric tier at all). Deadline
/// heuristics multiply by this: on an R:1 oversubscribed fabric, cross-rack
/// transfers drain up to R times slower than the NIC bound suggests.
pub(crate) fn worst_oversubscription(topo: &Topology) -> f64 {
    use numfabric_sim::topology::NodeKind;
    let mut worst: f64 = 1.0;
    for &leaf in topo.leaves() {
        let (mut down, mut up) = (0.0, 0.0);
        for l in topo.links().iter().filter(|l| l.from == leaf) {
            match topo.nodes()[l.to].kind {
                NodeKind::Host => down += l.capacity_bps,
                kind if kind.is_switch() => up += l.capacity_bps,
                _ => {}
            }
        }
        if up > 0.0 {
            worst = worst.max(down / up);
        }
    }
    worst
}

fn print_transfer_summary(label: &str, summary: &TransferSummary) {
    print_table(
        &[
            "scenario",
            "flows",
            "completed",
            "median FCT",
            "p99 FCT",
            "makespan",
            "goodput",
        ],
        &[vec![
            label.to_string(),
            format!("{}", summary.flows),
            format!("{}", summary.completed),
            percentile(&summary.fcts, 0.5)
                .map(|f| format!("{:.2} ms", f * 1e3))
                .unwrap_or_else(|| "-".into()),
            percentile(&summary.fcts, 0.99)
                .map(|f| format!("{:.2} ms", f * 1e3))
                .unwrap_or_else(|| "-".into()),
            summary
                .makespan
                .map(|m| format!("{:.2} ms", m.as_secs_f64() * 1e3))
                .unwrap_or_else(|| "-".into()),
            format!("{:.2} Gbps", summary.aggregate_goodput_bps() / 1e9),
        ]],
    );
}

/// The incast scenario: `--fanin` senders transfer `--size` bytes each to a
/// single receiver; the receiver's access link is the bottleneck. With
/// `--json` the run prints one machine-readable report instead of tables.
pub fn incast(opts: &ScenarioOptions) {
    let spec = spec_from_options(opts);
    let fan_in: usize = opts.parsed_or("--fanin", 8);
    let size: u64 = opts.parsed_or("--size", 500_000);
    let seed: u64 = opts.parsed_or("--seed", 1);
    let json = opts.flag("--json");
    let protocol = Protocol::from_options(opts);
    let topo = spec.build(opts.full());
    if fan_in == 0 || fan_in >= topo.hosts().len() {
        cli_error(format!(
            "--fanin {fan_in} needs 1..{} senders on this {}-host fabric",
            topo.hosts().len() - 1,
            topo.hosts().len()
        ));
    }
    let pairs = incast_pairs(&topo, fan_in, seed);
    let impairments = impairments_from_options(opts, &topo);
    let partitions = partitions_from_options(opts);
    let partition_threads = partition_threads_from_options(opts);
    let host_bps = topo.links()[0].capacity_bps;
    let topology = spec.describe(&topo);
    if !json {
        println!(
            "Incast: {} on {topology}\n{fan_in} senders -> host {} , {} kB each (seed {seed})\n",
            protocol.name(),
            pairs[0].dst,
            size / 1000
        );
    }
    let deadline = transfer_deadline(fan_in as u64 * size, host_bps);
    let summary = run_transfers_impaired(
        &protocol,
        topo,
        &pairs,
        size,
        deadline,
        &impairments,
        seed,
        partitions,
        partition_threads,
    );
    if json {
        println!(
            "{}",
            transfer_report_json("incast", &topology, protocol.name(), size, seed, &summary)
                .render()
        );
    } else {
        print_transfer_summary("incast", &summary);
        println!(
            "\nExpected shape: the receiver's access link is the bottleneck, so aggregate goodput\n\
             approaches its line rate ({:.0} Gbps) and FCTs stack up roughly linearly with fan-in.",
            host_bps / 1e9
        );
    }
    exit_if_wedged(
        !summary.all_completed(),
        format!(
            "incast run wedged: {}/{} transfers unfinished at the deadline",
            summary.flows - summary.completed,
            summary.flows
        ),
    );
}

/// The all-to-all shuffle scenario: every ordered pair among `--hosts`
/// participants transfers `--size` bytes. With `--json` the run prints one
/// machine-readable report instead of tables.
pub fn shuffle(opts: &ScenarioOptions) {
    let spec = spec_from_options(opts);
    let size: u64 = opts.parsed_or("--size", 100_000);
    let seed: u64 = opts.parsed_or("--seed", 1);
    let json = opts.flag("--json");
    let protocol = Protocol::from_options(opts);
    let topo = spec.build(opts.full());
    let default_participants = topo.hosts().len().min(8);
    let participants: usize = opts.parsed_or("--hosts", default_participants);
    if !(2..=topo.hosts().len()).contains(&participants) {
        cli_error(format!(
            "--hosts {participants} needs 2..={} participants on this fabric",
            topo.hosts().len()
        ));
    }
    let pairs = shuffle_pairs(&topo, Some(participants), seed);
    let impairments = impairments_from_options(opts, &topo);
    let partitions = partitions_from_options(opts);
    let partition_threads = partition_threads_from_options(opts);
    let host_bps = topo.links()[0].capacity_bps;
    let topology = spec.describe(&topo);
    if !json {
        println!(
            "Shuffle: {} on {topology}\n{participants} hosts all-to-all = {} flows, {} kB each (seed {seed})\n",
            protocol.name(),
            pairs.len(),
            size / 1000
        );
    }
    // Each participant must receive (n-1) transfers through its NIC — or,
    // on an oversubscribed fabric, through a leaf uplink up to R times
    // slower for cross-rack traffic.
    let slowdown = worst_oversubscription(&topo);
    let deadline = transfer_deadline((participants as u64 - 1) * size, host_bps / slowdown);
    let summary = run_transfers_impaired(
        &protocol,
        topo,
        &pairs,
        size,
        deadline,
        &impairments,
        seed,
        partitions,
        partition_threads,
    );
    if json {
        println!(
            "{}",
            transfer_report_json("shuffle", &topology, protocol.name(), size, seed, &summary)
                .render()
        );
    } else {
        print_transfer_summary("shuffle", &summary);
        println!(
            "\nExpected shape: on full-bisection fabrics the NICs bound the shuffle; oversubscribed\n\
             fabrics shift the bottleneck into the spine uplinks and stretch the makespan by ~the\n\
             oversubscription ratio for cross-rack traffic."
        );
    }
    exit_if_wedged(
        !summary.all_completed(),
        format!(
            "shuffle run wedged: {}/{} transfers unfinished at the deadline",
            summary.flows - summary.completed,
            summary.flows
        ),
    );
}

/// The stride-permutation scenario: host `i` sends to host `(i + stride) mod
/// n` as a long-lived flow; measured steady-state rates are compared to the
/// fluid NUM oracle. With `--json` the run prints one machine-readable
/// report instead of tables.
pub fn stride(opts: &ScenarioOptions) {
    let spec = spec_from_options(opts);
    let seed: u64 = opts.parsed_or("--seed", 1);
    let millis: u64 = opts.parsed_or("--millis", 8);
    let json = opts.flag("--json");
    let protocol = Protocol::from_options(opts);
    let topo = spec.build(opts.full());
    let default_stride = topo.hosts().len() / 2;
    let stride_by: usize = opts.parsed_or("--stride", default_stride);
    if stride_by.is_multiple_of(topo.hosts().len()) {
        cli_error(format!(
            "--stride {stride_by} is a multiple of the host count {} (flows would be self-loops)",
            topo.hosts().len()
        ));
    }
    let pairs = stride_pairs(&topo, stride_by, seed);
    let impairments = impairments_from_options(opts, &topo);
    let partitions = partitions_from_options(opts);
    let partition_threads = partition_threads_from_options(opts);
    let topology = spec.describe(&topo);
    if !json {
        println!(
            "Stride: {} on {topology}\nhost i -> host (i+{stride_by}) mod {}, {} long-lived flows, {millis} ms (seed {seed})\n",
            protocol.name(),
            topo.hosts().len(),
            pairs.len(),
        );
    }
    let summary = run_steady_state_impaired(
        &protocol,
        topo,
        &pairs,
        SimDuration::from_millis(millis),
        &impairments,
        seed,
        partitions,
        partition_threads,
    );
    if json {
        println!(
            "{}",
            steady_state_report_json("stride", &topology, protocol.name(), seed, millis, &summary)
                .render()
        );
        exit_if_wedged_steady_state(&summary);
        return;
    }
    let rates_gbps: Vec<f64> = summary.rates_bps.iter().map(|r| r / 1e9).collect();
    print_table(
        &[
            "flows",
            "mean rate",
            "min rate",
            "max rate",
            "within 10% of oracle",
            "throughput vs oracle",
        ],
        &[vec![
            format!("{}", summary.rates_bps.len()),
            format!("{:.2} Gbps", mean(&rates_gbps).unwrap_or(f64::NAN)),
            format!(
                "{:.2} Gbps",
                rates_gbps.iter().cloned().fold(f64::INFINITY, f64::min)
            ),
            format!("{:.2} Gbps", rates_gbps.iter().cloned().fold(0.0, f64::max)),
            format!("{:.0}%", summary.fraction_within(0.10) * 100.0),
            format!("{:.2}", summary.throughput_ratio()),
        ]],
    );
    println!(
        "\nExpected shape: NUMFabric tracks the oracle allocation on every fabric; on\n\
         oversubscribed leaf-spine the per-flow rates drop to ~1/ratio of the NIC speed, and on\n\
         fat-trees ECMP collisions split the affected core links evenly."
    );
    exit_if_wedged_steady_state(&summary);
}

/// The steady-state wedge check: a run whose oracle comparison is broken —
/// non-finite rate estimates, or aggregate throughput collapsed below 30% of
/// the oracle — exits 1 after its report. The threshold is wedge detection,
/// not a quality gate: every working protocol clears it with a wide margin
/// even under impairments, while a stalled simulation (rates ~0) does not.
fn exit_if_wedged_steady_state(summary: &SteadyStateSummary) {
    let finite = summary.rates_bps.iter().all(|r| r.is_finite());
    let ratio = summary.throughput_ratio();
    exit_if_wedged(
        !finite || ratio < 0.3,
        format!(
            "steady-state run wedged: throughput ratio {ratio:.3} vs the fluid oracle{}",
            if finite {
                ""
            } else {
                " (non-finite rate estimates)"
            }
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_core::NumFabricConfig;
    use numfabric_sim::topology::{FatTreeConfig, LeafSpineConfig};

    #[test]
    fn incast_transfers_complete_and_saturate_the_receiver() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(16, 2, 2));
        let pairs = incast_pairs(&topo, 4, 7);
        let protocol = Protocol::NumFabric(NumFabricConfig::default());
        let deadline = transfer_deadline(4 * 200_000, 10e9);
        let summary = run_transfers(&protocol, topo, &pairs, 200_000, deadline);
        assert!(summary.all_completed(), "{summary:?}");
        // 4 x 200 kB through one 10 Gbps NIC: goodput within a factor of the
        // line rate once overheads and convergence are accounted for.
        let goodput = summary.aggregate_goodput_bps();
        assert!(goodput > 4e9, "goodput = {goodput}");
        assert!(goodput < 10e9, "goodput = {goodput}");
    }

    #[test]
    fn steady_state_summary_statistics() {
        let summary = SteadyStateSummary {
            rates_bps: vec![10e9, 5e9, 1e9],
            oracle_bps: vec![10e9, 5.2e9, 2e9],
        };
        assert!((summary.fraction_within(0.10) - 2.0 / 3.0).abs() < 1e-9);
        let ratio = summary.throughput_ratio();
        assert!((ratio - 16.0 / 17.2).abs() < 1e-9);
    }

    #[test]
    fn transfer_summary_goodput_arithmetic() {
        let summary = TransferSummary {
            flows: 2,
            completed: 2,
            fcts: vec![0.001, 0.002],
            completed_bytes: 250_000,
            makespan: Some(SimDuration::from_millis(2)),
        };
        assert!((summary.aggregate_goodput_bps() - 1e9).abs() < 1.0);
        assert!(summary.all_completed());
    }

    #[test]
    fn parse_load_fraction_accepts_fractions_and_uses_the_default() {
        let opts = ScenarioOptions::new(vec!["--load".into(), "0.8".into()]);
        assert_eq!(parse_load_fraction(&opts, 0.6), 0.8);
        let absent = ScenarioOptions::new(vec![]);
        assert_eq!(parse_load_fraction(&absent, 0.6), 0.6);
        // Out-of-range values exit 2 through `cli_error`; that path is
        // exercised end-to-end by the CLI test in tests/churn_cli.rs.
    }

    #[test]
    fn stride_on_a_fat_tree_runs_and_reports_rates() {
        let topo = Topology::fat_tree(&FatTreeConfig::new(4));
        let pairs = stride_pairs(&topo, 8, 3);
        let protocol = Protocol::NumFabric(NumFabricConfig::default());
        let summary = run_steady_state(&protocol, topo, &pairs, SimDuration::from_millis(4));
        assert_eq!(summary.rates_bps.len(), 16);
        assert_eq!(summary.oracle_bps.len(), 16);
        assert!(summary.rates_bps.iter().all(|&r| r > 0.0));
    }
}

//! The deterministic event queue at the heart of the simulator.
//!
//! Events are ordered by timestamp; ties are broken by insertion order
//! (FIFO), which makes every simulation run fully deterministic for a given
//! seed and input — a property the convergence measurements rely on.

use crate::packet::{FlowId, Packet};
use crate::time::SimTime;
use crate::topology::LinkId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The kinds of events the simulator processes.
#[derive(Debug)]
pub enum Event {
    /// A packet has finished propagating across a link and arrives at the
    /// link's head node (next switch or the destination host).
    Arrival {
        /// The link the packet just traversed.
        link: LinkId,
        /// The packet itself.
        packet: Packet,
    },
    /// A link finished serializing its current packet and can start on the
    /// next one in its queue.
    TransmitComplete {
        /// The link that became free.
        link: LinkId,
    },
    /// A timer owned by a flow's transport agent fired.
    FlowTimer {
        /// The owning flow.
        flow: FlowId,
        /// Agent-chosen tag to distinguish multiple timers.
        tag: u64,
    },
    /// A timer owned by a link controller (e.g. the xWI price updater) fired.
    LinkTimer {
        /// The owning link.
        link: LinkId,
        /// Controller-chosen tag.
        tag: u64,
    },
    /// A flow reaches its scheduled start time.
    FlowStart {
        /// The flow to start.
        flow: FlowId,
    },
    /// A flow is forcibly stopped (used by the semi-dynamic scenario's
    /// "stop 100 flows" events).
    FlowStop {
        /// The flow to stop.
        flow: FlowId,
    },
}

struct ScheduledEvent {
    time: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with FIFO tie-break on the sequence number.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic priority queue of simulation events.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
    now: SimTime,
}

impl EventQueue {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past: {at} < {}",
            self.now
        );
        self.heap.push(ScheduledEvent {
            time: at,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Pop the next event, advancing the simulation clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| {
            self.now = s.time;
            (s.time, s.event)
        })
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(flow: FlowId) -> Event {
        Event::FlowStart { flow }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), start(3));
        q.schedule(SimTime::from_micros(10), start(1));
        q.schedule(SimTime::from_micros(20), start(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_nanos() / 1000)
            .collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for flow in 0..10 {
            q.schedule(t, start(flow));
        }
        let mut flows = Vec::new();
        while let Some((_, Event::FlowStart { flow })) = q.pop() {
            flows.push(flow);
        }
        assert_eq!(flows, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), start(0));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), start(0));
        q.pop();
        q.schedule(SimTime::from_micros(5), start(1));
    }
}

//! # numfabric-baselines
//!
//! The transport protocols the NUMFabric paper (SIGCOMM 2016) compares
//! against, implemented on the `numfabric-sim` packet-level simulator:
//!
//! * [`dgd`] — Dual Gradient Descent rate control (Low & Lapsley's
//!   optimization flow control; §3 and Eq. 14 of the paper). The classic
//!   price-based NUM algorithm whose slow, tuning-sensitive convergence
//!   motivates NUMFabric.
//! * [`rcp_star`] — RCP*, the Rate Control Protocol generalized to
//!   α-fairness (Eqs. 15–16).
//! * [`dctcp`] — DCTCP, used qualitatively (Fig. 4b) to show that deployed
//!   congestion control never converges at microsecond timescales.
//! * [`pfabric`] — pFabric, the state-of-the-art FCT-minimizing transport the
//!   FCT experiments (Fig. 7) compare NUMFabric to.
//!
//! Each module provides a `FlowAgent` (host logic), a `LinkController` where
//! the protocol needs switch support, and a `*_network` helper that builds a
//! simulator `Network` with the right queue discipline on every port.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod dctcp;
pub mod dgd;
pub mod pfabric;
pub mod rcp_star;

pub use dctcp::{dctcp_network, DctcpAgent, DctcpConfig};
pub use dgd::{dgd_network, DgdAgent, DgdConfig, DgdPriceController};
pub use pfabric::{pfabric_network, PfabricAgent, PfabricConfig};
pub use rcp_star::{rcp_star_network, RcpStarAgent, RcpStarConfig, RcpStarController};

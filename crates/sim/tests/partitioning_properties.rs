//! Property tests for the deterministic graph partitioner behind the
//! domain-decomposed network (`Topology::partition`), plus the epoch-worker
//! conformance contract: running the partition cores on a thread pool must
//! pop the exact same `(time, key)` event sequence as the sequential
//! barrier loop.
//!
//! The partitioner is the root of the partition-conformance contract: event
//! ownership, timer routing and the per-link impairment streams all key
//! off the node → partition assignment, so it must (1) be a pure function of
//! the topology and the partition count, (2) assign **every** node exactly
//! one partition in range, and (3) keep each host attached to the same
//! partition as the chunked `i * n / num_hosts` rule promises, so the
//! assignment never depends on construction order or hashing.

use numfabric_sim::queue::DropTailFifo;
use numfabric_sim::reference::SimpleWindowAgent;
use numfabric_sim::topology::{FatTreeConfig, LeafSpineConfig, Topology};
use numfabric_sim::{Network, SimDuration, SimTime};
use proptest::prelude::*;

/// Assert the coverage contract on one topology/partition-count pair:
/// every node is owned by exactly one in-range partition, hosts follow the
/// chunk rule, and a second partitioning call reproduces the first.
fn assert_partitioning_contract(topo: &Topology, partitions: usize) {
    let parts = topo.partition(partitions);
    assert_eq!(parts.partitions(), partitions);
    // Exactly-once coverage: the assignment is total (one slot per node)
    // and every slot is in range — no node unassigned, none assigned twice.
    assert_eq!(parts.assignment().len(), topo.nodes().len());
    for (node, &p) in parts.assignment().iter().enumerate() {
        assert!(
            p < partitions,
            "node {node} assigned out-of-range partition {p}"
        );
    }
    // Hosts follow the contiguous chunk rule.
    let num_hosts = topo.hosts().len();
    for (i, &host) in topo.hosts().iter().enumerate() {
        assert_eq!(
            parts.of(host),
            i * partitions / num_hosts,
            "host {host} not in its chunk partition"
        );
    }
    // Determinism: a fresh partitioning of the same topology is identical.
    let again = topo.partition(partitions);
    assert_eq!(
        parts.assignment(),
        again.assignment(),
        "partitioner is not deterministic"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fat-trees of arity 2–6 partition deterministically with exact node
    /// coverage for any partition count 1–8.
    #[test]
    fn prop_fat_tree_partitioning_is_total_and_deterministic(
        half_k in 1usize..=3,
        partitions in 1usize..=8,
    ) {
        let topo = Topology::fat_tree(&FatTreeConfig::new(2 * half_k));
        assert_partitioning_contract(&topo, partitions);
    }

    /// Leaf-spine fabrics (including oversubscribed shapes) partition
    /// deterministically with exact node coverage.
    #[test]
    fn prop_leaf_spine_partitioning_is_total_and_deterministic(
        leaves in 2usize..=5,
        per_leaf in 1usize..=6,
        spines in 1usize..=5,
        ratio in 1.0f64..8.0,
        partitions in 1usize..=8,
    ) {
        let cfg = LeafSpineConfig::oversubscribed(leaves * per_leaf, leaves, spines, ratio);
        let topo = Topology::leaf_spine(&cfg);
        assert_partitioning_contract(&topo, partitions);
    }
}

#[test]
fn single_partition_owns_everything() {
    let topo = Topology::fat_tree(&FatTreeConfig::new(4));
    let parts = topo.partition(1);
    assert!(parts.assignment().iter().all(|&p| p == 0));
}

/// Run a small leaf-spine fabric carrying `flows` stride-patterned window
/// flows for 300 µs, decomposed into `partitions` cores advancing on
/// `threads` epoch workers, and return the per-partition `(time, key)`
/// event traces.
fn traced_run(
    flows: usize,
    window: usize,
    partitions: usize,
    threads: usize,
) -> Vec<Vec<(SimTime, u64)>> {
    traced_run_dispatch(flows, window, partitions, threads, true).0
}

/// Per-flow report observables: delivered bytes, completion, drops.
type FlowDigest = Vec<(u64, bool, u64)>;

/// Like [`traced_run`], with the dispatch strategy explicit (batched
/// same-timestamp dispatch vs the per-event reference path). Also returns a
/// digest of every observable the report layer reads — delivered bytes,
/// completion, drops per flow — so the dispatch strategy is pinned all the
/// way to report bytes, not just to pop order.
fn traced_run_dispatch(
    flows: usize,
    window: usize,
    partitions: usize,
    threads: usize,
    batch: bool,
) -> (Vec<Vec<(SimTime, u64)>>, FlowDigest, u64) {
    let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
    let hosts = topo.hosts().to_vec();
    let mut net = Network::new(topo, |_| Box::new(DropTailFifo::with_default_buffer()));
    net.set_partitions(partitions);
    net.set_partition_threads(threads);
    net.set_batch_dispatch(batch);
    net.set_event_trace(true);
    let mut ids = Vec::new();
    for i in 0..flows {
        let src = hosts[i % hosts.len()];
        let dst = hosts[(i + hosts.len() / 2) % hosts.len()];
        ids.push(net.add_flow(
            src,
            dst,
            None,
            SimTime::ZERO,
            i,
            None,
            Box::new(SimpleWindowAgent::new(window)),
        ));
    }
    net.run_until(SimTime::ZERO + SimDuration::from_micros(300));
    let digest = ids
        .iter()
        .map(|&f| {
            let s = net.flow_stats(f);
            (s.bytes_delivered, s.fct().is_some(), s.packets_dropped)
        })
        .collect();
    let events = net.events_processed();
    (net.take_event_traces(), digest, events)
}

/// Batched same-timestamp dispatch is a pure dispatch-strategy change: on
/// every cell of the partitions × threads matrix the batched path must
/// reproduce the per-event reference path bit for bit — the same per-core
/// `(time, key)` event traces, the same processed-event count, and the same
/// per-flow report observables.
#[test]
fn batched_dispatch_matches_per_event_across_the_matrix() {
    for &partitions in &[1usize, 2, 4] {
        for &threads in &[1usize, 2] {
            let (trace_ref, digest_ref, events_ref) =
                traced_run_dispatch(6, 3, partitions, threads, false);
            let (trace_batch, digest_batch, events_batch) =
                traced_run_dispatch(6, 3, partitions, threads, true);
            assert!(
                trace_ref.iter().map(|t| t.len()).sum::<usize>() > 0,
                "reference run popped no events"
            );
            assert_eq!(
                trace_ref, trace_batch,
                "event traces diverged at {partitions} partitions x {threads} threads"
            );
            assert_eq!(
                events_ref, events_batch,
                "event counts diverged at {partitions} partitions x {threads} threads"
            );
            assert_eq!(
                digest_ref, digest_batch,
                "flow observables diverged at {partitions} partitions x {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The same dispatch-strategy invariance under proptest-chosen flow
    /// mixes, window sizes and matrix cells.
    #[test]
    fn prop_batched_dispatch_matches_per_event(
        flows in 1usize..=8,
        window in 1usize..=4,
        partitions in 1usize..=4,
        threads in 1usize..=2,
    ) {
        let (trace_ref, digest_ref, events_ref) =
            traced_run_dispatch(flows, window, partitions, threads, false);
        let (trace_batch, digest_batch, events_batch) =
            traced_run_dispatch(flows, window, partitions, threads, true);
        prop_assert_eq!(trace_ref, trace_batch);
        prop_assert_eq!(events_ref, events_batch);
        prop_assert_eq!(digest_ref, digest_batch);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Threaded epoch execution is a pure scheduling change: for any flow
    /// mix and any worker count, every partition core pops the exact same
    /// `(time, key)` event sequence as the sequential barrier loop.
    #[test]
    fn prop_threaded_epochs_pop_the_sequential_event_trace(
        flows in 1usize..=8,
        window in 1usize..=4,
        partitions in 1usize..=4,
        threads in 2usize..=4,
    ) {
        let sequential = traced_run(flows, window, partitions, 1);
        let threaded = traced_run(flows, window, partitions, threads);
        prop_assert!(
            sequential.iter().map(|t| t.len()).sum::<usize>() > 0,
            "run popped no events"
        );
        prop_assert_eq!(
            sequential,
            threaded,
            "event traces diverged at {} partitions x {} threads",
            partitions,
            threads
        );
    }
}

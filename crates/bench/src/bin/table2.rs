//! Regenerate **Table 2**: the default parameter settings of every scheme.

use numfabric_baselines::{DgdConfig, RcpStarConfig};
use numfabric_bench::report::print_table;
use numfabric_core::NumFabricConfig;

fn main() {
    println!("Table 2: default parameter settings in simulations\n");

    let nf = NumFabricConfig::paper_default();
    let dgd = DgdConfig::default();
    let rcp = RcpStarConfig::default();

    println!("NUMFabric [Table 2 of the paper]");
    print_table(
        &["parameter", "value"],
        &[
            vec!["ewmaTime".into(), format!("{}", nf.ewma_time)],
            vec!["dt".into(), format!("{}", nf.dt)],
            vec![
                "priceUpdateInterval".into(),
                format!("{}", nf.price_update_interval),
            ],
            vec!["eta (Eq. 10)".into(), format!("{}", nf.eta)],
            vec!["beta (Eq. 11)".into(), format!("{}", nf.beta)],
            vec![
                "initial burst".into(),
                format!("{} packets", nf.initial_burst_packets),
            ],
        ],
    );

    println!("\nDGD [Eq. 14] (gains adapted to Gbps/byte units; see DESIGN.md)");
    print_table(
        &["parameter", "value"],
        &[
            vec![
                "priceUpdateInterval".into(),
                format!("{}", dgd.price_update_interval),
            ],
            vec!["a".into(), format!("{:e} per Gbps", dgd.a_per_gbps)],
            vec!["b".into(), format!("{:e} per byte", dgd.b_per_byte)],
            vec!["unacked cap".into(), format!("{} BDP", dgd.unacked_cap_bdp)],
        ],
    );

    println!("\nRCP* [Eq. 15]");
    print_table(
        &["parameter", "value"],
        &[
            vec![
                "rateUpdateInterval".into(),
                format!("{}", rcp.rate_update_interval),
            ],
            vec!["a".into(), format!("{}", rcp.a)],
            vec!["b".into(), format!("{}", rcp.b)],
            vec!["alpha".into(), format!("{}", rcp.alpha)],
        ],
    );
}

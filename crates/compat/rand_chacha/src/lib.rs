//! Offline API-compatible shim for the `rand_chacha` crate.
//!
//! Exposes [`ChaCha8Rng`] with the `SeedableRng`/`RngCore` interface the
//! workspace uses. The core is xoshiro256++ (seeded via SplitMix64), not
//! the real ChaCha8 stream cipher — deterministic and statistically solid,
//! which is all the simulator's seeded-workload contract requires. See
//! `crates/compat/README.md`.

#![deny(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// Deterministic seedable PRNG standing in for ChaCha8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl ChaCha8Rng {
    fn step(&mut self) -> u64 {
        // xoshiro256++
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s.iter().all(|&w| w == 0) {
            // xoshiro must not start from the all-zero state.
            let mut sm = 0x9E37_79B9_7F4A_7C15u64;
            for w in s.iter_mut() {
                *w = rand::splitmix64(&mut sm);
            }
        }
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        (self.step() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.step()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(1234);
        let mut b = ChaCha8Rng::seed_from_u64(1234);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_not_stuck() {
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        let v: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(v.iter().any(|&x| x != 0));
    }

    #[test]
    fn unit_floats_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}

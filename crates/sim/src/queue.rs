//! Queue disciplines (packet schedulers) for switch egress ports.
//!
//! The paper's evaluation uses four schedulers:
//!
//! * [`DropTailFifo`] — plain FIFO with tail drop (DGD, RCP*, and as an
//!   ablation under NUMFabric weights).
//! * [`StfqQueue`] — Start-Time Fair Queueing, the WFQ approximation
//!   NUMFabric's Swift transport relies on (§5, Eqs. 12–13). Per-packet
//!   weights arrive in the `virtualPacketLen` header field.
//! * [`EcnFifo`] — FIFO with ECN marking above a threshold (DCTCP).
//! * [`PfabricQueue`] — priority queue keyed by remaining flow size with
//!   highest-priority-dequeue and lowest-priority-drop (pFabric).
//!
//! All disciplines are byte-capacity bounded (the paper uses 1 MB per port).

use crate::packet::{FlowId, Packet};
use crate::time::SimTime;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Default per-port buffer size used in the paper's simulations (1 MB).
pub const DEFAULT_BUFFER_BYTES: usize = 1_000_000;

/// The outcome of an enqueue operation.
#[derive(Debug)]
pub enum EnqueueOutcome {
    /// The packet was accepted (and nothing was dropped).
    Accepted,
    /// The packet was accepted but an already-queued victim was dropped to
    /// make room (pFabric-style drop of the lowest-priority packet).
    AcceptedWithVictim(Packet),
    /// The arriving packet itself was dropped.
    Dropped(Packet),
}

impl EnqueueOutcome {
    /// The dropped packet, if any.
    pub fn dropped(self) -> Option<Packet> {
        match self {
            EnqueueOutcome::Accepted => None,
            EnqueueOutcome::AcceptedWithVictim(p) | EnqueueOutcome::Dropped(p) => Some(p),
        }
    }

    /// Whether the arriving packet was accepted.
    pub fn accepted(&self) -> bool {
        !matches!(self, EnqueueOutcome::Dropped(_))
    }
}

/// A packet scheduler for one switch egress port.
pub trait QueueDiscipline: Send {
    /// Offer a packet to the queue.
    fn enqueue(&mut self, packet: Packet, now: SimTime) -> EnqueueOutcome;

    /// Remove the next packet to transmit, if any.
    fn dequeue(&mut self, now: SimTime) -> Option<Packet>;

    /// Total bytes currently queued.
    fn backlog_bytes(&self) -> usize;

    /// Number of packets currently queued.
    fn backlog_packets(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.backlog_packets() == 0
    }

    /// Forget all per-flow scheduler state for a flow that has finished
    /// (frees STFQ virtual-finish-time entries; a no-op for stateless queues).
    fn release_flow(&mut self, _flow: FlowId) {}
}

// ---------------------------------------------------------------------------
// DropTail FIFO
// ---------------------------------------------------------------------------

/// Plain FIFO with tail drop once the byte limit is exceeded.
#[derive(Debug)]
pub struct DropTailFifo {
    queue: VecDeque<Packet>,
    capacity_bytes: usize,
    backlog: usize,
}

impl DropTailFifo {
    /// A FIFO with the given byte capacity.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            queue: VecDeque::new(),
            capacity_bytes,
            backlog: 0,
        }
    }

    /// A FIFO with the paper's default 1 MB buffer.
    pub fn with_default_buffer() -> Self {
        Self::new(DEFAULT_BUFFER_BYTES)
    }
}

impl QueueDiscipline for DropTailFifo {
    fn enqueue(&mut self, packet: Packet, _now: SimTime) -> EnqueueOutcome {
        if self.backlog + packet.wire_bytes as usize > self.capacity_bytes {
            return EnqueueOutcome::Dropped(packet);
        }
        self.backlog += packet.wire_bytes as usize;
        self.queue.push_back(packet);
        EnqueueOutcome::Accepted
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Packet> {
        let p = self.queue.pop_front()?;
        self.backlog -= p.wire_bytes as usize;
        Some(p)
    }

    fn backlog_bytes(&self) -> usize {
        self.backlog
    }

    fn backlog_packets(&self) -> usize {
        self.queue.len()
    }
}

// ---------------------------------------------------------------------------
// ECN-marking FIFO (DCTCP)
// ---------------------------------------------------------------------------

/// FIFO with tail drop plus ECN marking when the backlog exceeds a threshold
/// (DCTCP's single-threshold marking at the switch).
#[derive(Debug)]
pub struct EcnFifo {
    inner: DropTailFifo,
    /// Marking threshold in bytes.
    marking_threshold_bytes: usize,
}

impl EcnFifo {
    /// An ECN FIFO with the given capacity and marking threshold (bytes).
    pub fn new(capacity_bytes: usize, marking_threshold_bytes: usize) -> Self {
        Self {
            inner: DropTailFifo::new(capacity_bytes),
            marking_threshold_bytes,
        }
    }

    /// DCTCP's recommended threshold for 10 Gbps links (~65 packets ≈ 97 KB),
    /// with the paper's 1 MB buffer.
    pub fn dctcp_10g() -> Self {
        Self::new(DEFAULT_BUFFER_BYTES, 65 * 1500)
    }
}

impl QueueDiscipline for EcnFifo {
    fn enqueue(&mut self, mut packet: Packet, now: SimTime) -> EnqueueOutcome {
        if packet.header.ecn_capable && self.inner.backlog_bytes() >= self.marking_threshold_bytes {
            packet.header.ecn_marked = true;
        }
        self.inner.enqueue(packet, now)
    }

    fn dequeue(&mut self, now: SimTime) -> Option<Packet> {
        self.inner.dequeue(now)
    }

    fn backlog_bytes(&self) -> usize {
        self.inner.backlog_bytes()
    }

    fn backlog_packets(&self) -> usize {
        self.inner.backlog_packets()
    }
}

// ---------------------------------------------------------------------------
// Start-Time Fair Queueing (WFQ approximation used by Swift)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
struct StfqEntry {
    virtual_start: f64,
    seq: u64,
}

impl Eq for StfqEntry {}

impl PartialOrd for StfqEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for StfqEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on (virtual_start, seq): invert the comparison.
        other
            .virtual_start
            .partial_cmp(&self.virtual_start)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Start-Time Fair Queueing (Goyal, Vin & Cheng), the practical WFQ
/// approximation the paper sketches for NUMFabric switches (§5).
///
/// Each arriving data packet `p^k_i` of flow `i` is assigned
///
/// ```text
/// S(p^k_i) = max(V, F(p^{k-1}_i))          (virtual start, Eq. 12)
/// F(p^k_i) = S(p^k_i) + L(p^k_i) / w_i     (virtual finish, Eq. 13)
/// ```
///
/// where `V` is the port's virtual time (the virtual start of the packet in
/// service) and `L/w` arrives pre-divided in the `virtualPacketLen` header
/// field. Packets are served in increasing order of virtual start time.
/// Control packets (`virtualPacketLen == 0`) are scheduled at the current
/// virtual time, i.e. ahead of any backlogged data.
#[derive(Debug)]
pub struct StfqQueue {
    /// Min-heap of queued packets keyed by virtual start.
    heap: BinaryHeap<StfqEntry>,
    /// Packet storage, keyed by the heap entry's sequence number.
    packets: HashMap<u64, Packet>,
    /// Per-flow virtual finish time of the last *enqueued* packet.
    last_finish: HashMap<FlowId, f64>,
    /// The port's virtual time: virtual start of the most recently dequeued packet.
    virtual_time: f64,
    capacity_bytes: usize,
    backlog: usize,
    next_seq: u64,
}

impl StfqQueue {
    /// An STFQ queue with the given byte capacity.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            heap: BinaryHeap::new(),
            packets: HashMap::new(),
            last_finish: HashMap::new(),
            virtual_time: 0.0,
            capacity_bytes,
            backlog: 0,
            next_seq: 0,
        }
    }

    /// An STFQ queue with the paper's default 1 MB buffer.
    pub fn with_default_buffer() -> Self {
        Self::new(DEFAULT_BUFFER_BYTES)
    }

    /// The port's current virtual time (exposed for tests and tracing).
    pub fn virtual_time(&self) -> f64 {
        self.virtual_time
    }
}

impl QueueDiscipline for StfqQueue {
    fn enqueue(&mut self, packet: Packet, _now: SimTime) -> EnqueueOutcome {
        if self.backlog + packet.wire_bytes as usize > self.capacity_bytes {
            return EnqueueOutcome::Dropped(packet);
        }
        // Control packets (virtualPacketLen == 0) are scheduled at the current
        // virtual time: they jump ahead of backlogged data but never delay the
        // virtual clock.
        let (start, finish) = if packet.is_data() && packet.header.virtual_packet_len > 0.0 {
            let prev_finish = self
                .last_finish
                .get(&packet.flow)
                .copied()
                .unwrap_or(self.virtual_time);
            let start = self.virtual_time.max(prev_finish);
            let finish = start + packet.header.virtual_packet_len;
            self.last_finish.insert(packet.flow, finish);
            (start, finish)
        } else {
            (self.virtual_time, self.virtual_time)
        };
        let _ = finish;
        self.backlog += packet.wire_bytes as usize;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(StfqEntry {
            virtual_start: start,
            seq,
        });
        self.packets.insert(seq, packet);
        EnqueueOutcome::Accepted
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Packet> {
        let entry = self.heap.pop()?;
        let packet = self
            .packets
            .remove(&entry.seq)
            .expect("heap entry without stored packet");
        self.backlog -= packet.wire_bytes as usize;
        // Advance the port's virtual time to the served packet's virtual start.
        self.virtual_time = self.virtual_time.max(entry.virtual_start);
        Some(packet)
    }

    fn backlog_bytes(&self) -> usize {
        self.backlog
    }

    fn backlog_packets(&self) -> usize {
        self.packets.len()
    }

    fn release_flow(&mut self, flow: FlowId) {
        self.last_finish.remove(&flow);
    }
}

// ---------------------------------------------------------------------------
// pFabric priority queue
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq)]
struct PfabricEntry {
    priority: f64,
    seq: u64,
}

impl Eq for PfabricEntry {}

impl PartialOrd for PfabricEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PfabricEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on (priority, seq): smallest remaining size first, FIFO ties.
        other
            .priority
            .partial_cmp(&self.priority)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Max-heap twin of [`PfabricEntry`]: pops the *largest* (priority, seq)
/// first, so the eviction candidate is found in O(log n) instead of a full
/// scan. Priority ties evict the youngest (largest seq) packet, which makes
/// the victim choice deterministic (the previous scan broke ties by hash-map
/// iteration order).
#[derive(Debug, Clone, Copy, PartialEq)]
struct PfabricWorstEntry {
    priority: f64,
    seq: u64,
}

impl Eq for PfabricWorstEntry {}

impl PartialOrd for PfabricWorstEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for PfabricWorstEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.priority
            .partial_cmp(&other.priority)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

/// pFabric's switch behaviour: dequeue the packet with the smallest priority
/// value (remaining flow size); when the buffer is full, drop the queued
/// packet with the *largest* priority value to admit a higher-priority
/// arrival (or drop the arrival if it is itself the lowest priority).
///
/// Both the serve order and the evict order are tracked by heaps with *lazy
/// tombstone deletion*: evicting or serving a packet leaves a stale entry in
/// the other heap, which is skipped (and discarded) when it surfaces, and a
/// heap is rebuilt from the live packets once tombstones outnumber them 2:1
/// (tombstones at the "far end" of a heap would otherwise never surface and
/// accumulate for the queue's lifetime). Every operation is O(log live)
/// amortized — the previous implementation rebuilt the serve heap with
/// `BinaryHeap::retain` (O(n)) on every worst-drop and scanned all queued
/// packets (O(n)) to find the victim.
#[derive(Debug)]
pub struct PfabricQueue {
    /// Serve order: min-heap on (priority, seq).
    heap: BinaryHeap<PfabricEntry>,
    /// Evict order: max-heap on (priority, seq).
    worst: BinaryHeap<PfabricWorstEntry>,
    /// Live packets; a heap entry whose seq is absent here is a tombstone.
    packets: HashMap<u64, Packet>,
    /// Persistent rebuild workspace: live `(priority, seq)` pairs are
    /// gathered here once per prune, so a rebuild walks the (cache-hostile)
    /// packet map a single time even when both heaps need rebuilding, and
    /// steady-state pruning allocates nothing after warm-up.
    rebuild_scratch: Vec<(f64, u64)>,
    capacity_bytes: usize,
    backlog: usize,
    next_seq: u64,
}

impl PfabricQueue {
    /// A pFabric queue with the given byte capacity. pFabric is designed for
    /// very shallow buffers (e.g. ~2×BDP), unlike the other schemes.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            heap: BinaryHeap::new(),
            worst: BinaryHeap::new(),
            packets: HashMap::new(),
            rebuild_scratch: Vec::new(),
            capacity_bytes,
            backlog: 0,
            next_seq: 0,
        }
    }

    fn insert(&mut self, packet: Packet) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.backlog += packet.wire_bytes as usize;
        let priority = packet.header.pfabric_priority;
        self.heap.push(PfabricEntry { priority, seq });
        self.worst.push(PfabricWorstEntry { priority, seq });
        self.packets.insert(seq, packet);
    }

    /// The (priority, seq) of the worst live packet, discarding any stale
    /// eviction-heap entries on the way.
    fn worst_queued(&mut self) -> Option<(f64, u64)> {
        while let Some(entry) = self.worst.peek() {
            if self.packets.contains_key(&entry.seq) {
                return Some((entry.priority, entry.seq));
            }
            self.worst.pop();
        }
        None
    }

    /// Rebuild a heap from the live packets once its tombstones outnumber
    /// them: served packets' eviction-heap entries (lowest priorities) and
    /// evicted packets' serve-heap entries (highest priorities) sit at the
    /// far end of their heap and would never surface to be discarded lazily.
    /// Each rebuild is O(live) and runs at most once per O(live) stale-making
    /// operations, so the amortized cost stays O(1); pop order is unaffected
    /// because every (priority, seq) key is distinct.
    fn maybe_prune(&mut self) {
        let cap = 2 * self.packets.len() + 16;
        let serve_stale = self.heap.len() > cap;
        let worst_stale = self.worst.len() > cap;
        if !serve_stale && !worst_stale {
            return;
        }
        self.rebuild_scratch.clear();
        self.rebuild_scratch.extend(
            self.packets
                .iter()
                .map(|(&seq, p)| (p.header.pfabric_priority, seq)),
        );
        if serve_stale {
            self.heap.clear();
            self.heap.extend(
                self.rebuild_scratch
                    .iter()
                    .map(|&(priority, seq)| PfabricEntry { priority, seq }),
            );
        }
        if worst_stale {
            self.worst.clear();
            self.worst.extend(
                self.rebuild_scratch
                    .iter()
                    .map(|&(priority, seq)| PfabricWorstEntry { priority, seq }),
            );
        }
    }
}

impl QueueDiscipline for PfabricQueue {
    fn enqueue(&mut self, packet: Packet, _now: SimTime) -> EnqueueOutcome {
        if self.backlog + packet.wire_bytes as usize <= self.capacity_bytes {
            self.insert(packet);
            return EnqueueOutcome::Accepted;
        }
        // Buffer full: find the worst queued packet.
        match self.worst_queued() {
            Some((worst_priority, worst_seq))
                if packet.header.pfabric_priority < worst_priority =>
            {
                // Evict the victim; its serve-heap entry becomes a tombstone.
                let victim = self
                    .packets
                    .remove(&worst_seq)
                    .expect("victim packet must exist");
                self.backlog -= victim.wire_bytes as usize;
                self.worst.pop();
                // Accept the new packet (there is now room, or at worst we
                // drop it below).
                let outcome = if self.backlog + packet.wire_bytes as usize <= self.capacity_bytes {
                    self.insert(packet);
                    EnqueueOutcome::AcceptedWithVictim(victim)
                } else {
                    EnqueueOutcome::Dropped(packet)
                };
                self.maybe_prune();
                outcome
            }
            _ => EnqueueOutcome::Dropped(packet),
        }
    }

    fn dequeue(&mut self, _now: SimTime) -> Option<Packet> {
        let entry = loop {
            let entry = self.heap.pop()?;
            if self.packets.contains_key(&entry.seq) {
                break entry;
            }
            // Tombstone for an evicted packet; skip it.
        };
        let packet = self
            .packets
            .remove(&entry.seq)
            .expect("checked for existence above");
        self.backlog -= packet.wire_bytes as usize;
        self.maybe_prune();
        Some(packet)
    }

    fn backlog_bytes(&self) -> usize {
        self.backlog
    }

    fn backlog_packets(&self) -> usize {
        self.packets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, DEFAULT_PAYLOAD_BYTES};
    use crate::routes::{RouteId, RouteTable};
    use crate::topology::Route;

    fn route() -> RouteId {
        RouteTable::new().intern(Route::from_links(vec![0]))
    }

    fn data(flow: FlowId, weight: f64) -> Packet {
        let mut p = Packet::data(flow, 0, DEFAULT_PAYLOAD_BYTES, route());
        p.header.virtual_packet_len = p.wire_bytes as f64 / weight;
        p
    }

    fn now() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn fifo_preserves_order_and_tracks_backlog() {
        let mut q = DropTailFifo::new(10_000);
        for flow in 0..3 {
            assert!(q.enqueue(data(flow, 1.0), now()).accepted());
        }
        assert_eq!(q.backlog_packets(), 3);
        assert_eq!(q.backlog_bytes(), 3 * 1500);
        let order: Vec<FlowId> = std::iter::from_fn(|| q.dequeue(now()))
            .map(|p| p.flow)
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_tail_drops_when_full() {
        let mut q = DropTailFifo::new(3_000);
        assert!(q.enqueue(data(0, 1.0), now()).accepted());
        assert!(q.enqueue(data(1, 1.0), now()).accepted());
        let outcome = q.enqueue(data(2, 1.0), now());
        assert!(!outcome.accepted());
        assert_eq!(q.backlog_packets(), 2);
    }

    #[test]
    fn ecn_marks_only_above_threshold_and_only_capable_packets() {
        let mut q = EcnFifo::new(100_000, 3_000);
        let mut capable = data(0, 1.0);
        capable.header.ecn_capable = true;
        // Below threshold: no mark.
        assert!(q.enqueue(capable.clone(), now()).accepted());
        assert!(q.enqueue(capable.clone(), now()).accepted());
        // Backlog now 3000 >= threshold: next capable packet is marked.
        assert!(q.enqueue(capable.clone(), now()).accepted());
        let not_capable = data(1, 1.0);
        assert!(q.enqueue(not_capable, now()).accepted());
        let marks: Vec<bool> = std::iter::from_fn(|| q.dequeue(now()))
            .map(|p| p.header.ecn_marked)
            .collect();
        assert_eq!(marks, vec![false, false, true, false]);
    }

    #[test]
    fn stfq_shares_in_proportion_to_weights() {
        // Flow 0 with weight 1 and flow 1 with weight 3, continuously backlogged:
        // out of the first 8 dequeued data packets, flow 1 should get ~6.
        let mut q = StfqQueue::new(1_000_000);
        for _ in 0..20 {
            assert!(q.enqueue(data(0, 1.0), now()).accepted());
            assert!(q.enqueue(data(1, 3.0), now()).accepted());
        }
        let mut served = [0usize; 2];
        for _ in 0..8 {
            let p = q.dequeue(now()).unwrap();
            served[p.flow] += 1;
        }
        assert!(served[1] >= 5, "weighted service was {served:?}");
        assert!(served[0] >= 1, "low-weight flow starved: {served:?}");
    }

    #[test]
    fn stfq_equal_weights_alternate() {
        let mut q = StfqQueue::new(1_000_000);
        for _ in 0..4 {
            q.enqueue(data(0, 1.0), now());
            q.enqueue(data(1, 1.0), now());
        }
        let order: Vec<FlowId> = (0..8).map(|_| q.dequeue(now()).unwrap().flow).collect();
        let zero = order.iter().filter(|&&f| f == 0).count();
        assert_eq!(zero, 4);
        // No flow is served more than twice in a row under equal weights.
        let mut run = 1;
        for w in order.windows(2) {
            run = if w[0] == w[1] { run + 1 } else { 1 };
            assert!(run <= 2, "unfair run in {order:?}");
        }
    }

    #[test]
    fn stfq_control_packets_bypass_data_backlog() {
        let mut q = StfqQueue::new(1_000_000);
        for _ in 0..5 {
            q.enqueue(data(0, 1.0), now());
        }
        let ack = Packet::ack(7, route());
        q.enqueue(ack, now());
        // The ACK was enqueued last but its virtual start equals the current
        // virtual time, so it is served before data packets whose virtual
        // start is strictly later. (The first data packet also has virtual
        // start == current virtual time; FIFO tie-break applies.)
        let kinds: Vec<bool> = (0..3)
            .map(|_| q.dequeue(now()).unwrap().is_data())
            .collect();
        assert!(kinds.iter().filter(|&&d| !d).count() == 1, "{kinds:?}");
    }

    #[test]
    fn stfq_weight_changes_take_effect_per_packet() {
        // The same flow sends with weight 1, then with weight 10; once the
        // heavier packets arrive they are spaced closer in virtual time, so a
        // competing flow's share drops accordingly. Here we just check the
        // virtual finish bookkeeping doesn't blow up and service stays
        // work-conserving.
        let mut q = StfqQueue::new(1_000_000);
        for i in 0..10 {
            let w = if i < 5 { 1.0 } else { 10.0 };
            q.enqueue(data(0, w), now());
        }
        let mut count = 0;
        while q.dequeue(now()).is_some() {
            count += 1;
        }
        assert_eq!(count, 10);
        assert_eq!(q.backlog_bytes(), 0);
    }

    #[test]
    fn stfq_release_flow_clears_state() {
        let mut q = StfqQueue::new(1_000_000);
        q.enqueue(data(0, 1.0), now());
        q.dequeue(now());
        assert!(q.last_finish.contains_key(&0));
        q.release_flow(0);
        assert!(!q.last_finish.contains_key(&0));
    }

    fn pfabric_pkt(flow: FlowId, priority: f64) -> Packet {
        let mut p = Packet::data(flow, 0, DEFAULT_PAYLOAD_BYTES, route());
        p.header.pfabric_priority = priority;
        p
    }

    #[test]
    fn pfabric_serves_smallest_priority_first() {
        let mut q = PfabricQueue::new(1_000_000);
        q.enqueue(pfabric_pkt(0, 5e6), now());
        q.enqueue(pfabric_pkt(1, 1e3), now());
        q.enqueue(pfabric_pkt(2, 2e4), now());
        let order: Vec<FlowId> = (0..3).map(|_| q.dequeue(now()).unwrap().flow).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn pfabric_drops_lowest_priority_when_full() {
        let mut q = PfabricQueue::new(3_000);
        q.enqueue(pfabric_pkt(0, 100.0), now());
        q.enqueue(pfabric_pkt(1, 10.0), now());
        // Queue full. A higher-priority (smaller value) arrival evicts flow 0.
        let outcome = q.enqueue(pfabric_pkt(2, 1.0), now());
        match outcome {
            EnqueueOutcome::AcceptedWithVictim(victim) => assert_eq!(victim.flow, 0),
            other => panic!("expected eviction, got {other:?}"),
        }
        // A lower-priority (larger value) arrival is itself dropped.
        let outcome = q.enqueue(pfabric_pkt(3, 1e9), now());
        assert!(!outcome.accepted());
        let order: Vec<FlowId> = (0..2).map(|_| q.dequeue(now()).unwrap().flow).collect();
        assert_eq!(order, vec![2, 1]);
        assert_eq!(q.backlog_bytes(), 0);
    }

    #[test]
    fn pfabric_handles_stale_heap_entries_after_eviction() {
        let mut q = PfabricQueue::new(3_000);
        q.enqueue(pfabric_pkt(0, 50.0), now());
        q.enqueue(pfabric_pkt(1, 60.0), now());
        q.enqueue(pfabric_pkt(2, 1.0), now()); // evicts flow 1
        q.enqueue(pfabric_pkt(3, 2.0), now()); // evicts flow 0
        let order: Vec<FlowId> = std::iter::from_fn(|| q.dequeue(now()))
            .map(|p| p.flow)
            .collect();
        assert_eq!(order, vec![2, 3]);
    }

    /// A straightforward O(n)-scan pFabric model with the same semantics the
    /// tombstone queue implements: serve smallest (priority, arrival), evict
    /// largest (priority, arrival).
    struct PfabricReference {
        queued: Vec<(f64, u64, Packet)>,
        capacity_bytes: usize,
        backlog: usize,
        next_seq: u64,
    }

    impl PfabricReference {
        fn new(capacity_bytes: usize) -> Self {
            Self {
                queued: Vec::new(),
                capacity_bytes,
                backlog: 0,
                next_seq: 0,
            }
        }

        fn enqueue(&mut self, packet: Packet) -> EnqueueOutcome {
            if self.backlog + packet.wire_bytes as usize <= self.capacity_bytes {
                self.backlog += packet.wire_bytes as usize;
                self.queued
                    .push((packet.header.pfabric_priority, self.next_seq, packet));
                self.next_seq += 1;
                return EnqueueOutcome::Accepted;
            }
            let worst = self
                .queued
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    a.0.partial_cmp(&b.0)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.1.cmp(&b.1))
                })
                .map(|(i, &(p, _, _))| (i, p));
            match worst {
                Some((i, worst_priority)) if packet.header.pfabric_priority < worst_priority => {
                    let (_, _, victim) = self.queued.remove(i);
                    self.backlog -= victim.wire_bytes as usize;
                    if self.backlog + packet.wire_bytes as usize <= self.capacity_bytes {
                        self.backlog += packet.wire_bytes as usize;
                        self.queued
                            .push((packet.header.pfabric_priority, self.next_seq, packet));
                        self.next_seq += 1;
                        EnqueueOutcome::AcceptedWithVictim(victim)
                    } else {
                        EnqueueOutcome::Dropped(packet)
                    }
                }
                _ => EnqueueOutcome::Dropped(packet),
            }
        }

        fn dequeue(&mut self) -> Option<Packet> {
            let best = self.queued.iter().enumerate().min_by(|(_, a), (_, b)| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.1.cmp(&b.1))
            })?;
            let i = best.0;
            let (_, _, packet) = self.queued.remove(i);
            self.backlog -= packet.wire_bytes as usize;
            Some(packet)
        }
    }

    /// Tombstones must not accumulate for the queue's lifetime: served
    /// packets leave never-surfacing entries at the bottom of the eviction
    /// max-heap (and evicted packets at the bottom of the serve min-heap),
    /// so both heaps are periodically rebuilt from the live set.
    #[test]
    fn pfabric_tombstones_stay_bounded() {
        let mut q = PfabricQueue::new(8 * 1500);
        let mut state = 7u64;
        for i in 0..50_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let priority = ((state >> 8) % 1_000_000) as f64;
            q.enqueue(pfabric_pkt((i % 16) as usize, priority), now());
            if i % 3 == 0 {
                q.dequeue(now());
            }
            let bound = 2 * q.packets.len() + 16;
            assert!(q.heap.len() <= bound, "serve heap grew to {}", q.heap.len());
            assert!(
                q.worst.len() <= bound,
                "evict heap grew to {}",
                q.worst.len()
            );
        }
    }

    /// Regression test for the tombstone rewrite: on a long pseudo-random
    /// overload sequence (the worst-drop path fires constantly), accept /
    /// evict / drop decisions, victim identities, serve order and backlog
    /// accounting all match the O(n) reference model packet-for-packet.
    #[test]
    fn pfabric_tombstone_matches_reference_scan() {
        let mut q = PfabricQueue::new(8 * 1500);
        let mut reference = PfabricReference::new(8 * 1500);
        // Deterministic pseudo-random priorities with repeats (ties matter).
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for i in 0..4_000u64 {
            let r = next();
            if r % 5 == 0 {
                let a = q.dequeue(now());
                let b = reference.dequeue();
                match (&a, &b) {
                    (Some(x), Some(y)) => {
                        assert_eq!(x.flow, y.flow, "serve order diverged at op {i}");
                        assert_eq!(x.seq, y.seq, "serve order diverged at op {i}");
                    }
                    (None, None) => {}
                    _ => panic!("dequeue presence diverged at op {i}: {a:?} vs {b:?}"),
                }
            } else {
                // Coarse priorities force frequent exact ties.
                let priority = ((r >> 8) % 32) as f64 * 100.0;
                let mut p = pfabric_pkt((i % 16) as usize, priority);
                p.seq = i * 1460;
                let a = q.enqueue(p.clone(), now());
                let b = reference.enqueue(p);
                match (&a, &b) {
                    (EnqueueOutcome::Accepted, EnqueueOutcome::Accepted) => {}
                    (
                        EnqueueOutcome::AcceptedWithVictim(x),
                        EnqueueOutcome::AcceptedWithVictim(y),
                    ) => {
                        assert_eq!(
                            (x.flow, x.seq),
                            (y.flow, y.seq),
                            "victims diverged at op {i}"
                        );
                    }
                    (EnqueueOutcome::Dropped(x), EnqueueOutcome::Dropped(y)) => {
                        assert_eq!((x.flow, x.seq), (y.flow, y.seq));
                    }
                    _ => panic!("enqueue outcome diverged at op {i}: {a:?} vs {b:?}"),
                }
            }
            assert_eq!(q.backlog_bytes(), reference.backlog);
            assert_eq!(q.backlog_packets(), reference.queued.len());
        }
        // Drain and compare the tail.
        loop {
            match (q.dequeue(now()), reference.dequeue()) {
                (Some(x), Some(y)) => assert_eq!((x.flow, x.seq), (y.flow, y.seq)),
                (None, None) => break,
                (a, b) => panic!("drain diverged: {a:?} vs {b:?}"),
            }
        }
    }
}

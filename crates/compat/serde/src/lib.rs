//! Offline no-op shim for serde's derive macros.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` to mark
//! config/report types as serializable — nothing actually serializes them
//! yet. These derives expand to nothing, so the attribute compiles while
//! keeping the annotation in place for when a real serde becomes
//! available. See `crates/compat/README.md`.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! The `bench` scenario: simulator performance measurement for the perf
//! trajectory.
//!
//! Two layers are timed:
//!
//! * **Event-core micro-benchmark** — schedule-and-pop a fixed batch of
//!   events through a standalone timing wheel ([`numfabric_sim::EventQueue`])
//!   and report events/second and nanoseconds/event. This isolates the
//!   scheduler hot path from protocol work.
//! * **End-to-end scenario wall-clock** — run the small incast, stride and
//!   churn scenarios exactly as `numfabric-run` would and report wall-clock
//!   seconds plus flows-per-wall-second. This is the number a perf
//!   regression actually moves.
//!
//! The run always writes `BENCH_<rev>.json` (set `--rev` to a commit hash in
//! CI; the default is `local`) so successive revisions accumulate comparable
//! perf snapshots; `--json` additionally prints the same document to stdout.
//! The timings themselves are machine-dependent — everything else in the
//! document (event counts, flow counts) is deterministic.

use crate::fabric::{run_steady_state, run_transfers, transfer_deadline};
use crate::protocols::Protocol;
use crate::report::{Json, ParsedJson};
use numfabric_core::NumFabricConfig;
use numfabric_num::utility::LogUtility;
use numfabric_sim::topology::{LeafSpineConfig, Topology};
use numfabric_sim::{Event, EventQueue, SimDuration, SimTime};
use numfabric_workloads::registry::ScenarioOptions;
use numfabric_workloads::scenarios::{incast_pairs, stride_pairs};
use std::sync::Arc;
use std::time::Instant;

/// One timed section: how many units of work, how long they took.
#[derive(Debug, Clone)]
pub struct Timing {
    /// What was timed (e.g. `event-core`, `incast`).
    pub name: &'static str,
    /// Units of work performed (scheduled events, injected flows, ...).
    pub units: u64,
    /// Wall-clock seconds elapsed.
    pub seconds: f64,
}

impl Timing {
    /// Units of work per wall-clock second.
    pub fn per_second(&self) -> f64 {
        self.units as f64 / self.seconds.max(1e-12)
    }

    /// Wall-clock nanoseconds per unit of work.
    pub fn ns_per_unit(&self) -> f64 {
        self.seconds * 1e9 / (self.units as f64).max(1.0)
    }
}

/// Schedule `events` timer events at striped future times into a fresh
/// timing wheel, then pop the queue dry, timing the whole round trip.
///
/// The stripe pattern (a small prime stride across a microsecond window)
/// exercises same-batch appends, near-future wheel slots and the overflow
/// level without drawing any randomness, so every run schedules the exact
/// same event set.
pub fn event_core_timing(events: u64) -> Timing {
    let mut queue = EventQueue::new();
    let started = Instant::now();
    for i in 0..events {
        // Deterministic spread over ~1 ms with heavy same-slot batching.
        let at = SimTime::from_nanos((i % 997) * 1_024 + (i / 997));
        queue.schedule(
            at,
            Event::FlowTimer {
                flow: (i % 64) as usize,
                tag: i,
            },
        );
    }
    let mut popped = 0u64;
    while queue.pop().is_some() {
        popped += 1;
    }
    assert_eq!(popped, events, "timing wheel lost events");
    Timing {
        name: "event-core",
        units: events,
        seconds: started.elapsed().as_secs_f64(),
    }
}

/// Time the partitioned network's event cores end to end: a stride
/// steady-state run decomposed into `partitions` cores advancing on
/// `threads` epoch workers. Units are *simulation events processed*, so
/// [`Timing::per_second`] is the threaded event-core throughput. The event
/// count itself is deterministic — identical for every
/// `partitions × threads` combination — which is what lets successive
/// `BENCH_<rev>.json` snapshots compare throughput across revisions;
/// speedup is only measurable on multicore hosts.
pub fn threaded_event_core_timing(partitions: usize, threads: usize) -> Timing {
    let topo = Topology::leaf_spine(&LeafSpineConfig::small(16, 2, 2));
    let pairs = stride_pairs(&topo, 8, 1);
    let protocol = Protocol::NumFabric(NumFabricConfig::default());
    let utility = Arc::new(LogUtility::new());
    let mut net = protocol.build_network(topo);
    net.set_partitions(partitions);
    net.set_partition_threads(threads);
    for p in &pairs {
        net.add_flow(
            p.src,
            p.dst,
            None,
            SimTime::ZERO,
            p.spine_choice,
            None,
            protocol.make_agent(utility.clone()),
        );
    }
    let started = Instant::now();
    net.run_until(SimTime::from_millis(4));
    Timing {
        name: "partitioned-cores",
        units: net.events_processed(),
        seconds: started.elapsed().as_secs_f64(),
    }
}

/// Time the small incast scenario end to end (build network, inject flows,
/// run to the deadline). Returns the timing plus the number of completed
/// transfers, which the report records to prove the run did real work.
pub fn incast_timing() -> (Timing, u64) {
    let topo = Topology::leaf_spine(&LeafSpineConfig::small(16, 2, 2));
    let pairs = incast_pairs(&topo, 8, 1);
    let protocol = Protocol::NumFabric(NumFabricConfig::default());
    let size = 200_000u64;
    let deadline = transfer_deadline(pairs.len() as u64 * size, 10e9);
    let started = Instant::now();
    let summary = run_transfers(&protocol, topo, &pairs, size, deadline);
    let timing = Timing {
        name: "incast",
        units: summary.flows as u64,
        seconds: started.elapsed().as_secs_f64(),
    };
    (timing, summary.completed as u64)
}

/// Time the small stride steady-state scenario end to end. Returns the
/// timing plus the flow count.
pub fn stride_timing() -> (Timing, u64) {
    let topo = Topology::leaf_spine(&LeafSpineConfig::small(16, 2, 2));
    let pairs = stride_pairs(&topo, 8, 1);
    let protocol = Protocol::NumFabric(NumFabricConfig::default());
    let started = Instant::now();
    let summary = run_steady_state(&protocol, topo, &pairs, SimDuration::from_millis(4));
    let timing = Timing {
        name: "stride",
        units: summary.rates_bps.len() as u64,
        seconds: started.elapsed().as_secs_f64(),
    };
    (timing, summary.rates_bps.len() as u64)
}

/// Time the small churn scenario end to end (streaming arrivals, flow-slab
/// recycling, sketch accumulation). Units are offered flows, so
/// [`Timing::per_second`] is the churn engine's flows-per-wall-second.
/// Returns the timing plus the number of completed flows.
pub fn churn_timing() -> (Timing, u64) {
    let protocol = Protocol::NumFabric(NumFabricConfig::default());
    let run = crate::churn::ChurnRun {
        arrival_window: SimDuration::from_millis(8),
        drain: SimDuration::from_millis(40),
        ..crate::churn::ChurnRun::reduced(0.6, 1)
    };
    let started = Instant::now();
    let summary = crate::churn::run_churn(&protocol, &run, 1, 1);
    let timing = Timing {
        name: "churn",
        units: summary.offered,
        seconds: started.elapsed().as_secs_f64(),
    };
    (timing, summary.completed)
}

/// Assemble the `BENCH_<rev>.json` document from measured timings.
///
/// Split out from [`bench()`] so tests can pin the report shape with
/// synthetic timings instead of re-running the (machine-dependent)
/// measurement.
pub fn bench_report_json(
    rev: &str,
    event_core: &Timing,
    threaded: &[(usize, usize, Timing)],
    scenarios: &[(Timing, u64)],
) -> Json {
    Json::Obj(vec![
        ("rev", Json::str(rev)),
        (
            "event_core",
            Json::Obj(vec![
                ("events", Json::Int(event_core.units)),
                ("elapsed_seconds", Json::Num(event_core.seconds)),
                ("events_per_sec", Json::Num(event_core.per_second())),
                ("ns_per_event", Json::Num(event_core.ns_per_unit())),
            ]),
        ),
        (
            "threaded_event_core",
            Json::Arr(
                threaded
                    .iter()
                    .map(|(partitions, threads, t)| {
                        Json::Obj(vec![
                            ("partitions", Json::Int(*partitions as u64)),
                            ("threads", Json::Int(*threads as u64)),
                            ("events", Json::Int(t.units)),
                            ("wall_seconds", Json::Num(t.seconds)),
                            ("events_per_sec", Json::Num(t.per_second())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "scenarios",
            Json::Arr(
                scenarios
                    .iter()
                    .map(|(t, completed)| {
                        Json::Obj(vec![
                            ("name", Json::str(t.name)),
                            ("flows", Json::Int(t.units)),
                            ("completed", Json::Int(*completed)),
                            ("wall_seconds", Json::Num(t.seconds)),
                            ("flows_per_sec", Json::Num(t.per_second())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The maximum tolerated drop in the gated events/sec metric before
/// `bench --compare` exits non-zero: 15%, chosen well above timing noise on
/// a warm machine but well below any real dispatch-path regression.
pub const REGRESSION_THRESHOLD: f64 = 0.15;

/// One metric's baseline-vs-current comparison row.
#[derive(Debug)]
pub struct MetricDelta {
    /// Metric label (e.g. `event_core events/s`).
    pub name: String,
    /// Baseline value from the committed document.
    pub old: f64,
    /// Freshly measured value.
    pub new: f64,
    /// Whether a >threshold regression of this metric fails the run. Only
    /// the single-thread micro-bench gates: wall-clock scenario timings and
    /// multi-worker cells are too noisy on shared 1-core CI runners.
    pub gated: bool,
}

impl MetricDelta {
    /// Relative change, positive = improvement for throughput metrics.
    pub fn ratio(&self) -> f64 {
        if self.old <= 0.0 {
            return 0.0;
        }
        self.new / self.old - 1.0
    }

    /// Whether this row trips the regression gate.
    pub fn regressed(&self, threshold: f64) -> bool {
        self.gated && self.ratio() < -threshold
    }
}

/// Diff a fresh measurement against a parsed baseline `BENCH_*.json`.
///
/// Throughput rows (events/sec — higher is better) compare directly;
/// scenario rows compare wall-clock seconds, flipped so a positive ratio
/// still means "faster". Metrics missing from the baseline are skipped —
/// older documents may predate a bench section.
pub fn baseline_deltas(
    old: &ParsedJson,
    event_core: &Timing,
    threaded: &[(usize, usize, Timing)],
    scenarios: &[(Timing, u64)],
) -> Vec<MetricDelta> {
    let mut rows = Vec::new();
    if let Some(rate) = old
        .get("event_core")
        .and_then(|c| c.get("events_per_sec"))
        .and_then(ParsedJson::as_f64)
    {
        rows.push(MetricDelta {
            name: "event_core events/s".into(),
            old: rate,
            new: event_core.per_second(),
            gated: true,
        });
    }
    let old_threaded = old.get("threaded_event_core").and_then(ParsedJson::as_arr);
    for (partitions, threads, timing) in threaded {
        let baseline = old_threaded.and_then(|cells| {
            cells
                .iter()
                .find(|c| {
                    c.get("partitions").and_then(ParsedJson::as_f64) == Some(*partitions as f64)
                        && c.get("threads").and_then(ParsedJson::as_f64) == Some(*threads as f64)
                })
                .and_then(|c| c.get("events_per_sec"))
                .and_then(ParsedJson::as_f64)
        });
        if let Some(rate) = baseline {
            rows.push(MetricDelta {
                name: format!("partition cores {partitions}x{threads} events/s"),
                old: rate,
                new: timing.per_second(),
                gated: false,
            });
        }
    }
    let old_scenarios = old.get("scenarios").and_then(ParsedJson::as_arr);
    for (timing, _) in scenarios {
        let baseline = old_scenarios.and_then(|cells| {
            cells
                .iter()
                .find(|c| c.get("name").and_then(ParsedJson::as_str) == Some(timing.name))
                .and_then(|c| c.get("wall_seconds"))
                .and_then(ParsedJson::as_f64)
        });
        if let Some(seconds) = baseline {
            // Flip so positive ratio = faster, like the throughput rows.
            rows.push(MetricDelta {
                name: format!("scenario {} speed", timing.name),
                old: 1.0 / seconds.max(1e-12),
                new: 1.0 / timing.seconds.max(1e-12),
                gated: false,
            });
        }
    }
    rows
}

/// The `bench` scenario: measure event-core throughput and end-to-end
/// scenario wall-clock, write `BENCH_<rev>.json`, and print the document
/// with `--json` (or a human table without).
///
/// With `--compare OLD.json` the run additionally diffs itself against the
/// committed baseline document, prints per-metric deltas (to stderr, so
/// `--json` stdout stays machine-parseable) and exits 1 when the gated
/// single-thread micro-bench regressed more than [`REGRESSION_THRESHOLD`].
pub fn bench(opts: &ScenarioOptions) {
    let events: u64 = opts.parsed_or("--events", 2_000_000);
    let rev = opts.value("--rev").unwrap_or("local").to_string();
    let json = opts.flag("--json");

    let event_core = event_core_timing(events);
    let threaded: Vec<(usize, usize, Timing)> = [(1, 1), (2, 2), (4, 4)]
        .into_iter()
        .map(|(p, t)| (p, t, threaded_event_core_timing(p, t)))
        .collect();
    let scenarios = vec![incast_timing(), stride_timing(), churn_timing()];
    let report = bench_report_json(&rev, &event_core, &threaded, &scenarios);
    let rendered = report.render();

    let path = format!("BENCH_{rev}.json");
    if let Err(e) = std::fs::write(&path, format!("{rendered}\n")) {
        crate::fabric::cli_error(format!("cannot write {path}: {e}"));
    }

    if let Some(old_path) = opts.value("--compare") {
        let old_text = match std::fs::read_to_string(old_path) {
            Ok(text) => text,
            Err(e) => crate::fabric::cli_error(format!("cannot read {old_path}: {e}")),
        };
        let old = match ParsedJson::parse(&old_text) {
            Ok(doc) => doc,
            Err(e) => crate::fabric::cli_error(format!("cannot parse {old_path}: {e}")),
        };
        let old_rev = old
            .get("rev")
            .and_then(ParsedJson::as_str)
            .unwrap_or("<unknown>");
        eprintln!("Perf vs baseline {old_path} (rev {old_rev}):");
        let rows = baseline_deltas(&old, &event_core, &threaded, &scenarios);
        let mut regressed = false;
        for row in &rows {
            let gate = if row.gated { " [gated]" } else { "" };
            eprintln!(
                "  {:<38} {:>14.0} -> {:>14.0}  {:>+7.1}%{gate}",
                row.name,
                row.old,
                row.new,
                row.ratio() * 100.0
            );
            if row.regressed(REGRESSION_THRESHOLD) {
                regressed = true;
            }
        }
        if regressed {
            eprintln!(
                "FAIL: gated events/sec metric regressed more than {:.0}%",
                REGRESSION_THRESHOLD * 100.0
            );
            std::process::exit(1);
        }
    }

    if json {
        println!("{rendered}");
    } else {
        println!(
            "Event core: {} events in {:.3} s = {:.2} M events/s ({:.0} ns/event)",
            event_core.units,
            event_core.seconds,
            event_core.per_second() / 1e6,
            event_core.ns_per_unit()
        );
        for (p, workers, t) in &threaded {
            println!(
                "Partition cores {p}x{workers}: {} events in {:.3} s = {:.2} M events/s",
                t.units,
                t.seconds,
                t.per_second() / 1e6
            );
        }
        for (t, completed) in &scenarios {
            println!(
                "Scenario {:>7}: {} flows ({} completed) in {:.3} s wall-clock",
                t.name, t.units, completed, t.seconds
            );
        }
        println!("wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_arithmetic() {
        let t = Timing {
            name: "event-core",
            units: 1_000_000,
            seconds: 0.5,
        };
        assert!((t.per_second() - 2e6).abs() < 1.0);
        assert!((t.ns_per_unit() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn event_core_round_trips_all_events() {
        // Small batch: the assert inside event_core_timing is the check.
        let t = event_core_timing(10_000);
        assert_eq!(t.units, 10_000);
        assert!(t.seconds >= 0.0);
    }

    #[test]
    fn bench_report_has_the_contract_fields() {
        let core = Timing {
            name: "event-core",
            units: 1000,
            seconds: 0.001,
        };
        let incast = Timing {
            name: "incast",
            units: 8,
            seconds: 0.25,
        };
        let threaded = Timing {
            name: "partitioned-cores",
            units: 4000,
            seconds: 0.002,
        };
        let json = bench_report_json("abc123", &core, &[(2, 2, threaded)], &[(incast, 8)]).render();
        for needle in [
            r#""rev":"abc123""#,
            r#""events":1000"#,
            r#""events_per_sec":1000000.0"#,
            r#""ns_per_event":1000.0"#,
            r#""threaded_event_core""#,
            r#""partitions":2"#,
            r#""threads":2"#,
            r#""events":4000"#,
            r#""name":"incast""#,
            r#""completed":8"#,
            r#""wall_seconds":0.25"#,
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    fn timing(name: &'static str, units: u64, seconds: f64) -> Timing {
        Timing {
            name,
            units,
            seconds,
        }
    }

    /// Build a baseline document through the real renderer + parser, so the
    /// comparison is tested against exactly what lands in BENCH_*.json.
    fn baseline_doc(core_rate: f64, threaded_rate: f64, stride_secs: f64) -> ParsedJson {
        let core = timing("event-core", 1_000_000, 1_000_000.0 / core_rate);
        let threaded = timing("partitioned-cores", 1_000_000, 1_000_000.0 / threaded_rate);
        let stride = timing("stride", 16, stride_secs);
        let doc = bench_report_json("seed", &core, &[(1, 1, threaded)], &[(stride, 16)]);
        ParsedJson::parse(&doc.render()).expect("rendered baseline must parse")
    }

    #[test]
    fn compare_passes_on_improvement_and_fails_on_gated_regression() {
        let old = baseline_doc(1_000_000.0, 5_000_000.0, 0.150);
        // 2x faster micro-bench: no row regressed.
        let fast = timing("event-core", 2_000_000, 1.0);
        let rows = baseline_deltas(&old, &fast, &[], &[]);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].gated && rows[0].ratio() > 0.9);
        assert!(!rows[0].regressed(REGRESSION_THRESHOLD));

        // 20% slower micro-bench: gated row trips the threshold.
        let slow = timing("event-core", 800_000, 1.0);
        let rows = baseline_deltas(&old, &slow, &[], &[]);
        assert!(rows[0].regressed(REGRESSION_THRESHOLD));

        // 10% slower: within tolerance.
        let ok = timing("event-core", 900_000, 1.0);
        let rows = baseline_deltas(&old, &ok, &[], &[]);
        assert!(!rows[0].regressed(REGRESSION_THRESHOLD));
    }

    #[test]
    fn compare_reports_ungated_rows_without_failing() {
        let old = baseline_doc(1_000_000.0, 5_000_000.0, 0.150);
        let core = timing("event-core", 1_000_000, 1.0);
        // Both wall-clock rows 2x slower — reported, but never gated.
        let threaded = vec![(1usize, 1usize, timing("partitioned-cores", 1_000_000, 0.4))];
        let scenarios = vec![(timing("stride", 16, 0.300), 16u64)];
        let rows = baseline_deltas(&old, &core, &threaded, &scenarios);
        assert_eq!(rows.len(), 3);
        let threaded_row = &rows[1];
        assert!(threaded_row.name.contains("1x1"));
        assert!(!threaded_row.gated && threaded_row.ratio() < -0.15);
        assert!(!threaded_row.regressed(REGRESSION_THRESHOLD));
        let stride_row = &rows[2];
        assert!(stride_row.name.contains("stride"));
        assert!((stride_row.ratio() + 0.5).abs() < 1e-9, "2x slower = -50%");
        assert!(!stride_row.regressed(REGRESSION_THRESHOLD));
    }

    #[test]
    fn compare_skips_metrics_missing_from_the_baseline() {
        let old = ParsedJson::parse(r#"{"rev":"ancient"}"#).unwrap();
        let core = timing("event-core", 1_000_000, 1.0);
        let rows = baseline_deltas(&old, &core, &[], &[]);
        assert!(rows.is_empty(), "nothing to compare against");
    }

    #[test]
    fn threaded_event_core_counts_are_thread_invariant() {
        let sequential = threaded_event_core_timing(1, 1);
        let threaded = threaded_event_core_timing(2, 2);
        assert!(sequential.units > 0, "run processed no events");
        assert_eq!(
            sequential.units, threaded.units,
            "event count must not depend on partitions or threads"
        );
    }
}

//! Impairment schedules: *which* link fails, degrades or recovers *when*.
//!
//! The simulator provides the mechanism
//! ([`Network::schedule_link_change`] plus the
//! [`LinkChange`] vocabulary); this module provides the policy layer that
//! scenario CLIs and sweeps speak:
//!
//! * [`ImpairmentSchedule`] — an explicit list of timed link changes,
//!   parseable from a compact `kind@usec:link[=value]` CLI spelling and
//!   applied to a network in one call;
//! * [`ImpairmentSchedule::cable_cut`] — the canonical recovery
//!   experiment: fail both directions of a cable, optionally restore it;
//! * [`ImpairmentProfile`] — the small named family (`none`, `flap`,
//!   `loss`, `jitter`) the sweep engine uses as a grid axis, each expanding
//!   to a seeded, topology-aware schedule.
//!
//! Determinism: a schedule is pure data; applying it injects ordinary
//! events into the timing wheel, and the seeded victim selection below uses
//! the same ChaCha8 streams as every other workload generator. Replays of
//! an impaired scenario are bit-identical.

use numfabric_sim::network::Network;
use numfabric_sim::topology::{LinkId, Topology};
use numfabric_sim::{LinkChange, SimDuration, SimTime};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;
use std::str::FromStr;

/// One timed link change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpairmentEvent {
    /// When the change takes effect.
    pub at: SimTime,
    /// The affected link.
    pub link: LinkId,
    /// The state change to apply.
    pub change: LinkChange,
}

/// A list of timed link changes, applied to a [`Network`] as ordinary
/// scheduled events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ImpairmentSchedule {
    /// The scheduled changes, in the order they were added (the event wheel
    /// orders same-time entries by insertion, so this order is meaningful
    /// for same-instant changes).
    pub events: Vec<ImpairmentEvent>,
}

impl ImpairmentSchedule {
    /// An empty schedule (a healthy run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the schedule contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled changes.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Append a change.
    pub fn push(&mut self, at: SimTime, link: LinkId, change: LinkChange) {
        self.events.push(ImpairmentEvent { at, link, change });
    }

    /// The canonical failure experiment: cut a cable — both directions of
    /// the `forward`/`reverse` twin pair go down at `fail_at` — and
    /// optionally restore it at `restore_at`.
    pub fn cable_cut(
        topo: &Topology,
        forward: LinkId,
        fail_at: SimTime,
        restore_at: Option<SimTime>,
    ) -> Self {
        let mut schedule = Self::new();
        let spec = &topo.links()[forward];
        let twin = topo.link_between(spec.to, spec.from);
        for link in std::iter::once(forward).chain(twin) {
            schedule.push(fail_at, link, LinkChange::Down);
            if let Some(at) = restore_at {
                schedule.push(at, link, LinkChange::Up);
            }
        }
        schedule
    }

    /// Schedule every event onto `net` (then just run the simulation).
    pub fn apply(&self, net: &mut Network) {
        for e in &self.events {
            net.schedule_link_change(e.at, e.link, e.change);
        }
    }

    /// The earliest `Down`/`DownFwd` instant, if the schedule fails anything
    /// — the reference point recovery metrics measure from.
    pub fn first_failure_at(&self) -> Option<SimTime> {
        self.events
            .iter()
            .filter(|e| matches!(e.change, LinkChange::Down | LinkChange::DownFwd))
            .map(|e| e.at)
            .min()
    }
}

/// Error produced when an impairment spelling does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidImpairment(String);

impl fmt::Display for InvalidImpairment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid impairment `{}`; expected comma-separated \
             `down@<usec>:<link>`, `down-fwd@<usec>:<link>`, `up@<usec>:<link>`, \
             `loss@<usec>:<link>=<prob>`, `jitter@<usec>:<link>=<usec>` or \
             `speed@<usec>:<link>=<bps>`",
            self.0
        )
    }
}

impl std::error::Error for InvalidImpairment {}

impl FromStr for ImpairmentSchedule {
    type Err = InvalidImpairment;

    /// Parse the compact CLI spelling: comma-separated
    /// `kind@usec:link[=value]` entries, e.g.
    /// `down@500:12,up@1500:12,loss@0:7=0.01,jitter@0:3=5`.
    /// `down-fwd@usec:link` is the asymmetric variant: only the given
    /// direction of the cable fails, and reroute avoids only that dead
    /// direction (`down` conservatively reroutes around the whole cable).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || InvalidImpairment(s.to_string());
        let mut schedule = ImpairmentSchedule::new();
        for entry in s.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let (kind, rest) = entry.split_once('@').ok_or_else(err)?;
            let (usec, rest) = rest.split_once(':').ok_or_else(err)?;
            let at = SimTime::from_micros(usec.parse::<u64>().map_err(|_| err())?);
            let (link_str, value) = match rest.split_once('=') {
                Some((l, v)) => (l, Some(v)),
                None => (rest, None),
            };
            let link: LinkId = link_str.parse().map_err(|_| err())?;
            let change = match (kind, value) {
                ("down", None) => LinkChange::Down,
                ("down-fwd", None) => LinkChange::DownFwd,
                ("up", None) => LinkChange::Up,
                ("loss", Some(v)) => {
                    let p: f64 = v.parse().map_err(|_| err())?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(err());
                    }
                    LinkChange::Loss(p)
                }
                ("jitter", Some(v)) => {
                    let us: f64 = v.parse().map_err(|_| err())?;
                    if !(us.is_finite() && us >= 0.0) {
                        return Err(err());
                    }
                    LinkChange::Jitter(SimDuration::from_secs_f64(us * 1e-6))
                }
                ("speed", Some(v)) => {
                    let bps: f64 = v.parse().map_err(|_| err())?;
                    if !(bps.is_finite() && bps > 0.0) {
                        return Err(err());
                    }
                    LinkChange::Speed(bps)
                }
                _ => return Err(err()),
            };
            schedule.push(at, link, change);
        }
        if schedule.is_empty() {
            return Err(err());
        }
        Ok(schedule)
    }
}

/// All fabric cables of a topology as `(forward, reverse)` twin pairs,
/// deduplicated (each cable appears once, lower link id first) — the victim
/// pool for seeded impairment profiles. Host NICs are excluded: failing one
/// partitions a host, which is a different experiment.
pub fn fabric_cables(topo: &Topology) -> Vec<(LinkId, LinkId)> {
    topo.links()
        .iter()
        .enumerate()
        .filter_map(|(id, l)| {
            let switch_pair =
                topo.nodes()[l.from].kind.is_switch() && topo.nodes()[l.to].kind.is_switch();
            let twin = topo.link_between(l.to, l.from)?;
            (switch_pair && id < twin).then_some((id, twin))
        })
        .collect()
}

/// The named impairment families the sweep engine exposes as a grid axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImpairmentProfile {
    /// Healthy fabric (the default axis value; no events, no RNG draws).
    None,
    /// One seeded fabric cable flaps: down at 1/4 of the run window, both
    /// directions, restored at 1/2.
    Flap,
    /// One seeded fabric cable corrupts 1% of packets in both directions
    /// for the whole run.
    Loss,
    /// One seeded fabric cable adds up to 5 µs of per-packet delay jitter
    /// in both directions for the whole run.
    Jitter,
}

impl ImpairmentProfile {
    /// Every profile, in the order grids print them.
    pub const ALL: [ImpairmentProfile; 4] = [
        ImpairmentProfile::None,
        ImpairmentProfile::Flap,
        ImpairmentProfile::Loss,
        ImpairmentProfile::Jitter,
    ];

    /// The profile's grid/CLI name.
    pub fn name(&self) -> &'static str {
        match self {
            ImpairmentProfile::None => "none",
            ImpairmentProfile::Flap => "flap",
            ImpairmentProfile::Loss => "loss",
            ImpairmentProfile::Jitter => "jitter",
        }
    }

    /// Expand the profile into a concrete schedule for `topo`: the victim
    /// cable is drawn from a ChaCha8 stream seeded with `seed`, and timed
    /// relative to the run `window`.
    pub fn schedule(&self, topo: &Topology, seed: u64, window: SimDuration) -> ImpairmentSchedule {
        if *self == ImpairmentProfile::None {
            return ImpairmentSchedule::new();
        }
        let cables = fabric_cables(topo);
        assert!(
            !cables.is_empty(),
            "topology has no fabric cables to impair"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (fwd, rev) = cables[rng.gen_range(0..cables.len())];
        let mut schedule = ImpairmentSchedule::new();
        match self {
            ImpairmentProfile::None => unreachable!("handled above"),
            ImpairmentProfile::Flap => {
                let quarter = SimDuration::from_nanos(window.as_nanos() / 4);
                let fail = SimTime::ZERO + quarter;
                let restore = SimTime::ZERO + quarter + quarter;
                for link in [fwd, rev] {
                    schedule.push(fail, link, LinkChange::Down);
                    schedule.push(restore, link, LinkChange::Up);
                }
            }
            ImpairmentProfile::Loss => {
                for link in [fwd, rev] {
                    schedule.push(SimTime::ZERO, link, LinkChange::Loss(0.01));
                }
            }
            ImpairmentProfile::Jitter => {
                for link in [fwd, rev] {
                    schedule.push(
                        SimTime::ZERO,
                        link,
                        LinkChange::Jitter(SimDuration::from_micros(5)),
                    );
                }
            }
        }
        schedule
    }
}

impl fmt::Display for ImpairmentProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error produced when an impairment profile name does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidProfile(String);

impl fmt::Display for InvalidProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid impairment profile `{}`; expected `none`, `flap`, `loss` or `jitter`",
            self.0
        )
    }
}

impl std::error::Error for InvalidProfile {}

impl FromStr for ImpairmentProfile {
    type Err = InvalidProfile;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ImpairmentProfile::ALL
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| InvalidProfile(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::TopologySpec;

    #[test]
    fn parses_the_documented_spellings() {
        let s: ImpairmentSchedule = "down@500:12,up@1500:12".parse().unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.events[0],
            ImpairmentEvent {
                at: SimTime::from_micros(500),
                link: 12,
                change: LinkChange::Down,
            }
        );
        assert_eq!(s.events[1].change, LinkChange::Up);
        assert_eq!(s.first_failure_at(), Some(SimTime::from_micros(500)));

        let s: ImpairmentSchedule = "loss@0:7=0.01, jitter@10:3=5, speed@100:4=1e9"
            .parse()
            .unwrap();
        assert_eq!(s.events[0].change, LinkChange::Loss(0.01));
        assert_eq!(
            s.events[1].change,
            LinkChange::Jitter(SimDuration::from_micros(5))
        );
        assert_eq!(s.events[2].change, LinkChange::Speed(1e9));
        assert_eq!(s.first_failure_at(), None);

        let s: ImpairmentSchedule = "down-fwd@250:9,up@750:9".parse().unwrap();
        assert_eq!(s.events[0].change, LinkChange::DownFwd);
        assert_eq!(s.events[0].link, 9);
        assert_eq!(
            s.first_failure_at(),
            Some(SimTime::from_micros(250)),
            "an asymmetric failure is still a failure"
        );
    }

    #[test]
    fn rejects_malformed_schedules() {
        for bad in [
            "",
            "down:12",
            "down@500",
            "down@500:12=1",
            "down-fwd@500:12=1",
            "down-fwd:12",
            "down-rev@500:12",
            "up@x:12",
            "loss@0:7",
            "loss@0:7=1.5",
            "jitter@0:3=-2",
            "speed@0:4=0",
            "teleport@0:4",
        ] {
            assert!(
                bad.parse::<ImpairmentSchedule>().is_err(),
                "`{bad}` should not parse"
            );
        }
    }

    #[test]
    fn cable_cut_downs_both_directions_and_restores() {
        let topo = TopologySpec::FatTree { k: 4 }.build(false);
        let (fwd, rev) = fabric_cables(&topo)[0];
        let cut = ImpairmentSchedule::cable_cut(
            &topo,
            fwd,
            SimTime::from_micros(100),
            Some(SimTime::from_micros(900)),
        );
        assert_eq!(cut.len(), 4);
        let downs: Vec<_> = cut
            .events
            .iter()
            .filter(|e| e.change == LinkChange::Down)
            .map(|e| e.link)
            .collect();
        assert_eq!(downs, vec![fwd, rev]);
        assert_eq!(cut.first_failure_at(), Some(SimTime::from_micros(100)));
    }

    #[test]
    fn fabric_cables_are_switch_to_switch_twin_pairs() {
        let topo = TopologySpec::FatTree { k: 4 }.build(false);
        let cables = fabric_cables(&topo);
        // k=4 fat-tree: 16 edge-agg cables + 16 agg-core cables.
        assert_eq!(cables.len(), 32);
        for (fwd, rev) in cables {
            assert!(fwd < rev);
            let f = &topo.links()[fwd];
            assert_eq!(topo.link_between(f.to, f.from), Some(rev));
            assert!(topo.nodes()[f.from].kind.is_switch());
            assert!(topo.nodes()[f.to].kind.is_switch());
        }
    }

    #[test]
    fn profiles_parse_expand_and_stay_seed_deterministic() {
        for p in ImpairmentProfile::ALL {
            assert_eq!(p.name().parse::<ImpairmentProfile>().unwrap(), p);
        }
        assert!("blackhole".parse::<ImpairmentProfile>().is_err());

        let topo = TopologySpec::FatTree { k: 4 }.build(false);
        let window = SimDuration::from_millis(4);
        assert!(ImpairmentProfile::None
            .schedule(&topo, 1, window)
            .is_empty());
        for p in [
            ImpairmentProfile::Flap,
            ImpairmentProfile::Loss,
            ImpairmentProfile::Jitter,
        ] {
            let a = p.schedule(&topo, 5, window);
            assert_eq!(a.len(), if p == ImpairmentProfile::Flap { 4 } else { 2 });
            assert_eq!(a, p.schedule(&topo, 5, window), "same seed, same victim");
        }
        // Across many seeds the victim cable varies.
        let victims: std::collections::HashSet<LinkId> = (0..32)
            .map(|s| ImpairmentProfile::Loss.schedule(&topo, s, window).events[0].link)
            .collect();
        assert!(victims.len() > 1, "victim selection ignores the seed");
    }

    #[test]
    fn flap_profile_times_relative_to_the_window() {
        let topo = TopologySpec::FatTree { k: 4 }.build(false);
        let s = ImpairmentProfile::Flap.schedule(&topo, 9, SimDuration::from_millis(8));
        assert_eq!(s.first_failure_at(), Some(SimTime::from_millis(2)));
        let restore = s
            .events
            .iter()
            .find(|e| e.change == LinkChange::Up)
            .unwrap()
            .at;
        assert_eq!(restore, SimTime::from_millis(4));
    }
}

//! Regenerate **Figure 7**: mean normalized FCT vs load for NUMFabric (with
//! the FCT-minimization utility, 2× slowed down, BDP initial window) against
//! pFabric, on the web-search workload.
//!
//! FCTs are normalized to the lowest possible FCT for each flow given its
//! size (empty-network bound), exactly as in the paper.

use numfabric_baselines::PfabricConfig;
use numfabric_bench::report::{mean, print_table};
use numfabric_bench::{generate_arrivals, run_dynamic, DynamicRun, Objective, Protocol};
use numfabric_core::NumFabricConfig;
use numfabric_sim::SimDuration;
use numfabric_workloads::distributions::EmpiricalCdf;

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let loads: Vec<f64> = if arg_flag("--full") {
        vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
    } else {
        vec![0.2, 0.4, 0.6, 0.8]
    };
    let dist = EmpiricalCdf::web_search();
    println!("Figure 7: mean normalized FCT vs load (web-search workload)\n");

    // NUMFabric for FCT minimization: 2x slow-down and a BDP initial window
    // (mimicking pFabric), as described in §6.3.
    let nf_config = NumFabricConfig::slowed_down(2.0)
        .with_bdp_initial_window(10e9, SimDuration::from_micros(16));

    let mut rows = Vec::new();
    for &load in &loads {
        let run = DynamicRun::reduced(load, 31);
        let arrivals = generate_arrivals(&run, &dist);

        let mut cells = vec![
            format!("{:.0}%", load * 100.0),
            format!("{}", arrivals.len()),
        ];
        let mut means = Vec::new();
        for protocol in [
            Protocol::NumFabric(nf_config.clone()),
            Protocol::Pfabric(PfabricConfig::default()),
        ] {
            let results = run_dynamic(&protocol, &run, &arrivals, Objective::FctMinimization);
            let normalized: Vec<f64> = results.iter().filter_map(|r| r.normalized_fct()).collect();
            let unfinished = results.len() - normalized.len();
            let m = mean(&normalized).unwrap_or(f64::NAN);
            means.push(m);
            cells.push(format!("{m:.2}{}", if unfinished > 0 { "*" } else { "" }));
        }
        cells.push(format!("{:.2}", means[0] / means[1]));
        rows.push(cells);
    }
    print_table(
        &["load", "flows", "NUMFabric", "pFabric", "NUMFabric/pFabric"],
        &rows,
    );
    println!(
        "\n(* some flows had not completed when the simulation ended and are excluded)\n\
         Expected shape (paper): NUMFabric tracks pFabric within ~4-20% across loads."
    );
}

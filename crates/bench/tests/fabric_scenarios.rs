//! Conformance suite for the generalized-fabric scenario family.
//!
//! Two kinds of pins:
//!
//! 1. **Runnability** — incast and shuffle run to completion under xWI
//!    (NUMFabric) and a baseline (DCTCP) on both a fat-tree and an
//!    oversubscribed leaf-spine.
//! 2. **Fluid cross-check** — long-lived flows on a fat-tree reach
//!    steady-state rates that match the fluid NUM / max-min solution within
//!    tolerance. The unidirectional patterns pin tightly (≤ 10%), and so
//!    does the bidirectional stride: the strict-priority control lane keeps
//!    ACKs from queueing behind the counterpart's data, and the
//!    path-length-aware Swift dt slack absorbs the per-hop head-of-line
//!    waits that remain, so the old ~25% reverse-path concession is gone.

use numfabric_baselines::DctcpConfig;
use numfabric_bench::{run_steady_state, run_transfers, Protocol};
use numfabric_core::NumFabricConfig;
use numfabric_sim::SimDuration;
use numfabric_workloads::scenarios::{incast_pairs, shuffle_pairs, stride_pairs};
use numfabric_workloads::TopologySpec;

fn fabrics() -> Vec<TopologySpec> {
    vec![
        TopologySpec::FatTree { k: 4 },
        TopologySpec::Oversubscribed { ratio: 4.0 },
    ]
}

fn protocols() -> Vec<Protocol> {
    vec![
        Protocol::NumFabric(NumFabricConfig::default()),
        Protocol::Dctcp(DctcpConfig::default()),
    ]
}

#[test]
fn incast_completes_under_xwi_and_dctcp_on_both_fabrics() {
    for spec in fabrics() {
        for protocol in protocols() {
            let topo = spec.build(false);
            let pairs = incast_pairs(&topo, 4, 7);
            let summary = run_transfers(
                &protocol,
                topo,
                &pairs,
                100_000,
                SimDuration::from_millis(40),
            );
            assert!(
                summary.all_completed(),
                "{} on {spec}: {}/{} incast transfers completed",
                protocol.name(),
                summary.completed,
                summary.flows
            );
            let goodput = summary.aggregate_goodput_bps();
            assert!(
                goodput > 1e9,
                "{} on {spec}: goodput {goodput:.3e} bps implausibly low",
                protocol.name()
            );
        }
    }
}

#[test]
fn shuffle_completes_under_xwi_and_dctcp_on_both_fabrics() {
    for spec in fabrics() {
        for protocol in protocols() {
            let topo = spec.build(false);
            let pairs = shuffle_pairs(&topo, Some(4), 3);
            assert_eq!(pairs.len(), 12);
            let summary = run_transfers(
                &protocol,
                topo,
                &pairs,
                50_000,
                SimDuration::from_millis(40),
            );
            assert!(
                summary.all_completed(),
                "{} on {spec}: {}/{} shuffle transfers completed",
                protocol.name(),
                summary.completed,
                summary.flows
            );
        }
    }
}

/// The acceptance cross-check: steady-state packet-simulation rates on a
/// fat-tree match the fluid NUM (max-min for equal log-utilities on a single
/// bottleneck) solution. The incast pattern is unidirectional, so the only
/// modeling gap is header overhead (payload goodput is 1460/1500 of wire
/// rate) — everything must sit within 10% of the oracle.
#[test]
fn fat_tree_incast_steady_state_matches_fluid_oracle() {
    let topo = TopologySpec::FatTree { k: 4 }.build(false);
    let pairs = incast_pairs(&topo, 8, 5);
    let protocol = Protocol::NumFabric(NumFabricConfig::default());
    let summary = run_steady_state(&protocol, topo, &pairs, SimDuration::from_millis(10));
    // Oracle: the receiver NIC (10 Gbps) split 8 ways.
    for &o in &summary.oracle_bps {
        assert!((o - 1.25e9).abs() < 1e7, "oracle rate {o}");
    }
    assert_eq!(
        summary.fraction_within(0.10),
        1.0,
        "rates {:?} vs oracle {:?}",
        summary.rates_bps,
        summary.oracle_bps
    );
    let ratio = summary.throughput_ratio();
    assert!((0.90..=1.02).contains(&ratio), "throughput ratio {ratio}");
}

/// Cross-pod stride (stride = pod size) on the fat-tree: ECMP collisions
/// create multi-bottleneck fluid instances, and the packet simulation must
/// still track the oracle allocation closely.
#[test]
fn fat_tree_stride_steady_state_matches_fluid_oracle() {
    let topo = TopologySpec::FatTree { k: 4 }.build(false);
    let pairs = stride_pairs(&topo, 4, 2);
    let protocol = Protocol::NumFabric(NumFabricConfig::default());
    let summary = run_steady_state(&protocol, topo, &pairs, SimDuration::from_millis(10));
    assert!(
        summary.fraction_within(0.10) >= 0.9,
        "only {:.0}% of flows within 10%: rates {:?} vs oracle {:?}",
        summary.fraction_within(0.10) * 100.0,
        summary.rates_bps,
        summary.oracle_bps
    );
    let ratio = summary.throughput_ratio();
    assert!((0.90..=1.02).contains(&ratio), "throughput ratio {ratio}");
}

/// The bidirectional worst case: stride = n/2 pairs every host with its
/// mirror, so each flow's ACKs share every cable with its counterpart's
/// data. Historically Swift conceded up to ~25% here (ACKs queued behind
/// the mirror's data until the reverse-path delay blew through the fixed
/// dt slack). The strict-priority control lane plus the path-length-aware
/// dt close that gap: the aggregate must now sit within 10% of the fluid
/// oracle, like the unidirectional patterns.
#[test]
fn fat_tree_bidirectional_stride_stays_within_documented_tolerance() {
    let topo = TopologySpec::FatTree { k: 4 }.build(false);
    let pairs = stride_pairs(&topo, 8, 1);
    let protocol = Protocol::NumFabric(NumFabricConfig::default());
    let summary = run_steady_state(&protocol, topo, &pairs, SimDuration::from_millis(10));
    for (i, (&r, &o)) in summary
        .rates_bps
        .iter()
        .zip(&summary.oracle_bps)
        .enumerate()
    {
        assert!(
            r >= 0.85 * o && r <= 1.1 * o,
            "flow {i}: measured {r:.3e} vs oracle {o:.3e}"
        );
    }
    assert!(
        summary.fraction_within(0.10) >= 0.9,
        "only {:.0}% of flows within 10%: rates {:?} vs oracle {:?}",
        summary.fraction_within(0.10) * 100.0,
        summary.rates_bps,
        summary.oracle_bps
    );
    let ratio = summary.throughput_ratio();
    assert!((0.90..=1.02).contains(&ratio), "throughput ratio {ratio}");
}

/// On the oversubscribed leaf-spine the spine uplinks are the bottleneck;
/// the fluid oracle allocates ~fabric/host share per flow and the packet
/// simulation must agree.
#[test]
fn oversubscribed_stride_steady_state_matches_fluid_oracle() {
    let topo = TopologySpec::Oversubscribed { ratio: 4.0 }.build(false);
    // Stride of 8 pushes every flow across racks (8 hosts per leaf).
    let pairs = stride_pairs(&topo, 8, 2);
    let protocol = Protocol::NumFabric(NumFabricConfig::default());
    let summary = run_steady_state(&protocol, topo, &pairs, SimDuration::from_millis(12));
    // Aggregate demand 32 x 10G onto 8 x 10G of uplink capacity: the oracle
    // must allocate roughly a quarter of the NIC rate per flow.
    let oracle_mean = summary.oracle_bps.iter().sum::<f64>() / summary.oracle_bps.len() as f64;
    assert!(
        (1.5e9..=3.5e9).contains(&oracle_mean),
        "oracle mean {oracle_mean}"
    );
    assert!(
        summary.fraction_within(0.15) >= 0.9,
        "only {:.0}% of flows within 15%: rates {:?} vs oracle {:?}",
        summary.fraction_within(0.15) * 100.0,
        summary.rates_bps,
        summary.oracle_bps
    );
}

//! Route interning: an arena of deduplicated routes addressed by a copyable
//! [`RouteId`].
//!
//! Forwarding is the hottest path of the simulator — every packet at every
//! hop needs its route. Storing the route inline (or behind an `Arc`) in
//! each packet means per-packet refcount traffic and, worse, per-call clones
//! wherever the borrow checker forces the route out of `self`. Instead the
//! [`crate::network::Network`] interns every route once at flow-registration
//! time and passes a plain `u32` handle around; packets, flow specs and the
//! forwarding loop all operate on `RouteId` + hop index and resolve links
//! through the table with a bounds-checked slice lookup.
//!
//! Interning also deduplicates: in the paper's scenarios thousands of flows
//! share a handful of leaf-spine paths, so the arena stays tiny even for
//! very large workloads.

use crate::topology::{LinkId, Partitioning, Route, Topology};
use std::collections::HashMap;

/// A copyable handle to a route interned in a [`RouteTable`].
///
/// Only meaningful together with the table that produced it; the network
/// resolves ids through [`crate::network::Network::route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouteId(u32);

impl RouteId {
    /// The arena index of this route.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An arena of interned, deduplicated routes.
#[derive(Debug, Default)]
pub struct RouteTable {
    routes: Vec<Route>,
    interned: HashMap<Route, RouteId>,
}

impl RouteTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `route`, returning the id of the existing entry if an identical
    /// route was interned before. Routes at most [`crate::topology::ROUTE_INLINE_HOPS`]
    /// hops long are stored inline, so interning a fabric path allocates
    /// nothing beyond the table's own growth.
    pub fn intern(&mut self, route: Route) -> RouteId {
        if let Some(&id) = self.interned.get(&route) {
            return id;
        }
        let id = RouteId(u32::try_from(self.routes.len()).expect("more than u32::MAX routes"));
        self.interned.insert(route.clone(), id);
        self.routes.push(route);
        id
    }

    /// The route behind an id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this table.
    pub fn get(&self, id: RouteId) -> &Route {
        &self.routes[id.index()]
    }

    /// The link sequence of a route (the hot-path accessor).
    #[inline]
    pub fn links(&self, id: RouteId) -> &[LinkId] {
        self.routes[id.index()].links()
    }

    /// Number of distinct routes interned.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// The hop indices of `route` that cross a partition boundary under
    /// `parts` — the hops where a packet following this route becomes a
    /// boundary message between per-partition event cores. An empty result
    /// means the whole path stays inside one partition (always the case for
    /// a single-partition network).
    pub fn crossing_hops(
        &self,
        route: RouteId,
        topo: &Topology,
        parts: &Partitioning,
    ) -> Vec<usize> {
        self.links(route)
            .iter()
            .enumerate()
            .filter(|&(_, &l)| {
                let spec = &topo.links()[l];
                parts.of(spec.from) != parts.of(spec.to)
            })
            .map(|(hop, _)| hop)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates_identical_routes() {
        let mut table = RouteTable::new();
        let a = table.intern(Route::from_links(vec![1, 2, 3]));
        let b = table.intern(Route::from_links(vec![4]));
        let c = table.intern(Route::from_links(vec![1, 2, 3]));
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(table.len(), 2);
        assert_eq!(table.links(a), &[1, 2, 3]);
        assert_eq!(table.get(b).links(), &[4]);
    }

    #[test]
    fn ids_are_stable_and_dense() {
        let mut table = RouteTable::new();
        assert!(table.is_empty());
        for i in 0..10usize {
            let id = table.intern(Route::from_links(vec![i]));
            assert_eq!(id.index(), i);
        }
        assert_eq!(table.len(), 10);
    }

    #[test]
    fn crossing_hops_marks_exactly_the_boundary_links() {
        use crate::topology::LeafSpineConfig;
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let hosts = topo.hosts().to_vec();
        let mut table = RouteTable::new();
        // Inter-rack: host in rack 0 to host in rack 1, via a spine.
        let inter = table.intern(topo.host_route(hosts[0], hosts[7], 0));
        // Intra-rack: both endpoints under leaf 0.
        let intra = table.intern(topo.host_route(hosts[0], hosts[1], 0));
        let one = topo.partition(1);
        assert!(table.crossing_hops(inter, &topo, &one).is_empty());
        let two = topo.partition(2);
        assert!(table.crossing_hops(intra, &topo, &two).is_empty());
        let crossings = table.crossing_hops(inter, &topo, &two);
        assert!(!crossings.is_empty(), "inter-rack route must cross the cut");
        for hop in crossings {
            let l = table.links(inter)[hop];
            let spec = &topo.links()[l];
            assert_ne!(two.of(spec.from), two.of(spec.to));
        }
    }
}

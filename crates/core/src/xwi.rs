//! The xWI (eXplicit Weight Inference) switch-side price computation
//! (§4.2 and Figure 3 of the paper).
//!
//! Every egress port keeps a price. Data packets carry the sender-computed
//! `normalizedResidual`; the port tracks the minimum residual seen since the
//! last price update and, on a synchronized periodic timer (a `LinkTimer`
//! driven by the simulator's timing-wheel event core — the controller only
//! returns the next delay from
//! [`LinkController::on_timer`]), updates its price
//!
//! ```text
//! u        = bytesServiced / (priceUpdateInterval · linkCapacity)
//! newPrice = max(price + minRes − η · (1 − u) · price, 0)
//! price    = β · price + (1 − β) · newPrice
//! ```
//!
//! On dequeue the port stamps its current price into the packet's
//! `pathPrice` field and increments `pathLen`, which is how senders learn the
//! sum of prices along their path.

use crate::config::NumFabricConfig;
use numfabric_sim::transport::LinkController;
use numfabric_sim::{Packet, SimDuration, SimTime};

/// Per-egress-port xWI price state and update logic.
///
/// Prices are kept in the protocol's Gbps-based units (the same units the
/// utility functions see), so `link_capacity_gbps` — not bits per second — is
/// used for the utilization computation.
#[derive(Debug, Clone)]
pub struct XwiPriceController {
    price: f64,
    min_residual: f64,
    bytes_serviced: u64,
    link_capacity_bps: f64,
    interval: SimDuration,
    eta: f64,
    beta: f64,
    updates: u64,
}

impl XwiPriceController {
    /// A controller for a link of `link_capacity_bps`, using the price-update
    /// interval, η and β from `config`.
    pub fn new(config: &NumFabricConfig, link_capacity_bps: f64) -> Self {
        assert!(link_capacity_bps > 0.0, "capacity must be positive");
        Self {
            price: 0.0,
            min_residual: f64::INFINITY,
            bytes_serviced: 0,
            link_capacity_bps,
            interval: config.price_update_interval,
            eta: config.eta,
            beta: config.beta,
            updates: 0,
        }
    }

    /// The port's current price.
    pub fn price(&self) -> f64 {
        self.price
    }

    /// How many price updates have run.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The link utilization accumulated since the last price update.
    fn utilization(&self) -> f64 {
        let serviced_bits = self.bytes_serviced as f64 * 8.0;
        let capacity_bits = self.link_capacity_bps * self.interval.as_secs_f64();
        (serviced_bits / capacity_bits).min(1.0)
    }

    /// Run one price update (Figure 3's `priceUpdateTimeout`). Exposed for
    /// unit testing; the [`LinkController`] timer calls this.
    pub fn price_update(&mut self) {
        let u = self.utilization();
        // If no data packet carried a residual since the last update, there is
        // nothing to push the price up; only the under-utilization decay acts.
        let min_res = if self.min_residual.is_finite() {
            self.min_residual
        } else {
            0.0
        };
        let new_price = (self.price + min_res - self.eta * (1.0 - u) * self.price).max(0.0);
        self.price = self.beta * self.price + (1.0 - self.beta) * new_price;
        self.bytes_serviced = 0;
        self.min_residual = f64::INFINITY;
        self.updates += 1;
    }
}

impl LinkController for XwiPriceController {
    fn on_enqueue(&mut self, packet: &mut Packet, _now: SimTime) {
        if packet.is_data() {
            self.min_residual = self.min_residual.min(packet.header.normalized_residual);
        }
    }

    fn on_dequeue(&mut self, packet: &mut Packet, _now: SimTime, _queue_bytes: usize) {
        self.bytes_serviced += packet.wire_bytes as u64;
        packet.header.path_price += self.price;
        packet.header.path_len += 1;
    }

    fn initial_timer(&self) -> Option<SimDuration> {
        Some(self.interval)
    }

    fn on_timer(&mut self, _now: SimTime, _queue_bytes: usize) -> Option<SimDuration> {
        self.price_update();
        Some(self.interval)
    }

    fn on_capacity_change(&mut self, new_capacity_bps: f64) {
        self.link_capacity_bps = new_capacity_bps;
    }

    fn name(&self) -> &'static str {
        "xwi-price"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_sim::packet::DEFAULT_PAYLOAD_BYTES;
    use numfabric_sim::topology::Route;
    use numfabric_sim::RouteTable;

    fn controller() -> XwiPriceController {
        XwiPriceController::new(&NumFabricConfig::default(), 10e9)
    }

    fn data_packet(residual: f64) -> Packet {
        let route = RouteTable::new().intern(Route::from_links(vec![0]));
        let mut p = Packet::data(0, 0, DEFAULT_PAYLOAD_BYTES, route);
        p.header.normalized_residual = residual;
        p
    }

    /// Simulate one price-update interval in which `packets` MTU packets were
    /// serviced and the minimum residual was `residual`.
    fn run_interval(ctrl: &mut XwiPriceController, packets: usize, residual: f64) {
        let now = SimTime::ZERO;
        for _ in 0..packets {
            let mut p = data_packet(residual);
            ctrl.on_enqueue(&mut p, now);
            ctrl.on_dequeue(&mut p, now, 0);
        }
        ctrl.price_update();
    }

    #[test]
    fn positive_residual_on_a_busy_link_raises_the_price() {
        let mut ctrl = controller();
        // 10 Gbps × 30 µs = 37.5 kB per interval = 25 MTU packets (full load).
        run_interval(&mut ctrl, 25, 0.4);
        // β = 0.5: price moves halfway toward (0 + 0.4) = 0.4.
        assert!(
            (ctrl.price() - 0.2).abs() < 1e-9,
            "price = {}",
            ctrl.price()
        );
        run_interval(&mut ctrl, 25, 0.4);
        assert!(ctrl.price() > 0.2);
    }

    #[test]
    fn negative_residual_lowers_the_price() {
        let mut ctrl = controller();
        run_interval(&mut ctrl, 25, 0.8);
        run_interval(&mut ctrl, 25, 0.8);
        let high = ctrl.price();
        run_interval(&mut ctrl, 25, -0.3);
        assert!(ctrl.price() < high);
    }

    #[test]
    fn idle_link_price_decays_to_zero() {
        let mut ctrl = controller();
        run_interval(&mut ctrl, 25, 1.0);
        assert!(ctrl.price() > 0.0);
        // Now the link goes idle: utilization 0, no residuals.
        for _ in 0..30 {
            ctrl.price_update();
        }
        assert!(ctrl.price() < 1e-6, "price = {}", ctrl.price());
    }

    #[test]
    fn underutilized_link_decays_faster_with_larger_eta() {
        let run_decay = |eta: f64| {
            let cfg = NumFabricConfig::default().with_eta(eta);
            let mut ctrl = XwiPriceController::new(&cfg, 10e9);
            // Build the price up at full utilization.
            for _ in 0..4 {
                let now = SimTime::ZERO;
                for _ in 0..25 {
                    let mut p = data_packet(0.5);
                    ctrl.on_enqueue(&mut p, now);
                    ctrl.on_dequeue(&mut p, now, 0);
                }
                ctrl.price_update();
            }
            // Then deliver only half the load with zero residual.
            for _ in 0..3 {
                let now = SimTime::ZERO;
                for _ in 0..12 {
                    let mut p = data_packet(0.0);
                    ctrl.on_enqueue(&mut p, now);
                    ctrl.on_dequeue(&mut p, now, 0);
                }
                ctrl.price_update();
            }
            ctrl.price()
        };
        assert!(run_decay(5.0) < run_decay(0.5));
    }

    #[test]
    fn dequeue_stamps_price_and_path_length() {
        let mut ctrl = controller();
        // Give the controller a non-zero price first.
        run_interval(&mut ctrl, 25, 0.4);
        let price = ctrl.price();
        let mut p = data_packet(0.0);
        p.header.path_price = 0.15;
        p.header.path_len = 2;
        ctrl.on_dequeue(&mut p, SimTime::ZERO, 0);
        assert!((p.header.path_price - (0.15 + price)).abs() < 1e-12);
        assert_eq!(p.header.path_len, 3);
    }

    #[test]
    fn control_packets_do_not_affect_the_minimum_residual() {
        let mut ctrl = controller();
        let mut ack = Packet::ack(0, RouteTable::new().intern(Route::from_links(vec![0])));
        ack.header.normalized_residual = -100.0;
        ctrl.on_enqueue(&mut ack, SimTime::ZERO);
        run_interval(&mut ctrl, 25, 0.4);
        // If the ACK's residual had been tracked the price would have dropped
        // to zero; instead it follows the data packets' 0.4 residual.
        assert!(ctrl.price() > 0.1);
    }

    #[test]
    fn price_is_a_fixed_point_when_residual_is_zero_at_full_load() {
        let mut ctrl = controller();
        run_interval(&mut ctrl, 25, 0.5);
        run_interval(&mut ctrl, 25, 0.5);
        let before = ctrl.price();
        run_interval(&mut ctrl, 25, 0.0);
        let after = ctrl.price();
        assert!((before - after).abs() < 1e-12, "{before} vs {after}");
    }

    #[test]
    fn timer_plumbing_reports_the_configured_interval() {
        let ctrl = controller();
        assert_eq!(ctrl.initial_timer(), Some(SimDuration::from_micros(30)));
        let mut ctrl = ctrl;
        let next = ctrl.on_timer(SimTime::from_micros(30), 0);
        assert_eq!(next, Some(SimDuration::from_micros(30)));
        assert_eq!(ctrl.updates(), 1);
    }
}

//! Workload scenarios from the paper's evaluation.
//!
//! * [`SemiDynamicScenario`] — §6.1's controlled convergence experiment:
//!   1000 random sender/receiver paths; each "network event" starts or stops
//!   100 flows while keeping 300–500 flows active; convergence time is
//!   measured after every event.
//! * [`permutation_pairs`] — the resource-pooling experiment's permutation
//!   traffic (§6.3): servers 1–64 each send to one server among 65–128.
//! * [`random_pairs`] — uniformly random distinct host pairs (used to build
//!   the semi-dynamic paths and ad-hoc experiments).
//! * The datacenter fabric family: [`incast_pairs`] (N-to-1 fan-in),
//!   [`shuffle_pairs`] (all-to-all) and [`stride_pairs`] (stride
//!   permutation) — classic stress patterns that exercise incast
//!   bottlenecks, full-fabric load and cross-pod ECMP spreading on the
//!   generalized topologies (fat-tree, oversubscribed leaf-spine).

use numfabric_sim::topology::Topology;
use numfabric_sim::NodeId;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A source/destination pair pinned to a spine choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathSpec {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// ECMP spine choice.
    pub spine_choice: usize,
}

/// Draw `n` uniformly random distinct-endpoint paths among `hosts`.
pub fn random_pairs(hosts: &[NodeId], n: usize, seed: u64) -> Vec<PathSpec> {
    assert!(hosts.len() >= 2, "need at least two hosts");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let src = *hosts.choose(&mut rng).expect("non-empty");
            let dst = loop {
                let d = *hosts.choose(&mut rng).expect("non-empty");
                if d != src {
                    break d;
                }
            };
            PathSpec {
                src,
                dst,
                spine_choice: rng.gen_range(0..64),
            }
        })
        .collect()
}

/// The permutation traffic pattern of the resource-pooling experiment: the
/// first half of the hosts each send to a distinct host in the second half.
pub fn permutation_pairs(topo: &Topology, seed: u64) -> Vec<PathSpec> {
    let hosts = topo.hosts();
    assert!(
        hosts.len() >= 2 && hosts.len().is_multiple_of(2),
        "need an even host count"
    );
    let half = hosts.len() / 2;
    let mut receivers: Vec<NodeId> = hosts[half..].to_vec();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    receivers.shuffle(&mut rng);
    hosts[..half]
        .iter()
        .zip(receivers)
        .map(|(&src, dst)| PathSpec {
            src,
            dst,
            spine_choice: rng.gen_range(0..64),
        })
        .collect()
}

/// N-to-1 incast: `fan_in` distinct senders (drawn without replacement from
/// the other hosts) all send to one receiver, chosen by the seed. The
/// receiver's access link is the bottleneck; spine/path choices are spread
/// by ECMP so the fan-in converges from across the fabric.
///
/// # Panics
/// Panics if the topology has fewer than `fan_in + 1` hosts or `fan_in == 0`.
pub fn incast_pairs(topo: &Topology, fan_in: usize, seed: u64) -> Vec<PathSpec> {
    let hosts = topo.hosts();
    assert!(fan_in > 0, "incast needs at least one sender");
    assert!(
        hosts.len() > fan_in,
        "need {} hosts for a {fan_in}-to-1 incast, have {}",
        fan_in + 1,
        hosts.len()
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dst = *hosts.choose(&mut rng).expect("non-empty");
    let mut senders: Vec<NodeId> = hosts.iter().copied().filter(|&h| h != dst).collect();
    senders.shuffle(&mut rng);
    senders.truncate(fan_in);
    senders
        .into_iter()
        .map(|src| PathSpec {
            src,
            dst,
            spine_choice: rng.gen_range(0..64),
        })
        .collect()
}

/// All-to-all shuffle: every ordered pair of distinct hosts among the first
/// `participants` hosts (all hosts if `None`), in (src, dst) order —
/// `n·(n−1)` flows. The seed only randomizes the ECMP path choices, not the
/// pair set, so every protocol sees the identical shuffle.
///
/// # Panics
/// Panics if fewer than two hosts participate.
pub fn shuffle_pairs(topo: &Topology, participants: Option<usize>, seed: u64) -> Vec<PathSpec> {
    let hosts = topo.hosts();
    let n = participants.unwrap_or(hosts.len()).min(hosts.len());
    assert!(n >= 2, "a shuffle needs at least two hosts");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(n * (n - 1));
    for &src in &hosts[..n] {
        for &dst in &hosts[..n] {
            if src != dst {
                pairs.push(PathSpec {
                    src,
                    dst,
                    spine_choice: rng.gen_range(0..64),
                });
            }
        }
    }
    pairs
}

/// Stride permutation: host `i` sends to host `(i + stride) mod n`. With a
/// stride of at least the rack/pod size every flow crosses the fabric,
/// making this the canonical pattern for measuring ECMP load balance and
/// oversubscription effects. The seed randomizes only the path choices.
///
/// # Panics
/// Panics if the stride is congruent to 0 modulo the host count (flows would
/// be self-loops) or the topology has fewer than two hosts.
pub fn stride_pairs(topo: &Topology, stride: usize, seed: u64) -> Vec<PathSpec> {
    let hosts = topo.hosts();
    let n = hosts.len();
    assert!(n >= 2, "a stride permutation needs at least two hosts");
    assert!(
        !stride.is_multiple_of(n),
        "stride {stride} is a multiple of the host count {n}"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| PathSpec {
            src: hosts[i],
            dst: hosts[(i + stride) % n],
            spine_choice: rng.gen_range(0..64),
        })
        .collect()
}

/// What one semi-dynamic network event does to a set of paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Start new flows on the listed paths.
    Start,
    /// Stop the active flows on the listed paths.
    Stop,
}

/// One network event: start or stop flows on `paths` (indices into the
/// scenario's path list).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkEvent {
    /// Whether flows start or stop.
    pub kind: EventKind,
    /// Indices into [`SemiDynamicScenario::paths`].
    pub paths: Vec<usize>,
}

/// The §6.1 semi-dynamic convergence scenario.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SemiDynamicScenario {
    /// The candidate paths (1000 random pairs in the paper).
    pub paths: Vec<PathSpec>,
    /// The set of path indices active before the first event.
    pub initial_active: Vec<usize>,
    /// The sequence of network events.
    pub events: Vec<NetworkEvent>,
}

/// Parameters of the semi-dynamic scenario generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SemiDynamicConfig {
    /// Number of candidate paths (1000 in the paper).
    pub num_paths: usize,
    /// Flows started or stopped per event (100 in the paper).
    pub flows_per_event: usize,
    /// Number of events to generate (100 in the paper).
    pub num_events: usize,
    /// Lower bound on concurrently active flows (300 in the paper).
    pub min_active: usize,
    /// Upper bound on concurrently active flows (500 in the paper).
    pub max_active: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SemiDynamicConfig {
    /// The paper's parameters: 1000 paths, 100 flows per event, 100 events,
    /// 300–500 active flows.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            num_paths: 1000,
            flows_per_event: 100,
            num_events: 100,
            min_active: 300,
            max_active: 500,
            seed,
        }
    }

    /// A scaled-down version with the same structure (for tests and the
    /// default bench runs).
    pub fn scaled(num_paths: usize, flows_per_event: usize, num_events: usize, seed: u64) -> Self {
        Self {
            num_paths,
            flows_per_event,
            num_events,
            min_active: 3 * flows_per_event,
            max_active: 5 * flows_per_event,
            seed,
        }
    }
}

impl SemiDynamicScenario {
    /// Generate the scenario on a topology.
    ///
    /// The initial active set has `(min_active + max_active) / 2` flows; each
    /// event starts flows when the active count is at or below the midpoint
    /// and stops flows otherwise, which keeps the count inside
    /// `[min_active, max_active]` exactly as in the paper's setup.
    pub fn generate(topo: &Topology, config: &SemiDynamicConfig) -> Self {
        assert!(config.flows_per_event > 0 && config.num_paths > config.max_active);
        let paths = random_pairs(topo.hosts(), config.num_paths, config.seed);
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ 0x5eed_0123);

        let midpoint = (config.min_active + config.max_active) / 2;
        let mut active: Vec<bool> = vec![false; config.num_paths];
        let mut order: Vec<usize> = (0..config.num_paths).collect();
        order.shuffle(&mut rng);
        let initial_active: Vec<usize> = order[..midpoint].to_vec();
        for &i in &initial_active {
            active[i] = true;
        }
        let mut active_count = initial_active.len();

        let mut events = Vec::with_capacity(config.num_events);
        for _ in 0..config.num_events {
            let kind = if active_count <= midpoint {
                EventKind::Start
            } else {
                EventKind::Stop
            };
            let candidates: Vec<usize> = (0..config.num_paths)
                .filter(|&i| match kind {
                    EventKind::Start => !active[i],
                    EventKind::Stop => active[i],
                })
                .collect();
            let chosen: Vec<usize> = candidates
                .choose_multiple(&mut rng, config.flows_per_event)
                .copied()
                .collect();
            for &i in &chosen {
                active[i] = kind == EventKind::Start;
            }
            match kind {
                EventKind::Start => active_count += chosen.len(),
                EventKind::Stop => active_count -= chosen.len(),
            }
            events.push(NetworkEvent {
                kind,
                paths: chosen,
            });
        }
        Self {
            paths,
            initial_active,
            events,
        }
    }

    /// The number of active flows after applying the first `k` events.
    pub fn active_after(&self, k: usize) -> usize {
        let mut active: std::collections::HashSet<usize> =
            self.initial_active.iter().copied().collect();
        for event in self.events.iter().take(k) {
            for &p in &event.paths {
                match event.kind {
                    EventKind::Start => {
                        active.insert(p);
                    }
                    EventKind::Stop => {
                        active.remove(&p);
                    }
                }
            }
        }
        active.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_sim::topology::LeafSpineConfig;

    fn topo() -> Topology {
        Topology::leaf_spine(&LeafSpineConfig::small(32, 4, 2))
    }

    #[test]
    fn random_pairs_have_distinct_endpoints_and_are_reproducible() {
        let topo = topo();
        let a = random_pairs(topo.hosts(), 50, 9);
        let b = random_pairs(topo.hosts(), 50, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|p| p.src != p.dst));
        let c = random_pairs(topo.hosts(), 50, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn permutation_is_a_bijection_between_halves() {
        let topo = topo();
        let pairs = permutation_pairs(&topo, 4);
        let hosts = topo.hosts();
        assert_eq!(pairs.len(), 16);
        // Sources are exactly the first half.
        let srcs: Vec<_> = pairs.iter().map(|p| p.src).collect();
        assert_eq!(srcs, hosts[..16].to_vec());
        // Destinations are a permutation of the second half (no repeats).
        let mut dsts: Vec<_> = pairs.iter().map(|p| p.dst).collect();
        dsts.sort_unstable();
        let mut expected = hosts[16..].to_vec();
        expected.sort_unstable();
        assert_eq!(dsts, expected);
    }

    #[test]
    fn incast_has_one_receiver_and_distinct_senders() {
        let topo = Topology::fat_tree(&numfabric_sim::topology::FatTreeConfig::new(4));
        let pairs = incast_pairs(&topo, 8, 11);
        assert_eq!(pairs.len(), 8);
        let dst = pairs[0].dst;
        assert!(pairs.iter().all(|p| p.dst == dst && p.src != dst));
        let srcs: std::collections::HashSet<_> = pairs.iter().map(|p| p.src).collect();
        assert_eq!(srcs.len(), 8, "senders must be distinct");
        // Reproducible per seed, different across seeds.
        assert_eq!(pairs, incast_pairs(&topo, 8, 11));
        assert_ne!(pairs, incast_pairs(&topo, 8, 12));
    }

    #[test]
    fn shuffle_is_all_ordered_pairs() {
        let topo = topo();
        let pairs = shuffle_pairs(&topo, Some(6), 3);
        assert_eq!(pairs.len(), 6 * 5);
        assert!(pairs.iter().all(|p| p.src != p.dst));
        let unique: std::collections::HashSet<_> = pairs.iter().map(|p| (p.src, p.dst)).collect();
        assert_eq!(unique.len(), 30, "every ordered pair appears once");
        // Unlimited participants cover every host.
        let all = shuffle_pairs(&topo, None, 3);
        assert_eq!(all.len(), 32 * 31);
    }

    #[test]
    fn stride_is_a_permutation_without_fixed_points() {
        let topo = topo();
        let pairs = stride_pairs(&topo, 16, 9);
        assert_eq!(pairs.len(), 32);
        assert!(pairs.iter().all(|p| p.src != p.dst));
        let mut dsts: Vec<_> = pairs.iter().map(|p| p.dst).collect();
        dsts.sort_unstable();
        let mut all = topo.hosts().to_vec();
        all.sort_unstable();
        assert_eq!(dsts, all, "destinations form a permutation of the hosts");
        // Stride wraps around.
        assert_eq!(pairs[20].dst, topo.hosts()[(20 + 16) % 32]);
    }

    #[test]
    #[should_panic]
    fn stride_multiple_of_host_count_rejected() {
        stride_pairs(&topo(), 64, 0);
    }

    #[test]
    fn semi_dynamic_keeps_active_count_in_bounds() {
        let topo = topo();
        let cfg = SemiDynamicConfig::scaled(120, 10, 40, 77);
        let scenario = SemiDynamicScenario::generate(&topo, &cfg);
        assert_eq!(scenario.events.len(), 40);
        for k in 0..=40 {
            let active = scenario.active_after(k);
            assert!(
                active >= cfg.min_active - cfg.flows_per_event
                    && active <= cfg.max_active + cfg.flows_per_event,
                "after event {k}: {active} active flows"
            );
        }
    }

    #[test]
    fn semi_dynamic_events_touch_exactly_the_requested_number_of_paths() {
        let topo = topo();
        let cfg = SemiDynamicConfig::scaled(200, 15, 20, 3);
        let scenario = SemiDynamicScenario::generate(&topo, &cfg);
        for e in &scenario.events {
            assert_eq!(e.paths.len(), 15);
            // No duplicates within an event.
            let unique: std::collections::HashSet<_> = e.paths.iter().collect();
            assert_eq!(unique.len(), 15);
        }
    }

    #[test]
    fn semi_dynamic_is_reproducible() {
        let topo = topo();
        let cfg = SemiDynamicConfig::scaled(100, 10, 10, 5);
        let a = SemiDynamicScenario::generate(&topo, &cfg);
        let b = SemiDynamicScenario::generate(&topo, &cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.initial_active, b.initial_active);
    }

    #[test]
    fn paper_default_matches_published_scale() {
        let cfg = SemiDynamicConfig::paper_default(1);
        assert_eq!(cfg.num_paths, 1000);
        assert_eq!(cfg.flows_per_event, 100);
        assert_eq!(cfg.num_events, 100);
        assert_eq!((cfg.min_active, cfg.max_active), (300, 500));
    }
}

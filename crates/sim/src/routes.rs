//! Route interning: an arena of deduplicated routes addressed by a copyable
//! [`RouteId`].
//!
//! Forwarding is the hottest path of the simulator — every packet at every
//! hop needs its route. Storing the route inline (or behind an `Arc`) in
//! each packet means per-packet refcount traffic and, worse, per-call clones
//! wherever the borrow checker forces the route out of `self`. Instead the
//! [`crate::network::Network`] interns every route once at flow-registration
//! time and passes a plain `u32` handle around; packets, flow specs and the
//! forwarding loop all operate on `RouteId` + hop index and resolve links
//! through the table with a bounds-checked slice lookup.
//!
//! Interning also deduplicates: in the paper's scenarios thousands of flows
//! share a handful of leaf-spine paths, so the arena stays tiny even for
//! very large workloads.

use crate::topology::{LinkId, Route};
use std::collections::HashMap;

/// A copyable handle to a route interned in a [`RouteTable`].
///
/// Only meaningful together with the table that produced it; the network
/// resolves ids through [`crate::network::Network::route`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RouteId(u32);

impl RouteId {
    /// The arena index of this route.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An arena of interned, deduplicated routes.
#[derive(Debug, Default)]
pub struct RouteTable {
    routes: Vec<Route>,
    interned: HashMap<Vec<LinkId>, RouteId>,
}

impl RouteTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `route`, returning the id of the existing entry if an identical
    /// route was interned before.
    pub fn intern(&mut self, route: Route) -> RouteId {
        if let Some(&id) = self.interned.get(&route.links) {
            return id;
        }
        let id = RouteId(u32::try_from(self.routes.len()).expect("more than u32::MAX routes"));
        self.interned.insert(route.links.clone(), id);
        self.routes.push(route);
        id
    }

    /// The route behind an id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this table.
    pub fn get(&self, id: RouteId) -> &Route {
        &self.routes[id.index()]
    }

    /// The link sequence of a route (the hot-path accessor).
    #[inline]
    pub fn links(&self, id: RouteId) -> &[LinkId] {
        &self.routes[id.index()].links
    }

    /// Number of distinct routes interned.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates_identical_routes() {
        let mut table = RouteTable::new();
        let a = table.intern(Route {
            links: vec![1, 2, 3],
        });
        let b = table.intern(Route { links: vec![4] });
        let c = table.intern(Route {
            links: vec![1, 2, 3],
        });
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(table.len(), 2);
        assert_eq!(table.links(a), &[1, 2, 3]);
        assert_eq!(table.get(b).links, vec![4]);
    }

    #[test]
    fn ids_are_stable_and_dense() {
        let mut table = RouteTable::new();
        assert!(table.is_empty());
        for i in 0..10usize {
            let id = table.intern(Route { links: vec![i] });
            assert_eq!(id.index(), i);
        }
        assert_eq!(table.len(), 10);
    }
}

//! Benchmarks of the timing-wheel event core against the binary-heap
//! reference, in events per second.
//!
//! Three workload shapes:
//!
//! * **schedule/pop churn** — the hold model every discrete-event simulator
//!   lives in: a standing population of pending events where each pop
//!   schedules a successor a short, jittered delay ahead. This is the
//!   acceptance workload for the heap→wheel swap (target ≥ 1.3× the heap).
//! * **timer arm/cancel churn** — cancellable schedules where half the
//!   events are revoked before firing, the pattern flow stop/completion
//!   produces.
//! * **packet_sim churn** — a real NUMFabric run; paired with
//!   `Network::events_processed` it yields end-to-end events/sec.
//!
//! The criterion shim prints mean wall time per iteration; divide the fixed
//! event counts below by it to get events/sec.

use criterion::{criterion_group, criterion_main, Criterion};
use numfabric_core::protocol::numfabric_network;
use numfabric_core::{NumFabricAgent, NumFabricConfig};
use numfabric_num::utility::LogUtility;
use numfabric_sim::event::{Event, EventQueue, HeapEventQueue};
use numfabric_sim::topology::{LeafSpineConfig, Topology};
use numfabric_sim::SimTime;
use numfabric_sim::{SimDuration, TimerService};
use std::hint::black_box;

/// Standing population of the churn benchmarks.
const CHURN_POPULATION: u64 = 10_000;
/// Pop/schedule pairs per churn iteration.
const CHURN_OPS: u64 = 200_000;

/// Deterministic jittered delay in [200 ns, ~13 µs) — the spacing mix of
/// packet serialization, pacing and link timers.
fn churn_delay(i: u64) -> SimDuration {
    SimDuration::from_nanos(200 + (i.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 51))
}

fn bench_schedule_pop_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_core_churn");
    group.sample_size(10);
    group.bench_function("wheel_schedule_pop_200k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..CHURN_POPULATION {
                q.schedule(SimTime::ZERO + churn_delay(i), Event::FlowStart { flow: 0 });
            }
            let mut popped = 0u64;
            for i in 0..CHURN_OPS {
                let (t, _) = q.pop().expect("population never drains");
                q.schedule(t + churn_delay(i ^ 0x5bd1), Event::FlowStart { flow: 0 });
                popped += 1;
            }
            black_box(popped)
        })
    });
    group.bench_function("heap_schedule_pop_200k", |b| {
        b.iter(|| {
            let mut q = HeapEventQueue::new();
            for i in 0..CHURN_POPULATION {
                q.schedule(SimTime::ZERO + churn_delay(i), Event::FlowStart { flow: 0 });
            }
            let mut popped = 0u64;
            for i in 0..CHURN_OPS {
                let (t, _) = q.pop().expect("population never drains");
                q.schedule(t + churn_delay(i ^ 0x5bd1), Event::FlowStart { flow: 0 });
                popped += 1;
            }
            black_box(popped)
        })
    });
    group.finish();
}

fn bench_timer_cancel_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_core_timers");
    group.sample_size(10);
    // Arm two timers per round through the TimerService, cancel one, let
    // the other fire — the RTX-timer lifecycle at flow churn.
    group.bench_function("arm_cancel_fire_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut timers = TimerService::new();
            timers.register_flow();
            let mut fired = 0u64;
            for i in 0..100_000u64 {
                let keep = timers.arm(&mut q, 0, churn_delay(i), 1);
                let drop = timers.arm(&mut q, 0, churn_delay(i ^ 0xabcd), 2);
                timers.cancel(&mut q, drop);
                let _ = keep;
                let (_, id, event) = q.pop_entry().expect("one timer pending");
                match event {
                    Event::FlowTimer { flow, .. } => timers.fired(flow, id),
                    other => panic!("unexpected {other:?}"),
                }
                fired += 1;
            }
            black_box(fired)
        })
    });
    group.finish();
}

fn bench_packet_sim_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_core_packet_sim");
    group.sample_size(10);
    group.bench_function("numfabric_16hosts_8flows_2ms_events", |b| {
        b.iter(|| {
            let topo = Topology::leaf_spine(&LeafSpineConfig::small(16, 2, 2));
            let cfg = NumFabricConfig::default();
            let mut net = numfabric_network(topo, &cfg);
            let hosts: Vec<_> = net.topology().hosts().to_vec();
            for i in 0..8 {
                net.add_flow(
                    hosts[i],
                    hosts[8 + i],
                    None,
                    SimTime::ZERO,
                    i,
                    None,
                    Box::new(NumFabricAgent::new(cfg.clone(), LogUtility::new())),
                );
            }
            net.run_until(SimTime::from_millis(2));
            // The event count (≈ constant across runs) over this
            // iteration's wall time is the end-to-end events/sec figure.
            black_box(net.events_processed())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_schedule_pop_churn,
    bench_timer_cancel_churn,
    bench_packet_sim_churn
);
criterion_main!(benches);

//! Convergence benchmarks: how long the fluid-model algorithms take to reach
//! the NUM optimum (iteration counts are what Figure 4a measures in time),
//! and how long the packet-level NUMFabric takes to re-converge after a flow
//! arrival.

use criterion::{criterion_group, criterion_main, Criterion};
use numfabric_core::protocol::numfabric_network;
use numfabric_core::{NumFabricAgent, NumFabricConfig};
use numfabric_num::fluid::{iterations_to_oracle, DgdFluid, XwiFluid};
use numfabric_num::utility::LogUtility;
use numfabric_num::{FluidFlow, FluidNetwork, Oracle};
use numfabric_sim::topology::{LeafSpineConfig, Topology};
use numfabric_sim::SimTime;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn random_instance(seed: u64) -> FluidNetwork {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut net = FluidNetwork::new();
    for _ in 0..10 {
        net.add_link(rng.gen_range(5.0..40.0));
    }
    for _ in 0..30 {
        let a = rng.gen_range(0..10);
        let b = loop {
            let b = rng.gen_range(0..10);
            if b != a {
                break b;
            }
        };
        net.add_flow(FluidFlow::new(vec![a, b], LogUtility::new()));
    }
    net
}

fn bench_fluid_convergence(c: &mut Criterion) {
    let net = random_instance(3);
    let oracle = Oracle::new().solve(&net);
    let mut group = c.benchmark_group("fluid_convergence_to_5pct");
    group.bench_function("xwi", |b| {
        b.iter(|| {
            let mut alg = XwiFluid::with_defaults(net.clone());
            black_box(iterations_to_oracle(&mut alg, &oracle, 0.05, 50_000))
        })
    });
    group.bench_function("dgd", |b| {
        b.iter(|| {
            let mut alg = DgdFluid::with_defaults(net.clone());
            black_box(iterations_to_oracle(&mut alg, &oracle, 0.05, 50_000))
        })
    });
    group.finish();
}

fn bench_packet_reconvergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("packet_reconvergence");
    group.sample_size(10);
    group.bench_function("numfabric_flow_arrival", |b| {
        b.iter(|| {
            let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
            let cfg = NumFabricConfig::default();
            let mut net = numfabric_network(topo, &cfg);
            let hosts: Vec<_> = net.topology().hosts().to_vec();
            let f0 = net.add_flow(
                hosts[0],
                hosts[4],
                None,
                SimTime::ZERO,
                0,
                None,
                Box::new(NumFabricAgent::new(cfg.clone(), LogUtility::new())),
            );
            let f1 = net.add_flow(
                hosts[1],
                hosts[4],
                None,
                SimTime::from_millis(2),
                0,
                None,
                Box::new(NumFabricAgent::new(cfg.clone(), LogUtility::new())),
            );
            net.run_until(SimTime::from_millis(4));
            black_box((net.flow_rate_estimate(f0), net.flow_rate_estimate(f1)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fluid_convergence, bench_packet_reconvergence);
criterion_main!(benches);

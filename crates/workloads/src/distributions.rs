//! Flow-size distributions.
//!
//! The paper's dynamic-workload experiments (§6.1, Fig. 5 and Fig. 7) use two
//! empirical, heavy-tailed distributions measured in production clusters:
//!
//! * **Web search** \[3\]: "about 50% of the flows are smaller than 100 KB,
//!   but 95% of all bytes belong to the larger 30% of flows that are larger
//!   than 1 MB".
//! * **Enterprise** \[4\]: "also heavy-tailed, but has many more short flows
//!   with 95% of the flows smaller than 10 KB".
//!
//! The original trace files are not public, so this module encodes synthetic
//! piecewise CDFs constructed to match those published summary statistics
//! (see DESIGN.md for the substitution rationale). The distributional *shape*
//! — a large count of small flows with the byte volume dominated by a few
//! elephants — is what drives the results that use them.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A distribution over flow sizes in bytes.
pub trait FlowSizeDistribution: Send + Sync {
    /// Draw one flow size.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> u64;

    /// The mean flow size in bytes (used to compute Poisson arrival rates for
    /// a target load).
    fn mean_bytes(&self) -> f64;

    /// A short name for reports.
    fn name(&self) -> &'static str;
}

/// A piecewise-linear empirical CDF over flow sizes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    /// (size_bytes, cumulative_probability) control points, increasing in
    /// both coordinates, ending at probability 1.0.
    points: Vec<(f64, f64)>,
    name: &'static str,
}

impl EmpiricalCdf {
    /// Build an empirical CDF from `(size, cumulative probability)` points.
    ///
    /// # Panics
    /// Panics if the points are not strictly increasing in both coordinates,
    /// do not end at probability 1, or contain non-finite values.
    pub fn new(points: Vec<(f64, f64)>, name: &'static str) -> Self {
        assert!(points.len() >= 2, "need at least two CDF points");
        for w in points.windows(2) {
            assert!(w[1].0 > w[0].0, "sizes must increase");
            assert!(w[1].1 >= w[0].1, "probabilities must not decrease");
        }
        for &(s, p) in &points {
            assert!(s.is_finite() && s > 0.0 && (0.0..=1.0).contains(&p));
        }
        let last = points.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9, "CDF must end at probability 1");
        Self { points, name }
    }

    /// The web-search cluster distribution (synthetic fit to the published
    /// summary: median ≈ 100 KB, ~30 % of flows > 1 MB carrying ~95 % of the
    /// bytes, maximum ≈ 30 MB).
    pub fn web_search() -> Self {
        Self::new(
            vec![
                (6_000.0, 0.15),
                (13_000.0, 0.30),
                (29_000.0, 0.40),
                (100_000.0, 0.50),
                (300_000.0, 0.60),
                (1_000_000.0, 0.70),
                (2_000_000.0, 0.80),
                (5_000_000.0, 0.90),
                (10_000_000.0, 0.97),
                (30_000_000.0, 1.0),
            ],
            "websearch",
        )
    }

    /// The enterprise cluster distribution (synthetic fit: ~95 % of flows
    /// below 10 KB — most of them one or two packets — with a heavy byte
    /// tail up to ~10 MB).
    pub fn enterprise() -> Self {
        Self::new(
            vec![
                (1_500.0, 0.45),
                (3_000.0, 0.70),
                (6_000.0, 0.85),
                (10_000.0, 0.95),
                (50_000.0, 0.97),
                (300_000.0, 0.98),
                (1_000_000.0, 0.99),
                (10_000_000.0, 1.0),
            ],
            "enterprise",
        )
    }

    /// The data-mining cluster distribution (synthetic fit to the published
    /// shape used alongside web search in datacenter transport evaluations:
    /// ~80 % of flows under 10 KB — most a single packet — while >95 % of
    /// the bytes ride in the >10 MB elephants, maximum ≈ 1 GB). The extreme
    /// small-flow count makes it the stress case for open-loop churn.
    pub fn data_mining() -> Self {
        Self::new(
            vec![
                (1_460.0, 0.50),
                (2_920.0, 0.60),
                (10_000.0, 0.80),
                (100_000.0, 0.85),
                (1_000_000.0, 0.90),
                (10_000_000.0, 0.95),
                (100_000_000.0, 0.98),
                (1_000_000_000.0, 1.0),
            ],
            "datamining",
        )
    }

    /// Inverse-CDF lookup: the size at cumulative probability `p ∈ [0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        let first = self.points[0];
        if p <= first.1 {
            // Interpolate from a one-packet floor up to the first point.
            let frac = if first.1 > 0.0 { p / first.1 } else { 1.0 };
            return 1_460.0 + (first.0 - 1_460.0).max(0.0) * frac;
        }
        for w in self.points.windows(2) {
            let (s0, p0) = w[0];
            let (s1, p1) = w[1];
            if p <= p1 {
                let frac = if p1 > p0 { (p - p0) / (p1 - p0) } else { 1.0 };
                // Log-space interpolation keeps the heavy tail heavy.
                let ls = s0.ln() + (s1.ln() - s0.ln()) * frac;
                return ls.exp();
            }
        }
        self.points.last().unwrap().0
    }
}

impl FlowSizeDistribution for EmpiricalCdf {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> u64 {
        let p: f64 = rand::Rng::gen(&mut *rng);
        self.quantile(p).round().max(1.0) as u64
    }

    fn mean_bytes(&self) -> f64 {
        // Numerical integration of the quantile function.
        let n = 10_000;
        (0..n)
            .map(|i| self.quantile((i as f64 + 0.5) / n as f64))
            .sum::<f64>()
            / n as f64
    }

    fn name(&self) -> &'static str {
        self.name
    }
}

/// Every flow has the same size.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FixedSize(pub u64);

impl FlowSizeDistribution for FixedSize {
    fn sample(&self, _rng: &mut dyn rand::RngCore) -> u64 {
        self.0
    }
    fn mean_bytes(&self) -> f64 {
        self.0 as f64
    }
    fn name(&self) -> &'static str {
        "fixed"
    }
}

/// Uniform flow sizes in `[min, max]`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UniformSize {
    /// Smallest size (bytes).
    pub min: u64,
    /// Largest size (bytes).
    pub max: u64,
}

impl FlowSizeDistribution for UniformSize {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> u64 {
        Rng::gen_range(&mut *rng, self.min..=self.max)
    }
    fn mean_bytes(&self) -> f64 {
        (self.min + self.max) as f64 / 2.0
    }
    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Bounded Pareto distribution (another common heavy-tailed model).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BoundedPareto {
    /// Smallest size (bytes).
    pub min: f64,
    /// Largest size (bytes).
    pub max: f64,
    /// Shape parameter (smaller = heavier tail).
    pub shape: f64,
}

impl FlowSizeDistribution for BoundedPareto {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> u64 {
        let u: f64 = Rng::gen(&mut *rng);
        let (l, h, a) = (self.min, self.max, self.shape);
        let num = u * h.powf(a) - u * l.powf(a) - h.powf(a);
        let x = (-num / (h.powf(a) * l.powf(a))).powf(-1.0 / a);
        x.round().clamp(l, h) as u64
    }

    fn mean_bytes(&self) -> f64 {
        let (l, h, a) = (self.min, self.max, self.shape);
        if (a - 1.0).abs() < 1e-9 {
            (h.ln() - l.ln()) * l * h / (h - l)
        } else {
            (a / (a - 1.0)) * (l.powf(a) * h - l * h.powf(a)).abs() / (h.powf(a) - l.powf(a))
        }
    }

    fn name(&self) -> &'static str {
        "bounded-pareto"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_many(dist: &dyn FlowSizeDistribution, n: usize, seed: u64) -> Vec<u64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n).map(|_| dist.sample(&mut rng)).collect()
    }

    #[test]
    fn web_search_matches_published_summary_statistics() {
        let dist = EmpiricalCdf::web_search();
        let samples = sample_many(&dist, 50_000, 1);
        let below_100k =
            samples.iter().filter(|&&s| s < 100_000).count() as f64 / samples.len() as f64;
        assert!(
            (0.40..=0.60).contains(&below_100k),
            "P(<100kB) = {below_100k}"
        );
        // ~95 % of bytes in flows larger than 1 MB is the headline statistic.
        let total: f64 = samples.iter().map(|&s| s as f64).sum();
        let big: f64 = samples
            .iter()
            .filter(|&&s| s > 1_000_000)
            .map(|&s| s as f64)
            .sum();
        assert!(
            big / total > 0.80,
            "byte share of >1MB flows = {}",
            big / total
        );
        let big_count =
            samples.iter().filter(|&&s| s > 1_000_000).count() as f64 / samples.len() as f64;
        assert!((0.2..=0.4).contains(&big_count), "P(>1MB) = {big_count}");
    }

    #[test]
    fn enterprise_is_dominated_by_short_flows() {
        let dist = EmpiricalCdf::enterprise();
        let samples = sample_many(&dist, 50_000, 2);
        let below_10k =
            samples.iter().filter(|&&s| s < 10_000).count() as f64 / samples.len() as f64;
        assert!(below_10k > 0.90, "P(<10kB) = {below_10k}");
        // Most flows are only one or two packets.
        let tiny = samples.iter().filter(|&&s| s <= 3_000).count() as f64 / samples.len() as f64;
        assert!(tiny > 0.6, "P(<=2 packets) = {tiny}");
    }

    #[test]
    fn mean_is_consistent_with_samples() {
        for dist in [EmpiricalCdf::web_search(), EmpiricalCdf::enterprise()] {
            let samples = sample_many(&dist, 200_000, 3);
            let empirical = samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64;
            let analytic = dist.mean_bytes();
            assert!(
                (empirical - analytic).abs() / analytic < 0.1,
                "{}: empirical {empirical:.0} vs analytic {analytic:.0}",
                dist.name()
            );
        }
    }

    #[test]
    fn data_mining_is_tiny_flows_with_elephant_bytes() {
        let dist = EmpiricalCdf::data_mining();
        let samples = sample_many(&dist, 50_000, 9);
        let below_10k =
            samples.iter().filter(|&&s| s <= 10_000).count() as f64 / samples.len() as f64;
        assert!(below_10k > 0.75, "P(<=10kB) = {below_10k}");
        let total: f64 = samples.iter().map(|&s| s as f64).sum();
        let elephant: f64 = samples
            .iter()
            .filter(|&&s| s > 10_000_000)
            .map(|&s| s as f64)
            .sum();
        assert!(
            elephant / total > 0.80,
            "byte share of >10MB flows = {}",
            elephant / total
        );
        // Mean far above the median is the heavy-tail signature churn needs.
        assert!(dist.mean_bytes() > 100.0 * dist.quantile(0.5));
    }

    #[test]
    fn quantiles_are_monotone() {
        let dist = EmpiricalCdf::web_search();
        let mut last = 0.0;
        for i in 0..=100 {
            let q = dist.quantile(i as f64 / 100.0);
            assert!(q >= last, "quantile not monotone at {i}");
            last = q;
        }
    }

    #[test]
    fn fixed_and_uniform_behave() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(FixedSize(1234).sample(&mut rng), 1234);
        assert_eq!(FixedSize(1234).mean_bytes(), 1234.0);
        let u = UniformSize { min: 10, max: 20 };
        for _ in 0..100 {
            let s = u.sample(&mut rng);
            assert!((10..=20).contains(&s));
        }
        assert_eq!(u.mean_bytes(), 15.0);
    }

    #[test]
    fn bounded_pareto_respects_bounds_and_skew() {
        let p = BoundedPareto {
            min: 1_000.0,
            max: 1_000_000.0,
            shape: 1.2,
        };
        let samples = sample_many(&p, 20_000, 4);
        assert!(samples.iter().all(|&s| (1_000..=1_000_000).contains(&s)));
        let median = {
            let mut v = samples.clone();
            v.sort_unstable();
            v[v.len() / 2]
        };
        let mean = samples.iter().map(|&s| s as f64).sum::<f64>() / samples.len() as f64;
        assert!(mean > 2.0 * median as f64, "mean {mean} median {median}");
    }

    #[test]
    #[should_panic]
    fn cdf_must_end_at_one() {
        EmpiricalCdf::new(vec![(10.0, 0.5), (20.0, 0.9)], "bad");
    }
}

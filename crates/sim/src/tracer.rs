//! Rate measurement.
//!
//! The paper measures flow rates at the destination with an exponentially
//! weighted moving average over instantaneous per-packet rates, using an
//! 80 µs time constant, and subtracts the filter's rise time when reporting
//! convergence times (§6.1). [`EwmaRateTracer`] is that filter;
//! [`RateSeries`] optionally records the filtered value over time for the
//! time-series figures (Fig. 4b/4c, Fig. 10).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The EWMA time constant the paper uses for convergence measurement.
pub const PAPER_EWMA_TAU: SimDuration = SimDuration::from_micros(80);

/// Destination-side EWMA rate estimator.
///
/// Each data arrival contributes an instantaneous rate sample
/// `bytes · 8 / interArrival`, blended into the estimate with weight
/// `1 − exp(−Δt / τ)` so the filter behaves like a continuous-time low-pass
/// filter regardless of packet pacing.
#[derive(Debug, Clone)]
pub struct EwmaRateTracer {
    tau: SimDuration,
    rate_bps: f64,
    last_arrival: Option<SimTime>,
    initialized: bool,
}

impl EwmaRateTracer {
    /// A tracer with time constant `tau`.
    ///
    /// # Panics
    /// Panics if `tau` is zero.
    pub fn new(tau: SimDuration) -> Self {
        assert!(!tau.is_zero(), "EWMA time constant must be positive");
        Self {
            tau,
            rate_bps: 0.0,
            last_arrival: None,
            initialized: false,
        }
    }

    /// A tracer with the paper's 80 µs time constant.
    pub fn paper_default() -> Self {
        Self::new(PAPER_EWMA_TAU)
    }

    /// Record the arrival of `bytes` payload bytes at time `now`.
    pub fn on_arrival(&mut self, bytes: u64, now: SimTime) {
        if let Some(last) = self.last_arrival {
            let dt = now.duration_since(last);
            if !dt.is_zero() {
                let sample = bytes as f64 * 8.0 / dt.as_secs_f64();
                if self.initialized {
                    let alpha = 1.0 - (-dt.as_secs_f64() / self.tau.as_secs_f64()).exp();
                    self.rate_bps += alpha * (sample - self.rate_bps);
                } else {
                    self.rate_bps = sample;
                    self.initialized = true;
                }
            }
        }
        self.last_arrival = Some(now);
    }

    /// The current rate estimate in bits per second.
    ///
    /// If nothing has arrived for a while the estimate decays toward zero
    /// (the flow may have stopped), using the same time constant.
    pub fn rate_bps(&self, now: SimTime) -> f64 {
        match self.last_arrival {
            Some(last) if self.initialized => {
                let idle = now.duration_since(last);
                // Only decay once the silence is long relative to packet
                // spacing implied by the current estimate (otherwise we would
                // penalize perfectly paced flows between packets).
                let expected_gap = if self.rate_bps > 0.0 {
                    SimDuration::from_secs_f64((1500.0 * 8.0 / self.rate_bps).min(1.0))
                } else {
                    SimDuration::from_millis(1)
                };
                if idle > expected_gap * 4 {
                    let excess = idle.saturating_sub(expected_gap * 4);
                    self.rate_bps * (-excess.as_secs_f64() / self.tau.as_secs_f64()).exp()
                } else {
                    self.rate_bps
                }
            }
            _ => 0.0,
        }
    }

    /// The raw EWMA value without idle decay (used by senders that only need
    /// the latest estimate, e.g. Swift's `R̂`).
    pub fn raw_rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// The filter's 90 % rise time, `ln(10) · τ` — the measurement artifact
    /// the paper subtracts from convergence times.
    pub fn rise_time(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.tau.as_secs_f64() * 10f64.ln())
    }
}

/// A recorded time series of rate samples for one flow.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RateSeries {
    /// (time, rate in bps) samples.
    pub samples: Vec<(SimTime, f64)>,
}

impl RateSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample.
    pub fn push(&mut self, at: SimTime, rate_bps: f64) {
        self.samples.push((at, rate_bps));
    }

    /// The last sample value, if any.
    pub fn last_rate(&self) -> Option<f64> {
        self.samples.last().map(|&(_, r)| r)
    }

    /// The mean rate over samples within `[from, to)`.
    pub fn mean_rate_between(&self, from: SimTime, to: SimTime) -> Option<f64> {
        let vals: Vec<f64> = self
            .samples
            .iter()
            .filter(|(t, _)| *t >= from && *t < to)
            .map(|&(_, r)| r)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_pacing_converges_to_true_rate() {
        // 1500-byte packets every 1.2 µs = 10 Gbps.
        let mut tracer = EwmaRateTracer::paper_default();
        let mut t = SimTime::ZERO;
        for _ in 0..1_000 {
            tracer.on_arrival(1500, t);
            t += SimDuration::from_nanos(1200);
        }
        let rate = tracer.rate_bps(t);
        assert!((rate - 10e9).abs() / 10e9 < 0.01, "rate = {rate}");
    }

    #[test]
    fn rise_time_matches_paper_arithmetic() {
        // ln(10) * 80 µs ≈ 184 µs ("≈ 185 µs" in the paper).
        let tracer = EwmaRateTracer::paper_default();
        let rise = tracer.rise_time();
        assert!(rise >= SimDuration::from_micros(180) && rise <= SimDuration::from_micros(190));
    }

    #[test]
    fn tracks_rate_changes_within_a_few_time_constants() {
        let mut tracer = EwmaRateTracer::paper_default();
        let mut t = SimTime::ZERO;
        // 5 Gbps for a while...
        for _ in 0..500 {
            tracer.on_arrival(1500, t);
            t += SimDuration::from_nanos(2400);
        }
        // ...then 10 Gbps.
        for _ in 0..500 {
            tracer.on_arrival(1500, t);
            t += SimDuration::from_nanos(1200);
        }
        let rate = tracer.rate_bps(t);
        assert!((rate - 10e9).abs() / 10e9 < 0.05, "rate = {rate}");
    }

    #[test]
    fn single_packet_gives_no_estimate_until_second() {
        let mut tracer = EwmaRateTracer::paper_default();
        tracer.on_arrival(1500, SimTime::from_micros(10));
        assert_eq!(tracer.rate_bps(SimTime::from_micros(11)), 0.0);
        tracer.on_arrival(1500, SimTime::from_micros(11));
        assert!(tracer.rate_bps(SimTime::from_micros(11)) > 0.0);
    }

    #[test]
    fn idle_flow_estimate_decays() {
        let mut tracer = EwmaRateTracer::paper_default();
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            tracer.on_arrival(1500, t);
            t += SimDuration::from_nanos(1200);
        }
        let busy = tracer.rate_bps(t);
        let idle = tracer.rate_bps(t + SimDuration::from_millis(5));
        assert!(idle < busy * 0.01, "idle estimate {idle} vs busy {busy}");
    }

    #[test]
    fn duplicate_timestamps_are_ignored() {
        let mut tracer = EwmaRateTracer::paper_default();
        let t = SimTime::from_micros(5);
        tracer.on_arrival(1500, t);
        tracer.on_arrival(1500, t);
        assert_eq!(tracer.rate_bps(t), 0.0);
    }

    #[test]
    fn rate_series_bookkeeping() {
        let mut s = RateSeries::new();
        assert!(s.last_rate().is_none());
        s.push(SimTime::from_micros(1), 1e9);
        s.push(SimTime::from_micros(2), 3e9);
        s.push(SimTime::from_micros(10), 5e9);
        assert_eq!(s.last_rate(), Some(5e9));
        let mean = s
            .mean_rate_between(SimTime::ZERO, SimTime::from_micros(5))
            .unwrap();
        assert!((mean - 2e9).abs() < 1.0);
        assert!(s
            .mean_rate_between(SimTime::from_micros(20), SimTime::from_micros(30))
            .is_none());
    }

    #[test]
    #[should_panic]
    fn zero_time_constant_rejected() {
        EwmaRateTracer::new(SimDuration::ZERO);
    }
}

//! Regenerate **Figure 4a**: CDF of convergence times for NUMFabric, DGD and
//! RCP* in the semi-dynamic scenario (proportional fairness).
//!
//! Usage:
//! ```text
//! cargo run --release -p numfabric-bench --bin fig4a [-- --events N] [--full] [--fluid]
//! ```
//! * default: reduced scale (32 hosts, 200 paths, 20-flow events).
//! * `--full`: the paper's scale (128 hosts, 1000 paths, 100-flow events) —
//!   expect a long run.
//! * `--fluid`: additionally report fluid-model iteration counts (xWI vs DGD
//!   vs RCP*) on random instances, isolating the algorithmic speed-up from
//!   packet-level effects.

use numfabric_bench::report::{mean, percentile, print_cdf, print_table, times_ms};
use numfabric_bench::{run_semi_dynamic, Protocol, SemiDynamicRun};
use numfabric_num::fluid::{iterations_to_oracle, DgdFluid, RcpStarFluid, XwiFluid};
use numfabric_num::utility::LogUtility;
use numfabric_num::{FluidFlow, FluidNetwork, Oracle};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn packet_level(events: usize, full: bool) {
    let run = if full {
        SemiDynamicRun::paper_scale(events, 1)
    } else {
        SemiDynamicRun::reduced(events, 1)
    };
    println!(
        "Figure 4a (packet level, {} scale): {} events, {} candidate paths\n",
        if full { "paper" } else { "reduced" },
        run.scenario.num_events,
        run.scenario.num_paths
    );

    let utility = Arc::new(LogUtility::new());
    let mut rows = Vec::new();
    let mut all: Vec<(String, Vec<f64>)> = Vec::new();
    for protocol in Protocol::convergence_contenders() {
        let result = run_semi_dynamic(&protocol, &run, utility.clone());
        let ms = times_ms(&result.times);
        rows.push(vec![
            result.protocol.clone(),
            format!("{}/{}", result.stats.converged, result.stats.total),
            result
                .stats
                .median
                .map(|d| format!("{:.0} us", d.as_micros_f64()))
                .unwrap_or_else(|| "-".into()),
            result
                .stats
                .p95
                .map(|d| format!("{:.0} us", d.as_micros_f64()))
                .unwrap_or_else(|| "-".into()),
        ]);
        all.push((result.protocol, ms));
    }
    print_table(&["scheme", "converged", "median", "p95"], &rows);
    println!();
    for (name, ms) in &all {
        print_cdf(&format!("{name} convergence time"), ms, "ms", 12);
        println!();
    }
    // Speed-up summary (the paper reports 2.3x median / 2.7x p95).
    let median_of = |name: &str| {
        all.iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, ms)| percentile(ms, 0.5))
    };
    if let (Some(nf), Some(dgd), Some(rcp)) =
        (median_of("NUMFabric"), median_of("DGD"), median_of("RCP*"))
    {
        println!(
            "median speed-up of NUMFabric: {:.1}x vs DGD, {:.1}x vs RCP*",
            dgd / nf,
            rcp / nf
        );
    }
}

fn fluid_level(instances: usize) {
    println!("\nFluid-model comparison (iterations to reach within 5% of the oracle):");
    let mut xwi_iters = Vec::new();
    let mut dgd_iters = Vec::new();
    let mut rcp_iters = Vec::new();
    for seed in 0..instances as u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut net = FluidNetwork::new();
        for _ in 0..8 {
            net.add_link(rng.gen_range(5.0..40.0));
        }
        for _ in 0..24 {
            let a = rng.gen_range(0..8);
            let b = loop {
                let b = rng.gen_range(0..8);
                if b != a {
                    break b;
                }
            };
            net.add_flow(FluidFlow::new(vec![a, b], LogUtility::new()));
        }
        let oracle = Oracle::new().solve(&net);
        if !oracle.converged {
            continue;
        }
        let mut xwi = XwiFluid::with_defaults(net.clone());
        let mut dgd = DgdFluid::with_defaults(net.clone());
        let mut rcp = RcpStarFluid::with_defaults(net.clone());
        if let Some(i) = iterations_to_oracle(&mut xwi, &oracle, 0.05, 20_000) {
            xwi_iters.push(i as f64);
        }
        if let Some(i) = iterations_to_oracle(&mut dgd, &oracle, 0.05, 20_000) {
            dgd_iters.push(i as f64);
        }
        if let Some(i) = iterations_to_oracle(&mut rcp, &oracle, 0.05, 20_000) {
            rcp_iters.push(i as f64);
        }
    }
    print_table(
        &["scheme", "converged", "mean iters", "median iters"],
        &[
            vec![
                "xWI".into(),
                format!("{}/{}", xwi_iters.len(), instances),
                format!("{:.1}", mean(&xwi_iters).unwrap_or(f64::NAN)),
                format!("{:.1}", percentile(&xwi_iters, 0.5).unwrap_or(f64::NAN)),
            ],
            vec![
                "DGD".into(),
                format!("{}/{}", dgd_iters.len(), instances),
                format!("{:.1}", mean(&dgd_iters).unwrap_or(f64::NAN)),
                format!("{:.1}", percentile(&dgd_iters, 0.5).unwrap_or(f64::NAN)),
            ],
            vec![
                "RCP*".into(),
                format!("{}/{}", rcp_iters.len(), instances),
                format!("{:.1}", mean(&rcp_iters).unwrap_or(f64::NAN)),
                format!("{:.1}", percentile(&rcp_iters, 0.5).unwrap_or(f64::NAN)),
            ],
        ],
    );
}

fn main() {
    let full = arg_flag("--full");
    let events: usize = arg_value("--events")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if full { 100 } else { 8 });
    packet_level(events, full);
    if arg_flag("--fluid") {
        fluid_level(20);
    }
}

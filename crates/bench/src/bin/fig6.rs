//! Regenerate **Figure 6** — thin wrapper over
//! [`numfabric_bench::figures::fig6`] (also available as
//! `numfabric-run fig6 [--sweep dt|interval|alpha] [--events N]`).

use numfabric_workloads::registry::ScenarioOptions;

fn main() {
    numfabric_bench::figures::fig6(&ScenarioOptions::from_env());
}

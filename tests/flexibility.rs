//! Integration tests of NUMFabric's *flexibility* claims (§6.3): the same
//! mechanism realizes different operator objectives — α-fairness at several
//! α, FCT minimization, bandwidth functions — just by changing the utility
//! functions handed to the flows.

use numfabric::baselines::{pfabric_network, PfabricAgent, PfabricConfig};
use numfabric::core::{install_numfabric, numfabric_network, NumFabricAgent, NumFabricConfig};
use numfabric::num::bandwidth_function::{single_link_allocation, BandwidthFunction};
use numfabric::num::utility::{AlphaFair, BandwidthFunctionUtility, FctUtility};
use numfabric::num::{FluidNetwork, Oracle};
use numfabric::sim::queue::StfqQueue;
use numfabric::sim::topology::{LeafSpineConfig, NodeKind, Topology};
use numfabric::sim::{Network, SimDuration, SimTime};

/// Parking-lot scenario at a given α: the long flow's share should match the
/// fluid oracle's prediction (which moves from 1/3 toward 1/2 as α grows).
fn parking_lot_share(alpha: f64) -> (f64, f64) {
    let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
    let config = NumFabricConfig::paper_default();
    let mut net = numfabric_network(topo, &config);
    let hosts: Vec<_> = net.topology().hosts().to_vec();
    // Long flow shares its source NIC with flow B and its destination NIC
    // with flow C (two bottlenecks).
    let long = net.add_flow(
        hosts[0],
        hosts[5],
        None,
        SimTime::ZERO,
        0,
        None,
        Box::new(NumFabricAgent::new(config.clone(), AlphaFair::new(alpha))),
    );
    let _b = net.add_flow(
        hosts[0],
        hosts[6],
        None,
        SimTime::ZERO,
        1,
        None,
        Box::new(NumFabricAgent::new(config.clone(), AlphaFair::new(alpha))),
    );
    let _c = net.add_flow(
        hosts[1],
        hosts[5],
        None,
        SimTime::ZERO,
        2,
        None,
        Box::new(NumFabricAgent::new(config.clone(), AlphaFair::new(alpha))),
    );
    net.run_until(SimTime::from_millis(8));

    let mut fluid = FluidNetwork::new();
    let l0 = fluid.add_link(10.0);
    let l1 = fluid.add_link(10.0);
    fluid.add_simple_flow(vec![l0, l1], AlphaFair::new(alpha));
    fluid.add_simple_flow(vec![l0], AlphaFair::new(alpha));
    fluid.add_simple_flow(vec![l1], AlphaFair::new(alpha));
    let oracle = Oracle::new().solve(&fluid);

    (net.flow_rate_estimate(long) / 1e9, oracle.rates[0])
}

#[test]
fn alpha_fairness_tracks_the_oracle_across_alphas() {
    for &alpha in &[0.5, 1.0, 2.0] {
        let (measured, expected) = parking_lot_share(alpha);
        assert!(
            (measured - expected).abs() / expected < 0.25,
            "alpha={alpha}: measured {measured:.2} Gbps vs oracle {expected:.2} Gbps"
        );
    }
}

#[test]
fn higher_alpha_is_more_fair_to_the_long_flow() {
    let (low, _) = parking_lot_share(0.5);
    let (high, _) = parking_lot_share(2.0);
    assert!(
        high > low,
        "alpha=2 share ({high:.2}) should exceed alpha=0.5 share ({low:.2})"
    );
}

#[test]
fn fct_objective_is_competitive_with_pfabric_on_a_small_mix() {
    // A tiny version of Fig. 7's point: a mix of short and long flows to one
    // destination; NUMFabric with the FCT utility should finish the short
    // flows within a small factor of pFabric.
    let sizes: &[u64] = &[30_000, 50_000, 80_000, 5_000_000];

    let run = |use_pfabric: bool| -> Vec<f64> {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let mut net;
        let mut ids = Vec::new();
        if use_pfabric {
            net = pfabric_network(topo, &PfabricConfig::default());
            let hosts: Vec<_> = net.topology().hosts().to_vec();
            for (i, &size) in sizes.iter().enumerate() {
                ids.push(net.add_flow(
                    hosts[i],
                    hosts[4],
                    Some(size),
                    SimTime::ZERO,
                    i,
                    None,
                    Box::new(PfabricAgent::new(PfabricConfig::default())),
                ));
            }
        } else {
            let config = NumFabricConfig::slowed_down(2.0)
                .with_bdp_initial_window(10e9, SimDuration::from_micros(16));
            net = numfabric_network(topo, &config);
            let hosts: Vec<_> = net.topology().hosts().to_vec();
            for (i, &size) in sizes.iter().enumerate() {
                ids.push(net.add_flow(
                    hosts[i],
                    hosts[4],
                    Some(size),
                    SimTime::ZERO,
                    i,
                    None,
                    Box::new(NumFabricAgent::new(
                        config.clone(),
                        FctUtility::new(size as f64),
                    )),
                ));
            }
        }
        net.run_until(SimTime::from_millis(60));
        ids.iter()
            .map(|&f| {
                net.flow_stats(f)
                    .fct()
                    .expect("flow finished")
                    .as_secs_f64()
            })
            .collect()
    };

    let numfabric = run(false);
    let pfabric = run(true);
    // Short flows (first three) should be within 4x of pFabric's FCT; the
    // paper reports 4-20% on the full workload, but at this tiny scale we
    // only assert the order of magnitude.
    for i in 0..3 {
        assert!(
            numfabric[i] < 4.0 * pfabric[i] + 200e-6,
            "short flow {i}: NUMFabric {:.0} us vs pFabric {:.0} us",
            numfabric[i] * 1e6,
            pfabric[i] * 1e6
        );
    }
}

#[test]
fn bandwidth_functions_realize_the_bwe_allocation_at_25gbps() {
    let mut topo = Topology::new();
    let src1 = topo.add_node(NodeKind::Host, "src1");
    let src2 = topo.add_node(NodeKind::Host, "src2");
    let sw = topo.add_node(NodeKind::Leaf, "sw");
    let dst = topo.add_node(NodeKind::Host, "dst");
    let delay = SimDuration::from_micros(2);
    topo.add_duplex_link(src1, sw, 50e9, delay);
    topo.add_duplex_link(src2, sw, 50e9, delay);
    topo.add_duplex_link(sw, dst, 25e9, delay);

    let config = NumFabricConfig::paper_default();
    let mut net = Network::new(topo.clone(), |_| Box::new(StfqQueue::with_default_buffer()));
    install_numfabric(&mut net, &config);
    let bwf1 = BandwidthFunction::paper_flow1();
    let bwf2 = BandwidthFunction::paper_flow2();
    let f1 = net.add_flow_on_route(
        src1,
        dst,
        topo.route_via(&[src1, sw, dst]),
        None,
        SimTime::ZERO,
        None,
        Box::new(NumFabricAgent::new(
            config.clone(),
            BandwidthFunctionUtility::new(bwf1.clone()),
        )),
    );
    let f2 = net.add_flow_on_route(
        src2,
        dst,
        topo.route_via(&[src2, sw, dst]),
        None,
        SimTime::ZERO,
        None,
        Box::new(NumFabricAgent::new(
            config.clone(),
            BandwidthFunctionUtility::new(bwf2.clone()),
        )),
    );
    net.run_until(SimTime::from_millis(10));

    let (expected, _) = single_link_allocation(&[bwf1, bwf2], 25.0);
    let measured = [
        net.flow_rate_estimate(f1) / 1e9,
        net.flow_rate_estimate(f2) / 1e9,
    ];
    for i in 0..2 {
        assert!(
            (measured[i] - expected[i]).abs() < 2.0,
            "flow {i}: measured {:.2} Gbps vs expected {:.2} Gbps",
            measured[i],
            expected[i]
        );
    }
    // The paper's headline: 15 / 10 split at 25 Gbps.
    assert!(measured[0] > measured[1]);
}

//! Fluid-model network description shared by all solvers in this crate.
//!
//! A [`FluidNetwork`] is just a set of capacitated links and a set of flows,
//! each with a path (list of link indices) and a utility function. It is the
//! input to the weighted max-min solver, the NUM oracle and the fluid
//! iterations of xWI / DGD / RCP*.

use crate::utility::{Utility, UtilityRef};
use std::sync::Arc;

/// Index of a link in a [`FluidNetwork`].
pub type LinkId = usize;
/// Index of a flow in a [`FluidNetwork`].
pub type FlowId = usize;

/// A capacitated link in the fluid model.
#[derive(Debug, Clone, PartialEq)]
pub struct FluidLink {
    /// Capacity in the same units flows' rates are expressed in.
    pub capacity: f64,
}

impl FluidLink {
    /// A link with the given capacity.
    ///
    /// # Panics
    /// Panics if `capacity` is not finite or not strictly positive.
    pub fn new(capacity: f64) -> Self {
        assert!(
            capacity.is_finite() && capacity > 0.0,
            "link capacity must be positive and finite"
        );
        Self { capacity }
    }
}

/// A flow in the fluid model: a path through the network plus the utility
/// function describing the benefit it derives from bandwidth.
#[derive(Debug, Clone)]
pub struct FluidFlow {
    /// The links this flow traverses (order is irrelevant to the solvers).
    pub path: Vec<LinkId>,
    /// The flow's utility function.
    pub utility: UtilityRef,
    /// Optional group identifier: subflows of the same multipath aggregate
    /// share a group (used by the multipath-aware solvers). `None` for
    /// ordinary single-path flows.
    pub group: Option<usize>,
}

impl FluidFlow {
    /// A single-path flow with the given path and utility.
    pub fn new(path: Vec<LinkId>, utility: impl Utility + 'static) -> Self {
        Self {
            path,
            utility: Arc::new(utility),
            group: None,
        }
    }

    /// A single-path flow from a shared utility handle.
    pub fn with_utility_ref(path: Vec<LinkId>, utility: UtilityRef) -> Self {
        Self {
            path,
            utility,
            group: None,
        }
    }

    /// Mark this flow as a subflow of multipath aggregate `group`.
    pub fn in_group(mut self, group: usize) -> Self {
        self.group = Some(group);
        self
    }

    /// Number of links on the flow's path.
    pub fn path_len(&self) -> usize {
        self.path.len()
    }
}

/// A fluid-model network: links plus flows.
#[derive(Debug, Clone, Default)]
pub struct FluidNetwork {
    links: Vec<FluidLink>,
    flows: Vec<FluidFlow>,
}

impl FluidNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a link with the given capacity; returns its [`LinkId`].
    pub fn add_link(&mut self, capacity: f64) -> LinkId {
        self.links.push(FluidLink::new(capacity));
        self.links.len() - 1
    }

    /// Add a flow; returns its [`FlowId`].
    ///
    /// # Panics
    /// Panics if the flow's path is empty or references an unknown link.
    pub fn add_flow(&mut self, flow: FluidFlow) -> FlowId {
        assert!(
            !flow.path.is_empty(),
            "a flow must traverse at least one link"
        );
        for &l in &flow.path {
            assert!(l < self.links.len(), "flow references unknown link {l}");
        }
        self.flows.push(flow);
        self.flows.len() - 1
    }

    /// Convenience: add a single-path flow with a utility.
    pub fn add_simple_flow(
        &mut self,
        path: Vec<LinkId>,
        utility: impl Utility + 'static,
    ) -> FlowId {
        self.add_flow(FluidFlow::new(path, utility))
    }

    /// Remove all flows, keeping the links (used when the active flow set
    /// changes between events in the convergence experiments).
    pub fn clear_flows(&mut self) {
        self.flows.clear();
    }

    /// The links.
    pub fn links(&self) -> &[FluidLink] {
        &self.links
    }

    /// The flows.
    pub fn flows(&self) -> &[FluidFlow] {
        &self.flows
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of flows.
    pub fn num_flows(&self) -> usize {
        self.flows.len()
    }

    /// Link capacities as a vector (index = [`LinkId`]).
    pub fn capacities(&self) -> Vec<f64> {
        self.links.iter().map(|l| l.capacity).collect()
    }

    /// For each link, the flows that traverse it.
    pub fn flows_per_link(&self) -> Vec<Vec<FlowId>> {
        let mut per_link = vec![Vec::new(); self.links.len()];
        for (i, f) in self.flows.iter().enumerate() {
            for &l in &f.path {
                per_link[l].push(i);
            }
        }
        per_link
    }

    /// Total traffic placed on each link by the rate vector `rates`.
    ///
    /// # Panics
    /// Panics if `rates.len() != num_flows()`.
    pub fn link_loads(&self, rates: &[f64]) -> Vec<f64> {
        let mut loads = Vec::new();
        self.link_loads_into(rates, &mut loads);
        loads
    }

    /// Allocation-free variant of [`Self::link_loads`]: writes the loads into
    /// `loads`, resizing it to `num_links()`.
    ///
    /// # Panics
    /// Panics if `rates.len() != num_flows()`.
    pub fn link_loads_into(&self, rates: &[f64], loads: &mut Vec<f64>) {
        assert_eq!(rates.len(), self.flows.len(), "one rate per flow");
        loads.clear();
        loads.resize(self.links.len(), 0.0);
        for (i, f) in self.flows.iter().enumerate() {
            for &l in &f.path {
                loads[l] += rates[i];
            }
        }
    }

    /// Whether the rate vector respects every link capacity up to a relative
    /// tolerance `rel_tol`.
    pub fn is_feasible(&self, rates: &[f64], rel_tol: f64) -> bool {
        self.link_loads(rates)
            .iter()
            .zip(self.links.iter())
            .all(|(&load, link)| load <= link.capacity * (1.0 + rel_tol) + 1e-12)
    }

    /// The aggregate utility `Σ_i U_i(x_i)` of a rate vector.
    pub fn total_utility(&self, rates: &[f64]) -> f64 {
        assert_eq!(rates.len(), self.flows.len(), "one rate per flow");
        self.flows
            .iter()
            .zip(rates.iter())
            .map(|(f, &x)| f.utility.value(x))
            .sum()
    }

    /// Sum of the prices along flow `i`'s path.
    pub fn path_price(&self, prices: &[f64], i: FlowId) -> f64 {
        self.flows[i].path.iter().map(|&l| prices[l]).sum()
    }
}

/// Incrementally derives a [`FluidNetwork`] from flows routed over an
/// arbitrary external topology.
///
/// Packet-simulator link ids (or any other external link identifiers) are
/// interned into dense fluid [`LinkId`]s on first use, so the resulting
/// instance contains exactly the links some flow traverses — no assumption
/// about the fabric's layout (leaf-spine, fat-tree, oversubscribed, custom)
/// is made. This is the single mapping used by the convergence oracle and
/// the ideal fluid simulator in `numfabric-workloads`.
#[derive(Debug, Default)]
pub struct FluidNetworkBuilder {
    net: FluidNetwork,
    link_map: std::collections::HashMap<usize, LinkId>,
}

impl FluidNetworkBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern an external link, adding a fluid link with `capacity` the
    /// first time it is seen. Subsequent calls with the same `external` id
    /// return the existing fluid link (the capacity argument is ignored
    /// then — external ids are assumed stable).
    pub fn intern_link(&mut self, external: usize, capacity: f64) -> LinkId {
        *self
            .link_map
            .entry(external)
            .or_insert_with(|| self.net.add_link(capacity))
    }

    /// Add a flow whose path is given as `(external_link_id, capacity)`
    /// pairs; links are interned as needed. Returns the flow's id (flows are
    /// in insertion order, matching the caller's flow list).
    pub fn add_flow_on(
        &mut self,
        path: impl IntoIterator<Item = (usize, f64)>,
        utility: UtilityRef,
    ) -> FlowId {
        let path: Vec<LinkId> = path
            .into_iter()
            .map(|(external, capacity)| self.intern_link(external, capacity))
            .collect();
        self.net
            .add_flow(FluidFlow::with_utility_ref(path, utility))
    }

    /// Number of distinct external links interned so far.
    pub fn num_links(&self) -> usize {
        self.link_map.len()
    }

    /// Finish building and return the fluid network.
    pub fn finish(self) -> FluidNetwork {
        self.net
    }
}

/// Grouping of subflows into multipath aggregates (resource pooling).
///
/// Flows whose [`FluidFlow::group`] is `Some(g)` belong to aggregate `g`;
/// flows with `group == None` each form their own singleton aggregate.
#[derive(Debug, Clone)]
pub struct MultipathGroups {
    /// For each flow, the index of the group it belongs to (dense, 0-based).
    group_of: Vec<usize>,
    /// For each group, the member flow ids.
    members: Vec<Vec<FlowId>>,
}

impl MultipathGroups {
    /// Build the grouping from the `group` markers on a network's flows.
    pub fn from_network(net: &FluidNetwork) -> Self {
        let mut explicit: std::collections::BTreeMap<usize, usize> =
            std::collections::BTreeMap::new();
        let mut group_of = Vec::with_capacity(net.num_flows());
        let mut members: Vec<Vec<FlowId>> = Vec::new();
        for (i, f) in net.flows().iter().enumerate() {
            let g = match f.group {
                Some(tag) => *explicit.entry(tag).or_insert_with(|| {
                    members.push(Vec::new());
                    members.len() - 1
                }),
                None => {
                    members.push(Vec::new());
                    members.len() - 1
                }
            };
            members[g].push(i);
            group_of.push(g);
        }
        Self { group_of, members }
    }

    /// Number of aggregates.
    pub fn num_groups(&self) -> usize {
        self.members.len()
    }

    /// The group a flow belongs to.
    pub fn group_of(&self, flow: FlowId) -> usize {
        self.group_of[flow]
    }

    /// The member flows of a group.
    pub fn members(&self, group: usize) -> &[FlowId] {
        &self.members[group]
    }

    /// Sum subflow `rates` into per-aggregate totals.
    ///
    /// # Panics
    /// Panics if `rates.len()` does not match the number of flows the
    /// grouping was built from.
    pub fn aggregate_rates(&self, rates: &[f64]) -> Vec<f64> {
        assert_eq!(rates.len(), self.group_of.len(), "one rate per flow");
        let mut totals = vec![0.0; self.members.len()];
        for (i, &g) in self.group_of.iter().enumerate() {
            totals[g] += rates[i];
        }
        totals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::LogUtility;

    fn two_link_net() -> FluidNetwork {
        let mut net = FluidNetwork::new();
        let a = net.add_link(10.0);
        let b = net.add_link(5.0);
        net.add_simple_flow(vec![a], LogUtility::new());
        net.add_simple_flow(vec![a, b], LogUtility::new());
        net.add_simple_flow(vec![b], LogUtility::new());
        net
    }

    #[test]
    fn builds_and_indexes_links_and_flows() {
        let net = two_link_net();
        assert_eq!(net.num_links(), 2);
        assert_eq!(net.num_flows(), 3);
        assert_eq!(net.capacities(), vec![10.0, 5.0]);
        let per_link = net.flows_per_link();
        assert_eq!(per_link[0], vec![0, 1]);
        assert_eq!(per_link[1], vec![1, 2]);
    }

    #[test]
    fn link_loads_and_feasibility() {
        let net = two_link_net();
        let rates = vec![4.0, 2.0, 3.0];
        assert_eq!(net.link_loads(&rates), vec![6.0, 5.0]);
        assert!(net.is_feasible(&rates, 1e-9));
        let too_much = vec![9.0, 2.0, 4.0];
        assert!(!net.is_feasible(&too_much, 1e-9));
    }

    #[test]
    fn path_price_sums_along_path() {
        let net = two_link_net();
        let prices = vec![0.25, 1.5];
        assert_eq!(net.path_price(&prices, 0), 0.25);
        assert_eq!(net.path_price(&prices, 1), 1.75);
        assert_eq!(net.path_price(&prices, 2), 1.5);
    }

    #[test]
    fn total_utility_sums_logs() {
        let net = two_link_net();
        let rates = vec![1.0, std::f64::consts::E, 1.0];
        assert!((net.total_utility(&rates) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_flow_with_unknown_link() {
        let mut net = FluidNetwork::new();
        net.add_link(1.0);
        net.add_simple_flow(vec![3], LogUtility::new());
    }

    #[test]
    #[should_panic]
    fn rejects_empty_path() {
        let mut net = FluidNetwork::new();
        net.add_link(1.0);
        net.add_simple_flow(vec![], LogUtility::new());
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_capacity() {
        FluidLink::new(0.0);
    }

    #[test]
    fn builder_interns_external_links_once() {
        let mut b = FluidNetworkBuilder::new();
        let u: UtilityRef = Arc::new(LogUtility::new());
        // Two flows sharing external link 17 (capacity 10), one private link.
        let f0 = b.add_flow_on([(17, 10.0), (40, 5.0)], u.clone());
        let f1 = b.add_flow_on([(17, 10.0)], u.clone());
        assert_eq!((f0, f1), (0, 1));
        assert_eq!(b.num_links(), 2);
        let net = b.finish();
        assert_eq!(net.num_links(), 2);
        assert_eq!(net.num_flows(), 2);
        // The shared link carries both flows.
        let per_link = net.flows_per_link();
        assert!(per_link.iter().any(|fs| fs == &vec![0, 1]));
        // Capacity recorded from first sighting.
        assert!(net
            .links()
            .iter()
            .any(|l| (l.capacity - 10.0).abs() < 1e-12));
        assert!(net.links().iter().any(|l| (l.capacity - 5.0).abs() < 1e-12));
    }

    #[test]
    fn group_marking_round_trips() {
        let flow = FluidFlow::new(vec![0], LogUtility::new()).in_group(7);
        assert_eq!(flow.group, Some(7));
        assert_eq!(flow.path_len(), 1);
    }

    #[test]
    fn multipath_groups_cluster_by_tag_and_singleton_otherwise() {
        let mut net = FluidNetwork::new();
        let a = net.add_link(10.0);
        let b = net.add_link(10.0);
        net.add_flow(FluidFlow::new(vec![a], LogUtility::new()).in_group(42));
        net.add_flow(FluidFlow::new(vec![b], LogUtility::new()).in_group(42));
        net.add_flow(FluidFlow::new(vec![a], LogUtility::new()));
        let groups = MultipathGroups::from_network(&net);
        assert_eq!(groups.num_groups(), 2);
        assert_eq!(groups.group_of(0), groups.group_of(1));
        assert_ne!(groups.group_of(0), groups.group_of(2));
        assert_eq!(groups.members(groups.group_of(0)), &[0, 1]);
        let totals = groups.aggregate_rates(&[3.0, 4.0, 5.0]);
        assert_eq!(totals[groups.group_of(0)], 7.0);
        assert_eq!(totals[groups.group_of(2)], 5.0);
    }

    #[test]
    #[should_panic]
    fn aggregate_rates_rejects_wrong_length() {
        let mut net = FluidNetwork::new();
        let a = net.add_link(10.0);
        net.add_flow(FluidFlow::new(vec![a], LogUtility::new()));
        let groups = MultipathGroups::from_network(&net);
        groups.aggregate_rates(&[1.0, 2.0]);
    }
}

//! # numfabric-core
//!
//! The paper's primary contribution: **NUMFabric**, a datacenter transport
//! that solves network utility maximization (NUM) problems quickly by
//! decoupling *utilization* from *relative allocation*:
//!
//! * [`swift`] — the Swift transport's host-side rate control: packet-pair
//!   bandwidth estimation from receiver-reflected inter-packet times and the
//!   window rule `W = R̂ (d0 + dt)`. Combined with the WFQ (STFQ) scheduler
//!   in `numfabric-sim`, Swift keeps the network fully utilized and realizes
//!   a weighted max-min allocation for any weights the layer above chooses.
//! * [`xwi`] — the eXplicit Weight Inference switch logic: per-port prices
//!   updated from the minimum normalized KKT residual of the flows crossing
//!   the port plus an under-utilization decay, smoothed with β-averaging.
//! * [`protocol`] — the [`NumFabricAgent`] flow
//!   agent tying both layers together, plus helpers to build a ready-to-run
//!   NUMFabric network.
//! * [`multipath`] — the subflow coordination used for resource pooling.
//! * [`config`] — every parameter of Table 2 with the paper's defaults.
//!
//! Utility functions (α-fairness, FCT minimization, bandwidth functions,
//! resource pooling) come from the `numfabric-num` crate and are passed to
//! each flow's agent; that is all an operator has to choose.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod config;
pub mod multipath;
pub mod protocol;
pub mod swift;
pub mod xwi;

pub use config::NumFabricConfig;
pub use multipath::{AggregateHandle, AggregateState};
pub use protocol::{install_numfabric, numfabric_network, NumFabricAgent};
pub use swift::{SwiftRateEstimator, SwiftWindow};
pub use xwi::XwiPriceController;

//! Fluid-model (synchronous, idealized) iterations of the three distributed
//! NUM algorithms the paper studies:
//!
//! * [`XwiFluid`] — NUMFabric's **eXplicit Weight Inference** on top of an
//!   ideal weighted max-min transport (§4.2, Eqs. 7–11).
//! * [`DgdFluid`] — the **Dual Gradient Descent** baseline of Low & Lapsley
//!   (§3, Eqs. 3–4).
//! * [`RcpStarFluid`] — the **RCP\*** baseline: per-link fair-share rates
//!   generalized to α-fairness (§6, Eqs. 15–16).
//!
//! These are *not* packet-level models (those live in `numfabric-core` and
//! `numfabric-baselines`): an iteration here corresponds to one idealized
//! control interval with perfect, delay-free measurement. The fluid models
//! are used (a) to study convergence dynamics in isolation from queueing
//! noise (the paper's extended-version numerical simulations), (b) as
//! property-test subjects — the xWI fixed point must solve the NUM problem —
//! and (c) by the benchmark harness for iteration-count comparisons.

use crate::maxmin::{weighted_max_min_into, MaxMinWorkspace};
use crate::oracle::OracleSolution;
use crate::topology::FluidNetwork;
use crate::{clamp_rate, MAX_RATE};

/// A snapshot of one fluid-model iteration.
#[derive(Debug, Clone)]
pub struct FluidState {
    /// Iteration counter (0 = initial state).
    pub iteration: usize,
    /// Current flow rates.
    pub rates: Vec<f64>,
    /// Current link prices (or per-link fair-share rates for RCP*).
    pub prices: Vec<f64>,
}

/// A fluid-model NUM algorithm that can be stepped one synchronous iteration
/// at a time.
///
/// Implementors provide the allocation-free [`Self::step_in_place`] plus
/// borrowing accessors; the snapshot-returning [`Self::step`] / [`Self::state`]
/// conveniences are derived from them, so hot loops (convergence counting,
/// benchmarks) can iterate without per-step clones while observers still get
/// owned [`FluidState`]s.
pub trait FluidAlgorithm {
    /// Advance one iteration, updating the internal rate and price vectors
    /// without allocating.
    fn step_in_place(&mut self);

    /// The current flow rates.
    fn rates(&self) -> &[f64];

    /// The current link prices (per-link fair-share rates for RCP*).
    fn prices(&self) -> &[f64];

    /// The iteration counter (0 = initial state).
    fn iteration(&self) -> usize;

    /// A short name for reports.
    fn name(&self) -> &'static str;

    /// Advance one iteration and return a snapshot of the new state.
    fn step(&mut self) -> FluidState {
        self.step_in_place();
        self.state()
    }

    /// A snapshot of the current state without stepping.
    fn state(&self) -> FluidState {
        FluidState {
            iteration: self.iteration(),
            rates: self.rates().to_vec(),
            prices: self.prices().to_vec(),
        }
    }

    /// Run until the rates are within `rel_tol` of `target` for every flow
    /// (relative to the target, with an absolute floor), or until `max_iters`
    /// iterations have elapsed. Returns the number of iterations used, or
    /// `None` if it did not converge.
    fn iterations_to_reach(
        &mut self,
        target: &[f64],
        rel_tol: f64,
        max_iters: usize,
    ) -> Option<usize> {
        for it in 1..=max_iters {
            self.step_in_place();
            let ok = self
                .rates()
                .iter()
                .zip(target.iter())
                .all(|(&x, &t)| (x - t).abs() <= rel_tol * t.max(1e-9));
            if ok {
                return Some(it);
            }
        }
        None
    }
}

/// Parameters of the fluid xWI iteration.
#[derive(Debug, Clone)]
pub struct XwiParams {
    /// Under-utilization decay gain η (Eq. 10). The paper uses 5 and notes
    /// the algorithm is largely insensitive to it.
    pub eta: f64,
    /// Price-averaging factor β (Eq. 11). The paper uses 0.5.
    pub beta: f64,
}

impl Default for XwiParams {
    fn default() -> Self {
        Self {
            eta: 5.0,
            beta: 0.5,
        }
    }
}

/// Fluid-model xWI: weights from prices (Eq. 7), rates from an exact weighted
/// max-min allocation (Eq. 8), prices from the minimum normalized residual
/// plus the under-utilization term (Eqs. 9–11).
#[derive(Debug, Clone)]
pub struct XwiFluid {
    net: FluidNetwork,
    params: XwiParams,
    prices: Vec<f64>,
    rates: Vec<f64>,
    iteration: usize,
    // Reusable buffers: step_in_place allocates nothing after construction.
    weights: Vec<f64>,
    prices_next: Vec<f64>,
    loads: Vec<f64>,
    maxmin: MaxMinWorkspace,
}

impl XwiFluid {
    /// Create the iteration with all prices initialized to `initial_price`.
    pub fn new(net: FluidNetwork, params: XwiParams, initial_price: f64) -> Self {
        assert!(initial_price >= 0.0, "prices are non-negative");
        let m = net.num_links();
        let n = net.num_flows();
        let maxmin = MaxMinWorkspace::for_network(&net);
        Self {
            net,
            params,
            prices: vec![initial_price; m],
            rates: vec![0.0; n],
            iteration: 0,
            weights: Vec::with_capacity(n),
            prices_next: vec![0.0; m],
            loads: vec![0.0; m],
            maxmin,
        }
    }

    /// Create with the paper's default parameters and a small positive price.
    pub fn with_defaults(net: FluidNetwork) -> Self {
        Self::new(net, XwiParams::default(), 1e-3)
    }

    /// The network this iteration runs on.
    pub fn network(&self) -> &FluidNetwork {
        &self.net
    }

    /// Current link prices.
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// Replace the flow population (e.g. a flow arrival/departure event) while
    /// keeping the link prices — this is exactly what makes xWI fast in
    /// dynamic settings: prices are already near the new optimum.
    pub fn replace_flows(&mut self, net: FluidNetwork) {
        assert_eq!(
            net.num_links(),
            self.net.num_links(),
            "replace_flows keeps the link set"
        );
        self.rates.clear();
        self.rates.resize(net.num_flows(), 0.0);
        self.maxmin = MaxMinWorkspace::for_network(&net);
        self.net = net;
    }
}

impl FluidAlgorithm for XwiFluid {
    fn step_in_place(&mut self) {
        let net = &self.net;
        let n = net.num_flows();
        let m = net.num_links();
        self.iteration += 1;

        if n == 0 {
            // No flows: all prices decay toward zero via the utilization term.
            for p in self.prices.iter_mut() {
                let new = (*p - self.params.eta * *p).max(0.0);
                *p = self.params.beta * *p + (1.0 - self.params.beta) * new;
            }
            return;
        }

        // Eq. 7: weights from path prices.
        let prices = &self.prices;
        self.weights.clear();
        self.weights.extend((0..n).map(|i| {
            let p = net.path_price(prices, i);
            let w = net.flows()[i].utility.inverse_marginal(p.max(0.0));
            // Swift weights must be positive and finite.
            clamp_rate(w).min(MAX_RATE)
        }));

        // Eq. 8: Swift's weighted max-min allocation.
        weighted_max_min_into(net, &self.weights, &mut self.maxmin, &mut self.rates);

        // Eqs. 9–11: price update per link.
        net.link_loads_into(&self.rates, &mut self.loads);
        let caps = self.maxmin.capacities();
        let flows_per_link = self.maxmin.flows_per_link();
        let rates = &self.rates;
        self.prices_next.clear();
        self.prices_next.resize(m, 0.0);
        for l in 0..m {
            let flows = &flows_per_link[l];
            if flows.is_empty() {
                // No flows: decay to zero.
                let res = (self.prices[l] - self.params.eta * self.prices[l]).max(0.0);
                self.prices_next[l] =
                    self.params.beta * self.prices[l] + (1.0 - self.params.beta) * res;
                continue;
            }
            // Minimum normalized residual over the flows crossing this link.
            let min_res = flows
                .iter()
                .map(|&i| {
                    let marginal = net.flows()[i].utility.marginal(rates[i]);
                    let path_price = net.path_price(&self.prices, i);
                    (marginal - path_price) / net.flows()[i].path.len() as f64
                })
                .fold(f64::INFINITY, f64::min);
            let p_res = self.prices[l] + min_res;
            let utilization = (self.loads[l] / caps[l]).min(1.0);
            let p_new = (p_res - self.params.eta * (1.0 - utilization) * self.prices[l]).max(0.0);
            self.prices_next[l] =
                self.params.beta * self.prices[l] + (1.0 - self.params.beta) * p_new;
        }
        std::mem::swap(&mut self.prices, &mut self.prices_next);
    }

    fn rates(&self) -> &[f64] {
        &self.rates
    }

    fn prices(&self) -> &[f64] {
        &self.prices
    }

    fn iteration(&self) -> usize {
        self.iteration
    }

    fn name(&self) -> &'static str {
        "xWI"
    }
}

/// Parameters of the fluid DGD iteration (Eq. 4).
#[derive(Debug, Clone)]
pub struct DgdParams {
    /// Gradient step size γ. The paper's central criticism of DGD is the
    /// difficulty of choosing this value.
    pub gamma: f64,
}

impl Default for DgdParams {
    fn default() -> Self {
        Self { gamma: 1e-2 }
    }
}

/// Fluid-model Dual Gradient Descent (Low & Lapsley): rates from prices
/// (Eq. 3), prices from the rate–capacity mismatch (Eq. 4).
#[derive(Debug, Clone)]
pub struct DgdFluid {
    net: FluidNetwork,
    params: DgdParams,
    prices: Vec<f64>,
    rates: Vec<f64>,
    iteration: usize,
    /// Reusable link-load buffer (step_in_place allocates nothing).
    loads: Vec<f64>,
}

impl DgdFluid {
    /// Create the iteration with all prices initialized to `initial_price`.
    pub fn new(net: FluidNetwork, params: DgdParams, initial_price: f64) -> Self {
        assert!(initial_price >= 0.0, "prices are non-negative");
        let m = net.num_links();
        let n = net.num_flows();
        Self {
            net,
            params,
            prices: vec![initial_price; m],
            rates: vec![0.0; n],
            iteration: 0,
            loads: vec![0.0; m],
        }
    }

    /// Default parameters and a small positive initial price.
    pub fn with_defaults(net: FluidNetwork) -> Self {
        Self::new(net, DgdParams::default(), 1e-3)
    }

    /// Replace the flow population, keeping prices (flow churn event).
    pub fn replace_flows(&mut self, net: FluidNetwork) {
        assert_eq!(net.num_links(), self.net.num_links());
        self.rates.clear();
        self.rates.resize(net.num_flows(), 0.0);
        self.net = net;
    }
}

impl FluidAlgorithm for DgdFluid {
    fn step_in_place(&mut self) {
        let net = &self.net;
        let n = net.num_flows();
        self.iteration += 1;

        // Eq. 3: rates directly from prices. DGD can pick infeasible rates
        // when prices are wrong — that is precisely its weakness; we cap the
        // per-flow rate at the largest link capacity on its path to model the
        // 2×BDP cap the paper's implementation uses.
        let prices = &self.prices;
        self.rates.clear();
        self.rates.extend((0..n).map(|i| {
            let p = net.path_price(prices, i);
            let cap = net.flows()[i]
                .path
                .iter()
                .map(|&l| net.links()[l].capacity)
                .fold(f64::INFINITY, f64::min);
            net.flows()[i]
                .utility
                .inverse_marginal(p.max(0.0))
                .min(2.0 * cap)
        }));

        // Eq. 4: gradient step on each link price.
        net.link_loads_into(&self.rates, &mut self.loads);
        for l in 0..net.num_links() {
            self.prices[l] = (self.prices[l]
                + self.params.gamma * (self.loads[l] - net.links()[l].capacity))
                .max(0.0);
        }
    }

    fn rates(&self) -> &[f64] {
        &self.rates
    }

    fn prices(&self) -> &[f64] {
        &self.prices
    }

    fn iteration(&self) -> usize {
        self.iteration
    }

    fn name(&self) -> &'static str {
        "DGD"
    }
}

/// Parameters of the fluid RCP* iteration (Eq. 15 with no queue term).
#[derive(Debug, Clone)]
pub struct RcpStarParams {
    /// Utilization gain `a`.
    pub a: f64,
    /// The α of the α-fair objective the links advertise rates for.
    pub alpha: f64,
}

impl Default for RcpStarParams {
    fn default() -> Self {
        Self { a: 0.5, alpha: 1.0 }
    }
}

/// Fluid-model RCP*: each link advertises a fair-share rate `R_l`, updated
/// multiplicatively from the spare capacity (Eq. 15, fluid version without
/// the queue term), and each flow sets its rate to
/// `(Σ_l R_l^{-α})^{-1/α}` (Eq. 16).
#[derive(Debug, Clone)]
pub struct RcpStarFluid {
    net: FluidNetwork,
    params: RcpStarParams,
    /// Per-link advertised fair-share rates.
    shares: Vec<f64>,
    rates: Vec<f64>,
    iteration: usize,
    /// Reusable link-load buffer (step_in_place allocates nothing).
    loads: Vec<f64>,
}

impl RcpStarFluid {
    /// Create the iteration; advertised rates start at an equal split of each
    /// link among the flows crossing it (or the full capacity if none).
    pub fn new(net: FluidNetwork, params: RcpStarParams) -> Self {
        let flows_per_link = net.flows_per_link();
        let shares: Vec<f64> = net
            .links()
            .iter()
            .enumerate()
            .map(|(l, link)| link.capacity / flows_per_link[l].len().max(1) as f64)
            .collect();
        let n = net.num_flows();
        let m = net.num_links();
        Self {
            net,
            params,
            shares,
            rates: vec![0.0; n],
            iteration: 0,
            loads: vec![0.0; m],
        }
    }

    /// Default parameters (α = 1).
    pub fn with_defaults(net: FluidNetwork) -> Self {
        Self::new(net, RcpStarParams::default())
    }

    /// Replace the flow population, keeping advertised rates.
    pub fn replace_flows(&mut self, net: FluidNetwork) {
        assert_eq!(net.num_links(), self.net.num_links());
        self.rates.clear();
        self.rates.resize(net.num_flows(), 0.0);
        self.net = net;
    }
}

impl FluidAlgorithm for RcpStarFluid {
    fn step_in_place(&mut self) {
        let net = &self.net;
        let n = net.num_flows();
        self.iteration += 1;

        // Eq. 16: flow rates from the advertised per-link shares.
        let alpha = self.params.alpha;
        let shares = &self.shares;
        self.rates.clear();
        self.rates.extend((0..n).map(|i| {
            let sum: f64 = net.flows()[i]
                .path
                .iter()
                .map(|&l| shares[l].max(1e-12).powf(-alpha))
                .sum();
            if sum <= 0.0 {
                MAX_RATE
            } else {
                clamp_rate(sum.powf(-1.0 / alpha))
            }
        }));

        // Eq. 15 (fluid): multiplicative update from spare capacity.
        net.link_loads_into(&self.rates, &mut self.loads);
        for (l, link) in net.links().iter().enumerate() {
            let spare = (link.capacity - self.loads[l]) / link.capacity;
            let factor = 1.0 + self.params.a * spare;
            self.shares[l] = (self.shares[l] * factor.max(0.1)).clamp(1e-9, MAX_RATE);
        }
    }

    fn rates(&self) -> &[f64] {
        &self.rates
    }

    fn prices(&self) -> &[f64] {
        &self.shares
    }

    fn iteration(&self) -> usize {
        self.iteration
    }

    fn name(&self) -> &'static str {
        "RCP*"
    }
}

/// Run `alg` until its rates are within `rel_tol` of the oracle solution for
/// its own network, returning the iteration count (`None` if `max_iters` is
/// exhausted first). Convenience wrapper used by tests and benches.
pub fn iterations_to_oracle<A: FluidAlgorithm>(
    alg: &mut A,
    oracle: &OracleSolution,
    rel_tol: f64,
    max_iters: usize,
) -> Option<usize> {
    alg.iterations_to_reach(&oracle.rates, rel_tol, max_iters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use crate::topology::{FluidFlow, FluidNetwork};
    use crate::utility::{AlphaFair, LogUtility};
    use rand::{seq::SliceRandom, Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    fn parking_lot(cap: f64) -> FluidNetwork {
        let mut net = FluidNetwork::new();
        let l0 = net.add_link(cap);
        let l1 = net.add_link(cap);
        net.add_simple_flow(vec![l0, l1], LogUtility::new());
        net.add_simple_flow(vec![l0], LogUtility::new());
        net.add_simple_flow(vec![l1], LogUtility::new());
        net
    }

    fn random_network(seed: u64, links: usize, flows: usize) -> FluidNetwork {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut net = FluidNetwork::new();
        for _ in 0..links {
            net.add_link(rng.gen_range(5.0..20.0));
        }
        for _ in 0..flows {
            let path_len = rng.gen_range(1..=3.min(links));
            let mut path: Vec<usize> = (0..links).collect();
            path.shuffle(&mut rng);
            path.truncate(path_len);
            net.add_flow(FluidFlow::new(path, LogUtility::new()));
        }
        net
    }

    #[test]
    fn xwi_converges_to_oracle_on_parking_lot() {
        let net = parking_lot(1.0);
        let oracle = Oracle::new().solve(&net);
        let mut xwi = XwiFluid::with_defaults(net);
        let iters = iterations_to_oracle(&mut xwi, &oracle, 0.01, 500)
            .expect("xWI should converge on the parking lot");
        assert!(iters < 200, "took {iters} iterations");
        let state = xwi.state();
        assert!(close(state.rates[0], 1.0 / 3.0, 0.02), "{:?}", state.rates);
    }

    #[test]
    fn xwi_rates_are_always_feasible() {
        // The decisive property vs DGD: xWI never oversubscribes a link,
        // because Swift's weighted max-min is feasible by construction.
        let net = random_network(7, 5, 12);
        let mut xwi = XwiFluid::with_defaults(net.clone());
        for _ in 0..100 {
            let state = xwi.step();
            assert!(net.is_feasible(&state.rates, 1e-6));
        }
    }

    #[test]
    fn dgd_can_overshoot_but_converges_with_small_step() {
        let net = parking_lot(1.0);
        let oracle = Oracle::new().solve(&net);
        let mut dgd = DgdFluid::new(net.clone(), DgdParams { gamma: 0.05 }, 1.0);
        let mut oversubscribed = false;
        for _ in 0..500 {
            let state = dgd.step();
            if !net.is_feasible(&state.rates, 1e-6) {
                oversubscribed = true;
            }
        }
        // With a fresh start DGD transits through infeasible allocations.
        assert!(
            oversubscribed,
            "DGD never oversubscribed — unexpected for a cold start"
        );
        let state = dgd.state();
        for (x, t) in state.rates.iter().zip(oracle.rates.iter()) {
            assert!(
                close(*x, *t, 0.05),
                "{:?} vs {:?}",
                state.rates,
                oracle.rates
            );
        }
    }

    #[test]
    fn dgd_diverges_or_oscillates_with_large_step() {
        // The brittleness the paper describes: a too-large γ keeps DGD from
        // settling. We check it has not converged after many iterations.
        let net = parking_lot(1.0);
        let oracle = Oracle::new().solve(&net);
        let mut dgd = DgdFluid::new(net, DgdParams { gamma: 50.0 }, 1.0);
        let converged = iterations_to_oracle(&mut dgd, &oracle, 0.01, 2_000);
        assert!(
            converged.is_none(),
            "huge step size should not converge cleanly"
        );
    }

    #[test]
    fn rcp_star_converges_to_max_min_for_alpha_one_single_link() {
        // On a single link, RCP*'s advertised-rate allocation equals the
        // proportional-fair (equal) split.
        let mut net = FluidNetwork::new();
        let l = net.add_link(10.0);
        for _ in 0..4 {
            net.add_simple_flow(vec![l], LogUtility::new());
        }
        let mut rcp = RcpStarFluid::with_defaults(net);
        let mut last = rcp.state();
        for _ in 0..300 {
            last = rcp.step();
        }
        for &r in &last.rates {
            assert!(close(r, 2.5, 0.02), "{:?}", last.rates);
        }
    }

    #[test]
    fn xwi_converges_faster_than_dgd_on_random_networks() {
        // The headline claim, in fluid form: median speed-up > 1.
        let mut xwi_wins = 0;
        let mut total = 0;
        for seed in 0..10 {
            let net = random_network(seed, 5, 10);
            let oracle = Oracle::new().solve(&net);
            if !oracle.converged {
                continue;
            }
            let mut xwi = XwiFluid::with_defaults(net.clone());
            let mut dgd = DgdFluid::with_defaults(net.clone());
            let xi = iterations_to_oracle(&mut xwi, &oracle, 0.05, 5_000);
            let di = iterations_to_oracle(&mut dgd, &oracle, 0.05, 5_000);
            total += 1;
            match (xi, di) {
                (Some(x), Some(d)) if x <= d => xwi_wins += 1,
                (Some(_), None) => xwi_wins += 1,
                _ => {}
            }
        }
        assert!(total >= 8, "oracle failed too often");
        assert!(
            xwi_wins * 2 > total,
            "xWI won only {xwi_wins}/{total} comparisons"
        );
    }

    #[test]
    fn xwi_fixed_point_satisfies_kkt() {
        // Run long enough to reach (approximately) the fixed point and verify
        // it solves the NUM problem — the paper's central theoretical claim.
        for seed in [1, 3, 9] {
            let net = random_network(seed, 4, 8);
            let mut xwi = XwiFluid::with_defaults(net.clone());
            let mut state = xwi.state();
            for _ in 0..3_000 {
                state = xwi.step();
            }
            let res = crate::kkt::kkt_residuals(&net, &state.rates, &state.prices);
            assert!(
                res.within(0.05),
                "seed {seed}: xWI fixed point violates KKT: {res:?}"
            );
        }
    }

    #[test]
    fn xwi_warm_start_after_flow_churn_is_fast() {
        // After a flow arrival, xWI restarted with the old prices should
        // typically converge in fewer iterations than from a cold start.
        // Individual instances can go either way (the new flow may move the
        // equilibrium far from the old prices), so the claim is aggregate:
        // warm starts win a majority of instances and in total iterations.
        let mut wins = 0usize;
        let mut total = 0usize;
        let (mut warm_total, mut cold_total) = (0usize, 0usize);
        for seed in 0..10u64 {
            let mut net = random_network(seed, 4, 8);
            let mut xwi = XwiFluid::with_defaults(net.clone());
            for _ in 0..500 {
                xwi.step();
            }
            // Add one flow on links 0 and 1.
            net.add_simple_flow(vec![0, 1], LogUtility::new());
            let oracle = Oracle::new().solve(&net);
            if !oracle.converged {
                continue;
            }

            let mut warm = xwi.clone();
            warm.replace_flows(net.clone());
            let warm_iters = iterations_to_oracle(&mut warm, &oracle, 0.05, 5_000);

            let mut cold = XwiFluid::with_defaults(net.clone());
            let cold_iters = iterations_to_oracle(&mut cold, &oracle, 0.05, 5_000);

            let (Some(w), Some(c)) = (warm_iters, cold_iters) else {
                panic!(
                    "seed {seed}: xWI failed to converge: warm={warm_iters:?} cold={cold_iters:?}"
                );
            };
            total += 1;
            if w <= c {
                wins += 1;
            }
            warm_total += w;
            cold_total += c;
        }
        assert!(total >= 8, "oracle failed too often ({total}/10)");
        assert!(
            wins * 2 > total,
            "warm start won only {wins}/{total} instances"
        );
        assert!(
            warm_total < cold_total,
            "warm starts used {warm_total} total iterations vs {cold_total} cold"
        );
    }

    #[test]
    fn empty_network_steps_do_not_panic() {
        let mut net = FluidNetwork::new();
        net.add_link(10.0);
        let mut xwi = XwiFluid::with_defaults(net.clone());
        let s = xwi.step();
        assert!(s.rates.is_empty());
        let mut dgd = DgdFluid::with_defaults(net.clone());
        dgd.step();
        let mut rcp = RcpStarFluid::with_defaults(net);
        rcp.step();
    }

    #[test]
    fn alpha_two_fixed_point_matches_oracle() {
        let mut net = FluidNetwork::new();
        let l0 = net.add_link(10.0);
        let l1 = net.add_link(10.0);
        net.add_simple_flow(vec![l0, l1], AlphaFair::new(2.0));
        net.add_simple_flow(vec![l0], AlphaFair::new(2.0));
        net.add_simple_flow(vec![l1], AlphaFair::new(2.0));
        let oracle = Oracle::new().solve(&net);
        let mut xwi = XwiFluid::with_defaults(net);
        let iters = iterations_to_oracle(&mut xwi, &oracle, 0.02, 2_000);
        assert!(iters.is_some(), "xWI did not reach the α=2 oracle");
    }
}

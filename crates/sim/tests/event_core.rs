//! Differential tests of the timing-wheel event core against the
//! binary-heap reference model ([`HeapEventQueue`]).
//!
//! The determinism contract — pops in lexicographic `(time, seq)` order,
//! FIFO for timestamp ties, cancellation tombstones, clock advancement —
//! must be bit-identical between the two implementations on *any* sequence
//! of schedule / schedule_cancellable / cancel / pop / peek operations,
//! including timestamp ties, zero-delay schedules, pacing-like spacings and
//! far-future (overflow-level) timestamps.

use numfabric_sim::event::{Event, EventId, EventQueue, HeapEventQueue};
use numfabric_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn start(flow: usize) -> Event {
    Event::FlowStart { flow }
}

fn flow_of(event: &Event) -> usize {
    match event {
        Event::FlowStart { flow } => *flow,
        other => panic!("unexpected event {other:?}"),
    }
}

/// One randomized differential run: apply an identical operation sequence
/// to the wheel and the heap and compare every observable.
fn differential_run(seed: u64, ops: usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut wheel = EventQueue::new();
    let mut heap = HeapEventQueue::new();
    // Ids of cancellable events that have not been cancelled yet (they may
    // have fired — cancelling a fired id must be a no-op in both).
    let mut handles: Vec<(EventId, EventId)> = Vec::new();

    for op in 0..ops {
        match rng.gen_range(0u32..100) {
            // Near-future schedule, heavily tie-prone: deltas in {0..8} µs
            // quantized to 400 ns so equal timestamps are common.
            0..=34 => {
                let delta = SimDuration::from_nanos(rng.gen_range(0u64..20) * 400);
                let at = wheel.now() + delta;
                let a = wheel.schedule(at, start(op));
                let b = heap.schedule(at, start(op));
                assert_eq!(a, b, "seq allocation diverged");
            }
            // Pacing-like spacing: ~1.2 µs with jitter (the DGD/RCP* shape).
            35..=54 => {
                let delta = SimDuration::from_nanos(1_232 + rng.gen_range(0u64..64));
                let at = wheel.now() + delta;
                wheel.schedule(at, start(op));
                heap.schedule(at, start(op));
            }
            // Mid-range (link-timer / RTO shape) cancellable schedule.
            55..=69 => {
                let delta = SimDuration::from_micros(rng.gen_range(1u64..100));
                let at = wheel.now() + delta;
                let a = wheel.schedule_cancellable(at, start(op));
                let b = heap.schedule_cancellable(at, start(op));
                assert_eq!(a, b);
                handles.push((a, b));
            }
            // Far-future schedule, some beyond the 2^36 ns wheel horizon.
            70..=74 => {
                let delta = SimDuration::from_secs_f64(rng.gen_range(1.0f64..200.0));
                let at = wheel.now() + delta;
                wheel.schedule(at, start(op));
                heap.schedule(at, start(op));
            }
            // Cancel a random outstanding handle (possibly already fired).
            75..=82 => {
                if !handles.is_empty() {
                    let i = rng.gen_range(0..handles.len());
                    let (a, b) = handles.swap_remove(i);
                    assert_eq!(wheel.cancel(a), heap.cancel(b), "cancel diverged");
                }
            }
            // Peek.
            83..=87 => {
                assert_eq!(wheel.peek_time(), heap.peek_time(), "peek diverged");
            }
            // Pop a small burst.
            _ => {
                for _ in 0..rng.gen_range(1usize..6) {
                    let state = wheel.debug_dump();
                    let a = wheel.pop_entry();
                    let b = heap.pop_entry();
                    match (a, b) {
                        (None, None) => break,
                        (Some((ta, ia, ea)), Some((tb, ib, eb))) => {
                            assert_eq!(
                                (ta, ia, flow_of(&ea)),
                                (tb, ib, flow_of(&eb)),
                                "pop diverged at op {op}; pre-pop state:\n{state}"
                            );
                            assert_eq!(wheel.now(), heap.now());
                        }
                        (a, b) => panic!(
                            "pop presence diverged at op {op}: wheel={:?} heap={:?}",
                            a.map(|(t, i, _)| (t, i)),
                            b.map(|(t, i, _)| (t, i))
                        ),
                    }
                }
            }
        }
        assert_eq!(wheel.len(), heap.len(), "len diverged at op {op}");
        wheel.debug_validate();
    }

    // Drain both completely and compare the full tail.
    loop {
        let state = wheel.debug_dump();
        let a = wheel.pop_entry();
        let b = heap.pop_entry();
        match (a, b) {
            (None, None) => break,
            (Some((ta, ia, ea)), Some((tb, ib, eb))) => {
                assert_eq!(
                    (ta, ia, flow_of(&ea)),
                    (tb, ib, flow_of(&eb)),
                    "drain diverged; pre-pop state:\n{state}"
                );
            }
            (a, b) => panic!(
                "drain diverged: wheel={:?} heap={:?}",
                a.map(|(t, i, _)| (t, i)),
                b.map(|(t, i, _)| (t, i))
            ),
        }
    }
    assert!(wheel.is_empty() && heap.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn wheel_matches_heap_reference(seed in 0u64..u64::MAX) {
        differential_run(seed, 400);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn wheel_matches_heap_reference_long_runs(seed in 0u64..u64::MAX) {
        differential_run(seed ^ 0xdead_beef, 6_000);
    }
}

/// The add-flow-between-runs pattern: peek far ahead (advancing the wheel
/// cursor), then schedule behind the peeked time.
#[test]
fn peek_ahead_then_schedule_behind_matches_heap() {
    let mut wheel = EventQueue::new();
    let mut heap = HeapEventQueue::new();
    for (i, t) in [5_000_000u64, 40, 40, 9_000].into_iter().enumerate() {
        if i == 1 {
            // Force the cursor forward before the remaining schedules.
            assert_eq!(wheel.peek_time(), heap.peek_time());
        }
        wheel.schedule(SimTime::from_nanos(t), start(i));
        heap.schedule(SimTime::from_nanos(t), start(i));
    }
    loop {
        match (wheel.pop_entry(), heap.pop_entry()) {
            (None, None) => break,
            (a, b) => assert_eq!(
                a.map(|(t, i, e)| (t, i, flow_of(&e))),
                b.map(|(t, i, e)| (t, i, flow_of(&e)))
            ),
        }
    }
}

//! Network topology: nodes, links and routes.
//!
//! The paper's evaluation uses leaf-spine fabrics: 128 servers, 8 leaf
//! switches and 4 spine switches with 10 Gbps host links and 40 Gbps fabric
//! links (full bisection bandwidth) for most experiments, and a 16-spine /
//! 10 Gbps-everywhere variant for the resource-pooling experiment (§6.3).
//! [`Topology::leaf_spine`] builds both.
//!
//! Links are unidirectional; the builders create both directions of every
//! physical cable. Routes are precomputed per flow (the simulator does not
//! model hop-by-hop forwarding-table lookups), which matches how the paper
//! pins each flow or subflow to a path chosen by ECMP hashing.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Identifier of a node (host or switch).
pub type NodeId = usize;
/// Identifier of a unidirectional link.
pub type LinkId = usize;

/// What role a node plays in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// A server / end-host.
    Host,
    /// A top-of-rack (leaf) switch.
    Leaf,
    /// A spine (core) switch.
    Spine,
}

/// Static description of a node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// The node's role.
    pub kind: NodeKind,
    /// Human-readable name (e.g. `host-17`, `leaf-2`, `spine-0`).
    pub name: String,
}

/// Static description of a unidirectional link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Capacity in bits per second.
    pub capacity_bps: f64,
    /// Propagation delay.
    pub delay: SimDuration,
}

/// A precomputed route: the sequence of links a packet traverses.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    /// Links in traversal order.
    pub links: Vec<LinkId>,
}

impl Route {
    /// Number of links on the route.
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether the route is empty (same-host communication).
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }
}

/// A static network topology.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<LinkSpec>,
    /// Host nodes in creation order (convenience index).
    hosts: Vec<NodeId>,
    leaves: Vec<NodeId>,
    spines: Vec<NodeId>,
}

/// Parameters for [`Topology::leaf_spine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeafSpineConfig {
    /// Total number of servers (must be divisible by `leaves`).
    pub hosts: usize,
    /// Number of leaf (top-of-rack) switches.
    pub leaves: usize,
    /// Number of spine switches.
    pub spines: usize,
    /// Host ↔ leaf link speed in bits per second.
    pub host_link_bps: f64,
    /// Leaf ↔ spine link speed in bits per second.
    pub fabric_link_bps: f64,
    /// Per-link propagation delay.
    pub link_delay: SimDuration,
}

impl LeafSpineConfig {
    /// The paper's main topology: 128 servers, 8 leaves, 4 spines, 10 Gbps
    /// host links, 40 Gbps fabric links, ~16 µs base RTT.
    pub fn paper_default() -> Self {
        Self {
            hosts: 128,
            leaves: 8,
            spines: 4,
            host_link_bps: 10e9,
            fabric_link_bps: 40e9,
            link_delay: SimDuration::from_micros(2),
        }
    }

    /// The resource-pooling topology of §6.3: 128 servers, 8 leaves,
    /// 16 spines, all links 10 Gbps.
    pub fn resource_pooling() -> Self {
        Self {
            hosts: 128,
            leaves: 8,
            spines: 16,
            host_link_bps: 10e9,
            fabric_link_bps: 10e9,
            link_delay: SimDuration::from_micros(2),
        }
    }

    /// A scaled-down topology with the same shape, for fast tests and the
    /// default (non `--full`) benchmark runs.
    pub fn small(hosts: usize, leaves: usize, spines: usize) -> Self {
        Self {
            hosts,
            leaves,
            spines,
            host_link_bps: 10e9,
            fabric_link_bps: 40e9,
            link_delay: SimDuration::from_micros(2),
        }
    }
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node of the given kind; returns its id.
    pub fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            kind,
            name: name.into(),
        });
        match kind {
            NodeKind::Host => self.hosts.push(id),
            NodeKind::Leaf => self.leaves.push(id),
            NodeKind::Spine => self.spines.push(id),
        }
        id
    }

    /// Add a unidirectional link; returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist, the endpoints are equal, or
    /// the capacity is not strictly positive.
    pub fn add_link(
        &mut self,
        from: NodeId,
        to: NodeId,
        capacity_bps: f64,
        delay: SimDuration,
    ) -> LinkId {
        assert!(from < self.nodes.len(), "unknown node {from}");
        assert!(to < self.nodes.len(), "unknown node {to}");
        assert_ne!(from, to, "self-links are not allowed");
        assert!(
            capacity_bps.is_finite() && capacity_bps > 0.0,
            "capacity must be positive"
        );
        self.links.push(LinkSpec {
            from,
            to,
            capacity_bps,
            delay,
        });
        self.links.len() - 1
    }

    /// Add both directions of a physical cable; returns `(forward, reverse)`.
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        capacity_bps: f64,
        delay: SimDuration,
    ) -> (LinkId, LinkId) {
        (
            self.add_link(a, b, capacity_bps, delay),
            self.add_link(b, a, capacity_bps, delay),
        )
    }

    /// The nodes.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The links.
    pub fn links(&self) -> &[LinkSpec] {
        &self.links
    }

    /// Host node ids in creation order.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Leaf switch node ids.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Spine switch node ids.
    pub fn spines(&self) -> &[NodeId] {
        &self.spines
    }

    /// Number of links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Find the link from `from` to `to`, if one exists.
    pub fn link_between(&self, from: NodeId, to: NodeId) -> Option<LinkId> {
        self.links.iter().position(|l| l.from == from && l.to == to)
    }

    /// Build a route as the concatenation of links along the node sequence
    /// `path` (panics if some consecutive pair has no link).
    pub fn route_via(&self, path: &[NodeId]) -> Route {
        let links = path
            .windows(2)
            .map(|w| {
                self.link_between(w[0], w[1])
                    .unwrap_or_else(|| panic!("no link between {} and {}", w[0], w[1]))
            })
            .collect();
        Route { links }
    }

    /// Build a leaf-spine fabric.
    ///
    /// # Panics
    /// Panics if `hosts` is not divisible by `leaves` or any count is zero.
    pub fn leaf_spine(cfg: &LeafSpineConfig) -> Self {
        assert!(
            cfg.hosts > 0 && cfg.leaves > 0 && cfg.spines > 0,
            "empty fabric"
        );
        assert_eq!(
            cfg.hosts % cfg.leaves,
            0,
            "hosts must divide evenly across leaves"
        );
        let mut topo = Topology::new();
        let hosts: Vec<NodeId> = (0..cfg.hosts)
            .map(|i| topo.add_node(NodeKind::Host, format!("host-{i}")))
            .collect();
        let leaves: Vec<NodeId> = (0..cfg.leaves)
            .map(|i| topo.add_node(NodeKind::Leaf, format!("leaf-{i}")))
            .collect();
        let spines: Vec<NodeId> = (0..cfg.spines)
            .map(|i| topo.add_node(NodeKind::Spine, format!("spine-{i}")))
            .collect();
        let per_leaf = cfg.hosts / cfg.leaves;
        for (i, &h) in hosts.iter().enumerate() {
            let leaf = leaves[i / per_leaf];
            topo.add_duplex_link(h, leaf, cfg.host_link_bps, cfg.link_delay);
        }
        for &leaf in &leaves {
            for &spine in &spines {
                topo.add_duplex_link(leaf, spine, cfg.fabric_link_bps, cfg.link_delay);
            }
        }
        topo
    }

    /// The leaf switch a host is attached to (leaf-spine topologies only).
    pub fn leaf_of(&self, host: NodeId) -> Option<NodeId> {
        assert_eq!(
            self.nodes[host].kind,
            NodeKind::Host,
            "{host} is not a host"
        );
        self.links
            .iter()
            .find(|l| l.from == host)
            .map(|l| l.to)
            .filter(|&n| self.nodes[n].kind == NodeKind::Leaf)
    }

    /// The route from `src` host to `dst` host through spine number
    /// `spine_choice % spines` (for hosts under different leaves), or directly
    /// through their shared leaf. Used for ECMP-style per-flow path pinning.
    ///
    /// # Panics
    /// Panics if `src` or `dst` is not a host, or `src == dst`.
    pub fn host_route(&self, src: NodeId, dst: NodeId, spine_choice: usize) -> Route {
        assert_ne!(src, dst, "a flow needs distinct endpoints");
        let src_leaf = self.leaf_of(src).expect("src not attached to a leaf");
        let dst_leaf = self.leaf_of(dst).expect("dst not attached to a leaf");
        if src_leaf == dst_leaf {
            self.route_via(&[src, src_leaf, dst])
        } else {
            let spine = self.spines[spine_choice % self.spines.len()];
            self.route_via(&[src, src_leaf, spine, dst_leaf, dst])
        }
    }

    /// All distinct routes from `src` to `dst` (one per spine for inter-rack
    /// pairs, a single route for intra-rack pairs). Subflows of a multipath
    /// flow are spread across these.
    pub fn host_routes(&self, src: NodeId, dst: NodeId) -> Vec<Route> {
        let src_leaf = self.leaf_of(src).expect("src not attached to a leaf");
        let dst_leaf = self.leaf_of(dst).expect("dst not attached to a leaf");
        if src_leaf == dst_leaf {
            vec![self.route_via(&[src, src_leaf, dst])]
        } else {
            (0..self.spines.len())
                .map(|s| self.host_route(src, dst, s))
                .collect()
        }
    }

    /// The reverse of `route` (the path ACKs take), assuming every link has a
    /// reverse twin.
    pub fn reverse_route(&self, route: &Route) -> Route {
        let links = route
            .links
            .iter()
            .rev()
            .map(|&l| {
                let spec = &self.links[l];
                self.link_between(spec.to, spec.from)
                    .expect("every link must have a reverse twin for ACK routing")
            })
            .collect();
        Route { links }
    }

    /// Base (zero-queue) round-trip time along `route` and back for a packet
    /// of `data_bytes` and an ACK of `ack_bytes`: propagation both ways plus
    /// serialization at every hop.
    pub fn base_rtt(&self, route: &Route, data_bytes: u64, ack_bytes: u64) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for &l in &route.links {
            let spec = &self.links[l];
            total += spec.delay + SimDuration::transmission(data_bytes, spec.capacity_bps);
        }
        let reverse = self.reverse_route(route);
        for &l in &reverse.links {
            let spec = &self.links[l];
            total += spec.delay + SimDuration::transmission(ack_bytes, spec.capacity_bps);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_leaf_spine_dimensions() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::paper_default());
        assert_eq!(topo.hosts().len(), 128);
        assert_eq!(topo.leaves().len(), 8);
        assert_eq!(topo.spines().len(), 4);
        // 128 duplex host links + 8*4 duplex fabric links = 2*(128+32) links.
        assert_eq!(topo.num_links(), 2 * (128 + 32));
        // Full bisection: each leaf has 16 * 10G down and 4 * 40G up.
        let leaf0 = topo.leaves()[0];
        let uplinks: f64 = topo
            .links()
            .iter()
            .filter(|l| l.from == leaf0 && topo.nodes()[l.to].kind == NodeKind::Spine)
            .map(|l| l.capacity_bps)
            .sum();
        assert_eq!(uplinks, 160e9);
    }

    #[test]
    fn intra_rack_route_has_two_hops() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let hosts = topo.hosts();
        // hosts 0..3 share leaf 0.
        let r = topo.host_route(hosts[0], hosts[1], 0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn inter_rack_route_has_four_hops_and_uses_chosen_spine() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let hosts = topo.hosts();
        let r0 = topo.host_route(hosts[0], hosts[7], 0);
        let r1 = topo.host_route(hosts[0], hosts[7], 1);
        assert_eq!(r0.len(), 4);
        assert_eq!(r1.len(), 4);
        assert_ne!(r0, r1, "different spine choices must give different routes");
        assert_eq!(topo.host_routes(hosts[0], hosts[7]).len(), 2);
        assert_eq!(topo.host_routes(hosts[0], hosts[1]).len(), 1);
    }

    #[test]
    fn reverse_route_retraces_the_path() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
        let hosts = topo.hosts();
        let fwd = topo.host_route(hosts[0], hosts[7], 1);
        let rev = topo.reverse_route(&fwd);
        assert_eq!(rev.len(), fwd.len());
        // The reverse of the reverse is the original.
        assert_eq!(topo.reverse_route(&rev), fwd);
        // First reverse link starts where the forward route ended.
        let last_fwd = &topo.links()[*fwd.links.last().unwrap()];
        let first_rev = &topo.links()[rev.links[0]];
        assert_eq!(first_rev.from, last_fwd.to);
    }

    #[test]
    fn base_rtt_matches_paper_scale() {
        // Paper: "The network RTT is 16 µs." With 2 µs/link propagation and 8
        // link traversals per round trip, propagation alone is 16 µs; header
        // serialization adds a little.
        let topo = Topology::leaf_spine(&LeafSpineConfig::paper_default());
        let hosts = topo.hosts();
        let route = topo.host_route(hosts[0], hosts[127], 0);
        let rtt = topo.base_rtt(&route, 40, 40);
        assert!(rtt >= SimDuration::from_micros(16), "rtt = {rtt}");
        assert!(rtt < SimDuration::from_micros(18), "rtt = {rtt}");
    }

    #[test]
    fn route_via_and_link_between_agree() {
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Host, "a");
        let s = topo.add_node(NodeKind::Leaf, "s");
        let b = topo.add_node(NodeKind::Host, "b");
        topo.add_duplex_link(a, s, 10e9, SimDuration::from_micros(1));
        topo.add_duplex_link(s, b, 10e9, SimDuration::from_micros(1));
        let r = topo.route_via(&[a, s, b]);
        assert_eq!(r.len(), 2);
        assert_eq!(topo.links()[r.links[0]].from, a);
        assert_eq!(topo.links()[r.links[1]].to, b);
        assert_eq!(topo.leaf_of(a), Some(s));
    }

    #[test]
    #[should_panic]
    fn self_link_rejected() {
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Host, "a");
        topo.add_link(a, a, 1e9, SimDuration::ZERO);
    }

    #[test]
    #[should_panic]
    fn uneven_hosts_per_leaf_rejected() {
        Topology::leaf_spine(&LeafSpineConfig::small(7, 2, 2));
    }

    #[test]
    fn resource_pooling_topology_shape() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::resource_pooling());
        assert_eq!(topo.spines().len(), 16);
        let leaf0 = topo.leaves()[0];
        let up: Vec<_> = topo
            .links()
            .iter()
            .filter(|l| l.from == leaf0 && topo.nodes()[l.to].kind == NodeKind::Spine)
            .collect();
        assert_eq!(up.len(), 16);
        assert!(up.iter().all(|l| l.capacity_bps == 10e9));
    }
}

//! Regenerate **Figure 8**: resource pooling with multipath NUMFabric.
//!
//! Permutation traffic on an all-10 Gbps leaf-spine fabric; each
//! source-destination pair splits into 1–8 subflows hashed onto random spine
//! paths. Two objectives are compared:
//! * **Resource pooling** — proportional fairness on the aggregate rate of
//!   each pair (row 4 of Table 1), realized with the §6.3 subflow
//!   weight-splitting heuristic.
//! * **No resource pooling** — per-subflow proportional fairness.
//!
//! Outputs: total throughput (% of optimal) vs number of subflows (Fig. 8a)
//! and the per-pair throughputs, ranked, for 8 subflows (Fig. 8b).

use numfabric_bench::report::print_table;
use numfabric_core::protocol::numfabric_network;
use numfabric_core::{AggregateState, NumFabricAgent, NumFabricConfig};
use numfabric_num::utility::LogUtility;
use numfabric_sim::topology::{LeafSpineConfig, Topology};
use numfabric_sim::{Network, SimTime};
use numfabric_workloads::scenarios::permutation_pairs;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn arg_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Run the permutation workload with `subflows` subflows per pair. Returns
/// per-pair aggregate throughputs in bits per second.
fn run_permutation(
    topo_cfg: &LeafSpineConfig,
    subflows: usize,
    pooling: bool,
    seed: u64,
) -> Vec<f64> {
    let topo = Topology::leaf_spine(topo_cfg);
    let pairs = permutation_pairs(&topo, seed);
    let config = NumFabricConfig::default();
    let mut net: Network = numfabric_network(topo, &config);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xf1f0);

    let mut pair_flows: Vec<Vec<usize>> = Vec::with_capacity(pairs.len());
    for (pair_idx, pair) in pairs.iter().enumerate() {
        let handles = AggregateState::create(subflows);
        let mut ids = Vec::with_capacity(subflows);
        for handle in handles {
            let spine = rng.gen_range(0..topo_cfg.spines.max(1));
            let agent = if pooling {
                NumFabricAgent::new(config.clone(), LogUtility::new()).with_aggregate(handle)
            } else {
                NumFabricAgent::new(config.clone(), LogUtility::new())
            };
            let id = net.add_flow(
                pair.src,
                pair.dst,
                None,
                SimTime::ZERO,
                spine,
                Some(pair_idx),
                Box::new(agent),
            );
            ids.push(id);
        }
        pair_flows.push(ids);
    }
    net.run_until(SimTime::from_millis(12));
    pair_flows
        .iter()
        .map(|ids| ids.iter().map(|&id| net.flow_rate_estimate(id)).sum())
        .collect()
}

fn main() {
    let topo_cfg = if arg_flag("--full") {
        LeafSpineConfig::resource_pooling()
    } else {
        // Same shape, smaller: 32 hosts, 4 leaves, 8 spines, all 10 Gbps.
        LeafSpineConfig {
            hosts: 32,
            leaves: 4,
            spines: 8,
            host_link_bps: 10e9,
            fabric_link_bps: 10e9,
            ..LeafSpineConfig::resource_pooling()
        }
    };
    let pairs = topo_cfg.hosts / 2;
    let optimal_total = pairs as f64 * topo_cfg.host_link_bps;

    println!(
        "Figure 8a: total throughput (% of optimal) vs number of subflows ({} pairs)\n",
        pairs
    );
    let subflow_counts: Vec<usize> = if arg_flag("--full") {
        (1..=8).collect()
    } else {
        vec![1, 2, 4, 8]
    };
    let mut rows = Vec::new();
    let mut pooled_8: Vec<f64> = Vec::new();
    let mut unpooled_8: Vec<f64> = Vec::new();
    for &k in &subflow_counts {
        let pooled = run_permutation(&topo_cfg, k, true, 5);
        let unpooled = run_permutation(&topo_cfg, k, false, 5);
        if k == *subflow_counts.last().unwrap() {
            pooled_8 = pooled.clone();
            unpooled_8 = unpooled.clone();
        }
        rows.push(vec![
            format!("{k}"),
            format!("{:.1}%", pooled.iter().sum::<f64>() / optimal_total * 100.0),
            format!(
                "{:.1}%",
                unpooled.iter().sum::<f64>() / optimal_total * 100.0
            ),
        ]);
    }
    print_table(
        &["subflows", "resource pooling", "no resource pooling"],
        &rows,
    );

    println!(
        "\nFigure 8b: per-pair throughput (% of optimal), ranked, with {} subflows\n",
        subflow_counts.last().unwrap()
    );
    let mut ranked_pooled: Vec<f64> = pooled_8
        .iter()
        .map(|r| r / topo_cfg.host_link_bps * 100.0)
        .collect();
    let mut ranked_unpooled: Vec<f64> = unpooled_8
        .iter()
        .map(|r| r / topo_cfg.host_link_bps * 100.0)
        .collect();
    ranked_pooled.sort_by(|a, b| b.partial_cmp(a).unwrap());
    ranked_unpooled.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let rows: Vec<Vec<String>> = ranked_pooled
        .iter()
        .zip(&ranked_unpooled)
        .enumerate()
        .map(|(rank, (p, u))| {
            vec![
                format!("{}", rank + 1),
                format!("{p:.1}%"),
                format!("{u:.1}%"),
            ]
        })
        .collect();
    print_table(&["rank", "resource pooling", "no resource pooling"], &rows);
    println!(
        "\nExpected shape (paper): with 8 subflows, resource pooling reaches close to 100% of the\n\
         optimal total throughput and the per-pair throughputs are nearly equal; without pooling\n\
         the total is lower and the spread across pairs much wider."
    );
}

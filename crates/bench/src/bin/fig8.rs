//! Regenerate **Figure 8** — thin wrapper over
//! [`numfabric_bench::figures::fig8`] (also available as
//! `numfabric-run fig8 [--full]`).

use numfabric_workloads::registry::ScenarioOptions;

fn main() {
    numfabric_bench::figures::fig8(&ScenarioOptions::from_env());
}

//! Regenerate **Figure 6**: NUMFabric parameter sensitivity.
//!
//! * `--sweep dt`       — convergence time vs the Swift delay slack `dt` (Fig. 6a)
//! * `--sweep interval` — convergence time vs the xWI price-update interval (Fig. 6b)
//! * `--sweep alpha`    — convergence time vs α, at 1× and 2× slow-down (Fig. 6c)
//! * default: all three sweeps.

use numfabric_bench::report::print_table;
use numfabric_bench::{run_semi_dynamic, Protocol, SemiDynamicRun};
use numfabric_core::NumFabricConfig;
use numfabric_num::utility::AlphaFair;
use numfabric_sim::SimDuration;
use std::sync::Arc;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn events() -> usize {
    arg_value("--events")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

fn median_convergence(config: NumFabricConfig, alpha: f64, seed: u64) -> (String, String) {
    let run = SemiDynamicRun::reduced(events(), seed);
    let protocol = Protocol::NumFabric(config);
    let result = run_semi_dynamic(&protocol, &run, Arc::new(AlphaFair::new(alpha)));
    let median = result
        .stats
        .median
        .map(|d| format!("{:.0} us", d.as_micros_f64()))
        .unwrap_or_else(|| "did not converge".into());
    let converged = format!("{}/{}", result.stats.converged, result.stats.total);
    (median, converged)
}

fn sweep_dt() {
    println!("Figure 6a: sensitivity to the Swift delay slack dt (proportional fairness)\n");
    let mut rows = Vec::new();
    for dt_us in [3u64, 6, 12, 24] {
        let cfg = NumFabricConfig::default().with_dt(SimDuration::from_micros(dt_us));
        let (median, converged) = median_convergence(cfg, 1.0, 11);
        rows.push(vec![format!("{dt_us} us"), median, converged]);
    }
    print_table(&["dt", "median convergence", "events converged"], &rows);
    println!();
}

fn sweep_interval() {
    println!("Figure 6b: sensitivity to the xWI price update interval\n");
    let mut rows = Vec::new();
    for us in [30u64, 60, 90, 128] {
        let cfg =
            NumFabricConfig::default().with_price_update_interval(SimDuration::from_micros(us));
        let (median, converged) = median_convergence(cfg, 1.0, 12);
        rows.push(vec![format!("{us} us"), median, converged]);
    }
    print_table(
        &[
            "price update interval",
            "median convergence",
            "events converged",
        ],
        &rows,
    );
    println!();
}

fn sweep_alpha() {
    println!("Figure 6c: sensitivity to alpha (1x = default parameters, 2x = slowed down)\n");
    let mut rows = Vec::new();
    for &alpha in &[0.25, 0.5, 1.0, 2.0, 4.0] {
        let (median_1x, conv_1x) = median_convergence(NumFabricConfig::default(), alpha, 13);
        let (median_2x, conv_2x) = median_convergence(NumFabricConfig::slowed_down(2.0), alpha, 13);
        rows.push(vec![
            format!("{alpha}"),
            median_1x,
            conv_1x,
            median_2x,
            conv_2x,
        ]);
    }
    print_table(
        &[
            "alpha",
            "1x median",
            "1x converged",
            "2x median",
            "2x converged",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): extreme alpha values fail to converge reliably at 1x but\n\
         converge at 2x slow-down, at a modest cost in median convergence time."
    );
}

fn main() {
    match arg_value("--sweep").as_deref() {
        Some("dt") => sweep_dt(),
        Some("interval") => sweep_interval(),
        Some("alpha") => sweep_alpha(),
        _ => {
            sweep_dt();
            sweep_interval();
            sweep_alpha();
        }
    }
}

//! Driver for the semi-dynamic convergence experiment (§6.1, Figures 4a
//! and 6).
//!
//! The driver builds the scenario once, then replays it against any protocol:
//! long-running flows are started/stopped according to the scenario's network
//! events, the oracle allocation is recomputed for the active flow
//! population after each event, and the §6.1 convergence criterion is
//! measured on the packet simulation.

use crate::protocols::Protocol;
use numfabric_num::utility::UtilityRef;
use numfabric_sim::network::Network;
use numfabric_sim::topology::{LeafSpineConfig, Topology};
use numfabric_sim::{FlowId, SimDuration, SimTime};
use numfabric_workloads::convergence::{
    convergence_stats, measure_convergence, oracle_rates_bps, ConvergenceCriterion,
    ConvergenceStats,
};
use numfabric_workloads::scenarios::{EventKind, SemiDynamicConfig, SemiDynamicScenario};
use std::collections::HashMap;

/// Configuration of one semi-dynamic run.
#[derive(Debug, Clone)]
pub struct SemiDynamicRun {
    /// Topology to build.
    pub topology: LeafSpineConfig,
    /// Scenario shape (paths, events, active-count bounds).
    pub scenario: SemiDynamicConfig,
    /// Convergence criterion.
    pub criterion: ConvergenceCriterion,
    /// Give up on an event after this long.
    pub max_wait: SimDuration,
    /// Warm-up time before the first event (lets the initial flow population
    /// settle).
    pub warmup: SimDuration,
}

impl SemiDynamicRun {
    /// A scaled-down default: 32 hosts, 200 candidate paths, 20-flow events.
    /// Finishes in tens of seconds per protocol on a laptop while preserving
    /// the structure of the paper's experiment.
    pub fn reduced(num_events: usize, seed: u64) -> Self {
        Self {
            topology: LeafSpineConfig::small(32, 4, 2),
            scenario: SemiDynamicConfig::scaled(200, 20, num_events, seed),
            criterion: ConvergenceCriterion {
                hold: SimDuration::from_millis(2),
                ..Default::default()
            },
            max_wait: SimDuration::from_millis(12),
            warmup: SimDuration::from_millis(5),
        }
    }

    /// The paper-scale experiment: 128 hosts, 1000 paths, 100-flow events,
    /// 5 ms hold. Expect hours of wall-clock time for the full 100 events.
    pub fn paper_scale(num_events: usize, seed: u64) -> Self {
        Self {
            topology: LeafSpineConfig::paper_default(),
            scenario: SemiDynamicConfig {
                num_events,
                ..SemiDynamicConfig::paper_default(seed)
            },
            criterion: ConvergenceCriterion::default(),
            max_wait: SimDuration::from_millis(25),
            warmup: SimDuration::from_millis(10),
        }
    }
}

/// The result of one semi-dynamic run.
#[derive(Debug, Clone)]
pub struct SemiDynamicResult {
    /// Scheme name.
    pub protocol: String,
    /// Per-event convergence times (`None` = did not converge in time).
    pub times: Vec<Option<SimDuration>>,
    /// Median / p95 summary.
    pub stats: ConvergenceStats,
}

/// Run the semi-dynamic experiment for one protocol. All flows use the
/// `utility` objective (proportional fairness in the paper).
pub fn run_semi_dynamic(
    protocol: &Protocol,
    run: &SemiDynamicRun,
    utility: UtilityRef,
) -> SemiDynamicResult {
    let topo = Topology::leaf_spine(&run.topology);
    let scenario = SemiDynamicScenario::generate(&topo, &run.scenario);
    let mut net = protocol.build_network(topo.clone());

    // Map path index → currently active flow id.
    let mut active: HashMap<usize, FlowId> = HashMap::new();
    for &p in &scenario.initial_active {
        let spec = scenario.paths[p];
        let id = net.add_flow(
            spec.src,
            spec.dst,
            None,
            SimTime::ZERO,
            spec.spine_choice,
            None,
            protocol.make_agent(utility.clone()),
        );
        active.insert(p, id);
    }
    net.run_for(run.warmup);

    let mut times = Vec::with_capacity(scenario.events.len());
    for event in &scenario.events {
        // Apply the event.
        match event.kind {
            EventKind::Start => {
                for &p in &event.paths {
                    let spec = scenario.paths[p];
                    let id = net.add_flow(
                        spec.src,
                        spec.dst,
                        None,
                        net.now(),
                        spec.spine_choice,
                        None,
                        protocol.make_agent(utility.clone()),
                    );
                    active.insert(p, id);
                }
            }
            EventKind::Stop => {
                for &p in &event.paths {
                    if let Some(id) = active.remove(&p) {
                        net.stop_flow(id);
                    }
                }
            }
        }

        // Oracle allocation for the new population.
        let mut flow_ids = Vec::with_capacity(active.len());
        let mut fluid_flows = Vec::with_capacity(active.len());
        for (&p, &id) in &active {
            let spec = scenario.paths[p];
            let route = topo.host_route(spec.src, spec.dst, spec.spine_choice);
            flow_ids.push(id);
            fluid_flows.push((route, utility.clone()));
        }
        let targets = oracle_rates_bps(&topo, &fluid_flows);

        // Measure convergence on the packet simulation.
        let outcome =
            measure_convergence(&mut net, &flow_ids, &targets, &run.criterion, run.max_wait);
        times.push(outcome.convergence_time);
    }

    SemiDynamicResult {
        protocol: protocol.name().to_string(),
        stats: convergence_stats(&times),
        times,
    }
}

/// Run one protocol but measure only the rate trajectory of a single tracked
/// flow (Fig. 4b/4c): returns `(time, rate_bps)` samples at `sample_every`
/// granularity while the scenario's events play out on a fixed timetable.
pub fn rate_timeseries(
    protocol: &Protocol,
    run: &SemiDynamicRun,
    utility: UtilityRef,
    event_spacing: SimDuration,
    sample_every: SimDuration,
) -> Vec<(f64, f64)> {
    let topo = Topology::leaf_spine(&run.topology);
    let scenario = SemiDynamicScenario::generate(&topo, &run.scenario);
    let mut net = protocol.build_network(topo.clone());

    let mut active: HashMap<usize, FlowId> = HashMap::new();
    for &p in &scenario.initial_active {
        let spec = scenario.paths[p];
        let id = net.add_flow(
            spec.src,
            spec.dst,
            None,
            SimTime::ZERO,
            spec.spine_choice,
            None,
            protocol.make_agent(utility.clone()),
        );
        active.insert(p, id);
    }
    // Track the first initially-active flow.
    let tracked = *active
        .get(&scenario.initial_active[0])
        .expect("initial flow exists");

    let mut samples = Vec::new();
    let mut sample_clock = SimTime::ZERO;
    let mut record_until = |net: &mut Network, until: SimTime, samples: &mut Vec<(f64, f64)>| {
        while sample_clock < until {
            sample_clock += sample_every;
            net.run_until(sample_clock);
            samples.push((
                sample_clock.as_secs_f64() * 1e3,
                net.flow_rate_estimate(tracked),
            ));
        }
    };

    record_until(&mut net, SimTime::ZERO + run.warmup, &mut samples);
    for event in &scenario.events {
        match event.kind {
            EventKind::Start => {
                for &p in &event.paths {
                    let spec = scenario.paths[p];
                    // Never start a second flow on the tracked path.
                    let id = net.add_flow(
                        spec.src,
                        spec.dst,
                        None,
                        net.now(),
                        spec.spine_choice,
                        None,
                        protocol.make_agent(utility.clone()),
                    );
                    active.insert(p, id);
                }
            }
            EventKind::Stop => {
                for &p in &event.paths {
                    if p == scenario.initial_active[0] {
                        continue; // keep the tracked flow alive
                    }
                    if let Some(id) = active.remove(&p) {
                        net.stop_flow(id);
                    }
                }
            }
        }
        let next = net.now() + event_spacing;
        record_until(&mut net, next, &mut samples);
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_core::NumFabricConfig;
    use numfabric_num::utility::LogUtility;
    use std::sync::Arc;

    fn tiny_run(events: usize) -> SemiDynamicRun {
        SemiDynamicRun {
            topology: LeafSpineConfig::small(8, 2, 2),
            // Seed chosen so every event of the tiny scenario admits
            // convergence within max_wait under the workspace's seeded RNG.
            scenario: SemiDynamicConfig::scaled(24, 3, events, 4),
            criterion: ConvergenceCriterion {
                hold: SimDuration::from_micros(500),
                ..Default::default()
            },
            max_wait: SimDuration::from_millis(8),
            warmup: SimDuration::from_millis(2),
        }
    }

    #[test]
    fn numfabric_converges_on_a_tiny_semi_dynamic_scenario() {
        let protocol = Protocol::NumFabric(NumFabricConfig::default());
        let result = run_semi_dynamic(&protocol, &tiny_run(3), Arc::new(LogUtility::new()));
        assert_eq!(result.times.len(), 3);
        assert!(
            result.stats.converged >= 2,
            "NUMFabric converged on only {}/{} events: {:?}",
            result.stats.converged,
            result.stats.total,
            result.times
        );
        let median = result.stats.median.expect("some events converged");
        assert!(median < SimDuration::from_millis(6), "median = {median}");
    }

    #[test]
    fn timeseries_sampling_produces_monotone_timestamps() {
        let protocol = Protocol::NumFabric(NumFabricConfig::default());
        let series = rate_timeseries(
            &protocol,
            &tiny_run(2),
            Arc::new(LogUtility::new()),
            SimDuration::from_millis(1),
            SimDuration::from_micros(100),
        );
        assert!(series.len() > 10);
        for w in series.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
        // The tracked flow must actually carry traffic at some point.
        assert!(series.iter().any(|&(_, r)| r > 1e8));
    }
}

//! Regenerate **Figure 9**: bandwidth-function allocation on a single
//! bottleneck whose capacity is swept from 5 to 35 Gbps.
//!
//! Two flows use the bandwidth functions of Figure 2 (flow 1 has strict
//! priority for its first 10 Gbps, flow 2 then grows at twice the slope up to
//! 10 Gbps). For every capacity the measured NUMFabric allocation is compared
//! to the BwE water-filling allocation.

use numfabric_bench::report::print_table;
use numfabric_core::protocol::install_numfabric;
use numfabric_core::{NumFabricAgent, NumFabricConfig};
use numfabric_num::bandwidth_function::{single_link_allocation, BandwidthFunction};
use numfabric_num::utility::BandwidthFunctionUtility;
use numfabric_sim::queue::StfqQueue;
use numfabric_sim::topology::{NodeKind, Topology};
use numfabric_sim::{Network, SimDuration, SimTime};

/// Two senders, one switch, one receiver; the switch→receiver link is the
/// bottleneck whose capacity is swept.
fn build_topology(bottleneck_gbps: f64) -> (Topology, Vec<usize>) {
    let mut topo = Topology::new();
    let src1 = topo.add_node(NodeKind::Host, "src1");
    let src2 = topo.add_node(NodeKind::Host, "src2");
    let sw = topo.add_node(NodeKind::Leaf, "sw");
    let dst = topo.add_node(NodeKind::Host, "dst");
    let delay = SimDuration::from_micros(2);
    topo.add_duplex_link(src1, sw, 50e9, delay);
    topo.add_duplex_link(src2, sw, 50e9, delay);
    topo.add_duplex_link(sw, dst, bottleneck_gbps * 1e9, delay);
    (topo, vec![src1, src2, sw, dst])
}

fn main() {
    let capacities: Vec<f64> = vec![5.0, 10.0, 15.0, 17.0, 20.0, 25.0, 30.0, 35.0];
    let config = NumFabricConfig::default();
    println!("Figure 9: two flows with the Figure-2 bandwidth functions on one bottleneck\n");

    let mut rows = Vec::new();
    for &cap in &capacities {
        let (topo, nodes) = build_topology(cap);
        let (src1, src2, sw, dst) = (nodes[0], nodes[1], nodes[2], nodes[3]);
        let mut net = Network::new(topo.clone(), |_| Box::new(StfqQueue::with_default_buffer()));
        install_numfabric(&mut net, &config);

        let bwf1 = BandwidthFunction::paper_flow1();
        let bwf2 = BandwidthFunction::paper_flow2();
        let f1 = net.add_flow_on_route(
            src1,
            dst,
            topo.route_via(&[src1, sw, dst]),
            None,
            SimTime::ZERO,
            None,
            Box::new(NumFabricAgent::new(
                config.clone(),
                BandwidthFunctionUtility::new(bwf1.clone()),
            )),
        );
        let f2 = net.add_flow_on_route(
            src2,
            dst,
            topo.route_via(&[src2, sw, dst]),
            None,
            SimTime::ZERO,
            None,
            Box::new(NumFabricAgent::new(
                config.clone(),
                BandwidthFunctionUtility::new(bwf2.clone()),
            )),
        );
        net.run_until(SimTime::from_millis(10));

        let measured1 = net.flow_rate_estimate(f1) / 1e9;
        let measured2 = net.flow_rate_estimate(f2) / 1e9;
        let (expected, _) = single_link_allocation(&[bwf1, bwf2], cap);
        rows.push(vec![
            format!("{cap:.0} Gbps"),
            format!("{:.2}", expected[0]),
            format!("{measured1:.2}"),
            format!("{:.2}", expected[1]),
            format!("{measured2:.2}"),
        ]);
    }
    print_table(
        &[
            "link capacity",
            "flow1 expected",
            "flow1 measured",
            "flow2 expected",
            "flow2 measured",
        ],
        &rows,
    );
    println!(
        "\nExpected shape (paper): the measured allocation tracks the bandwidth-function\n\
         water-filling allocation across all capacities (flow 1 takes everything up to 10 Gbps,\n\
         flow 2 then catches up at twice the slope until it saturates at 10 Gbps)."
    );
}

//! Poisson flow arrivals for the dynamic workloads (§6.1).
//!
//! "The flows arrive as a Poisson process of different rates to simulate
//! different load levels." Load is defined the usual way: the average offered
//! traffic on the servers' access links as a fraction of their capacity.

use crate::distributions::FlowSizeDistribution;
use numfabric_sim::{NodeId, SimDuration, SimTime};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One generated flow arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowArrival {
    /// When the flow starts.
    pub start: SimTime,
    /// Source host (node id in the topology).
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Flow size in bytes.
    pub size_bytes: u64,
    /// Spine choice for ECMP path pinning (pre-drawn so every protocol sees
    /// the identical workload).
    pub spine_choice: usize,
}

/// Configuration of a Poisson dynamic workload.
#[derive(Debug, Clone)]
pub struct PoissonWorkloadConfig {
    /// Target load on the host access links, as a fraction in `(0, 1)`.
    pub load: f64,
    /// Access link capacity in bits per second (10 Gbps in the paper).
    pub host_link_bps: f64,
    /// How long to keep generating arrivals.
    pub duration: SimDuration,
    /// RNG seed (the workload is fully reproducible given the seed).
    pub seed: u64,
    /// Number of spine choices available (for ECMP pinning).
    pub num_spines: usize,
}

impl PoissonWorkloadConfig {
    /// A workload at `load` on 10 Gbps access links for `duration`.
    pub fn new(load: f64, duration: SimDuration, seed: u64) -> Self {
        assert!(load > 0.0 && load < 1.0, "load must be in (0, 1)");
        Self {
            load,
            host_link_bps: 10e9,
            duration,
            seed,
            num_spines: 4,
        }
    }
}

/// A streaming generator of Poisson arrivals between random host pairs —
/// the open-loop workload as an [`Iterator`], so million-flow horizons
/// never materialize an arrival vector. [`poisson_arrivals`] is this
/// stream collected; the draw order is identical, so the two are
/// bit-for-bit interchangeable for any seed.
///
/// Each arrival picks a uniformly random source and a distinct uniformly
/// random destination (the all-to-all traffic model used by the paper's
/// dynamic experiments). The aggregate arrival rate is chosen so the
/// expected offered load on the host links equals `config.load`:
///
/// `λ = load · host_link_bps · num_hosts / (8 · mean_flow_size)`.
pub struct ArrivalStream<'a> {
    hosts: &'a [NodeId],
    dist: &'a dyn FlowSizeDistribution,
    rng: ChaCha8Rng,
    lambda_per_sec: f64,
    /// Running arrival clock in seconds.
    t: f64,
    horizon: f64,
    num_spines: usize,
}

impl<'a> ArrivalStream<'a> {
    /// A stream drawing sizes from `dist` over `hosts`, configured (load,
    /// horizon, seed, spines) by `config`.
    pub fn new(
        hosts: &'a [NodeId],
        dist: &'a dyn FlowSizeDistribution,
        config: &PoissonWorkloadConfig,
    ) -> Self {
        assert!(hosts.len() >= 2, "need at least two hosts");
        let lambda_per_sec =
            config.load * config.host_link_bps * hosts.len() as f64 / (8.0 * dist.mean_bytes());
        Self {
            hosts,
            dist,
            rng: ChaCha8Rng::seed_from_u64(config.seed),
            lambda_per_sec,
            t: 0.0,
            horizon: config.duration.as_secs_f64(),
            num_spines: config.num_spines,
        }
    }
}

impl Iterator for ArrivalStream<'_> {
    type Item = FlowArrival;

    fn next(&mut self) -> Option<FlowArrival> {
        // Exponential inter-arrival times.
        let u: f64 = self.rng.gen_range(1e-12..1.0);
        self.t += -u.ln() / self.lambda_per_sec;
        if self.t >= self.horizon {
            return None;
        }
        let src = *self.hosts.choose(&mut self.rng).expect("non-empty");
        let dst = loop {
            let d = *self.hosts.choose(&mut self.rng).expect("non-empty");
            if d != src {
                break d;
            }
        };
        Some(FlowArrival {
            start: SimTime::from_secs_f64(self.t),
            src,
            dst,
            size_bytes: self.dist.sample(&mut self.rng).max(1),
            spine_choice: self.rng.gen_range(0..self.num_spines.max(1)),
        })
    }
}

/// Generate Poisson arrivals between random host pairs (see
/// [`ArrivalStream`], which this collects).
pub fn poisson_arrivals(
    hosts: &[NodeId],
    dist: &dyn FlowSizeDistribution,
    config: &PoissonWorkloadConfig,
) -> Vec<FlowArrival> {
    ArrivalStream::new(hosts, dist, config).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::{EmpiricalCdf, FixedSize};

    fn hosts(n: usize) -> Vec<NodeId> {
        (0..n).collect()
    }

    #[test]
    fn arrival_rate_matches_target_load() {
        let dist = FixedSize(100_000);
        let cfg = PoissonWorkloadConfig::new(0.6, SimDuration::from_millis(200), 7);
        let hosts = hosts(16);
        let arrivals = poisson_arrivals(&hosts, &dist, &cfg);
        let offered_bytes: f64 = arrivals.iter().map(|a| a.size_bytes as f64).sum();
        let capacity_bytes = 16.0 * 10e9 / 8.0 * 0.2;
        let load = offered_bytes / capacity_bytes;
        assert!((load - 0.6).abs() < 0.08, "realized load = {load}");
    }

    #[test]
    fn arrivals_are_sorted_and_within_horizon() {
        let dist = EmpiricalCdf::web_search();
        let cfg = PoissonWorkloadConfig::new(0.4, SimDuration::from_millis(50), 3);
        let arrivals = poisson_arrivals(&hosts(32), &dist, &cfg);
        assert!(!arrivals.is_empty());
        for w in arrivals.windows(2) {
            assert!(w[1].start >= w[0].start);
        }
        assert!(arrivals.iter().all(|a| a.start < SimTime::from_millis(50)));
        assert!(arrivals.iter().all(|a| a.src != a.dst));
    }

    #[test]
    fn same_seed_same_workload_different_seed_different_workload() {
        let dist = EmpiricalCdf::web_search();
        let cfg = PoissonWorkloadConfig::new(0.5, SimDuration::from_millis(20), 11);
        let a = poisson_arrivals(&hosts(8), &dist, &cfg);
        let b = poisson_arrivals(&hosts(8), &dist, &cfg);
        assert_eq!(a, b);
        let cfg2 = PoissonWorkloadConfig::new(0.5, SimDuration::from_millis(20), 12);
        let c = poisson_arrivals(&hosts(8), &dist, &cfg2);
        assert_ne!(a, c);
    }

    #[test]
    fn higher_load_means_more_arrivals() {
        let dist = FixedSize(50_000);
        let lo = poisson_arrivals(
            &hosts(16),
            &dist,
            &PoissonWorkloadConfig::new(0.2, SimDuration::from_millis(100), 5),
        );
        let hi = poisson_arrivals(
            &hosts(16),
            &dist,
            &PoissonWorkloadConfig::new(0.8, SimDuration::from_millis(100), 5),
        );
        assert!(hi.len() > 2 * lo.len());
    }

    #[test]
    #[should_panic]
    fn load_must_be_fractional() {
        PoissonWorkloadConfig::new(1.5, SimDuration::from_millis(1), 0);
    }
}

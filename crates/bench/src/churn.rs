//! The production-scale trace-driven churn driver: open-loop Poisson
//! arrivals with a foreground/background heavy-tail class mix, run with
//! **bounded memory** no matter how many flows the horizon offers.
//!
//! Three streaming pieces compose so that peak memory is
//! O(concurrent flows + classes), never O(total flows):
//!
//! 1. the arrival trace is a [`ChurnStream`] iterator — a million-flow
//!    horizon is generated one arrival at a time and never materialized;
//! 2. completed flows are recycled through the simulator's flow slab
//!    ([`Network::try_retire_flow`]) as soon as they quiesce, so the slab
//!    high-water mark tracks *concurrent* flows;
//! 3. per-flow results stream into fixed-size per-class accumulators
//!    ([`ClassStats`]) whose [`QuantileSketch`]es answer FCT and slowdown
//!    quantiles within a documented 1 % relative error.
//!
//! Arrivals are injected in batches bounded by `ARRIVAL_BATCH` arrivals
//! *and* `HARVEST_SLICE` of simulated time (whichever fills first): the
//! simulator runs up to each batch's last start time, the harvest pass
//! retires whatever completed, and the next batch is drawn from the
//! stream. Batch boundaries are arrival times — pure functions of the
//! seed — so the run (and its `--json` report, which carries no
//! wall-clock) is bit-identical for every
//! `--partitions × --partition-threads` choice.
//!
//! [`Network::try_retire_flow`]: numfabric_sim::Network::try_retire_flow
//! [`QuantileSketch`]: crate::report::QuantileSketch

use crate::fabric::{
    cli_error, exit_if_wedged, impairments_from_options, parse_load_fraction,
    partition_threads_from_options, partitions_from_options,
};
use crate::protocols::Protocol;
use crate::report::{churn_report_json, print_table, ChurnSummary, ClassStats};
use numfabric_num::utility::LogUtility;
use numfabric_sim::{FlowId, Network, SimDuration, SimTime};
use numfabric_workloads::churn::{foreground_background, ChurnConfig, ChurnStream};
use numfabric_workloads::ideal::empty_network_fct;
use numfabric_workloads::impairments::ImpairmentSchedule;
use numfabric_workloads::registry::ScenarioOptions;
use numfabric_workloads::TopologySpec;
use std::sync::Arc;

/// Upper bound on arrivals injected per simulate/harvest cycle. Bounds the
/// slab overshoot (live flows ≤ concurrent + one batch) while keeping the
/// per-batch barrier overhead negligible at high arrival rates.
const ARRIVAL_BATCH: usize = 256;

/// Upper bound on *simulated time* per simulate/harvest cycle, so sparse
/// workloads still recycle completed flows promptly instead of waiting for
/// [`ARRIVAL_BATCH`] arrivals to accumulate.
const HARVEST_SLICE: SimDuration = SimDuration::from_millis(2);

/// Configuration of one churn run.
#[derive(Debug, Clone)]
pub struct ChurnRun {
    /// Fabric to run on.
    pub topology: TopologySpec,
    /// Total offered load on the host access links, in `(0, 1)`.
    pub load: f64,
    /// Share of the load carried by the latency-sensitive foreground
    /// (web-search) class; the rest is background (data-mining).
    pub fg_share: f64,
    /// Arrival-generation horizon.
    pub arrival_window: SimDuration,
    /// Extra simulation time after the last arrival to let flows drain.
    pub drain: SimDuration,
    /// Workload seed.
    pub seed: u64,
}

impl ChurnRun {
    /// Reduced-scale defaults: leaf-spine, 60 % load, 25 % foreground,
    /// arrivals over 40 ms.
    pub fn reduced(load: f64, seed: u64) -> Self {
        Self {
            topology: TopologySpec::LeafSpine,
            load,
            fg_share: 0.25,
            arrival_window: SimDuration::from_millis(40),
            drain: SimDuration::from_millis(60),
            seed,
        }
    }
}

/// One live (not yet retired) flow of the churn loop.
struct LiveFlow {
    id: FlowId,
    class: usize,
    size_bytes: u64,
    /// Empty-network FCT bound — the slowdown denominator.
    empty_fct: SimDuration,
}

/// Harvest pass: record and retire every live flow that has completed
/// *and* quiesced (no pending timers, no packets in flight). Flows that
/// completed but still have ACKs on the wire stay live until a later pass.
fn harvest(net: &mut Network, live: &mut Vec<LiveFlow>, classes: &mut [ClassStats]) {
    live.retain(|flow| {
        let Some(fct) = net.flow_stats(flow.id).fct() else {
            return true;
        };
        // Read the stats before retiring — retirement clears the slot.
        if !net.try_retire_flow(flow.id) {
            return true;
        }
        let fct_secs = fct.as_secs_f64();
        let slowdown = fct_secs / flow.empty_fct.as_secs_f64().max(1e-12);
        classes[flow.class].record(flow.size_bytes, fct_secs, slowdown);
        false
    });
}

/// Run one churn workload to completion and return the streaming summary.
///
/// `partitions` and `partition_threads` are pure execution knobs: the
/// summary (and the report rendered from it) is bit-identical for every
/// value, because batch boundaries, the harvest schedule and the retire
/// decisions are all derived from simulation content, never from
/// scheduling.
pub fn run_churn(
    protocol: &Protocol,
    run: &ChurnRun,
    partitions: usize,
    partition_threads: usize,
) -> ChurnSummary {
    run_churn_impaired(
        protocol,
        run,
        &ImpairmentSchedule::new(),
        partitions,
        partition_threads,
    )
}

/// [`run_churn`] with an [`ImpairmentSchedule`] injected before the run
/// starts — the sweep engine's impairment axis applies to churn cells
/// through this, and impaired replays stay bit-identical because the
/// loss/jitter draws come from per-link streams.
pub fn run_churn_impaired(
    protocol: &Protocol,
    run: &ChurnRun,
    impairments: &ImpairmentSchedule,
    partitions: usize,
    partition_threads: usize,
) -> ChurnSummary {
    let topo = run.topology.build(false);
    let hosts: Vec<_> = topo.hosts().to_vec();
    let host_bps = topo.links()[0].capacity_bps;
    let mix = foreground_background(run.fg_share);
    let config = ChurnConfig {
        load: run.load,
        duration: run.arrival_window,
        seed: run.seed,
        num_spines: topo.spines().len().max(1),
        host_link_bps: host_bps,
    };

    let utility = Arc::new(LogUtility::new());
    let mut net = protocol.build_network(topo.clone());
    net.set_partitions(partitions);
    net.set_partition_threads(partition_threads);
    net.set_impairment_seed(run.seed);
    impairments.apply(&mut net);

    let mut classes: Vec<ClassStats> = mix.iter().map(|c| ClassStats::new(c.name)).collect();
    let mut live: Vec<LiveFlow> = Vec::new();
    let mut stream = ChurnStream::new(&hosts, &mix, &config).peekable();
    let mut offered = 0u64;
    let mut peak_concurrent = 0usize;
    while let Some(first) = stream.peek() {
        // One cycle: inject arrivals until the batch cap or the time slice
        // is exhausted, simulate up to the last injected start, harvest.
        let slice_end = first.arrival.start + HARVEST_SLICE;
        let mut batch_end = first.arrival.start;
        let mut injected = 0usize;
        while injected < ARRIVAL_BATCH {
            let Some(head) = stream.peek() else { break };
            if injected > 0 && head.arrival.start >= slice_end {
                break;
            }
            let a = stream.next().expect("peeked head must exist");
            let route = topo.host_route(a.arrival.src, a.arrival.dst, a.arrival.spine_choice);
            let empty_fct = empty_network_fct(&topo, &route, a.arrival.size_bytes);
            let id = net.add_flow(
                a.arrival.src,
                a.arrival.dst,
                Some(a.arrival.size_bytes),
                a.arrival.start,
                a.arrival.spine_choice,
                None,
                protocol.make_agent(utility.clone()),
            );
            live.push(LiveFlow {
                id,
                class: a.class,
                size_bytes: a.arrival.size_bytes,
                empty_fct,
            });
            batch_end = a.arrival.start;
            offered += 1;
            injected += 1;
        }
        peak_concurrent = peak_concurrent.max(live.len());
        net.run_until(batch_end);
        harvest(&mut net, &mut live, &mut classes);
    }
    net.run_until(SimTime::ZERO + run.arrival_window + run.drain);
    harvest(&mut net, &mut live, &mut classes);

    ChurnSummary {
        offered,
        completed: classes.iter().map(|c| c.flows).sum(),
        peak_concurrent,
        flow_slots: net.num_flows(),
        classes,
    }
}

/// The `numfabric-run churn` entry point. With `--json` the run prints one
/// machine-readable report instead of tables.
pub fn churn(opts: &ScenarioOptions) {
    let spec: TopologySpec = opts.parsed_or("--topology", TopologySpec::LeafSpine);
    let load = parse_load_fraction(opts, 0.6);
    let fg_share: f64 = opts.parsed_or("--fg-share", 0.25);
    if !(fg_share > 0.0 && fg_share < 1.0) {
        cli_error(format!(
            "--fg-share {fg_share} must be a fraction in (0, 1)"
        ));
    }
    let millis: u64 = opts.parsed_or("--millis", 40);
    let drain_millis: u64 = opts.parsed_or("--drain-millis", 60);
    if millis == 0 {
        cli_error("--millis must be at least 1");
    }
    let seed: u64 = opts.parsed_or("--seed", 1);
    let json = opts.flag("--json");
    let protocol = Protocol::from_options(opts);
    let partitions = partitions_from_options(opts);
    let partition_threads = partition_threads_from_options(opts);
    let impairments = impairments_from_options(opts, &spec.build(false));
    let run = ChurnRun {
        topology: spec,
        load,
        fg_share,
        arrival_window: SimDuration::from_millis(millis),
        drain: SimDuration::from_millis(drain_millis),
        seed,
    };
    let topology = spec.to_string();
    if !json {
        println!(
            "Churn: {} on {topology}\nopen-loop Poisson at load {load:.2} for {millis} ms \
             ({:.0}% web-search fg / {:.0}% data-mining bg), drain {drain_millis} ms (seed {seed})\n",
            protocol.name(),
            fg_share * 100.0,
            (1.0 - fg_share) * 100.0,
        );
    }
    let start = std::time::Instant::now();
    let summary = run_churn_impaired(&protocol, &run, &impairments, partitions, partition_threads);
    let wall = start.elapsed();
    if json {
        println!(
            "{}",
            churn_report_json(&topology, protocol.name(), load, millis, seed, &summary).render()
        );
    } else {
        print_churn_summary(&summary);
        println!(
            "\n{} flows offered, {} completed in {:.2} s wall-clock ({:.0} flows/sec);\n\
             peak {} concurrent flows recycled through {} slab slots. The --json report\n\
             is bit-identical for any --partitions and --partition-threads value —\n\
             only this timing line varies.",
            summary.offered,
            summary.completed,
            wall.as_secs_f64(),
            summary.completed as f64 / wall.as_secs_f64().max(1e-9),
            summary.peak_concurrent,
            summary.flow_slots,
        );
    }
    exit_if_wedged(
        summary.completed == 0,
        "churn run wedged: no flow completed",
    );
}

fn print_churn_summary(summary: &ChurnSummary) {
    let fmt_ms = |v: Option<f64>| v.map_or_else(|| "-".into(), |s| format!("{:.2} ms", s * 1e3));
    let fmt_x = |v: Option<f64>| v.map_or_else(|| "-".into(), |s| format!("{s:.1}x"));
    let mut rows: Vec<Vec<String>> = summary
        .classes
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                format!("{}", c.flows),
                format!("{:.1} MB", c.bytes as f64 / 1e6),
                fmt_ms(c.fct.quantile(0.5)),
                fmt_ms(c.fct.quantile(0.99)),
                fmt_x(c.slowdown.quantile(0.5)),
                fmt_x(c.slowdown.quantile(0.99)),
            ]
        })
        .collect();
    let (fct, slowdown) = summary.overall();
    rows.push(vec![
        "all".to_string(),
        format!("{}", summary.completed),
        format!("{:.1} MB", summary.completed_bytes() as f64 / 1e6),
        fmt_ms(fct.quantile(0.5)),
        fmt_ms(fct.quantile(0.99)),
        fmt_x(slowdown.quantile(0.5)),
        fmt_x(slowdown.quantile(0.99)),
    ]);
    print_table(
        &[
            "class",
            "completed",
            "bytes",
            "p50 FCT",
            "p99 FCT",
            "p50 slowdown",
            "p99 slowdown",
        ],
        &rows,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_core::NumFabricConfig;

    fn quick_run(seed: u64) -> ChurnRun {
        ChurnRun {
            topology: TopologySpec::LeafSpine,
            load: 0.5,
            fg_share: 0.25,
            arrival_window: SimDuration::from_millis(8),
            drain: SimDuration::from_millis(40),
            seed,
        }
    }

    #[test]
    fn churn_completes_flows_and_reports_per_class_stats() {
        let protocol = Protocol::NumFabric(NumFabricConfig::default());
        let summary = run_churn(&protocol, &quick_run(5), 1, 1);
        assert!(summary.offered > 20, "offered = {}", summary.offered);
        assert!(
            summary.completed * 10 >= summary.offered * 5,
            "only {}/{} completed",
            summary.completed,
            summary.offered
        );
        assert_eq!(summary.classes.len(), 2);
        assert!(summary.classes.iter().all(|c| c.flows > 0));
        let (_, slowdown) = summary.overall();
        // Slowdowns are positive and ordered; the min can dip below 1
        // because the empty-network bound charges a full RTT while the
        // measured FCT ends at one-way last-byte delivery.
        assert!(slowdown.min().unwrap() > 0.0);
        assert!(slowdown.quantile(0.99) >= slowdown.quantile(0.5));
    }

    #[test]
    fn slab_recycling_keeps_slots_below_offered_flows() {
        let protocol = Protocol::NumFabric(NumFabricConfig::default());
        let mut run = quick_run(7);
        run.arrival_window = SimDuration::from_millis(30);
        let summary = run_churn(&protocol, &run, 1, 1);
        assert!(
            (summary.flow_slots as u64) < summary.offered / 2,
            "slab never recycled: {} slots for {} flows",
            summary.flow_slots,
            summary.offered
        );
        assert!(summary.peak_concurrent >= summary.flow_slots);
    }

    #[test]
    fn churn_summary_is_partition_invariant() {
        let protocol = Protocol::NumFabric(NumFabricConfig::default());
        let run = quick_run(11);
        let base = churn_report_json(
            "t",
            "p",
            run.load,
            8,
            run.seed,
            &run_churn(&protocol, &run, 1, 1),
        )
        .render();
        for (partitions, threads) in [(2, 1), (4, 2)] {
            let other = churn_report_json(
                "t",
                "p",
                run.load,
                8,
                run.seed,
                &run_churn(&protocol, &run, partitions, threads),
            )
            .render();
            assert_eq!(base, other, "diverged at {partitions}x{threads}");
        }
    }
}

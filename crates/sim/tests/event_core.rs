//! Differential tests of the timing-wheel event core against the
//! binary-heap reference model ([`HeapEventQueue`]).
//!
//! The determinism contract — pops in lexicographic `(time, seq)` order,
//! FIFO for timestamp ties, cancellation tombstones, clock advancement —
//! must be bit-identical between the two implementations on *any* sequence
//! of schedule / schedule_cancellable / cancel / pop / peek operations,
//! including timestamp ties, zero-delay schedules, pacing-like spacings and
//! far-future (overflow-level) timestamps.

use numfabric_sim::event::{Event, EventId, EventQueue, HeapEventQueue};
use numfabric_sim::BatchTicket;
use numfabric_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn start(flow: usize) -> Event {
    Event::FlowStart { flow }
}

fn flow_of(event: &Event) -> usize {
    match event {
        Event::FlowStart { flow } => *flow,
        other => panic!("unexpected event {other:?}"),
    }
}

/// One randomized differential run: apply an identical operation sequence
/// to the wheel and the heap and compare every observable.
fn differential_run(seed: u64, ops: usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut wheel = EventQueue::new();
    let mut heap = HeapEventQueue::new();
    // Ids of cancellable events that have not been cancelled yet (they may
    // have fired — cancelling a fired id must be a no-op in both).
    let mut handles: Vec<(EventId, EventId)> = Vec::new();

    for op in 0..ops {
        match rng.gen_range(0u32..100) {
            // Near-future schedule, heavily tie-prone: deltas in {0..8} µs
            // quantized to 400 ns so equal timestamps are common.
            0..=34 => {
                let delta = SimDuration::from_nanos(rng.gen_range(0u64..20) * 400);
                let at = wheel.now() + delta;
                let a = wheel.schedule(at, start(op));
                let b = heap.schedule(at, start(op));
                assert_eq!(a, b, "seq allocation diverged");
            }
            // Pacing-like spacing: ~1.2 µs with jitter (the DGD/RCP* shape).
            35..=54 => {
                let delta = SimDuration::from_nanos(1_232 + rng.gen_range(0u64..64));
                let at = wheel.now() + delta;
                wheel.schedule(at, start(op));
                heap.schedule(at, start(op));
            }
            // Mid-range (link-timer / RTO shape) cancellable schedule.
            55..=69 => {
                let delta = SimDuration::from_micros(rng.gen_range(1u64..100));
                let at = wheel.now() + delta;
                let a = wheel.schedule_cancellable(at, start(op));
                let b = heap.schedule_cancellable(at, start(op));
                assert_eq!(a, b);
                handles.push((a, b));
            }
            // Far-future schedule, some beyond the 2^36 ns wheel horizon.
            70..=74 => {
                let delta = SimDuration::from_secs_f64(rng.gen_range(1.0f64..200.0));
                let at = wheel.now() + delta;
                wheel.schedule(at, start(op));
                heap.schedule(at, start(op));
            }
            // Cancel a random outstanding handle (possibly already fired).
            75..=82 => {
                if !handles.is_empty() {
                    let i = rng.gen_range(0..handles.len());
                    let (a, b) = handles.swap_remove(i);
                    assert_eq!(wheel.cancel(a), heap.cancel(b), "cancel diverged");
                }
            }
            // Peek.
            83..=87 => {
                assert_eq!(wheel.peek_time(), heap.peek_time(), "peek diverged");
            }
            // Pop a small burst.
            _ => {
                for _ in 0..rng.gen_range(1usize..6) {
                    let state = wheel.debug_dump();
                    let a = wheel.pop_entry();
                    let b = heap.pop_entry();
                    match (a, b) {
                        (None, None) => break,
                        (Some((ta, ia, ea)), Some((tb, ib, eb))) => {
                            assert_eq!(
                                (ta, ia, flow_of(&ea)),
                                (tb, ib, flow_of(&eb)),
                                "pop diverged at op {op}; pre-pop state:\n{state}"
                            );
                            assert_eq!(wheel.now(), heap.now());
                        }
                        (a, b) => panic!(
                            "pop presence diverged at op {op}: wheel={:?} heap={:?}",
                            a.map(|(t, i, _)| (t, i)),
                            b.map(|(t, i, _)| (t, i))
                        ),
                    }
                }
            }
        }
        assert_eq!(wheel.len(), heap.len(), "len diverged at op {op}");
        wheel.debug_validate();
    }

    // Drain both completely and compare the full tail.
    loop {
        let state = wheel.debug_dump();
        let a = wheel.pop_entry();
        let b = heap.pop_entry();
        match (a, b) {
            (None, None) => break,
            (Some((ta, ia, ea)), Some((tb, ib, eb))) => {
                assert_eq!(
                    (ta, ia, flow_of(&ea)),
                    (tb, ib, flow_of(&eb)),
                    "drain diverged; pre-pop state:\n{state}"
                );
            }
            (a, b) => panic!(
                "drain diverged: wheel={:?} heap={:?}",
                a.map(|(t, i, _)| (t, i)),
                b.map(|(t, i, _)| (t, i))
            ),
        }
    }
    assert!(wheel.is_empty() && heap.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn wheel_matches_heap_reference(seed in 0u64..u64::MAX) {
        differential_run(seed, 400);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn wheel_matches_heap_reference_long_runs(seed in 0u64..u64::MAX) {
        differential_run(seed ^ 0xdead_beef, 6_000);
    }
}

// ---- batched dispatch vs per-event pop ------------------------------------
//
// The batch API (begin_batch / claim / claim_rejoin / end_batch) must
// reproduce pop_entry's dispatch order bit-for-bit, including when handlers
// running *inside* a batch schedule new same-timestamp events (rejoins) or
// cancel not-yet-claimed tickets of the same batch. The harness below models
// a handler as a deterministic policy keyed by a shared RNG: both drains see
// identical policy decisions exactly as long as their dispatch orders match,
// so any ordering divergence snowballs into a trace mismatch.

/// The "handler": on every dispatched event, maybe schedule (often at the
/// *current* timestamp, exercising the rejoin path), maybe cancel an
/// outstanding cancellable id (possibly one still pending in the open batch).
struct DispatchPolicy {
    rng: ChaCha8Rng,
    handles: Vec<EventId>,
    next_flow: usize,
    budget: usize,
}

impl DispatchPolicy {
    fn new(seed: u64, budget: usize) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x5ca1_ab1e),
            handles: Vec::new(),
            next_flow: 10_000,
            budget,
        }
    }

    fn on_dispatch(&mut self, q: &mut EventQueue) {
        match self.rng.gen_range(0u32..100) {
            // Same-timestamp schedule: in batch mode this joins the open
            // batch as a rejoin and must fire at its exact seq position.
            0..=29 if self.budget > 0 => {
                self.budget -= 1;
                let flow = self.next_flow;
                self.next_flow += 1;
                q.schedule(q.now(), start(flow));
            }
            // Tie-prone near-future schedule.
            30..=49 if self.budget > 0 => {
                self.budget -= 1;
                let flow = self.next_flow;
                self.next_flow += 1;
                let at = q.now() + SimDuration::from_nanos(self.rng.gen_range(0u64..6) * 200);
                q.schedule(at, start(flow));
            }
            // Cancellable schedule, sometimes at the current instant.
            50..=64 if self.budget > 0 => {
                self.budget -= 1;
                let flow = self.next_flow;
                self.next_flow += 1;
                let at = q.now() + SimDuration::from_nanos(self.rng.gen_range(0u64..4) * 400);
                self.handles.push(q.schedule_cancellable(at, start(flow)));
            }
            // Cancel something outstanding — possibly an unclaimed ticket or
            // rejoin of the batch currently being dispatched.
            65..=79 if !self.handles.is_empty() => {
                let i = self.rng.gen_range(0..self.handles.len());
                q.cancel(self.handles.swap_remove(i));
            }
            _ => {}
        }
    }
}

/// Seed both queues with an identical tie-heavy population.
fn seed_population(q: &mut EventQueue, seed: u64, events: usize) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for flow in 0..events {
        // Quantized to 500 ns over a 10 µs window: long same-timestamp runs.
        let at = SimTime::from_nanos(rng.gen_range(0u64..20) * 500);
        if rng.gen_bool(0.2) {
            q.schedule_cancellable(at, start(flow));
        } else {
            q.schedule(at, start(flow));
        }
    }
}

/// Drain via the batch API, merging tickets and rejoins by seq (tickets win
/// ties: equal keys dispatch in schedule order and every ticket predates the
/// batch), invoking the policy after every dispatched event — exactly the
/// network dispatcher's structure.
fn drain_batched(
    q: &mut EventQueue,
    policy: &mut DispatchPolicy,
    trace: &mut Vec<(u64, u64, usize)>,
) {
    let mut tickets: Vec<BatchTicket> = Vec::new();
    loop {
        tickets.clear();
        let Some(time) = q.begin_batch(&mut tickets) else {
            break;
        };
        let t = time.as_nanos();
        let mut i = 0;
        loop {
            let ticket_seq = tickets.get(i).map(|tk| tk.seq());
            let take_ticket = match (ticket_seq, q.rejoin_front_seq()) {
                (Some(ts), Some(rs)) => ts <= rs,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let claimed = if take_ticket {
                let tk = tickets[i];
                i += 1;
                q.claim(tk)
            } else {
                q.claim_rejoin()
            };
            if let Some((id, event)) = claimed {
                trace.push((t, id.as_u64(), flow_of(&event)));
                policy.on_dispatch(q);
            }
        }
        q.end_batch();
    }
}

/// Drain via plain pop_entry with the same policy: the reference order.
fn drain_per_event(
    q: &mut EventQueue,
    policy: &mut DispatchPolicy,
    trace: &mut Vec<(u64, u64, usize)>,
) {
    while let Some((time, id, event)) = q.pop_entry() {
        trace.push((time.as_nanos(), id.as_u64(), flow_of(&event)));
        policy.on_dispatch(q);
    }
}

fn batch_differential_run(seed: u64, events: usize, budget: usize) {
    let mut q_batch = EventQueue::new();
    let mut q_pop = EventQueue::new();
    seed_population(&mut q_batch, seed, events);
    seed_population(&mut q_pop, seed, events);

    let mut trace_batch = Vec::new();
    let mut trace_pop = Vec::new();
    drain_batched(
        &mut q_batch,
        &mut DispatchPolicy::new(seed, budget),
        &mut trace_batch,
    );
    drain_per_event(
        &mut q_pop,
        &mut DispatchPolicy::new(seed, budget),
        &mut trace_pop,
    );

    assert!(q_batch.is_empty() && q_pop.is_empty());
    assert_eq!(
        trace_batch.len(),
        trace_pop.len(),
        "dispatch counts diverged"
    );
    for (k, (a, b)) in trace_batch.iter().zip(&trace_pop).enumerate() {
        assert_eq!(
            a, b,
            "dispatch {k} diverged: batched {a:?} vs per-event {b:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn batched_dispatch_matches_per_event_pop(seed in 0u64..u64::MAX) {
        batch_differential_run(seed, 300, 200);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn batched_dispatch_matches_per_event_pop_long(seed in 0u64..u64::MAX) {
        batch_differential_run(seed ^ 0xbadc_0ffe, 3_000, 2_000);
    }
}

/// The add-flow-between-runs pattern: peek far ahead (advancing the wheel
/// cursor), then schedule behind the peeked time.
#[test]
fn peek_ahead_then_schedule_behind_matches_heap() {
    let mut wheel = EventQueue::new();
    let mut heap = HeapEventQueue::new();
    for (i, t) in [5_000_000u64, 40, 40, 9_000].into_iter().enumerate() {
        if i == 1 {
            // Force the cursor forward before the remaining schedules.
            assert_eq!(wheel.peek_time(), heap.peek_time());
        }
        wheel.schedule(SimTime::from_nanos(t), start(i));
        heap.schedule(SimTime::from_nanos(t), start(i));
    }
    loop {
        match (wheel.pop_entry(), heap.pop_entry()) {
            (None, None) => break,
            (a, b) => assert_eq!(
                a.map(|(t, i, e)| (t, i, flow_of(&e))),
                b.map(|(t, i, e)| (t, i, flow_of(&e)))
            ),
        }
    }
}

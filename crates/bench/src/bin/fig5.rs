//! Regenerate **Figure 5**: normalized deviation from the Oracle's ideal
//! rates, per flow-size bin (in BDPs), for NUMFabric, DGD and RCP* under the
//! web-search and enterprise dynamic workloads.
//!
//! Usage:
//! ```text
//! cargo run --release -p numfabric-bench --bin fig5 [-- --workload websearch|enterprise] [--load 0.6] [--full]
//! ```

use numfabric_bench::dynamic::bdp_bytes;
use numfabric_bench::report::{print_table, quartiles, FIG5_BIN_LABELS};
use numfabric_bench::{generate_arrivals, run_dynamic, DynamicRun, Objective, Protocol};
use numfabric_sim::topology::LeafSpineConfig;
use numfabric_sim::SimDuration;
use numfabric_workloads::distributions::{EmpiricalCdf, FlowSizeDistribution};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let workload = arg_value("--workload").unwrap_or_else(|| "websearch".into());
    let load: f64 = arg_value("--load")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.6);
    let full = std::env::args().any(|a| a == "--full");

    let dist: Box<dyn FlowSizeDistribution> = match workload.as_str() {
        "enterprise" => Box::new(EmpiricalCdf::enterprise()),
        _ => Box::new(EmpiricalCdf::web_search()),
    };

    let mut run = DynamicRun::reduced(load, 21);
    if full {
        run.topology = LeafSpineConfig::paper_default();
        run.arrival_window = SimDuration::from_millis(50);
        run.drain = SimDuration::from_millis(300);
    }
    let arrivals = generate_arrivals(&run, dist.as_ref());
    let bdp = bdp_bytes(&run.topology);
    println!(
        "Figure 5 ({} workload, load {:.0}%): {} flows, BDP = {:.0} kB\n",
        dist.name(),
        load * 100.0,
        arrivals.len(),
        bdp / 1e3
    );

    let mut rows: Vec<Vec<String>> = FIG5_BIN_LABELS
        .iter()
        .map(|l| vec![l.to_string()])
        .collect();
    let mut headers = vec!["size (BDPs)"];

    for protocol in Protocol::convergence_contenders() {
        headers.push(match protocol.name() {
            "NUMFabric" => "NUMFabric  p25/med/p75",
            "DGD" => "DGD  p25/med/p75",
            _ => "RCP*  p25/med/p75",
        });
        let results = run_dynamic(&protocol, &run, &arrivals, Objective::ProportionalFairness);
        // Bin by flow size in BDPs.
        let mut bins: Vec<Vec<f64>> = vec![Vec::new(); FIG5_BIN_LABELS.len()];
        for r in &results {
            if let (Some(dev), Some(bin)) = (
                r.rate_deviation(),
                numfabric_bench::report::fig5_bin(r.size_in_bdp(bdp)),
            ) {
                bins[bin].push(dev);
            }
        }
        for (bin, devs) in bins.iter().enumerate() {
            let cell = match quartiles(devs) {
                Some((q1, q2, q3)) => format!("{q1:+.2}/{q2:+.2}/{q3:+.2} (n={})", devs.len()),
                None => "-".to_string(),
            };
            rows[bin].push(cell);
        }
        let finished = results.iter().filter(|r| r.fct.is_some()).count();
        eprintln!(
            "  [{}] {}/{} flows completed",
            protocol.name(),
            finished,
            results.len()
        );
    }

    print_table(&headers, &rows);
    println!(
        "\nExpected shape (paper): NUMFabric's median deviation is near zero for every bin above\n\
         ~5 BDP; DGD and RCP* are negatively biased (flows get less than the ideal rate), worst\n\
         for small flows that finish before those schemes converge."
    );
}

//! Quickstart: run NUMFabric on a small leaf-spine fabric and watch two
//! proportionally-fair flows share a bottleneck, then shift the allocation by
//! giving one flow a higher weight.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use numfabric::core::{numfabric_network, NumFabricAgent, NumFabricConfig};
use numfabric::num::utility::LogUtility;
use numfabric::sim::topology::{LeafSpineConfig, Topology};
use numfabric::sim::SimTime;

fn main() {
    // 8 servers, 2 leaves, 2 spines; 10 Gbps host links, 40 Gbps fabric links.
    let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
    let config = NumFabricConfig::paper_default();
    let mut net = numfabric_network(topo, &config);
    let hosts: Vec<_> = net.topology().hosts().to_vec();

    // Two long-running flows into the same destination NIC (the bottleneck).
    // Flow A has weight 3, flow B weight 1: weighted proportional fairness
    // should split the 10 Gbps NIC roughly 7.5 / 2.5.
    let flow_a = net.add_flow(
        hosts[0],
        hosts[4],
        None,
        SimTime::ZERO,
        0,
        None,
        Box::new(NumFabricAgent::new(
            config.clone(),
            LogUtility::weighted(3.0),
        )),
    );
    let flow_b = net.add_flow(
        hosts[1],
        hosts[4],
        None,
        SimTime::ZERO,
        1,
        None,
        Box::new(NumFabricAgent::new(config.clone(), LogUtility::new())),
    );

    println!("time_ms  flowA_Gbps  flowB_Gbps");
    for step in 1..=16 {
        net.run_until(SimTime::from_micros(step * 250));
        println!(
            "{:7.2}  {:10.2}  {:10.2}",
            step as f64 * 0.25,
            net.flow_rate_estimate(flow_a) / 1e9,
            net.flow_rate_estimate(flow_b) / 1e9,
        );
    }

    let a = net.flow_rate_estimate(flow_a) / 1e9;
    let b = net.flow_rate_estimate(flow_b) / 1e9;
    println!(
        "\nfinal allocation: flow A = {a:.2} Gbps, flow B = {b:.2} Gbps (ratio {:.2})",
        a / b
    );
    println!("expected: ~7.5 / ~2.5 Gbps (3:1 weighted proportional fairness)");
}

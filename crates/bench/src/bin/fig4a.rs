//! Regenerate **Figure 4a** — thin wrapper over
//! [`numfabric_bench::figures::fig4a`] (also available as
//! `numfabric-run fig4a [--events N] [--full] [--fluid]`).

use numfabric_workloads::registry::ScenarioOptions;

fn main() {
    numfabric_bench::figures::fig4a(&ScenarioOptions::from_env());
}

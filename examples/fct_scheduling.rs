//! Flow-completion-time minimization (the workload the paper's introduction
//! motivates): with the FCT utility `U(x) = x^{1-ε}/((1-ε)·size)`, NUMFabric
//! approximates Shortest-Flow-First — short flows cut ahead of elephants
//! without any switch configuration changes, just a different utility
//! function at the hosts.
//!
//! ```text
//! cargo run --release --example fct_scheduling
//! ```

use numfabric::core::{numfabric_network, NumFabricAgent, NumFabricConfig};
use numfabric::num::utility::FctUtility;
use numfabric::sim::topology::{LeafSpineConfig, Topology};
use numfabric::sim::{SimDuration, SimTime};
use numfabric::workloads::empty_network_fct;

fn main() {
    let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
    // §6.3: for the small-α FCT objective NUMFabric is run 2× slowed down and
    // short flows get a BDP-sized initial window (mimicking pFabric).
    let config = NumFabricConfig::slowed_down(2.0)
        .with_bdp_initial_window(10e9, SimDuration::from_micros(16));
    let mut net = numfabric_network(topo.clone(), &config);
    let hosts: Vec<_> = net.topology().hosts().to_vec();

    // One 20 MB elephant and a train of 30 kB mice, all into the same host.
    let sizes: Vec<(u64, &str)> = vec![
        (20_000_000, "elephant"),
        (30_000, "mouse-1"),
        (30_000, "mouse-2"),
        (30_000, "mouse-3"),
    ];
    let mut flows = Vec::new();
    for (i, &(size, label)) in sizes.iter().enumerate() {
        let start = if label == "elephant" {
            SimTime::ZERO
        } else {
            SimTime::from_millis(2 + i as u64)
        };
        let id = net.add_flow(
            hosts[i],
            hosts[4],
            Some(size),
            start,
            i,
            None,
            Box::new(NumFabricAgent::new(
                config.clone(),
                FctUtility::new(size as f64),
            )),
        );
        flows.push((id, size, label, start));
    }
    net.run_until(SimTime::from_millis(60));

    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>10}",
        "flow", "size", "fct", "ideal", "slowdown"
    );
    for (id, size, label, _) in &flows {
        let fct = net.flow_stats(*id).fct().expect("flow completed");
        let route = net.route(net.flow_spec(*id).route).clone();
        let ideal = empty_network_fct(&topo, &route, *size);
        println!(
            "{:<10} {:>8} B {:>10.1} us {:>10.1} us {:>9.2}x",
            label,
            size,
            fct.as_micros_f64(),
            ideal.as_micros_f64(),
            fct.as_secs_f64() / ideal.as_secs_f64()
        );
    }
    println!(
        "\nThe mice finish within a small factor of their ideal FCT even though a 20 MB elephant\n\
         is using the same destination link — the FCT utility gives them near-strict priority."
    );
}

//! Flow descriptions and per-flow bookkeeping.

use crate::routes::RouteId;
use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;

/// Where a flow is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowPhase {
    /// Added but not yet started.
    Pending,
    /// Actively sending.
    Active,
    /// Forcibly stopped (semi-dynamic scenario stop events).
    Stopped,
    /// All bytes delivered to the destination.
    Completed,
}

/// Static description of a flow, provided when the flow is added to the
/// network.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Source host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Payload bytes to transfer; `None` for a long-running flow that sends
    /// until explicitly stopped (used by the convergence experiments).
    pub size_bytes: Option<u64>,
    /// When the flow starts.
    pub start_time: SimTime,
    /// Forward (data) route, interned in the owning network's route table
    /// (resolve with [`crate::network::Network::route`]).
    pub route: RouteId,
    /// Reverse (ACK) route, interned alongside the forward route.
    pub reverse_route: RouteId,
    /// Base round-trip time along the route with empty queues (`d0` in the
    /// Swift window computation).
    pub base_rtt: SimDuration,
    /// Multipath aggregate this flow belongs to, if any (resource pooling).
    pub group: Option<usize>,
    /// The ECMP choice index the flow was pinned with, when it was added via
    /// [`crate::network::Network::add_flow`]. Link failures re-select the
    /// flow's route as `host_route_avoiding(src, dst, choice, down)`; flows
    /// added with an explicit route (`None`) are never re-routed.
    pub ecmp_choice: Option<usize>,
}

/// Runtime counters for a flow.
#[derive(Debug, Clone, Default)]
pub struct FlowStats {
    /// Payload bytes handed to the network by the sender (first transmissions
    /// and retransmissions alike).
    pub bytes_sent: u64,
    /// Payload bytes acknowledged back to the sender (highest cumulative ACK).
    pub bytes_acked: u64,
    /// Payload bytes that arrived at the destination.
    pub bytes_delivered: u64,
    /// Data packets sent.
    pub packets_sent: u64,
    /// Data packets delivered to the destination.
    pub packets_delivered: u64,
    /// Packets of this flow dropped anywhere in the network.
    pub packets_dropped: u64,
    /// When the flow actually started.
    pub started_at: Option<SimTime>,
    /// When the last payload byte arrived at the destination.
    pub completed_at: Option<SimTime>,
}

impl FlowStats {
    /// Flow completion time, if the flow has completed.
    pub fn fct(&self) -> Option<SimDuration> {
        match (self.started_at, self.completed_at) {
            (Some(s), Some(c)) => Some(c.duration_since(s)),
            _ => None,
        }
    }

    /// Average throughput in bits per second over the flow's lifetime
    /// (delivered bytes / completion time), if completed.
    pub fn average_rate_bps(&self) -> Option<f64> {
        let fct = self.fct()?;
        if fct.is_zero() {
            return None;
        }
        Some(self.bytes_delivered as f64 * 8.0 / fct.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fct_and_average_rate() {
        let mut stats = FlowStats::default();
        assert!(stats.fct().is_none());
        stats.started_at = Some(SimTime::from_micros(100));
        stats.completed_at = Some(SimTime::from_micros(900));
        stats.bytes_delivered = 1_000_000;
        assert_eq!(stats.fct(), Some(SimDuration::from_micros(800)));
        let rate = stats.average_rate_bps().unwrap();
        assert!((rate - 1_000_000.0 * 8.0 / 800e-6).abs() / rate < 1e-9);
    }

    #[test]
    fn zero_duration_fct_gives_no_rate() {
        let stats = FlowStats {
            started_at: Some(SimTime::from_micros(5)),
            completed_at: Some(SimTime::from_micros(5)),
            bytes_delivered: 100,
            ..Default::default()
        };
        assert!(stats.average_rate_bps().is_none());
    }
}

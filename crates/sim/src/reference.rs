//! A minimal reference transport used by tests, examples and as a
//! building-block sanity check for the simulator itself.
//!
//! [`SimpleWindowAgent`] is a fixed-window, ACK-clocked transport: it keeps a
//! configurable number of packets in flight and sends a new one for every
//! ACK. It performs no congestion control and no loss recovery, which is
//! exactly why it is useful for validating the engine (its behaviour is easy
//! to reason about analytically).

use crate::network::AgentCtx;
use crate::packet::{Packet, DEFAULT_PAYLOAD_BYTES};
use crate::transport::FlowAgent;

/// Fixed-window ACK-clocked transport with no congestion control.
#[derive(Debug)]
pub struct SimpleWindowAgent {
    window_packets: usize,
    in_flight: usize,
    next_seq: u64,
}

impl SimpleWindowAgent {
    /// An agent that keeps `window_packets` packets outstanding.
    ///
    /// # Panics
    /// Panics if `window_packets` is zero.
    pub fn new(window_packets: usize) -> Self {
        assert!(window_packets > 0, "window must be at least one packet");
        Self {
            window_packets,
            in_flight: 0,
            next_seq: 0,
        }
    }

    fn fill_window(&mut self, ctx: &mut AgentCtx<'_>) {
        while self.in_flight < self.window_packets {
            let payload = match ctx.remaining_bytes() {
                Some(0) => break,
                Some(rem) => rem.min(DEFAULT_PAYLOAD_BYTES as u64) as u32,
                None => DEFAULT_PAYLOAD_BYTES,
            };
            let seq = self.next_seq;
            ctx.send_data(seq, payload, |_| {});
            self.next_seq += payload as u64;
            self.in_flight += 1;
        }
    }
}

impl FlowAgent for SimpleWindowAgent {
    fn on_start(&mut self, ctx: &mut AgentCtx<'_>) {
        self.fill_window(ctx);
    }

    fn on_ack(&mut self, _packet: &Packet, ctx: &mut AgentCtx<'_>) {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.fill_window(ctx);
    }

    fn on_timer(&mut self, _tag: u64, _ctx: &mut AgentCtx<'_>) {}

    fn name(&self) -> &'static str {
        "simple-window"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::queue::DropTailFifo;
    use crate::time::{SimDuration, SimTime};
    use crate::topology::{LeafSpineConfig, Topology};

    #[test]
    fn one_packet_window_is_stop_and_wait() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(4, 2, 1));
        let mut net = Network::new(topo, |_| Box::new(DropTailFifo::with_default_buffer()));
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[3],
            Some(14_600),
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(1)),
        );
        net.run_until(SimTime::from_millis(10));
        let stats = net.flow_stats(flow);
        assert_eq!(stats.packets_sent, 10);
        // Stop-and-wait: roughly one packet per RTT, so FCT ≳ 10 RTTs.
        let rtt = net.flow_spec(flow).base_rtt;
        assert!(stats.fct().unwrap() >= rtt * 9);
    }

    #[test]
    fn large_window_saturates_the_path() {
        let topo = Topology::leaf_spine(&LeafSpineConfig::small(4, 2, 1));
        let mut net = Network::new(topo, |_| Box::new(DropTailFifo::with_default_buffer()));
        let hosts: Vec<_> = net.topology().hosts().to_vec();
        let flow = net.add_flow(
            hosts[0],
            hosts[3],
            None,
            SimTime::ZERO,
            0,
            None,
            Box::new(SimpleWindowAgent::new(64)),
        );
        net.run_until(SimTime::from_millis(5));
        let rate = net.flow_rate_estimate(flow);
        // Payload goodput is capped slightly below 10 Gbps by header overhead.
        assert!(rate > 9e9, "rate = {rate}");
        assert!(rate < 10e9, "rate = {rate}");
        // Window larger than the BDP keeps a standing queue at the bottleneck.
        let first_link = net.route(net.flow_spec(flow).route).links()[0];
        let _ = net.link_stats(first_link);
        net.run_for(SimDuration::from_micros(100));
    }
}

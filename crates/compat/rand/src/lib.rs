//! Offline API-compatible shim for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! and [`seq::SliceRandom`]. See `crates/compat/README.md` for why this
//! exists and what its determinism contract is.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of random `u32`/`u64`
/// words and raw bytes.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let n = word.len().min(dest.len() - i);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A random number generator seedable from a fixed-size byte seed or a
/// single `u64` (expanded with SplitMix64, like upstream rand).
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct the generator from a `u64`, expanding it to a full seed
    /// with the SplitMix64 sequence.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let z = splitmix64(&mut s);
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence (public so sibling shims reuse it).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample a value from.
pub trait SampleRange<T> {
    /// Sample a single value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related extensions: random element choice and shuffling.

    use super::RngCore;

    /// Uniform index in `0..n` without `Self: Sized` bounds.
    fn index<R: RngCore + ?Sized>(rng: &mut R, n: usize) -> usize {
        (rng.next_u64() % n as u64) as usize
    }

    /// Iterator over elements sampled without replacement by
    /// [`SliceRandom::choose_multiple`].
    pub struct SliceChooseIter<'a, T> {
        items: std::vec::IntoIter<&'a T>,
    }

    impl<'a, T> Iterator for SliceChooseIter<'a, T> {
        type Item = &'a T;
        fn next(&mut self) -> Option<&'a T> {
            self.items.next()
        }
        fn size_hint(&self) -> (usize, Option<usize>) {
            self.items.size_hint()
        }
    }

    impl<T> ExactSizeIterator for SliceChooseIter<'_, T> {}

    /// Random-selection extensions on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements sampled without replacement (all of
        /// them if `amount >= len`).
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[index(rng, self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> SliceChooseIter<'_, T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: the first `amount` entries are a
            // uniform sample without replacement.
            for i in 0..amount {
                let j = i + index(rng, indices.len() - i);
                indices.swap(i, j);
            }
            let items: Vec<&T> = indices[..amount].iter().map(|&i| &self[i]).collect();
            SliceChooseIter {
                items: items.into_iter(),
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = index(rng, i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Lcg(42);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(1.5..2.5);
            assert!((1.5..2.5).contains(&x));
            let n: usize = rng.gen_range(3..7);
            assert!((3..7).contains(&n));
            let m: u64 = rng.gen_range(10..=12);
            assert!((10..=12).contains(&m));
        }
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = Lcg(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Lcg(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = Lcg(9);
        let v: Vec<u32> = (0..20).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 5).copied().collect();
        assert_eq!(picked.len(), 5);
        let mut uniq = picked.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 5);
    }
}

//! Regenerate **Figure 4b/4c**: the rate of a typical DCTCP flow vs a typical
//! NUMFabric flow across several network events, measured with the 80 µs
//! EWMA filter.
//!
//! The paper's point is qualitative: DCTCP rates are so noisy at 100 µs
//! timescales that they never settle within 10 % of any target, while
//! NUMFabric rates converge crisply after every event. The output is two
//! time-series (time in ms, rate in Gbps) plus a noise summary.

use numfabric_baselines::DctcpConfig;
use numfabric_bench::report::print_table;
use numfabric_bench::{rate_timeseries, Protocol, SemiDynamicRun};
use numfabric_core::NumFabricConfig;
use numfabric_num::utility::LogUtility;
use numfabric_sim::SimDuration;
use std::sync::Arc;

fn coefficient_of_variation(series: &[(f64, f64)], from_ms: f64) -> f64 {
    let vals: Vec<f64> = series
        .iter()
        .filter(|(t, _)| *t >= from_ms)
        .map(|&(_, r)| r)
        .collect();
    let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
    let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len().max(1) as f64;
    var.sqrt() / mean.max(1.0)
}

fn main() {
    let run = SemiDynamicRun::reduced(6, 7);
    let utility = Arc::new(LogUtility::new());
    let spacing = SimDuration::from_millis(4);
    let sample = SimDuration::from_micros(50);

    println!("Figure 4b/4c: rate of one tracked flow across network events\n");
    let mut summaries = Vec::new();
    for (label, protocol) in [
        ("DCTCP", Protocol::Dctcp(DctcpConfig::default())),
        ("NUMFabric", Protocol::NumFabric(NumFabricConfig::default())),
    ] {
        let series = rate_timeseries(&protocol, &run, utility.clone(), spacing, sample);
        println!("{label} rate time series (time_ms, rate_gbps):");
        let step = (series.len() / 60).max(1);
        for (i, (t, r)) in series.iter().enumerate() {
            if i % step == 0 {
                println!("  {:8.2} ms  {:6.2} Gbps", t, r / 1e9);
            }
        }
        println!();
        summaries.push(vec![
            label.to_string(),
            format!("{:.3}", coefficient_of_variation(&series, 2.0)),
        ]);
    }
    println!("Rate noisiness after warm-up (coefficient of variation of the 80us-filtered rate):");
    print_table(&["scheme", "coeff. of variation"], &summaries);
    println!(
        "\nExpected shape: DCTCP's filtered rate oscillates strongly (large CoV), so it never\n\
         stays within 10% of a target; NUMFabric's rate is comparatively steady between events."
    );
}

//! Regenerate **Figure 10**: bandwidth functions combined with resource
//! pooling under a capacity change.
//!
//! Flow 1 owns a private 5 Gbps path and flow 2 a private 3 Gbps path; both
//! also have a subflow over a shared middle link whose capacity starts at
//! 5 Gbps and jumps to 17 Gbps mid-run. Each flow's *aggregate* rate is
//! governed by the Figure-2 bandwidth functions. Expected allocation:
//! (10, 3) Gbps before the change and (15, 10) Gbps after it.

use numfabric_core::protocol::install_numfabric;
use numfabric_core::{AggregateState, NumFabricAgent, NumFabricConfig};
use numfabric_num::bandwidth_function::BandwidthFunction;
use numfabric_num::utility::BandwidthFunctionUtility;
use numfabric_sim::queue::StfqQueue;
use numfabric_sim::topology::{NodeKind, Topology};
use numfabric_sim::{Network, SimDuration, SimTime};

fn main() {
    let delay = SimDuration::from_micros(2);
    let mut topo = Topology::new();
    let src1 = topo.add_node(NodeKind::Host, "src1");
    let src2 = topo.add_node(NodeKind::Host, "src2");
    let sw1 = topo.add_node(NodeKind::Leaf, "sw1");
    let sw2 = topo.add_node(NodeKind::Leaf, "sw2");
    let sw_mid_in = topo.add_node(NodeKind::Spine, "mid-in");
    let sw_mid_out = topo.add_node(NodeKind::Spine, "mid-out");
    let dst1 = topo.add_node(NodeKind::Host, "dst1");
    let dst2 = topo.add_node(NodeKind::Host, "dst2");

    topo.add_duplex_link(src1, sw1, 100e9, delay);
    topo.add_duplex_link(src2, sw2, 100e9, delay);
    // Private paths: 5 Gbps "top" link for flow 1, 3 Gbps "bottom" for flow 2.
    topo.add_duplex_link(sw1, dst1, 5e9, delay);
    topo.add_duplex_link(sw2, dst2, 3e9, delay);
    // Shared middle link (initially 5 Gbps) reachable from both sources.
    topo.add_duplex_link(sw1, sw_mid_in, 100e9, delay);
    topo.add_duplex_link(sw2, sw_mid_in, 100e9, delay);
    let (mid_fwd, _mid_rev) = topo.add_duplex_link(sw_mid_in, sw_mid_out, 5e9, delay);
    topo.add_duplex_link(sw_mid_out, dst1, 100e9, delay);
    topo.add_duplex_link(sw_mid_out, dst2, 100e9, delay);

    let config = NumFabricConfig::default();
    let mut net = Network::new(topo.clone(), |_| Box::new(StfqQueue::with_default_buffer()));
    install_numfabric(&mut net, &config);

    // Flow 1: aggregate over {top path, middle path} with bandwidth function 1.
    let handles1 = AggregateState::create(2);
    let u1 = || BandwidthFunctionUtility::new(BandwidthFunction::paper_flow1());
    let f1a = net.add_flow_on_route(
        src1,
        dst1,
        topo.route_via(&[src1, sw1, dst1]),
        None,
        SimTime::ZERO,
        Some(1),
        Box::new(NumFabricAgent::new(config.clone(), u1()).with_aggregate(handles1[0].clone())),
    );
    let f1b = net.add_flow_on_route(
        src1,
        dst1,
        topo.route_via(&[src1, sw1, sw_mid_in, sw_mid_out, dst1]),
        None,
        SimTime::ZERO,
        Some(1),
        Box::new(NumFabricAgent::new(config.clone(), u1()).with_aggregate(handles1[1].clone())),
    );
    // Flow 2: aggregate over {bottom path, middle path} with bandwidth function 2.
    let handles2 = AggregateState::create(2);
    let u2 = || BandwidthFunctionUtility::new(BandwidthFunction::paper_flow2());
    let f2a = net.add_flow_on_route(
        src2,
        dst2,
        topo.route_via(&[src2, sw2, dst2]),
        None,
        SimTime::ZERO,
        Some(2),
        Box::new(NumFabricAgent::new(config.clone(), u2()).with_aggregate(handles2[0].clone())),
    );
    let f2b = net.add_flow_on_route(
        src2,
        dst2,
        topo.route_via(&[src2, sw2, sw_mid_in, sw_mid_out, dst2]),
        None,
        SimTime::ZERO,
        Some(2),
        Box::new(NumFabricAgent::new(config.clone(), u2()).with_aggregate(handles2[1].clone())),
    );

    println!("Figure 10: aggregate throughput of the two flows; middle link 5 Gbps -> 17 Gbps at t = 5 ms\n");
    println!("  time_ms   flow1_Gbps   flow2_Gbps");
    let switch_at = SimTime::from_millis(5);
    let end = SimTime::from_millis(10);
    let mut t = SimTime::ZERO;
    let mut switched = false;
    while t < end {
        t += SimDuration::from_micros(200);
        if !switched && t >= switch_at {
            net.set_link_capacity(mid_fwd, 17e9);
            switched = true;
            println!("  -- middle link capacity changed to 17 Gbps --");
        }
        net.run_until(t);
        let flow1 = (net.flow_rate_estimate(f1a) + net.flow_rate_estimate(f1b)) / 1e9;
        let flow2 = (net.flow_rate_estimate(f2a) + net.flow_rate_estimate(f2b)) / 1e9;
        println!(
            "  {:7.2}   {:10.2}   {:10.2}",
            t.as_secs_f64() * 1e3,
            flow1,
            flow2
        );
    }
    println!(
        "\nExpected shape (paper): ~(10, 3) Gbps while the middle link is 5 Gbps (flow 1 gets the\n\
         whole middle link), switching quickly to ~(15, 10) Gbps once it becomes 17 Gbps."
    );
}

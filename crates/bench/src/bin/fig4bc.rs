//! Regenerate **Figure 4b/4c** — thin wrapper over
//! [`numfabric_bench::figures::fig4bc`] (also available as
//! `numfabric-run fig4bc`).

use numfabric_workloads::registry::ScenarioOptions;

fn main() {
    numfabric_bench::figures::fig4bc(&ScenarioOptions::from_env());
}

//! # numfabric-sim
//!
//! A deterministic, packet-level, discrete-event datacenter network
//! simulator — the substrate on which the NUMFabric reproduction (SIGCOMM
//! 2016) is evaluated. It plays the role ns-3 plays in the paper.
//!
//! The simulator models:
//!
//! * **Topologies** ([`topology`]) — arbitrary node/link graphs with a
//!   leaf-spine builder matching the paper's fabrics (128 servers, 8 leaves,
//!   4 or 16 spines, 10/40 Gbps links, ~16 µs RTT), an oversubscribed
//!   leaf-spine variant, k-ary fat-trees with edge/aggregation/core tiers,
//!   and a generalized ECMP enumerator over multi-tier equal-cost path sets.
//! * **Output-queued switches** ([`network`], [`queue`]) — one queue per
//!   egress link, with pluggable disciplines: drop-tail FIFO, Start-Time Fair
//!   Queueing (the WFQ approximation NUMFabric's Swift layer uses), an
//!   ECN-marking FIFO (DCTCP) and a pFabric priority queue.
//! * **Transport protocols** ([`transport`]) — per-flow
//!   [`FlowAgent`]s at the hosts and per-link
//!   [`LinkController`]s at the switches.
//!   NUMFabric itself lives in the `numfabric-core` crate; DGD, RCP*, DCTCP
//!   and pFabric live in `numfabric-baselines`.
//! * **Measurement** ([`tracer`]) — destination-side EWMA rate estimation
//!   with the paper's 80 µs time constant, per-flow FCT bookkeeping and
//!   per-link counters.
//!
//! * **Event core** ([`event`], [`timer`]) — a hierarchical timing-wheel
//!   scheduler (same-timestamp batches drained in one pass, overflow level
//!   for far-future timestamps) and a handle-based [`timer::TimerService`]:
//!   agents arm timers through [`network::AgentCtx::set_timer`] and stopping
//!   or completing a flow structurally cancels whatever is still pending.
//!
//! Determinism: given the same inputs the simulation produces bit-identical
//! results — events are ordered by `(time, key)` where the key is a pure
//! function of the event's content (flow id, link id, packet rank — see
//! [`network`]), and the engine itself uses no randomness; the timing wheel
//! preserves the binary heap's `(time, key)` pop order exactly (pinned by
//! differential tests against [`event::HeapEventQueue`]). Randomized link
//! impairments draw from per-*link* SplitMix64 streams
//! ([`impairment::derive_link_seed`]), so even lossy/jittered runs are a
//! pure function of the seed. Workload generators (in `numfabric-workloads`)
//! inject randomness only through explicitly seeded RNGs.
//!
//! Parallelism: one [`network::Network`] owns one complete simulation and
//! is `Send` (every agent, queue and controller trait object carries a
//! `Send` bound; the guarantee is asserted at compile time in
//! [`network`]). Independent simulations therefore parallelize across
//! threads with no locks in the hot path and no effect on determinism —
//! the `numfabric-bench` sweep engine runs one owned `Network` per worker.
//! *Inside* one simulation, the network is domain-decomposed: a
//! deterministic graph partitioner ([`topology::Topology::partition`])
//! assigns every node to one of `N` partitions, each partition owns its own
//! timing wheel and timer service, and cross-cut packet deliveries travel
//! as boundary messages merged at conservative time barriers. Each epoch
//! the partition cores advance to the barrier **concurrently** on a pool of
//! worker threads ([`network::Network::set_partition_threads`]); because
//! event keys are content-derived rather than allocated from any shared
//! counter, the merged pop order — and every report byte — is a pure
//! function of the seed, independent of both the partition count and the
//! thread count ([`network::Network::set_partitions`]).
//!
//! ## Quick example
//!
//! ```
//! use numfabric_sim::network::Network;
//! use numfabric_sim::queue::DropTailFifo;
//! use numfabric_sim::reference::SimpleWindowAgent;
//! use numfabric_sim::time::SimTime;
//! use numfabric_sim::topology::{LeafSpineConfig, Topology};
//!
//! let topo = Topology::leaf_spine(&LeafSpineConfig::small(8, 2, 2));
//! let mut net = Network::new(topo, |_| Box::new(DropTailFifo::with_default_buffer()));
//! let hosts: Vec<_> = net.topology().hosts().to_vec();
//! let flow = net.add_flow(
//!     hosts[0], hosts[7],
//!     Some(150_000),            // 150 kB flow
//!     SimTime::ZERO, 0, None,
//!     Box::new(SimpleWindowAgent::new(16)),
//! );
//! net.run_until(SimTime::from_millis(10));
//! assert!(net.flow_stats(flow).fct().is_some());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod event;
pub mod flow;
pub mod impairment;
pub mod network;
pub mod packet;
pub mod queue;
pub mod reference;
pub mod routes;
pub mod time;
pub mod timer;
pub mod topology;
pub mod tracer;
pub mod transport;

pub use event::{BatchTicket, Event, EventId, EventQueue, HeapEventQueue};
pub use flow::{FlowPhase, FlowSpec, FlowStats};
pub use impairment::{derive_link_seed, LinkChange, LinkHealth};
pub use network::{AgentCtx, LinkStats, Network, NetworkConfig};
pub use packet::{FlowId, Packet, PacketHeader, PacketKind};
pub use queue::{DropTailFifo, EcnFifo, PfabricQueue, QueueDiscipline, StfqQueue};
pub use routes::{RouteId, RouteTable};
pub use time::{SimDuration, SimTime};
pub use timer::{TimerHandle, TimerService};
pub use topology::{
    FatTreeConfig, LeafSpineConfig, LinkId, NodeId, NodeKind, Partitioning, Route, Topology,
};
pub use tracer::{EwmaRateTracer, RateSeries};
pub use transport::{AckMode, FlowAgent, LinkController, NullController};

//! Driver for the dynamic (Poisson-arrival) workloads (§6.1 Fig. 5 and
//! §6.3 Fig. 7).
//!
//! Every flow of the generated workload is injected into the packet
//! simulation with its recorded start time, size and path; the same arrivals
//! are fed to the ideal fluid simulator to obtain the Oracle reference rates,
//! and to the empty-network bound used by the pFabric-style FCT
//! normalization.

use crate::protocols::Protocol;
use numfabric_num::utility::{FctUtility, LogUtility, UtilityRef};
use numfabric_sim::topology::{LeafSpineConfig, Topology};
use numfabric_sim::{SimDuration, SimTime};
use numfabric_workloads::arrivals::{poisson_arrivals, FlowArrival, PoissonWorkloadConfig};
use numfabric_workloads::distributions::FlowSizeDistribution;
use numfabric_workloads::ideal::{empty_network_fct, IdealFluidSimulator};
use std::sync::Arc;

/// The NUM objective flows in a dynamic workload optimize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Proportional fairness (the §6.1 dynamic-workload experiments).
    ProportionalFairness,
    /// FCT minimization: `U(x) = x^{1-ε}/((1-ε)·size)` (the Fig. 7 comparison
    /// against pFabric).
    FctMinimization,
}

impl Objective {
    /// The utility object for a flow of `size_bytes`.
    pub fn utility_for(&self, size_bytes: u64) -> UtilityRef {
        match self {
            Objective::ProportionalFairness => Arc::new(LogUtility::new()),
            Objective::FctMinimization => Arc::new(FctUtility::new(size_bytes.max(1) as f64)),
        }
    }
}

/// Per-flow outcome of a dynamic-workload run.
#[derive(Debug, Clone, Copy)]
pub struct DynamicFlowResult {
    /// Flow size in bytes.
    pub size_bytes: u64,
    /// Measured flow completion time (`None` if the flow had not finished
    /// when the simulation ended).
    pub fct: Option<SimDuration>,
    /// Oracle (ideal fluid) completion time.
    pub ideal_fct: SimDuration,
    /// Empty-network lower bound on the completion time.
    pub empty_fct: SimDuration,
}

impl DynamicFlowResult {
    /// The normalized rate deviation of Fig. 5:
    /// `(rate − idealRate) / idealRate`, with rates defined as
    /// `size / completion time`. `None` if the flow did not finish.
    pub fn rate_deviation(&self) -> Option<f64> {
        let fct = self.fct?.as_secs_f64();
        let ideal = self.ideal_fct.as_secs_f64();
        if fct <= 0.0 || ideal <= 0.0 {
            return None;
        }
        let rate = self.size_bytes as f64 / fct;
        let ideal_rate = self.size_bytes as f64 / ideal;
        Some((rate - ideal_rate) / ideal_rate)
    }

    /// The normalized FCT of Fig. 7: measured FCT divided by the
    /// empty-network bound.
    pub fn normalized_fct(&self) -> Option<f64> {
        let fct = self.fct?.as_secs_f64();
        Some(fct / self.empty_fct.as_secs_f64().max(1e-12))
    }

    /// Flow size expressed in bandwidth-delay products (Fig. 5's bins).
    pub fn size_in_bdp(&self, bdp_bytes: f64) -> f64 {
        self.size_bytes as f64 / bdp_bytes
    }
}

/// Configuration of a dynamic workload run.
#[derive(Debug, Clone)]
pub struct DynamicRun {
    /// Topology.
    pub topology: LeafSpineConfig,
    /// Offered load on the host links.
    pub load: f64,
    /// Duration over which arrivals are generated.
    pub arrival_window: SimDuration,
    /// Extra simulation time after the last arrival to let flows drain.
    pub drain: SimDuration,
    /// Workload seed.
    pub seed: u64,
}

impl DynamicRun {
    /// Reduced-scale defaults: 32 hosts, arrivals over 20 ms.
    pub fn reduced(load: f64, seed: u64) -> Self {
        Self {
            topology: LeafSpineConfig::small(32, 4, 2),
            load,
            arrival_window: SimDuration::from_millis(20),
            drain: SimDuration::from_millis(120),
            seed,
        }
    }
}

/// Generate the arrivals for a run (shared across protocols so that every
/// scheme sees the identical workload).
pub fn generate_arrivals(run: &DynamicRun, dist: &dyn FlowSizeDistribution) -> Vec<FlowArrival> {
    let topo = Topology::leaf_spine(&run.topology);
    let cfg = PoissonWorkloadConfig {
        load: run.load,
        host_link_bps: run.topology.host_link_bps,
        duration: run.arrival_window,
        seed: run.seed,
        num_spines: run.topology.spines,
    };
    poisson_arrivals(topo.hosts(), dist, &cfg)
}

/// Run one protocol over a pre-generated arrival list and return per-flow
/// results (same order as `arrivals`).
pub fn run_dynamic(
    protocol: &Protocol,
    run: &DynamicRun,
    arrivals: &[FlowArrival],
    objective: Objective,
) -> Vec<DynamicFlowResult> {
    let topo = Topology::leaf_spine(&run.topology);
    let mut net = protocol.build_network(topo.clone());

    let mut flow_ids = Vec::with_capacity(arrivals.len());
    for a in arrivals {
        let id = net.add_flow(
            a.src,
            a.dst,
            Some(a.size_bytes),
            a.start,
            a.spine_choice,
            None,
            protocol.make_agent(objective.utility_for(a.size_bytes)),
        );
        flow_ids.push(id);
    }
    net.run_until(SimTime::ZERO + run.arrival_window + run.drain);

    // Oracle reference (fluid) and empty-network bounds.
    let ideal =
        IdealFluidSimulator::new(&topo).run(arrivals, |a| objective.utility_for(a.size_bytes));

    arrivals
        .iter()
        .zip(flow_ids)
        .zip(ideal)
        .map(|((a, id), ideal)| {
            let route = topo.host_route(a.src, a.dst, a.spine_choice);
            DynamicFlowResult {
                size_bytes: a.size_bytes,
                fct: net.flow_stats(id).fct(),
                ideal_fct: ideal.fct,
                empty_fct: empty_network_fct(&topo, &route, a.size_bytes),
            }
        })
        .collect()
}

/// The bandwidth-delay product of the topology's host links (Fig. 5 uses
/// 200 kB for the paper's 10 Gbps / 16 µs fabric).
pub fn bdp_bytes(topology: &LeafSpineConfig) -> f64 {
    // Cross-rack base RTT: 8 propagation delays plus serialization ≈ 16 µs
    // for the paper's parameters.
    let rtt = 8.0 * topology.link_delay.as_secs_f64();
    topology.host_link_bps * rtt / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_core::NumFabricConfig;
    use numfabric_workloads::distributions::FixedSize;

    #[test]
    fn bdp_matches_paper_value() {
        let bdp = bdp_bytes(&LeafSpineConfig::paper_default());
        assert!((bdp - 20_000.0).abs() < 1.0, "bdp = {bdp}");
    }

    #[test]
    fn numfabric_dynamic_run_completes_most_flows_near_ideal() {
        let run = DynamicRun {
            topology: LeafSpineConfig::small(8, 2, 2),
            load: 0.3,
            arrival_window: SimDuration::from_millis(5),
            drain: SimDuration::from_millis(60),
            seed: 3,
        };
        let arrivals = generate_arrivals(&run, &FixedSize(200_000));
        assert!(!arrivals.is_empty());
        let results = run_dynamic(
            &Protocol::NumFabric(NumFabricConfig::default()),
            &run,
            &arrivals,
            Objective::ProportionalFairness,
        );
        let finished = results.iter().filter(|r| r.fct.is_some()).count();
        assert!(
            finished * 10 >= results.len() * 9,
            "only {finished}/{} flows finished",
            results.len()
        );
        // Median rate deviation should be modest (the paper reports near-zero
        // medians for flows above a few BDP).
        let mut devs: Vec<f64> = results.iter().filter_map(|r| r.rate_deviation()).collect();
        devs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = devs[devs.len() / 2];
        assert!(median.abs() < 0.5, "median deviation = {median}");
    }

    #[test]
    fn deviation_and_normalization_arithmetic() {
        let r = DynamicFlowResult {
            size_bytes: 1_000_000,
            fct: Some(SimDuration::from_millis(2)),
            ideal_fct: SimDuration::from_millis(1),
            empty_fct: SimDuration::from_micros(800),
        };
        // Measured rate is half the ideal rate → deviation −0.5.
        assert!((r.rate_deviation().unwrap() + 0.5).abs() < 1e-9);
        assert!((r.normalized_fct().unwrap() - 2.5).abs() < 1e-9);
        assert!((r.size_in_bdp(200_000.0) - 5.0).abs() < 1e-9);
        let unfinished = DynamicFlowResult { fct: None, ..r };
        assert!(unfinished.rate_deviation().is_none());
    }
}

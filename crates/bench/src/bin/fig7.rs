//! Regenerate **Figure 7** — thin wrapper over
//! [`numfabric_bench::figures::fig7`] (also available as
//! `numfabric-run fig7 [--full]`).

use numfabric_workloads::registry::ScenarioOptions;

fn main() {
    numfabric_bench::figures::fig7(&ScenarioOptions::from_env());
}

//! # numfabric-workloads
//!
//! Workload generation and measurement for the NUMFabric evaluation
//! (SIGCOMM 2016, §6):
//!
//! * [`distributions`] — flow-size distributions: synthetic empirical CDFs
//!   matching the published web-search and enterprise workload statistics,
//!   plus fixed/uniform/Pareto helpers.
//! * [`arrivals`] — Poisson flow arrivals at a target load, both collected
//!   ([`poisson_arrivals`]) and streaming ([`ArrivalStream`]).
//! * [`churn`] — open-loop trace-driven churn mixes: per-class Poisson
//!   processes (foreground web-search over background data-mining) merged
//!   into one streaming arrival sequence for the million-flow scenarios.
//! * [`scenarios`] — the semi-dynamic convergence scenario (1000 random
//!   paths, 100-flow start/stop events, 300–500 active flows), permutation
//!   traffic for resource pooling, random-pair helpers, and the datacenter
//!   fabric family: incast (N-to-1), all-to-all shuffle and stride
//!   permutations.
//! * [`fabric`] — `--topology` specs (`leaf-spine`, `oversub:R:1`,
//!   `fat-tree:k=K`) parsed into buildable topologies.
//! * [`impairments`] — failure/impairment schedules: `--impair` specs
//!   (`down@usec:link`, `loss@usec:link=p`, ...) parsed into timed
//!   [`LinkChange`](numfabric_sim::LinkChange) events, the `cable_cut`
//!   recovery experiment builder, and the named [`ImpairmentProfile`]
//!   family (`none`/`flap`/`loss`/`jitter`) used as a sweep axis.
//! * [`convergence`] — the §6.1 convergence criterion (95 % of flows within
//!   10 % of the oracle allocation, sustained for 5 ms, filter rise time
//!   subtracted) and the mapping from packet-level flows to fluid NUM
//!   instances for the oracle.
//! * [`ideal`] — the Oracle reference for dynamic workloads: a fluid event
//!   simulation that re-solves the NUM problem at every arrival/departure,
//!   and the empty-network FCT bound used to normalize Fig. 7.
//! * [`registry`] — a registry of named, runnable scenarios; the
//!   `numfabric-run` CLI in `numfabric-bench` lists and dispatches every
//!   figure scenario through it.
//! * [`sweep`] — parameter-sweep grids: [`SweepSpec`] names axes (scenarios
//!   × topologies × protocols × loads × sizes × impairments × seed
//!   replicates) and
//!   expands their cartesian product into self-contained [`SweepCell`]s,
//!   each with a seed derived from `(base_seed, cell_index)` — the
//!   specification half of the parallel sweep engine in `numfabric-bench`.
//!
//! Everything is deterministic given the seeds embedded in the
//! configuration structs, so every protocol under comparison sees an
//! identical workload.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arrivals;
pub mod churn;
pub mod convergence;
pub mod distributions;
pub mod fabric;
pub mod ideal;
pub mod impairments;
pub mod registry;
pub mod scenarios;
pub mod sweep;

pub use arrivals::{poisson_arrivals, ArrivalStream, FlowArrival, PoissonWorkloadConfig};
pub use churn::{
    derive_class_seed, foreground_background, ChurnArrival, ChurnClass, ChurnConfig, ChurnStream,
};
pub use convergence::{
    convergence_stats, fluid_instance, measure_convergence, oracle_rates_bps, ConvergenceCriterion,
    ConvergenceOutcome, ConvergenceStats,
};
pub use distributions::{
    BoundedPareto, EmpiricalCdf, FixedSize, FlowSizeDistribution, UniformSize,
};
pub use fabric::{InvalidTopology, TopologySpec};
pub use ideal::{empty_network_fct, IdealCompletion, IdealFluidSimulator};
pub use impairments::{
    fabric_cables, ImpairmentEvent, ImpairmentProfile, ImpairmentSchedule, InvalidImpairment,
    InvalidProfile,
};
pub use registry::{
    InvalidOption, ScenarioOptions, ScenarioRegistry, ScenarioSpec, UnknownScenario,
};
pub use scenarios::{
    incast_pairs, permutation_pairs, random_pairs, shuffle_pairs, stride_pairs, EventKind,
    NetworkEvent, PathSpec, SemiDynamicConfig, SemiDynamicScenario,
};
pub use sweep::{derive_cell_seed, InvalidSweep, SweepCell, SweepScenario, SweepSpec};

//! # numfabric-num
//!
//! The network-utility-maximization (NUM) substrate used by the NUMFabric
//! reproduction (SIGCOMM 2016).
//!
//! This crate is a *fluid-model* library: it knows nothing about packets,
//! queues or simulated time. It provides:
//!
//! * [`utility`] — the utility-function catalogue of Table 1 of the paper
//!   (α-fairness, weighted α-fairness, the linear/FCT objective, bandwidth
//!   functions, and multipath aggregates), behind the [`Utility`] trait.
//! * [`bandwidth_function`] — piecewise-linear bandwidth functions in the
//!   style of Google BwE, their inverses, and the water-filling allocation
//!   they induce (Figure 2 of the paper).
//! * [`topology`] — a lightweight description of links, flows and paths used
//!   by all fluid solvers.
//! * [`maxmin`] — exact network-wide *weighted max-min* allocation via
//!   progressive bottleneck freezing (the allocation Swift realizes).
//! * [`oracle`] — the NUM optimum ("Oracle" in the paper's evaluation),
//!   computed with a dual coordinate-ascent solver and validated with KKT
//!   residuals.
//! * [`kkt`] — KKT residual computation for NUM solutions.
//! * [`fluid`] — synchronous fluid-model iterations of xWI, DGD and RCP*,
//!   used for convergence-dynamics studies and property tests.
//!
//! The packet-level realization of these algorithms lives in
//! `numfabric-core` (NUMFabric itself) and `numfabric-baselines` (DGD, RCP*,
//! DCTCP, pFabric), both built on the `numfabric-sim` discrete-event
//! simulator.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bandwidth_function;
pub mod fluid;
pub mod kkt;
pub mod maxmin;
pub mod oracle;
pub mod topology;
pub mod utility;

pub use bandwidth_function::BandwidthFunction;
pub use kkt::KktResiduals;
pub use maxmin::{weighted_max_min, weighted_max_min_into, MaxMinWorkspace};
pub use oracle::{Oracle, OracleSolution};
pub use topology::{
    FlowId, FluidFlow, FluidLink, FluidNetwork, FluidNetworkBuilder, LinkId, MultipathGroups,
};
pub use utility::{
    AlphaFair, BandwidthFunctionUtility, FctUtility, LogUtility, MultipathAggregate, Utility,
};

/// Numerical tolerance used across the fluid-model solvers when comparing
/// rates, prices or capacities.
pub const EPS: f64 = 1e-9;

/// Smallest rate considered strictly positive by the solvers.
///
/// Marginal utilities of the α-fair family diverge at zero rate, so solvers
/// clamp rates below this floor before evaluating marginals.
pub const MIN_RATE: f64 = 1e-9;

/// Largest rate the solvers will ever return.
///
/// `U'⁻¹(p)` diverges as the path price goes to zero; clamping keeps the
/// fluid iterations finite in the transient where some path has no price yet.
pub const MAX_RATE: f64 = 1e15;

/// Clamp a rate into the `[MIN_RATE, MAX_RATE]` range used by the solvers.
#[inline]
pub fn clamp_rate(x: f64) -> f64 {
    if !x.is_finite() {
        return MAX_RATE;
    }
    x.clamp(MIN_RATE, MAX_RATE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_rate_bounds() {
        assert_eq!(clamp_rate(0.0), MIN_RATE);
        assert_eq!(clamp_rate(-5.0), MIN_RATE);
        assert_eq!(clamp_rate(f64::INFINITY), MAX_RATE);
        assert_eq!(clamp_rate(f64::NAN), MAX_RATE);
        assert_eq!(clamp_rate(12.5), 12.5);
    }
}

//! The Swift transport's host-side rate control (§4.1 of the paper).
//!
//! Swift achieves a network-wide weighted max-min allocation by combining
//! WFQ scheduling in the switches (the `StfqQueue` of `numfabric-sim`) with a
//! simple window-based rate control at the hosts:
//!
//! * the **receiver** measures the spacing between consecutive data packets
//!   and reflects it to the sender in ACKs (`interPacketTime`);
//! * the **sender** turns each reflected spacing into a rate sample
//!   (`bytesAcked / interPacketTime`), smooths the samples with an EWMA
//!   filter to obtain the available-bandwidth estimate `R̂`, and sets its
//!   window to `W = R̂ · (d0 + dt)` — just above the bandwidth-delay product,
//!   so the flow is never window-limited while keeping only a few packets
//!   queued at the bottleneck.
//!
//! This module contains the two host-side pieces ([`SwiftRateEstimator`],
//! [`SwiftWindow`]); the WFQ scheduler lives in the simulator crate and the
//! full protocol agent that wires everything together lives in
//! [`crate::protocol`]. Both pieces are driven purely by ACK arrivals —
//! Swift needs no retransmission or pacing timers, which is why the
//! NUMFabric agent leaves the simulator's flow-timer service
//! (`numfabric_sim::timer`) untouched.

use crate::config::NumFabricConfig;
use numfabric_sim::{SimDuration, SimTime};

/// EWMA estimator of the available bandwidth `R̂` from reflected
/// inter-packet times (packet-pair / packet-train estimation).
#[derive(Debug, Clone)]
pub struct SwiftRateEstimator {
    tau: SimDuration,
    rate_bps: Option<f64>,
    last_update: Option<SimTime>,
}

impl SwiftRateEstimator {
    /// An estimator with the given EWMA time constant (`ewmaTime`).
    pub fn new(tau: SimDuration) -> Self {
        assert!(!tau.is_zero(), "ewmaTime must be positive");
        Self {
            tau,
            rate_bps: None,
            last_update: None,
        }
    }

    /// An estimator configured from a [`NumFabricConfig`].
    pub fn from_config(config: &NumFabricConfig) -> Self {
        Self::new(config.ewma_time)
    }

    /// Incorporate one reflected sample: `bytes` were acknowledged and the
    /// receiver observed `inter_packet_time` between the corresponding data
    /// packets. `now` is the ACK arrival time at the sender.
    ///
    /// Samples with a zero inter-packet time are ignored (they carry no rate
    /// information).
    pub fn on_sample(&mut self, bytes: u64, inter_packet_time: SimDuration, now: SimTime) {
        if inter_packet_time.is_zero() || bytes == 0 {
            return;
        }
        let sample = bytes as f64 * 8.0 / inter_packet_time.as_secs_f64();
        match self.rate_bps {
            None => {
                // First sample initializes R̂ directly (§4.1).
                self.rate_bps = Some(sample);
            }
            Some(current) => {
                let dt = self
                    .last_update
                    .map(|t| now.duration_since(t))
                    .unwrap_or(inter_packet_time);
                // Continuous-time EWMA: weight samples by the elapsed time so
                // the filter's bandwidth is governed by `ewmaTime`, not by the
                // packet rate.
                let alpha = 1.0 - (-dt.as_secs_f64().max(1e-12) / self.tau.as_secs_f64()).exp();
                self.rate_bps = Some(current + alpha * (sample - current));
            }
        }
        self.last_update = Some(now);
    }

    /// The current estimate `R̂` in bits per second, if at least one sample
    /// has been incorporated.
    pub fn rate_bps(&self) -> Option<f64> {
        self.rate_bps
    }

    /// Whether the estimator has been initialized.
    pub fn is_initialized(&self) -> bool {
        self.rate_bps.is_some()
    }
}

/// The Swift window computation `W = R̂ · (d0 + dt)`.
#[derive(Debug, Clone)]
pub struct SwiftWindow {
    /// Base fabric RTT `d0` for this flow.
    pub base_rtt: SimDuration,
    /// Delay slack `dt`.
    pub dt: SimDuration,
    /// Minimum window in bytes (keeps the ACK clock alive and guarantees WFQ
    /// sees at least one packet of the flow at its bottleneck).
    pub min_window_bytes: u64,
}

impl SwiftWindow {
    /// Build the window rule for a flow with base RTT `base_rtt`.
    pub fn new(config: &NumFabricConfig, base_rtt: SimDuration, mtu_bytes: u64) -> Self {
        Self {
            base_rtt,
            dt: config.dt,
            min_window_bytes: config.min_window_packets * mtu_bytes,
        }
    }

    /// The window in bytes for the bandwidth estimate `rate_bps`.
    ///
    /// The window is the bandwidth-delay product plus a slack. The slack is
    /// `R̂ · dt`, but never less than the minimum window: the paper's `dt`
    /// "targets a buffer occupancy of 5 packets" at the line rate, and a flow
    /// must keep at least a couple of packets queued at its bottleneck at
    /// *any* rate — otherwise the receiver's inter-packet times only reflect
    /// the flow's own (possibly too-low) sending rate and the estimate can
    /// never recover upward.
    pub fn window_bytes(&self, rate_bps: f64) -> u64 {
        let bdp = rate_bps.max(0.0) * self.base_rtt.as_secs_f64() / 8.0;
        let slack =
            (rate_bps.max(0.0) * self.dt.as_secs_f64() / 8.0).max(self.min_window_bytes as f64);
        (bdp + slack).ceil() as u64
    }

    /// The bandwidth-delay product (without the slack) for `rate_bps`.
    pub fn bdp_bytes(&self, rate_bps: f64) -> u64 {
        (rate_bps.max(0.0) * self.base_rtt.as_secs_f64() / 8.0).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(x: u64) -> SimDuration {
        SimDuration::from_micros(x)
    }

    #[test]
    fn first_sample_initializes_directly() {
        let mut est = SwiftRateEstimator::new(us(20));
        assert!(!est.is_initialized());
        // 1500 bytes spaced 1.2 µs apart = 10 Gbps.
        est.on_sample(
            1500,
            SimDuration::from_nanos(1200),
            SimTime::from_micros(10),
        );
        let r = est.rate_bps().unwrap();
        assert!((r - 10e9).abs() / 10e9 < 1e-9);
    }

    #[test]
    fn estimator_tracks_a_rate_change_within_a_few_time_constants() {
        let mut est = SwiftRateEstimator::new(us(20));
        let mut t = SimTime::ZERO;
        // 10 Gbps for 100 µs.
        for _ in 0..80 {
            est.on_sample(1500, SimDuration::from_nanos(1200), t);
            t += SimDuration::from_nanos(1200);
        }
        // Bottleneck halves: packets now spaced 2.4 µs.
        for _ in 0..80 {
            est.on_sample(1500, SimDuration::from_nanos(2400), t);
            t += SimDuration::from_nanos(2400);
        }
        let r = est.rate_bps().unwrap();
        assert!((r - 5e9).abs() / 5e9 < 0.05, "r = {r}");
    }

    #[test]
    fn zero_spacing_samples_are_ignored() {
        let mut est = SwiftRateEstimator::new(us(20));
        est.on_sample(1500, SimDuration::ZERO, SimTime::from_micros(1));
        assert!(!est.is_initialized());
        est.on_sample(0, SimDuration::from_nanos(1200), SimTime::from_micros(2));
        assert!(!est.is_initialized());
    }

    #[test]
    fn window_is_rate_times_rtt_plus_slack() {
        let cfg = NumFabricConfig::default();
        let win = SwiftWindow::new(&cfg, us(16), 1500);
        // 10 Gbps × 22 µs / 8 = 27.5 kB.
        assert_eq!(win.window_bytes(10e9), 27_500);
        // BDP alone is 20 kB.
        assert_eq!(win.bdp_bytes(10e9), 20_000);
        // The window always exceeds the BDP (the first Swift requirement).
        for rate in [1e9, 5e9, 10e9, 40e9] {
            assert!(win.window_bytes(rate) > win.bdp_bytes(rate));
        }
    }

    #[test]
    fn window_always_allows_a_standing_queue_of_packets() {
        let cfg = NumFabricConfig::default();
        let win = SwiftWindow::new(&cfg, us(16), 1500);
        assert_eq!(win.window_bytes(0.0), 2 * 1500);
        // At low rates the window is the BDP plus at least two packets of
        // slack — the slack never degenerates to a fraction of a packet.
        let low = win.window_bytes(1e9);
        assert!(
            low >= win.bdp_bytes(1e9) + 2 * 1500,
            "low-rate window {low}"
        );
    }

    #[test]
    fn larger_dt_gives_larger_window() {
        let small = SwiftWindow::new(&NumFabricConfig::default().with_dt(us(3)), us(16), 1500);
        let large = SwiftWindow::new(&NumFabricConfig::default().with_dt(us(24)), us(16), 1500);
        assert!(large.window_bytes(10e9) > small.window_bytes(10e9));
    }

    #[test]
    #[should_panic]
    fn zero_time_constant_rejected() {
        SwiftRateEstimator::new(SimDuration::ZERO);
    }
}

//! Benchmarks of the two hot paths the SoA/batch event-core round targets:
//!
//! * **arrival_batch_dispatch** — drain a tie-heavy 10k-event schedule
//!   (long same-timestamp runs of same-link arrivals, the incast shape)
//!   through the batch API (`begin_batch`/`claim`) next to the per-event
//!   `pop_entry` reference. The spread between the two is the dispatch
//!   overhead batching removes; both are also end-to-end pinned bit-identical
//!   by the differential proptests in `crates/sim`.
//! * **route_intern_churn** — enumerate and re-intern every ECMP host route
//!   of a fat-tree:k=8 fabric. Fat-tree host routes are at most 6 hops, so
//!   with the inline route representation interning allocates only on
//!   first sight of each distinct route, and lookups hash inline arrays
//!   instead of chasing heap pointers.
//!
//! The criterion shim prints mean wall time per iteration; divide the fixed
//! work counts below by it for events/sec or interns/sec.

use criterion::{criterion_group, criterion_main, Criterion};
use numfabric_sim::event::{Event, EventQueue};
use numfabric_sim::topology::{FatTreeConfig, Topology};
use numfabric_sim::{BatchTicket, Packet, RouteTable, SimTime};
use std::hint::black_box;

/// Tie-heavy population: `EVENTS` events over `TIMESTAMPS` distinct times —
/// every batch drains a long same-timestamp run.
const EVENTS: u64 = 10_000;
const TIMESTAMPS: u64 = 40;

/// Build the tie-heavy schedule: same-link arrival runs with interleaved
/// timer events, all on a handful of shared timestamps.
fn tie_heavy_queue() -> EventQueue {
    let mut routes = RouteTable::new();
    let route = routes.intern(numfabric_sim::Route::from_links(vec![0, 1]));
    let mut q = EventQueue::new();
    for i in 0..EVENTS {
        let at = SimTime::from_nanos(100 + (i % TIMESTAMPS) * 1_000);
        if i % 8 == 7 {
            q.schedule(
                at,
                Event::FlowTimer {
                    flow: (i % 16) as usize,
                    tag: i,
                },
            );
        } else {
            let link = (i % 4) as usize;
            q.schedule(
                at,
                Event::Arrival {
                    link,
                    packet: Packet::data((i % 16) as usize, i, 1460, route),
                },
            );
        }
    }
    q
}

fn bench_arrival_batch_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("arrival_batch_dispatch");
    group.sample_size(20);
    group.bench_function("batched_drain_10k_ties", |b| {
        b.iter(|| {
            let mut q = tie_heavy_queue();
            let mut tickets: Vec<BatchTicket> = Vec::new();
            let mut drained = 0u64;
            loop {
                tickets.clear();
                if q.begin_batch(&mut tickets).is_none() {
                    break;
                }
                for tk in &tickets {
                    if let Some((id, event)) = q.claim(*tk) {
                        black_box((id, &event));
                        drained += 1;
                    }
                }
                q.end_batch();
            }
            assert_eq!(drained, EVENTS);
            black_box(drained)
        })
    });
    group.bench_function("per_event_drain_10k_ties", |b| {
        b.iter(|| {
            let mut q = tie_heavy_queue();
            let mut drained = 0u64;
            while let Some((t, id, event)) = q.pop_entry() {
                black_box((t, id, &event));
                drained += 1;
            }
            assert_eq!(drained, EVENTS);
            black_box(drained)
        })
    });
    group.finish();
}

fn bench_route_intern_churn(c: &mut Criterion) {
    let topo = Topology::fat_tree(&FatTreeConfig::new(8));
    let hosts = topo.hosts().to_vec();
    // A representative slice of host pairs: every route set from host 0's
    // pod corner plus a stride sample across pods.
    let pairs: Vec<_> = hosts
        .iter()
        .step_by(7)
        .flat_map(|&src| hosts.iter().step_by(13).map(move |&dst| (src, dst)))
        .filter(|(s, d)| s != d)
        .collect();
    let mut group = c.benchmark_group("route_intern_churn");
    group.sample_size(10);
    group.bench_function("fat_tree_k8_ecmp_intern", |b| {
        b.iter(|| {
            let mut table = RouteTable::new();
            let mut interned = 0u64;
            // Two passes: the first populates the table (allocating per
            // distinct route), the second is pure inline-hash lookups.
            for _ in 0..2 {
                for &(src, dst) in &pairs {
                    for route in topo.host_routes(src, dst) {
                        black_box(table.intern(route));
                        interned += 1;
                    }
                }
            }
            black_box((interned, table.len()))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_arrival_batch_dispatch,
    bench_route_intern_churn
);
criterion_main!(benches);

//! Simulated time.
//!
//! The simulator uses integer **nanoseconds** as its clock. At the link
//! speeds of the paper's evaluation (10/40 Gbps) a 1500-byte packet takes
//! 1200 ns / 300 ns to serialize, so nanosecond resolution is comfortably
//! finer than any event spacing while `u64` still covers ~584 years of
//! simulated time.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute simulation timestamp (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A (non-negative) span of simulated time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// A timestamp from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// A timestamp from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// A timestamp from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// A timestamp from (possibly fractional) seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time {secs}");
        SimTime((secs * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The timestamp in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The timestamp in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Duration since `earlier` (saturating at zero if `earlier` is later).
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// A duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// A duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// A duration from (possibly fractional) seconds.
    ///
    /// # Panics
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The time it takes to serialize `bytes` bytes onto a link of
    /// `capacity_bps` bits per second.
    ///
    /// # Panics
    /// Panics if `capacity_bps` is not strictly positive.
    pub fn transmission(bytes: u64, capacity_bps: f64) -> Self {
        assert!(capacity_bps > 0.0, "link capacity must be positive");
        SimDuration(((bytes as f64 * 8.0 / capacity_bps) * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        assert!(rhs >= 0.0 && rhs.is_finite(), "invalid multiplier {rhs}");
        SimDuration((self.0 as f64 * rhs).round() as u64)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_micros(16).as_nanos(), 16_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert!((SimTime::from_nanos(2_500).as_micros_f64() - 2.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_micros(80).as_nanos(), 80_000);
    }

    #[test]
    fn transmission_time_matches_paper_numbers() {
        // 1500-byte packet at 10 Gbps = 1.2 µs; at 40 Gbps = 0.3 µs.
        assert_eq!(SimDuration::transmission(1500, 10e9).as_nanos(), 1200);
        assert_eq!(SimDuration::transmission(1500, 40e9).as_nanos(), 300);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(6);
        assert_eq!((t + d).as_nanos(), 16_000);
        assert_eq!((t + d) - t, d);
        assert_eq!((d + d).as_nanos(), 12_000);
        assert_eq!((d * 3).as_nanos(), 18_000);
        assert_eq!((d / 2).as_nanos(), 3_000);
        assert_eq!((d * 0.5).as_nanos(), 3_000);
        assert_eq!(
            d.saturating_sub(SimDuration::from_micros(10)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(a.duration_since(b), SimDuration::ZERO);
        assert_eq!(b.duration_since(a), SimDuration::from_micros(4));
    }

    #[test]
    #[should_panic]
    fn negative_seconds_rejected() {
        SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert_eq!(format!("{}", SimTime::from_micros(2)), "2.000us");
        assert_eq!(format!("{}", SimDuration::from_nanos(500)), "0.500us");
    }
}

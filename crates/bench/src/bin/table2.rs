//! Regenerate **Table 2** — thin wrapper over
//! [`numfabric_bench::figures::table2`] (also available as
//! `numfabric-run table2`).

use numfabric_workloads::registry::ScenarioOptions;

fn main() {
    numfabric_bench::figures::table2(&ScenarioOptions::from_env());
}

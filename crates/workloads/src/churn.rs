//! Open-loop trace-driven churn workloads: the paper's dynamic experiments
//! (§6.1) at production scale.
//!
//! A churn workload is a *mix of traffic classes*, each an independent
//! open-loop Poisson process drawing heavy-tail sizes from its own
//! distribution — the canonical mix being latency-sensitive foreground
//! traffic from the web-search distribution over bulk background traffic
//! from the data-mining distribution. The merged arrival sequence streams
//! (it is an [`Iterator`]): a million-flow horizon is generated one
//! arrival at a time and never materialized, which is what lets the
//! `numfabric-run churn` driver pair it with the simulator's flow slab and
//! the streaming report sketches to keep total memory proportional to
//! *concurrent* flows, not total flows.
//!
//! Determinism: each class derives its own RNG stream from
//! `(seed, class index)`, and the merge breaks start-time ties by class
//! index — the sequence is a pure function of the configuration, so every
//! protocol (and every `--partitions × --partition-threads` choice
//! downstream) sees the identical trace.

use crate::arrivals::{ArrivalStream, FlowArrival, PoissonWorkloadConfig};
use crate::distributions::{EmpiricalCdf, FlowSizeDistribution};
use numfabric_sim::{NodeId, SimDuration};
use std::iter::Peekable;

/// One traffic class of a churn mix: a name for reports, a size
/// distribution, and the share of the total offered load it carries.
pub struct ChurnClass {
    /// Class name as it appears in per-class reports (`"fg"`, `"bg"`, ...).
    pub name: &'static str,
    /// Flow-size distribution the class draws from.
    pub dist: Box<dyn FlowSizeDistribution>,
    /// Fraction of the total target load offered by this class, in `(0, 1]`.
    /// Shares must sum to 1 across the mix.
    pub load_share: f64,
}

/// Configuration of a churn workload (the class mix is supplied
/// separately, see [`ChurnStream::new`]).
#[derive(Debug, Clone)]
pub struct ChurnConfig {
    /// Total target load on the host access links, in `(0, 1)` — the
    /// paper's dynamic experiments run 40–80 %.
    pub load: f64,
    /// Generation horizon (arrivals stop after this instant).
    pub duration: SimDuration,
    /// Base RNG seed; class `c` derives its stream from `(seed, c)`.
    pub seed: u64,
    /// Number of spine choices for ECMP pinning.
    pub num_spines: usize,
    /// Access link capacity in bits per second.
    pub host_link_bps: f64,
}

impl ChurnConfig {
    /// A churn workload at `load` on 10 Gbps access links for `duration`.
    pub fn new(load: f64, duration: SimDuration, seed: u64) -> Self {
        assert!(load > 0.0 && load < 1.0, "load must be in (0, 1)");
        Self {
            load,
            duration,
            seed,
            num_spines: 4,
            host_link_bps: 10e9,
        }
    }
}

/// The canonical two-class mix: a `fg` foreground class drawing from the
/// web-search distribution at `fg_share` of the load, over a `bg`
/// background class drawing from the data-mining distribution with the
/// rest.
pub fn foreground_background(fg_share: f64) -> Vec<ChurnClass> {
    assert!(
        fg_share > 0.0 && fg_share < 1.0,
        "foreground share must be in (0, 1)"
    );
    vec![
        ChurnClass {
            name: "fg",
            dist: Box::new(EmpiricalCdf::web_search()),
            load_share: fg_share,
        },
        ChurnClass {
            name: "bg",
            dist: Box::new(EmpiricalCdf::data_mining()),
            load_share: 1.0 - fg_share,
        },
    ]
}

/// The seed class `class` of a mix draws its arrival stream from —
/// SplitMix64's golden-gamma spacing of the base seed, matching the
/// `derive_cell_seed` idiom of the sweep engine.
pub fn derive_class_seed(base: u64, class: usize) -> u64 {
    base.wrapping_add((class as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One arrival of a churn mix: which class it belongs to, and the arrival
/// itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnArrival {
    /// Index into the class mix this arrival was drawn by.
    pub class: usize,
    /// The flow arrival (start, endpoints, size, spine pin).
    pub arrival: FlowArrival,
}

/// The merged, streaming arrival sequence of a churn mix (see the module
/// docs). Yields [`ChurnArrival`]s in non-decreasing start order;
/// same-instant arrivals come out in class order.
pub struct ChurnStream<'a> {
    streams: Vec<Peekable<ArrivalStream<'a>>>,
}

impl<'a> ChurnStream<'a> {
    /// Build the merged stream of `classes` over `hosts` under `config`.
    ///
    /// # Panics
    /// Panics if the mix is empty, a share is outside `(0, 1]`, or the
    /// shares do not sum to 1.
    pub fn new(hosts: &'a [NodeId], classes: &'a [ChurnClass], config: &ChurnConfig) -> Self {
        assert!(!classes.is_empty(), "churn mix needs at least one class");
        let total_share: f64 = classes.iter().map(|c| c.load_share).sum();
        assert!(
            (total_share - 1.0).abs() < 1e-9,
            "class load shares must sum to 1 (got {total_share})"
        );
        let streams = classes
            .iter()
            .enumerate()
            .map(|(i, class)| {
                assert!(
                    class.load_share > 0.0 && class.load_share <= 1.0,
                    "class {} share out of range",
                    class.name
                );
                let class_config = PoissonWorkloadConfig {
                    load: config.load * class.load_share,
                    host_link_bps: config.host_link_bps,
                    duration: config.duration,
                    seed: derive_class_seed(config.seed, i),
                    num_spines: config.num_spines,
                };
                ArrivalStream::new(hosts, class.dist.as_ref(), &class_config).peekable()
            })
            .collect();
        Self { streams }
    }
}

impl Iterator for ChurnStream<'_> {
    type Item = ChurnArrival;

    fn next(&mut self) -> Option<ChurnArrival> {
        // K is 2–4 in practice: a linear scan of the peeked heads beats any
        // heap, and picking the smallest (start, class) pair makes the
        // merge order — like everything else here — content-derived.
        let mut best: Option<(usize, numfabric_sim::SimTime)> = None;
        for (i, stream) in self.streams.iter_mut().enumerate() {
            if let Some(head) = stream.peek() {
                if best.is_none_or(|(_, t)| head.start < t) {
                    best = Some((i, head.start));
                }
            }
        }
        let (class, _) = best?;
        Some(ChurnArrival {
            class,
            arrival: self.streams[class].next().expect("peeked head must exist"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numfabric_sim::SimTime;

    fn hosts(n: usize) -> Vec<NodeId> {
        (0..n).collect()
    }

    #[test]
    fn merged_stream_is_sorted_and_mixes_classes() {
        let hosts = hosts(16);
        let classes = foreground_background(0.3);
        let config = ChurnConfig::new(0.6, SimDuration::from_millis(20), 42);
        let arrivals: Vec<_> = ChurnStream::new(&hosts, &classes, &config).collect();
        assert!(arrivals.len() > 50);
        for w in arrivals.windows(2) {
            assert!(w[1].arrival.start >= w[0].arrival.start);
        }
        assert!(arrivals.iter().any(|a| a.class == 0));
        assert!(arrivals.iter().any(|a| a.class == 1));
        assert!(arrivals
            .iter()
            .all(|a| a.arrival.start < SimTime::from_millis(20)));
    }

    #[test]
    fn same_seed_reproduces_different_seed_diverges() {
        let hosts = hosts(8);
        let classes = foreground_background(0.25);
        let config = ChurnConfig::new(0.5, SimDuration::from_millis(10), 7);
        let a: Vec<_> = ChurnStream::new(&hosts, &classes, &config).collect();
        let b: Vec<_> = ChurnStream::new(&hosts, &classes, &config).collect();
        assert_eq!(a, b);
        let other = ChurnConfig { seed: 8, ..config };
        let c: Vec<_> = ChurnStream::new(&hosts, &classes, &other).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn class_arrival_rates_respect_their_shares() {
        // Realized *bytes* of a heavy-tail class are noisy over any finite
        // horizon (the data-mining mean lives in its 1 GB elephants), but
        // arrival *counts* concentrate fast: each class's rate is
        // `load·share / mean`, so the count ratio pins the share split.
        let hosts = hosts(16);
        let classes = foreground_background(0.25);
        let config = ChurnConfig::new(0.6, SimDuration::from_millis(200), 3);
        let (mut fg, mut bg) = (0u64, 0u64);
        for a in ChurnStream::new(&hosts, &classes, &config) {
            match a.class {
                0 => fg += 1,
                _ => bg += 1,
            }
        }
        let expected =
            (0.25 / classes[0].dist.mean_bytes()) / (0.75 / classes[1].dist.mean_bytes());
        let realized = fg as f64 / bg as f64;
        assert!(
            (realized / expected - 1.0).abs() < 0.35,
            "count ratio fg/bg = {realized:.2}, expected ≈ {expected:.2} (fg={fg}, bg={bg})"
        );
    }

    #[test]
    #[should_panic]
    fn shares_must_sum_to_one() {
        let hosts = [0, 1];
        let classes = vec![ChurnClass {
            name: "half",
            dist: Box::new(crate::distributions::FixedSize(1000)),
            load_share: 0.5,
        }];
        let config = ChurnConfig::new(0.5, SimDuration::from_millis(1), 0);
        let _ = ChurnStream::new(&hosts, &classes, &config);
    }
}
